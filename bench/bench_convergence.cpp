// Experiment Thm1 — the O(epsilon + 1/K) solution-quality bound.
//
// For a fixed ensemble of random games we sweep K (piecewise segments) at
// fixed epsilon, and epsilon at fixed K, reporting the realized worst-case
// utility of the CUBIS strategy and the binary-search bracket.  Theorem 1
// predicts the gap to the best achievable value closes as eps + 1/K.
// The multi-start gradient solver on the exact worst-case objective
// provides the reference optimum.
#include <cstdio>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/gradient.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

int main() {
  using namespace cubisg;
  std::printf("=== Thm1: O(eps + 1/K) convergence ===\n\n");

  const int kGames = 8;
  const std::size_t kTargets = 6;
  const double kResources = 2.0;

  struct Instance {
    games::UncertainGame ug;
    behavior::SuqrIntervalBounds bounds;
    double reference;
  };
  std::vector<Instance> instances;
  for (int g = 0; g < kGames; ++g) {
    Rng rng(9000 + g);
    auto ug = games::random_uncertain_game(rng, kTargets, kResources, 1.0);
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    core::GradientOptions gopt;
    gopt.num_starts = 8;
    core::DefenderSolution ref =
        core::GradientSolver(gopt).solve({ug.game, bounds});
    instances.push_back({std::move(ug), std::move(bounds),
                         ref.worst_case_utility});
  }

  std::printf("-- quality vs K (epsilon = 1e-4) --\n");
  std::printf("%6s %18s %18s\n", "K", "gap-to-reference", "bracket(ub-lb)");
  for (std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<double> gaps, brackets;
    for (auto& in : instances) {
      core::CubisOptions opt;
      opt.segments = k;
      opt.epsilon = 1e-4;
      auto sol = core::CubisSolver(opt).solve({in.ug.game, in.bounds});
      gaps.push_back(in.reference - sol.worst_case_utility);
      brackets.push_back(sol.ub - sol.lb);
    }
    std::printf("%6zu %18s %18.5f\n", k, bench::cell(gaps).c_str(),
                bench::mean(brackets));
  }

  std::printf("\n-- quality vs epsilon (K = 32) --\n");
  std::printf("%10s %18s %10s\n", "epsilon", "gap-to-reference", "steps");
  for (double eps : {1.0, 0.3, 0.1, 0.03, 0.01, 0.001}) {
    std::vector<double> gaps, steps;
    for (auto& in : instances) {
      core::CubisOptions opt;
      opt.segments = 32;
      opt.epsilon = eps;
      auto sol = core::CubisSolver(opt).solve({in.ug.game, in.bounds});
      gaps.push_back(in.reference - sol.worst_case_utility);
      steps.push_back(sol.binary_steps);
    }
    std::printf("%10.3f %18s %10.1f\n", eps, bench::cell(gaps).c_str(),
                bench::mean(steps));
  }

  std::printf(
      "\nShape check: the gap to the reference optimum shrinks as K grows\n"
      "and as epsilon shrinks, flattening once the other term dominates —\n"
      "exactly the O(eps + 1/K) additive structure of Theorem 1.\n");
  return 0;
}

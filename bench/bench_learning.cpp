// Experiment L1 — the data-scarcity story, quantified (extension).
//
// The paper's motivation: "access to real-world data is often limited,
// leading to uncertainty in the attacker's behaviors".  This bench runs
// the full pipeline — simulate attack data from a hidden SUQR attacker,
// fit by MLE, build bootstrap weight intervals, solve robustly — across
// sample sizes, and reports:
//   * the learned interval widths (uncertainty shrinks as data grows),
//   * the CERTIFIED worst case of the robust strategy,
//   * the REALIZED utility of robust vs point-estimate strategies against
//     the hidden true attacker.
//
// Expected shape: with little data the point-estimate (certainty-
// equivalent) defender overfits and underperforms its own belief, while
// the robust defender's certificate holds; the two converge as data grows.
#include <cstdio>
#include <memory>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/pasaq.hpp"
#include "games/generators.hpp"
#include "learning/suqr_mle.hpp"
#include "bench_util.hpp"

int main() {
  using namespace cubisg;
  std::printf("=== L1: learning-driven uncertainty (data -> intervals -> "
              "robust solve) ===\n\n");

  const behavior::SuqrWeights truth{-4.0, 0.75, 0.65};
  Rng grng(606);
  auto ug = games::random_uncertain_game(grng, 10, 3.0, 0.0);
  behavior::SuqrModel true_model(truth, ug.game);

  std::printf("%8s %10s %10s %10s | %12s | %12s %12s | %10s\n", "samples",
              "w1-width", "w2-width", "w3-width", "certified-W",
              "robust:true", "mle:true", "regret");

  for (std::size_t n : {25u, 50u, 100u, 400u, 1600u, 6400u}) {
    Rng data_rng(707);
    auto data = learning::simulate_attack_data(ug.game, truth, n, data_rng);

    learning::SuqrMleResult fit = learning::fit_suqr(ug.game, data);
    learning::BootstrapOptions bo;
    bo.resamples = 60;
    bo.confidence = 0.9;
    auto intervals = learning::bootstrap_weight_intervals(ug.game, data,
                                                          {}, bo);

    behavior::SuqrIntervalBounds bounds(intervals, ug.attacker_intervals);
    core::SolveContext ctx{ug.game, bounds};

    core::CubisOptions copt;
    copt.segments = 25;
    copt.polish_iterations = 20;
    auto robust = core::CubisSolver(copt).solve(ctx);

    // The certainty-equivalent defender: plan optimally for the MLE point.
    core::PasaqOptions popt;
    popt.segments = 25;
    popt.source = core::PasaqModelSource::kCustom;
    behavior::SuqrWeights mle_w = fit.weights;
    mle_w.w1 = std::min(mle_w.w1, -1e-3);  // model sign constraint
    mle_w.w2 = std::max(mle_w.w2, 0.0);
    mle_w.w3 = std::max(mle_w.w3, 0.0);
    popt.model = std::make_shared<behavior::SuqrModel>(mle_w, ug.game);
    auto point = core::PasaqSolver(popt).solve(ctx);

    const double robust_true = behavior::defender_expected_utility(
        ug.game, true_model, robust.strategy);
    const double point_true = behavior::defender_expected_utility(
        ug.game, true_model, point.strategy);

    std::printf("%8zu %10.3f %10.3f %10.3f | %12.3f | %12.3f %12.3f | "
                "%10.3f\n",
                n, intervals.w1.width(), intervals.w2.width(),
                intervals.w3.width(), robust.worst_case_utility,
                robust_true, point_true, robust_true - point_true);
  }

  std::printf(
      "\nShape check: interval widths fall roughly as 1/sqrt(n) and the\n"
      "certified worst case rises toward the achievable utility as\n"
      "uncertainty shrinks.  Against this particular (benign) truth the\n"
      "point-estimate plan realizes slightly more — that is the price of\n"
      "insurance — but it certifies nothing: a different behavior inside\n"
      "the same confidence box could drive it far below the robust plan's\n"
      "floor.  The price decays to ~0 as data accumulates.\n");
  return 0;
}

// Experiment P1 — end-to-end patrol deployment (extension).
//
// Closes the loop from the paper's title ("Defender Patrols"): the robust
// marginal coverage is decomposed into an implementable mixture of pure
// patrols via comb sampling, and a season of daily patrols is simulated
// against attackers drawn from the uncertainty box.  The realized mean
// utility must (a) respect the certified worst case and (b) match the
// marginal-based prediction — validating that executing the mixture loses
// nothing relative to the idealized marginal strategy.
#include <cstdio>
#include <memory>
#include <vector>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "games/comb_sampling.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

int main() {
  using namespace cubisg;
  std::printf("=== P1: patrol deployment (comb sampling) ===\n\n");
  std::printf("%8s %10s %12s %12s %12s %12s\n", "targets", "patrols",
              "certified-W", "marg-mean", "deployed", "max-marg-err");

  for (std::size_t t : {5u, 10u, 20u, 40u}) {
    Rng rng(7700 + t);
    const double resources = std::max(1.0, 0.3 * static_cast<double>(t));
    auto ug = games::random_uncertain_game(rng, t, resources, 1.5);
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    core::CubisOptions copt;
    copt.segments = 20;
    auto sol = core::CubisSolver(copt).solve({ug.game, bounds});

    // Decompose into pure patrols and verify the marginals.
    auto mix = games::comb_decomposition(sol.strategy);
    auto marg = games::mixture_marginals(t, mix);
    double max_err = 0.0;
    for (std::size_t i = 0; i < t; ++i) {
      max_err = std::max(max_err, std::abs(marg[i] - sol.strategy[i]));
    }

    // Attack season: 2000 attacks against the deployed (sampled-patrol)
    // defense, attackers drawn from the box.
    Rng sim_rng(7800 + t);
    behavior::SampledSuqrPopulation attackers(
        behavior::SuqrWeightIntervals{}, ug.attacker_intervals, 100,
        sim_rng);
    const double marg_mean =
        attackers.mean_defender_utility(ug.game, sol.strategy);
    Rng season_rng(7900 + t);
    const double deployed = attackers.simulate_attacks(
        ug.game, sol.strategy, 2000, season_rng);

    std::printf("%8zu %10zu %12.3f %12.3f %12.3f %12.2e\n", t, mix.size(),
                sol.worst_case_utility, marg_mean, deployed, max_err);
  }

  std::printf(
      "\nShape check: the mixture reproduces the marginals to ~1e-12 with\n"
      "at most T+1 pure patrols; the simulated season's mean utility\n"
      "tracks the analytic marginal prediction and stays above the\n"
      "certified worst case.\n");
  return 0;
}

// Experiment A1 — worst-case evaluator agreement and cost (ablation).
//
// The library ships three independent implementations of the inner
// minimization of maximin (5): the closed-form threshold scan, the paper's
// LP (6)-(8) on the simplex substrate, and bisection on the dual function
// G.  This bench confirms they agree to tight tolerance on a large random
// ensemble and reports their relative cost — the reason the closed form is
// the default (it is called hundreds of times per gradient-solver run).
#include <cstdio>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"
#include "bench_util.hpp"

int main() {
  using namespace cubisg;
  std::printf("=== A1: worst-case evaluator agreement and cost ===\n\n");

  std::printf("%8s %14s %14s %12s %12s %12s\n", "targets", "max|cf-lp|",
              "max|cf-root|", "cf us/eval", "lp us/eval", "root us/eval");

  for (std::size_t t : {2u, 5u, 10u, 25u, 50u, 100u}) {
    Rng rng(6100 + t);
    auto ug = games::random_uncertain_game(rng, t, 0.3 * t, 2.0);
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    const int kPoints = 50;
    std::vector<std::vector<double>> xs;
    for (int p = 0; p < kPoints; ++p) {
      std::vector<double> raw(t);
      for (auto& v : raw) v = rng.uniform(0.0, 1.0);
      xs.push_back(games::project_to_simplex_box(raw, 0.3 * t));
    }

    double d_lp = 0.0, d_root = 0.0;
    Timer t_cf;
    std::vector<double> cf(kPoints);
    for (int p = 0; p < kPoints; ++p) {
      cf[p] = core::worst_case_utility(ug.game, bounds, xs[p],
                                       core::WorstCaseMethod::kClosedForm);
    }
    const double us_cf = t_cf.millis() * 1e3 / kPoints;

    Timer t_lp;
    for (int p = 0; p < kPoints; ++p) {
      const double v = core::worst_case_utility(
          ug.game, bounds, xs[p], core::WorstCaseMethod::kInnerLp);
      d_lp = std::max(d_lp, std::abs(v - cf[p]));
    }
    const double us_lp = t_lp.millis() * 1e3 / kPoints;

    Timer t_root;
    for (int p = 0; p < kPoints; ++p) {
      const double v = core::worst_case_utility(
          ug.game, bounds, xs[p], core::WorstCaseMethod::kDualRoot);
      d_root = std::max(d_root, std::abs(v - cf[p]));
    }
    const double us_root = t_root.millis() * 1e3 / kPoints;

    std::printf("%8zu %14.3g %14.3g %12.1f %12.1f %12.1f\n", t, d_lp,
                d_root, us_cf, us_lp, us_root);
  }

  std::printf(
      "\nShape check: agreement at ~1e-8 across sizes; the closed form is\n"
      "orders of magnitude cheaper than the LP route, justifying its use as\n"
      "the canonical evaluator inside solvers and benches.\n");
  return 0;
}

// Experiment S1 — google-benchmark microbenchmarks of the substrates the
// CUBIS pipeline is built on: LU, simplex, branch-and-bound, the thread
// pool, the worst-case evaluator and the DP step solver.
#include <benchmark/benchmark.h>

#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/step_solver.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"
#include "linalg/lu.hpp"
#include "lp/model.hpp"
#include "lp/presolve.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "parallel/parallel_for.hpp"

namespace {

using namespace cubisg;

Matrix random_spd_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  return a;
}

void BM_LuFactorSolve(benchmark::State& state) {
  const std::size_t n = state.range(0);
  Matrix a = random_spd_like(n, 1);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    LuFactorization lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuFactorSolve)->Arg(8)->Arg(32)->Arg(128);

lp::Model random_lp(int n, int rows, std::uint64_t seed) {
  Rng rng(seed);
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  for (int j = 0; j < n; ++j) {
    m.add_col("x" + std::to_string(j), 0.0, 1.0, rng.uniform(0.0, 1.0));
  }
  for (int r = 0; r < rows; ++r) {
    int row = m.add_row("r" + std::to_string(r), lp::Sense::kLe,
                        rng.uniform(1.0, 3.0));
    for (int j = 0; j < n; ++j) {
      m.set_coeff(row, j, rng.uniform(0.0, 1.0));
    }
  }
  return m;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lp::Model m = random_lp(n, n / 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(m));
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(40)->Arg(120);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  int row = m.add_row("cap", lp::Sense::kLe, n / 3.0);
  for (int j = 0; j < n; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                        rng.uniform(0.5, 2.0));
    m.set_integer(col);
    m.set_coeff(row, col, rng.uniform(0.2, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve_milp(m));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(8)->Arg(14)->Arg(20);

void BM_SimplexPresolved(benchmark::State& state) {
  // Same instances as BM_SimplexSolve with a quarter of columns fixed —
  // the branch-and-bound node shape presolve is built for.
  const int n = static_cast<int>(state.range(0));
  lp::Model m = random_lp(n, n / 2, 2);
  for (int j = 0; j < n; j += 4) m.set_col_bounds(j, 0.0, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp_presolved(m));
  }
}
BENCHMARK(BM_SimplexPresolved)->Arg(40)->Arg(120);

void BM_SimplexWarmStart(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lp::Model m = random_lp(n, n / 2, 5);
  lp::LpSolution cold = lp::solve_lp(m);
  lp::SimplexOptions opt;
  opt.warm_positions = &cold.positions;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve_lp(m, opt));
  }
}
BENCHMARK(BM_SimplexWarmStart)->Arg(40)->Arg(120);

void BM_MilpParallelWorkers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  Rng rng(6);
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  int row = m.add_row("cap", lp::Sense::kLe, 5.0);
  for (int j = 0; j < 16; ++j) {
    int col = m.add_col("b" + std::to_string(j), 0.0, 1.0,
                        rng.uniform(0.5, 2.0));
    m.set_integer(col);
    m.set_coeff(row, col, rng.uniform(0.2, 1.0));
  }
  milp::MilpOptions opt;
  opt.num_workers = workers;
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve_milp(m, opt));
  }
}
BENCHMARK(BM_MilpParallelWorkers)->Arg(1)->Arg(2)->Arg(4);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.submit([] { return 1; }).get());
  }
}
BENCHMARK(BM_ThreadPoolDispatch);

void BM_ParallelForSum(benchmark::State& state) {
  ThreadPool pool(2);
  std::vector<double> data(1 << 14, 1.5);
  for (auto _ : state) {
    std::atomic<double> sink{0.0};
    parallel_for(pool, 0, data.size(), [&](std::size_t i) {
      benchmark::DoNotOptimize(data[i] * 2.0);
    }, 1024);
  }
}
BENCHMARK(BM_ParallelForSum);

struct WorstCaseFixture {
  games::UncertainGame ug;
  behavior::SuqrIntervalBounds bounds;
  std::vector<double> x;
  explicit WorstCaseFixture(std::size_t t)
      : ug(make_game(t)),
        bounds(behavior::SuqrWeightIntervals{}, ug.attacker_intervals),
        x(games::uniform_strategy(t, 0.3 * static_cast<double>(t))) {}
  static games::UncertainGame make_game(std::size_t t) {
    Rng rng(4);
    return games::random_uncertain_game(rng, t, 0.3 * t, 2.0);
  }
};

void BM_WorstCaseClosedForm(benchmark::State& state) {
  WorstCaseFixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::worst_case_utility(f.ug.game, f.bounds, f.x));
  }
}
BENCHMARK(BM_WorstCaseClosedForm)->Arg(10)->Arg(100)->Arg(1000);

void BM_WorstCaseInnerLp(benchmark::State& state) {
  WorstCaseFixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::worst_case_utility(
        f.ug.game, f.bounds, f.x, core::WorstCaseMethod::kInnerLp));
  }
}
BENCHMARK(BM_WorstCaseInnerLp)->Arg(10)->Arg(50);

void BM_CubisStepDp(benchmark::State& state) {
  WorstCaseFixture f(state.range(0));
  core::SolveContext ctx{f.ug.game, f.bounds};
  core::CubisOptions opt;
  opt.segments = 20;
  const double c = 0.5 * (f.ug.game.min_defender_penalty() +
                          f.ug.game.max_defender_reward());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cubis_step(ctx, c, opt));
  }
}
BENCHMARK(BM_CubisStepDp)->Arg(10)->Arg(50)->Arg(200);

void BM_CubisFullSolveDp(benchmark::State& state) {
  WorstCaseFixture f(state.range(0));
  core::SolveContext ctx{f.ug.game, f.bounds};
  core::CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  core::CubisSolver solver(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(ctx));
  }
}
BENCHMARK(BM_CubisFullSolveDp)->Arg(10)->Arg(50);

}  // namespace

BENCHMARK_MAIN();

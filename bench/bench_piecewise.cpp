// Experiment E1 — piecewise linearization semantics and Lemma 1 error decay.
//
// Paper content reproduced:
//  * Example 1 (Section IV.C): K=5, x_i = 0.3 -> segment portions
//    x_{i,1} = 1/5, x_{i,2} = 0.1, rest 0.
//  * Lemma 1: the approximation error of the f1/f2 functions (and hence of
//    H) is O(1/K).  We measure max |f - f~| over [0,1] for the Table I
//    game's actual f1/f2 at a representative utility value c, doubling K.
#include <cstdio>

#include "behavior/bounds.hpp"
#include "core/hfunction.hpp"
#include "core/piecewise.hpp"
#include "games/generators.hpp"

int main() {
  using namespace cubisg;
  std::printf("=== E1: piecewise linearization (Example 1, Lemma 1) ===\n\n");

  auto portions = core::segment_portions(0.3, 5);
  std::printf("Example 1 (K=5, x=0.3): portions =");
  for (double p : portions) std::printf(" %.2f", p);
  std::printf("   (paper: 0.20 0.10 0.00 0.00 0.00)\n\n");

  games::UncertainGame ug = games::table1_game();
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      ug.attacker_intervals);
  const double c = -1.0;  // a mid-range utility value
  auto f1 = [&](double x) {
    return core::f1_of(bounds.lower(0, x), ug.game.defender_utility(0, x), c);
  };
  auto f2 = [&](double x) {
    return core::f2_of(bounds.upper(0, x), ug.game.defender_utility(0, x), c);
  };

  std::printf("%6s %14s %14s %16s\n", "K", "max|f1-f1~|", "max|f2-f2~|",
              "err(K)/err(2K)");
  double prev = -1.0;
  for (std::size_t k = 2; k <= 256; k *= 2) {
    const double e1 =
        core::max_approximation_error(f1, core::PiecewiseLinear(f1, k));
    const double e2 =
        core::max_approximation_error(f2, core::PiecewiseLinear(f2, k));
    std::printf("%6zu %14.6g %14.6g", k, e1, e2);
    if (prev > 0.0) std::printf(" %16.2f", prev / e2);
    prev = e2;
    std::printf("\n");
  }
  std::printf(
      "\nShape check: the error ratio approaches 4 per doubling of K —\n"
      "chord interpolation of a smooth function is O(1/K^2), comfortably\n"
      "inside Lemma 1's O(1/K) guarantee.\n");
  return 0;
}

// Experiment B1 — the full baseline landscape (extension of Q1/Q2 to every
// solver in the registry, including the related-work approaches the paper
// argues against).
//
// For an ensemble of random games, each solver's strategy is scored on
// three axes:
//   worst     certified worst case over ALL behaviors in the intervals
//   samp-min  minimum expected utility over 200 sampled attacker types
//   samp-mean mean expected utility over the same samples
//
// Expected shape (Sections I-II of the paper):
//   * "bayesian" [20] wins samp-mean but has a weak tail;
//   * "robust-types" [3] protects the sampled tail but certifies nothing
//     about behaviors outside its samples (worst < samp-min gap);
//   * "cubis" certifies the worst case (worst == its strong suit) at a
//     modest samp-mean price;
//   * "sse" (rational attacker) and "midpoint" are brittle;
//   * correlation sweep: every gap narrows as games approach zero-sum.
#include <cstdio>
#include <memory>
#include <vector>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

namespace {
using namespace cubisg;

struct Scores {
  std::vector<double> worst, samp_min, samp_mean;
};

}  // namespace

int main() {
  const int kGames = 8;
  const std::size_t kTargets = 8;
  const double kResources = 3.0;
  std::printf("=== B1: full baseline landscape ===\n");
  std::printf("(T=%zu, R=%.0f, width 2.0, %d games, 200 sampled types)\n\n",
              kTargets, kResources, kGames);

  const std::vector<std::string> solvers = {
      "cubis", "cubis-adaptive", "midpoint", "maximin",
      "gradient", "sse", "uniform", "robust-types", "bayesian"};

  std::vector<Scores> scores(solvers.size());
  for (int g = 0; g < kGames; ++g) {
    Rng rng(90000 + g);
    auto ug = games::random_uncertain_game(rng, kTargets, kResources, 2.0);
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    core::SolveContext ctx{ug.game, bounds};
    Rng pop_rng(91000 + g);
    auto population = std::make_shared<behavior::SampledSuqrPopulation>(
        behavior::SuqrWeightIntervals{}, ug.attacker_intervals, 200,
        pop_rng);

    for (std::size_t s = 0; s < solvers.size(); ++s) {
      core::SolverSpec spec;
      spec.name = solvers[s];
      spec.segments = 25;
      spec.num_starts = 4;
      spec.population = population;
      auto solution = core::make_solver(spec)->solve(ctx);
      scores[s].worst.push_back(solution.worst_case_utility);
      scores[s].samp_min.push_back(
          population->min_defender_utility(ug.game, solution.strategy));
      scores[s].samp_mean.push_back(
          population->mean_defender_utility(ug.game, solution.strategy));
    }
  }

  std::printf("%-16s %17s %17s %17s\n", "solver", "worst", "samp-min",
              "samp-mean");
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    std::printf("%-16s %17s %17s %17s\n", solvers[s].c_str(),
                bench::cell(scores[s].worst).c_str(),
                bench::cell(scores[s].samp_min).c_str(),
                bench::cell(scores[s].samp_mean).c_str());
  }

  // Correlation sweep: how much does the zero-sum assumption matter?
  std::printf("\n-- covariance sweep: cubis worst case vs payoff "
              "correlation --\n");
  std::printf("%12s %17s %17s\n", "correlation", "cubis:worst",
              "midpoint:worst");
  for (double corr : {0.0, 0.5, 1.0}) {
    std::vector<double> cubis_w, mid_w;
    for (int g = 0; g < kGames; ++g) {
      Rng rng(93000 + g);
      auto game = games::covariant_game(rng, kTargets, kResources, corr);
      // Payoff intervals of width 2 around the drawn attacker payoffs.
      std::vector<games::IntervalPayoffs> intervals;
      for (std::size_t i = 0; i < game.num_targets(); ++i) {
        const auto& p = game.target(i);
        intervals.push_back(
            {Interval(std::max(0.1, p.attacker_reward - 1.0),
                      p.attacker_reward + 1.0),
             Interval(p.attacker_penalty - 1.0,
                      std::min(-0.1, p.attacker_penalty + 1.0))});
      }
      behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                          intervals);
      core::SolveContext ctx{game, bounds};
      core::SolverSpec cs;
      cs.name = "cubis";
      cs.segments = 25;
      cubis_w.push_back(
          core::make_solver(cs)->solve(ctx).worst_case_utility);
      core::SolverSpec ms;
      ms.name = "midpoint";
      mid_w.push_back(core::make_solver(ms)->solve(ctx).worst_case_utility);
    }
    std::printf("%12.1f %17s %17s\n", corr, bench::cell(cubis_w).c_str(),
                bench::cell(mid_w).c_str());
  }

  std::printf(
      "\nShape check: cubis tops the 'worst' column; bayesian tops\n"
      "'samp-mean' with a weak tail; robust-types sits between; the\n"
      "robust-vs-naive gap persists across payoff correlations.\n");
  return 0;
}

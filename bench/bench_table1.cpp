// Experiment T1 — Table I and the Section III worked example.
//
// Paper reports (2 targets, 1 resource, payoff intervals of Table I, SUQR
// weight intervals w1 in [-6,-2], w2 in [.5,1], w3 in [.4,.9]):
//   midpoint strategy (0.34, 0.66) -> worst-case utility -2.26
//   robust   strategy (0.46, 0.54) -> worst-case utility -0.90
//
// We regenerate both strategies and their worst cases under our defender
// payoff reconstruction (the paper does not print defender payoffs; we use
// the zero-sum mirror of the attacker interval midpoints — see
// EXPERIMENTS.md for the discussion of the utility-scale difference).
#include <cstdio>
#include <memory>

#include "behavior/bounds.hpp"
#include "core/cubis.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"

int main() {
  using namespace cubisg;
  std::printf("=== T1: Table I / Section III worked example ===\n\n");

  games::UncertainGame ug = games::table1_game();
  behavior::SuqrWeightIntervals weights;

  for (auto mode : {behavior::IntervalMode::kPaperCorners,
                    behavior::IntervalMode::kExactBox}) {
    const char* mode_name =
        mode == behavior::IntervalMode::kPaperCorners ? "paper-corners"
                                                      : "exact-box";
    behavior::SuqrIntervalBounds bounds(weights, ug.attacker_intervals, mode);
    core::SolveContext ctx{ug.game, bounds};

    // Paper pin: L1(0.3) = e^-4.1, U1(0.3) = e^1.7 under paper-corners.
    std::printf("[%s] L1(0.3)=%.6f  U1(0.3)=%.6f", mode_name,
                bounds.lower(0, 0.3), bounds.upper(0, 0.3));
    if (mode == behavior::IntervalMode::kPaperCorners) {
      std::printf("   (paper: e^-4.1=%.6f, e^1.7=%.6f)", std::exp(-4.1),
                  std::exp(1.7));
    }
    std::printf("\n");

    core::CubisOptions copt;
    copt.segments = 50;
    copt.epsilon = 1e-4;
    core::DefenderSolution robust = core::CubisSolver(copt).solve(ctx);

    core::PasaqOptions popt;
    popt.segments = 50;
    popt.epsilon = 1e-4;
    popt.source = core::PasaqModelSource::kCustom;
    popt.model =
        std::make_shared<behavior::SuqrModel>(bounds.midpoint_model());
    core::DefenderSolution naive = core::PasaqSolver(popt).solve(ctx);

    std::printf("  %-22s %-16s %-12s %s\n", "strategy", "coverage",
                "worst-case", "paper");
    std::printf("  %-22s (%.2f, %.2f)     %+10.3f   (0.34, 0.66) -> -2.26\n",
                "midpoint (non-robust)", naive.strategy[0],
                naive.strategy[1], naive.worst_case_utility);
    std::printf("  %-22s (%.2f, %.2f)     %+10.3f   (0.46, 0.54) -> -0.90\n",
                "cubis (robust)", robust.strategy[0], robust.strategy[1],
                robust.worst_case_utility);
    std::printf("  robust-vs-midpoint worst-case gain: %+.3f "
                "(paper: +1.36)\n\n",
                robust.worst_case_utility - naive.worst_case_utility);
  }
  std::printf(
      "Shape check: both strategies match the paper exactly; the robust\n"
      "strategy wins the worst case by a wide margin (the absolute utility\n"
      "scale differs because the paper omits its defender payoffs).\n");
  return 0;
}

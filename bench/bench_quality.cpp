// Experiments Q1/Q2 — worst-case solution quality vs uncertainty level and
// vs game size (the standard evaluation of this paper line: random games,
// mean worst-case defender utility per solver).
//
// Q1: fixed ensemble (T = 10, R = 3), sweep the behavioral uncertainty
//     level — a factor in [0, 1] scaling the width of every interval
//     (weights AND payoffs) around its midpoint.
// Q2: full uncertainty, sweep the number of targets T.
//
// Columns: CUBIS (paper-faithful, K = 50), CUBIS + gradient polish (our
// extension), midpoint baseline, maximin, uniform.
//
// Expected shape (paper line): at zero uncertainty CUBIS and midpoint
// coincide; as uncertainty grows the midpoint collapses while CUBIS
// degrades gracefully and dominates everywhere; maximin only becomes
// competitive at extreme uncertainty.
#include <cstdio>
#include <memory>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/maximin.hpp"
#include "core/pasaq.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

namespace {

using namespace cubisg;

struct Row {
  std::vector<double> cubis, polished, midpoint, maximin, uniform;
};

Row run_ensemble(std::size_t targets, double resources, double scale,
                 int games_count, std::uint64_t seed_base) {
  Row row;
  for (int g = 0; g < games_count; ++g) {
    Rng rng(seed_base + g);
    auto ug = games::random_uncertain_game(rng, targets, resources, 2.0);
    auto base = std::make_shared<behavior::SuqrIntervalBounds>(
        behavior::SuqrWeightIntervals{}, ug.attacker_intervals);
    behavior::ScaledBounds bounds(base, scale);
    core::SolveContext ctx{ug.game, bounds};

    core::CubisOptions copt;
    copt.segments = 50;
    copt.epsilon = 1e-3;
    row.cubis.push_back(
        core::CubisSolver(copt).solve(ctx).worst_case_utility);

    core::CubisOptions popt = copt;
    popt.polish_iterations = 30;
    row.polished.push_back(
        core::CubisSolver(popt).solve(ctx).worst_case_utility);

    row.midpoint.push_back(
        core::PasaqSolver().solve(ctx).worst_case_utility);
    row.maximin.push_back(
        core::MaximinSolver().solve(ctx).worst_case_utility);
    row.uniform.push_back(
        core::UniformSolver().solve(ctx).worst_case_utility);
  }
  return row;
}

void print_row(const char* label, const Row& r) {
  std::printf("%8s %17s %17s %17s %17s %17s\n", label,
              cubisg::bench::cell(r.cubis).c_str(),
              cubisg::bench::cell(r.polished).c_str(),
              cubisg::bench::cell(r.midpoint).c_str(),
              cubisg::bench::cell(r.maximin).c_str(),
              cubisg::bench::cell(r.uniform).c_str());
}

void header() {
  std::printf("%8s %17s %17s %17s %17s %17s\n", "", "cubis", "cubis+polish",
              "midpoint", "maximin", "uniform");
}

}  // namespace

int main() {
  const int kGames = 10;
  std::printf("=== Q1/Q2: worst-case utility vs uncertainty and size ===\n");
  std::printf("(mean +- std over %d random games per cell)\n\n", kGames);

  std::printf("-- Q1: T = 10, R = 3, behavioral-uncertainty scale sweep --\n");
  header();
  for (double scale : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    char label[32];
    std::snprintf(label, sizeof label, "%.2f", scale);
    print_row(label, run_ensemble(10, 3.0, scale, kGames, 40000));
  }

  std::printf("\n-- Q2: full uncertainty, R = 0.3*T, target-count sweep --\n");
  header();
  for (std::size_t t : {5u, 10u, 20u, 40u}) {
    char label[32];
    std::snprintf(label, sizeof label, "%zu", t);
    print_row(label, run_ensemble(t, 0.3 * static_cast<double>(t), 1.0,
                                  kGames, 50000 + t));
  }

  std::printf(
      "\nShape check: at scale 0 cubis == midpoint; as uncertainty grows\n"
      "the midpoint collapses while cubis degrades gracefully and dominates\n"
      "uniform everywhere; maximin converges to cubis only at full\n"
      "uncertainty (where the worst case is behavior-free).  The polish\n"
      "column shows the O(1/K) grid residual recovered by local ascent.\n");
  return 0;
}

// Experiment AB1 — engineering ablations (extension).
//
// Quantifies each engineering decision recorded in DESIGN.md / numerics.md
// on a fixed instance family:
//   (a) eta-file refactor interval (1 = paper-era refactor-per-iteration),
//   (b) node-LP presolve in branch and bound,
//   (c) DP warm-start of the MILP incumbent,
//   (d) gradient polish of the CUBIS grid solution,
//   (e) multisection width of the binary search.
#include <cstdio>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cubis.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

namespace {
using namespace cubisg;

struct Inst {
  games::UncertainGame ug;
  behavior::SuqrIntervalBounds bounds;
};

Inst make(std::uint64_t seed, std::size_t t) {
  Rng rng(seed);
  auto ug = games::random_uncertain_game(rng, t, 0.5 * t, 1.5);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      ug.attacker_intervals);
  return {std::move(ug), std::move(bounds)};
}

double time_milp_step(const Inst& in, const core::CubisOptions& opt) {
  core::SolveContext ctx{in.ug.game, in.bounds};
  const double c = 0.5 * (in.ug.game.min_defender_penalty() +
                          in.ug.game.max_defender_reward());
  Timer t;
  core::cubis_step(ctx, c, opt);
  return t.millis();
}

}  // namespace

int main() {
  std::printf("=== AB1: engineering ablations ===\n\n");
  Inst in = make(3100, 4);
  core::CubisOptions base;
  base.segments = 20;
  base.backend = core::StepBackend::kMilp;

  std::printf("-- (a) simplex refactor interval (MILP step, T=4, K=20) --\n");
  std::printf("%12s %14s\n", "interval", "step-ms");
  for (std::size_t interval : {1u, 4u, 16u, 64u, 256u}) {
    core::CubisOptions opt = base;
    opt.milp.lp.refactor_interval = interval;
    std::printf("%12zu %14.1f\n", interval, time_milp_step(in, opt));
  }

  std::printf("\n-- (b) node-LP presolve in branch and bound --\n");
  std::printf("%12s %14s\n", "presolve", "step-ms");
  for (bool presolve : {false, true}) {
    core::CubisOptions opt = base;
    opt.milp.use_presolve = presolve;
    std::printf("%12s %14.1f\n", presolve ? "on" : "off",
                time_milp_step(in, opt));
  }

  std::printf("\n-- (c) DP warm start of the MILP incumbent --\n");
  std::printf("%12s %14s\n", "warm-start", "step-ms");
  for (bool warm : {false, true}) {
    core::CubisOptions opt = base;
    opt.warm_start_from_dp = warm;
    std::printf("%12s %14.1f\n", warm ? "on" : "off",
                time_milp_step(in, opt));
  }

  std::printf("\n-- (d) gradient polish of the CUBIS grid solution --\n");
  std::printf("%12s %18s %12s\n", "polish", "worst-case", "solve-ms");
  for (int polish : {0, 10, 50}) {
    std::vector<double> w, ms;
    for (int g = 0; g < 6; ++g) {
      Inst pin = make(3200 + g, 8);
      core::CubisOptions opt;
      opt.segments = 10;
      opt.polish_iterations = polish;
      core::DefenderSolution sol =
          core::CubisSolver(opt).solve({pin.ug.game, pin.bounds});
      w.push_back(sol.worst_case_utility);
      ms.push_back(sol.wall_seconds * 1e3);
    }
    std::printf("%12d %18s %12.2f\n", polish, bench::cell(w).c_str(),
                bench::mean(ms));
  }

  std::printf("\n-- (e) multisection width of the binary search --\n");
  std::printf("%12s %14s %14s\n", "sections", "step-evals", "bracket");
  for (int sections : {1, 2, 4, 8}) {
    Inst pin = make(3300, 10);
    core::CubisOptions opt;
    opt.segments = 20;
    opt.epsilon = 1e-4;
    opt.parallel_sections = sections;
    core::DefenderSolution sol =
        core::CubisSolver(opt).solve({pin.ug.game, pin.bounds});
    std::printf("%12d %14d %14.6f\n", sections, sol.binary_steps,
                sol.ub - sol.lb);
  }

  std::printf(
      "\nShape check: (a) larger eta files amortize the O(m^3) factor\n"
      "(~2.5x from interval 1 to 64) until numerics push back; (b)/(c)\n"
      "presolve and warm starts are neutral on this shallow one-step probe\n"
      "and pay off on deeper search trees (full-solve timings in\n"
      "bench_runtime); (d) polish buys worst-case utility for\n"
      "milliseconds; (e) k-section trades total step evaluations for\n"
      "round count (wall-clock wins once steps run on parallel cores).\n");
  return 0;
}

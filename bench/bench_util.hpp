// Shared helpers for the experiment benches: seeded ensembles, small
// statistics, uniform table printing, and machine-readable result files.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "obs/metrics.hpp"

namespace cubisg::bench {

/// Mean of a sample.
inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Median of a sample (by copy; bench samples are tiny).
inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Sample standard deviation.
inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

/// "m +- s" with fixed width, for table cells.
inline std::string cell(const std::vector<double>& v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%8.3f+-%-6.3f", mean(v), stddev(v));
  return buf;
}

/// Prints a rule line of the given width.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// CPU model string from /proc/cpuinfo ("unknown" elsewhere), sanitized
/// for direct embedding in a JSON string literal.  Recorded in every
/// BENCH_*.json so gate results are interpretable off the box they ran
/// on (a skipped 4-worker gate on a 1-core runner, say).
inline std::string cpu_model_name() {
  std::string model = "unknown";
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f != nullptr) {
    char line[512];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (colon == nullptr) break;
      ++colon;
      while (*colon == ' ' || *colon == '\t') ++colon;
      model = colon;
      while (!model.empty() &&
             (model.back() == '\n' || model.back() == '\r')) {
        model.pop_back();
      }
      break;
    }
    std::fclose(f);
  }
  std::string safe;
  for (char c : model) {
    if (c == '"' || c == '\\') safe += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) safe += c;
  }
  return safe;
}

/// Writes BENCH_<name>.json next to the binary: the bench's own results
/// (a pre-serialized JSON fragment) plus the full metrics-registry
/// snapshot, so perf counters ride along with every recorded run.
inline bool write_bench_json(const std::string& name,
                             const std::string& results_json) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  // Provenance: the same sha/compiler identity --version prints, so a
  // recorded perf trajectory is attributable to the commit that ran it.
  std::string out = "{\"bench\":\"";
  out += name;
  out += "\",\"git_sha\":\"";
  out += buildinfo::kGitSha;
  out += "\",\"compiler\":\"";
  out += buildinfo::kCompiler;
  out += "\",\"results\":";
  out += results_json.empty() ? "{}" : results_json;
  out += ",\"telemetry\":";
  out += obs::Registry::global().snapshot().to_json();
  out += "}\n";
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace cubisg::bench

// Shared helpers for the experiment benches: seeded ensembles, small
// statistics, and uniform table printing.
#pragma once

#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

namespace cubisg::bench {

/// Mean of a sample.
inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Sample standard deviation.
inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

/// "m +- s" with fixed width, for table cells.
inline std::string cell(const std::vector<double>& v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%8.3f+-%-6.3f", mean(v), stddev(v));
  return buf;
}

/// Prints a rule line of the given width.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace cubisg::bench

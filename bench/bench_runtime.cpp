// Experiments R1/R2 — runtime scaling.
//
// R1: wall-clock per solve vs number of targets, for CUBIS (DP and MILP
//     step backends), the midpoint baseline, maximin, and the multi-start
//     non-convex solver (the paper's "Fmincon" comparator).  The paper's
//     claim: the binary-search + MILP pipeline is far faster than generic
//     non-convex optimization; our DP ablation is faster still.
// R2: per-binary-search-step cost vs K for the DP and MILP backends
//     (ablation of the paper's CPLEX step).
// R3: telemetry overhead — the metrics layer must stay below 1% of the
//     wall clock of a large (T=500) solve, with runtime collection on
//     vs off (obs::set_enabled).  The live HTTP exporter is started (but
//     never scraped) for the collection-on side, so the budget also
//     covers an idle acceptor thread sharing the process.
// R5: engine throughput — solves/sec through the concurrent SolveEngine
//     at 1/2/4 workers on the T=200 instance (informational here; the
//     scaling gate lives in bench_engine).
// R6: sampling-profiler overhead — with the 99 Hz SIGPROF sampler armed
//     on the solving thread, the same T=500 solve must stay within the
//     1% budget vs sampler-off, same paired design as R3.  Skipped (with
//     gate_skipped_reason recorded) when the profiler is compiled out.
// R7: shadow-audit overhead — 1-in-8 background re-verification of the
//     T=500 engine sweep must stay within a 2% end-to-end budget vs the
//     same sweep unaudited (and every audit of a clean solve must pass).
//     Skipped on single-hardware-thread boxes, where the audit worker
//     has no spare core to hide on.
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/shadow.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cubis.hpp"
#include "core/gradient.hpp"
#include "core/maximin.hpp"
#include "core/pasaq.hpp"
#include "engine/engine.hpp"
#include "games/generators.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "bench_util.hpp"

namespace {
using namespace cubisg;

struct Inst {
  games::UncertainGame ug;
  behavior::SuqrIntervalBounds bounds;
};

Inst make(std::uint64_t seed, std::size_t t, double r, double width) {
  Rng rng(seed);
  auto ug = games::random_uncertain_game(rng, t, r, width);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      ug.attacker_intervals);
  return {std::move(ug), std::move(bounds)};
}

}  // namespace

int main() {
  const int kReps = 3;
  std::printf("=== R1/R2: runtime scaling ===\n\n");
  std::printf("-- R1: milliseconds per solve vs targets (R = 0.3T) --\n");
  std::printf("%8s %12s %12s %12s %12s %12s\n", "targets", "cubis-dp",
              "cubis-milp", "midpoint", "maximin", "gradient");
  for (std::size_t t : {2u, 4u, 8u, 16u, 32u, 64u}) {
    std::vector<double> dp_ms, milp_ms, mid_ms, mm_ms, grad_ms;
    for (int rep = 0; rep < kReps; ++rep) {
      Inst in = make(7000 + 13 * t + rep, t,
                     std::max(1.0, 0.3 * static_cast<double>(t)), 1.5);
      core::SolveContext ctx{in.ug.game, in.bounds};
      {
        core::CubisOptions opt;
        opt.segments = 10;
        dp_ms.push_back(core::CubisSolver(opt).solve(ctx).wall_seconds * 1e3);
      }
      if (t <= 8) {  // the paper MILP path; node LPs grow cubically
        core::CubisOptions opt;
        opt.segments = 5;
        opt.backend = core::StepBackend::kMilp;
        milp_ms.push_back(core::CubisSolver(opt).solve(ctx).wall_seconds *
                          1e3);
      }
      mid_ms.push_back(core::PasaqSolver().solve(ctx).wall_seconds * 1e3);
      mm_ms.push_back(core::MaximinSolver().solve(ctx).wall_seconds * 1e3);
      {
        core::GradientOptions gopt;
        gopt.num_starts = 4;
        grad_ms.push_back(core::GradientSolver(gopt).solve(ctx).wall_seconds *
                          1e3);
      }
    }
    std::printf("%8zu %12.2f", t, bench::mean(dp_ms));
    if (!milp_ms.empty()) {
      std::printf(" %12.1f", bench::mean(milp_ms));
    } else {
      std::printf(" %12s", "-");
    }
    std::printf(" %12.2f %12.2f %12.1f\n", bench::mean(mid_ms),
                bench::mean(mm_ms), bench::mean(grad_ms));
  }

  std::printf("\n-- R2: milliseconds per binary-search step vs K (T=4) --\n");
  std::printf("%8s %14s %14s %14s\n", "K", "dp-step", "milp-step",
              "milp-nodes");
  for (std::size_t k : {2u, 5u, 10u, 20u, 40u}) {
    Inst in = make(8800 + k, 4, 2.0, 1.5);
    core::SolveContext ctx{in.ug.game, in.bounds};
    const double c = 0.5 * (in.ug.game.min_defender_penalty() +
                            in.ug.game.max_defender_reward());
    core::CubisOptions dp_opt;
    dp_opt.segments = k;
    core::CubisOptions milp_opt = dp_opt;
    milp_opt.backend = core::StepBackend::kMilp;

    Timer t_dp;
    for (int rep = 0; rep < 20; ++rep) core::cubis_step(ctx, c, dp_opt);
    const double dp_step = t_dp.millis() / 20.0;

    Timer t_milp;
    core::StepResult ms = core::cubis_step(ctx, c, milp_opt);
    const double milp_step = t_milp.millis();

    std::printf("%8zu %14.3f %14.1f %14lld\n", k, dp_step, milp_step,
                static_cast<long long>(ms.milp_nodes));
  }

  std::printf("\n-- R3: telemetry overhead on a T=500 SUQR solve --\n");
  // Paired design: each rep times one collection-on and one
  // collection-off solve of the same instance back to back, and the gate
  // uses the median of the per-pair differences — drift (thermal, cache,
  // a neighbour saturating the cores) moves both sides of a pair
  // together and cancels in the difference, where median(on)-median(off)
  // would keep it.  The within-pair order flips every rep so even
  // monotone drift across a pair cannot bias one side.  12 reps: the
  // warm-started rounds (reuse_rounds, R4 below) cut the solve to ~1/3
  // of its old wall clock, so the 1% budget is a few hundred µs and the
  // median needs the extra pairs to sit above scheduler noise.
  const int kOverheadReps = 12;
  std::vector<double> on_ms, off_ms, diff_ms;
  // Enabled-but-unscraped exporter: the 1% budget must hold for the
  // realistic deployment (endpoint up, Prometheus not yet pointed at it).
  obs::HttpExporter exporter;
  obs::HttpExporterOptions exp_opt;
  exp_opt.port = 0;  // ephemeral; nothing will connect anyway
  const bool exporter_enabled = exporter.start(exp_opt);
  if (exporter_enabled) {
    std::printf("(idle http exporter on port %d for the duration)\n",
                exporter.port());
  }
  {
    Inst in = make(424242, 500, 150.0, 1.5);
    core::SolveContext ctx{in.ug.game, in.bounds};
    core::CubisOptions opt;
    opt.segments = 10;
    opt.epsilon = 1e-3;
    const core::CubisSolver solver(opt);
    solver.solve(ctx);  // warm-up (tables, allocator, registry names)
    auto timed_solve = [&](bool enabled) {
      obs::set_enabled(enabled);
      Timer t;
      solver.solve(ctx);
      return t.millis();
    };
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      double off, on;
      if (rep % 2 == 0) {
        off = timed_solve(false);
        on = timed_solve(true);
      } else {
        on = timed_solve(true);
        off = timed_solve(false);
      }
      off_ms.push_back(off);
      on_ms.push_back(on);
      diff_ms.push_back(on - off);
    }
    obs::set_enabled(true);
  }
  exporter.stop();
  const double med_on = bench::median(on_ms);
  const double med_off = bench::median(off_ms);
  const double overhead_pct =
      med_off > 0.0 ? bench::median(diff_ms) / med_off * 100.0 : 0.0;
  std::printf("collection on:  %10.2f ms (median of %d)\n", med_on,
              kOverheadReps);
  std::printf("collection off: %10.2f ms (median of %d)\n", med_off,
              kOverheadReps);
  std::printf("overhead:       %+9.3f %%  (budget: < 1%%)\n", overhead_pct);
  const bool overhead_ok = overhead_pct < 1.0;
  if (!overhead_ok) {
    std::fprintf(stderr,
                 "R3 FAILED: telemetry overhead %.3f%% exceeds the 1%% "
                 "budget\n", overhead_pct);
  }

  std::printf("\n-- R4: warm-started rounds on the T=500 solve --\n");
  // Same workload as R3.  Alternate reuse_rounds on/off so drift hits both
  // sides equally; gate on medians.  Two acceptance gates:
  //   * >= 10x fewer piecewise functions built per solve (the affine
  //     breakpoint cache replaces every per-round construction), and
  //   * >= 25% lower wall clock (the flat DP + allocation-free rounds).
  const int kReuseReps = 7;
  std::vector<double> warm_ms, cold_ms;
  std::int64_t warm_built = 0, cold_built = 0;
  {
    Inst in = make(424242, 500, 150.0, 1.5);
    core::SolveContext ctx{in.ug.game, in.bounds};
    core::CubisOptions opt;
    opt.segments = 10;
    opt.epsilon = 1e-3;
    core::CubisOptions cold_opt = opt;
    cold_opt.reuse_rounds = false;
    const core::CubisSolver warm_solver(opt);
    const core::CubisSolver cold_solver(cold_opt);
    warm_solver.solve(ctx);  // warm-up
    for (int rep = 0; rep < kReuseReps; ++rep) {
      Timer t_cold;
      const auto cold_sol = cold_solver.solve(ctx);
      cold_ms.push_back(t_cold.millis());
      cold_built = cold_sol.telemetry.counter("piecewise.functions_built");
      Timer t_warm;
      const auto warm_sol = warm_solver.solve(ctx);
      warm_ms.push_back(t_warm.millis());
      warm_built = warm_sol.telemetry.counter("piecewise.functions_built");
    }
  }
  const double med_warm = bench::median(warm_ms);
  const double med_cold = bench::median(cold_ms);
  const double reduction_pct =
      med_cold > 0.0 ? (med_cold - med_warm) / med_cold * 100.0 : 0.0;
  std::printf("reuse off: %10.2f ms (median of %d), %lld functions built\n",
              med_cold, kReuseReps, static_cast<long long>(cold_built));
  std::printf("reuse on:  %10.2f ms (median of %d), %lld functions built\n",
              med_warm, kReuseReps, static_cast<long long>(warm_built));
  std::printf("wall-time reduction: %6.1f %%  (gate: >= 25%%)\n",
              reduction_pct);
  bool r4_ok = reduction_pct >= 25.0;
#if CUBISG_OBS_ENABLED
  // functions_built gate only means something when collection is compiled
  // in; warm solves build ~none, so warm*10 <= cold also covers the
  // divide-by-zero corner.
  if (warm_built * 10 > cold_built) {
    std::fprintf(stderr,
                 "R4 FAILED: functions built per solve only dropped "
                 "%lld -> %lld (gate: >= 10x)\n",
                 static_cast<long long>(cold_built),
                 static_cast<long long>(warm_built));
    r4_ok = false;
  }
#endif
  if (reduction_pct < 25.0) {
    std::fprintf(stderr,
                 "R4 FAILED: wall-time reduction %.1f%% below the 25%% "
                 "gate\n", reduction_pct);
  }

  std::printf("\n-- R5: engine throughput on a T=200 solve --\n");
  // Informational (no gate here; bench_engine owns the scaling gate):
  // solves/sec pushing the same instance through the concurrent engine at
  // 1/2/4 workers, one shared solver, per-worker pinned workspaces.
  const int kEngineJobs = 24;
  const std::vector<std::size_t> kWorkerCounts = {1, 2, 4};
  std::vector<double> engine_sps;
  {
    Rng rng(1002);
    auto ug = std::make_shared<games::UncertainGame>(
        games::random_uncertain_game(rng, 200, 60.0, 1.5));
    auto game_sp =
        std::shared_ptr<const games::SecurityGame>(ug, &ug->game);
    auto bounds_sp = std::make_shared<behavior::SuqrIntervalBounds>(
        behavior::SuqrWeightIntervals{}, ug->attacker_intervals);
    core::CubisOptions opt;
    opt.segments = 10;
    opt.epsilon = 1e-3;
    auto solver = std::make_shared<core::CubisSolver>(opt);
    std::printf("(%u hardware threads)\n",
                std::thread::hardware_concurrency());
    std::printf("%8s %14s %10s\n", "workers", "solves/sec", "speedup");
    for (std::size_t w : kWorkerCounts) {
      engine::EngineOptions eopt;
      eopt.workers = w;
      eopt.queue_capacity = static_cast<std::size_t>(kEngineJobs);
      engine::SolveEngine eng(solver, eopt);
      eng.submit({game_sp, bounds_sp}).get();  // warm the worker pool
      Timer t;
      std::vector<std::future<engine::JobOutcome>> futures;
      for (int j = 0; j < kEngineJobs; ++j) {
        futures.push_back(eng.submit({game_sp, bounds_sp}));
      }
      for (auto& f : futures) f.get();
      const double sps = kEngineJobs / t.seconds();
      engine_sps.push_back(sps);
      std::printf("%8zu %14.2f %9.2fx\n", w, sps, sps / engine_sps.front());
    }
  }

  std::printf("\n-- R6: 99 Hz profiler overhead on the T=500 solve --\n");
  // Same paired on/off design as R3, but the toggled subsystem is the
  // SIGPROF sampling profiler on the solving thread.  At 99 Hz a ~100 ms
  // solve takes ~10 signal deliveries + frame-pointer walks; the gate
  // checks that stays under 1% of the solve's wall clock.  Start/stop
  // (timer_create/timer_delete) happen outside the timed region — the
  // budget covers steady-state sampling, which is what a long-lived
  // --profile-out or /profilez session pays.
  const int kProfReps = 12;
  bool r6_ok = true;
  std::string r6_json;
  if (!obs::profiler_available()) {
    std::printf("skipped: profiler unavailable in this build\n");
    r6_json =
        "{\"gate_skipped_reason\":\"profiler_unavailable\",\"ok\":true}";
  } else {
    std::vector<double> prof_on_ms, prof_off_ms, prof_diff_ms;
    Inst in = make(424242, 500, 150.0, 1.5);
    core::SolveContext ctx{in.ug.game, in.bounds};
    core::CubisOptions opt;
    opt.segments = 10;
    opt.epsilon = 1e-3;
    const core::CubisSolver solver(opt);
    obs::profiler_register_this_thread();
    solver.solve(ctx);  // warm-up
    auto timed_solve = [&](bool profiled) {
      if (profiled) obs::profiler_start({});
      Timer t;
      solver.solve(ctx);
      const double ms = t.millis();
      if (profiled) obs::profiler_stop();
      return ms;
    };
    for (int rep = 0; rep < kProfReps; ++rep) {
      double off, on;
      if (rep % 2 == 0) {
        off = timed_solve(false);
        on = timed_solve(true);
      } else {
        on = timed_solve(true);
        off = timed_solve(false);
      }
      prof_off_ms.push_back(off);
      prof_on_ms.push_back(on);
      prof_diff_ms.push_back(on - off);
    }
    const long long samples =
        static_cast<long long>(obs::profiler_samples_total());
    obs::profiler_unregister_this_thread();
    obs::profiler_clear();
    const double med_prof_on = bench::median(prof_on_ms);
    const double med_prof_off = bench::median(prof_off_ms);
    const double prof_overhead_pct =
        med_prof_off > 0.0
            ? bench::median(prof_diff_ms) / med_prof_off * 100.0
            : 0.0;
    std::printf("sampler on:  %10.2f ms (median of %d, %lld samples)\n",
                med_prof_on, kProfReps, samples);
    std::printf("sampler off: %10.2f ms (median of %d)\n", med_prof_off,
                kProfReps);
    std::printf("overhead:    %+9.3f %%  (budget: < 1%%)\n",
                prof_overhead_pct);
    r6_ok = prof_overhead_pct < 1.0;
    if (!r6_ok) {
      std::fprintf(stderr,
                   "R6 FAILED: profiler overhead %.3f%% exceeds the 1%% "
                   "budget\n", prof_overhead_pct);
    }
    char r6_buf[256];
    std::snprintf(r6_buf, sizeof r6_buf,
                  "{\"targets\":500,\"reps\":%d,\"hz\":99,"
                  "\"on_ms\":%.3f,\"off_ms\":%.3f,\"overhead_pct\":%.4f,"
                  "\"budget_pct\":1.0,\"samples\":%lld,"
                  "\"gate_skipped_reason\":null,\"ok\":%s}",
                  kProfReps, med_prof_on, med_prof_off, prof_overhead_pct,
                  samples, r6_ok ? "true" : "false");
    r6_json = r6_buf;
  }

  std::printf("\n-- R7: 1-in-8 shadow-audit overhead on the T=500 engine "
              "sweep --\n");
  // End-to-end paired design: the same batch of jobs runs through a
  // 2-worker engine with and without a ShadowAuditor hooked into the
  // completion callback (sample_every=8, the production default), and the
  // audited side's timing includes draining the audit queue — the full
  // price of owning the feature.  Order alternates per rep like R3/R6.
  // The budget is 2% (vs 1% for passive telemetry: the auditor copies one
  // sampled solution per sweep and re-derives its worst case, real work
  // that telemetry counters never do).  Any audit failure on these clean
  // solves fails the gate outright — that would be a verifier bug.
  const int kAuditReps = 5;
  const int kAuditJobs = 8;
  bool r7_ok = true;
  std::string r7_json;
  if (std::thread::hardware_concurrency() < 2) {
    std::printf("skipped: single hardware thread (the SCHED_IDLE audit "
                "worker would share the solve core)\n");
    r7_json =
        "{\"gate_skipped_reason\":\"single_hardware_thread\",\"ok\":true}";
  } else {
    Rng rng(2041);
    auto ug = std::make_shared<games::UncertainGame>(
        games::random_uncertain_game(rng, 500, 150.0, 1.5));
    auto game_sp =
        std::shared_ptr<const games::SecurityGame>(ug, &ug->game);
    auto bounds_sp = std::make_shared<behavior::SuqrIntervalBounds>(
        behavior::SuqrWeightIntervals{}, ug->attacker_intervals);
    core::CubisOptions opt;
    opt.segments = 10;
    opt.epsilon = 1e-3;
    auto solver = std::make_shared<core::CubisSolver>(opt);
    std::uint64_t audited_total = 0, audit_failures = 0;
    auto timed_sweep = [&](bool with_audit) {
      engine::EngineOptions eopt;
      eopt.workers = 2;
      eopt.queue_capacity = static_cast<std::size_t>(kAuditJobs);
      std::unique_ptr<audit::ShadowAuditor> auditor;
      if (with_audit) {
        audit::ShadowAuditor::Options aopt;
        aopt.sample_every = 8;
        auditor = std::make_unique<audit::ShadowAuditor>(aopt);
        auditor->start();
        audit::ShadowAuditor* raw = auditor.get();
        eopt.on_outcome = [raw](const engine::SolveJob& job,
                                const engine::JobOutcome& out) {
          if (out.status != engine::JobStatus::kCompleted) return;
          raw->observe(job.game, job.bounds, out.solution, out.id, out.tag);
        };
      }
      engine::SolveEngine eng(solver, eopt);
      eng.submit({game_sp, bounds_sp}).get();  // warm the worker pool
      Timer t;
      std::vector<std::future<engine::JobOutcome>> futures;
      for (int j = 0; j < kAuditJobs; ++j) {
        futures.push_back(eng.submit({game_sp, bounds_sp}));
      }
      for (auto& f : futures) f.get();
      if (auditor != nullptr) auditor->stop();  // include the audit drain
      const double ms = t.millis();
      if (auditor != nullptr) {
        audited_total += auditor->audited();
        audit_failures += auditor->failures();
      }
      eng.shutdown();
      return ms;
    };
    std::vector<double> audit_on_ms, audit_off_ms, audit_diff_ms;
    for (int rep = 0; rep < kAuditReps; ++rep) {
      double off, on;
      if (rep % 2 == 0) {
        off = timed_sweep(false);
        on = timed_sweep(true);
      } else {
        on = timed_sweep(true);
        off = timed_sweep(false);
      }
      audit_off_ms.push_back(off);
      audit_on_ms.push_back(on);
      audit_diff_ms.push_back(on - off);
    }
    const double med_audit_on = bench::median(audit_on_ms);
    const double med_audit_off = bench::median(audit_off_ms);
    const double audit_overhead_pct =
        med_audit_off > 0.0
            ? bench::median(audit_diff_ms) / med_audit_off * 100.0
            : 0.0;
    std::printf("audit on:  %10.2f ms/sweep (median of %d, %llu audits)\n",
                med_audit_on, kAuditReps,
                static_cast<unsigned long long>(audited_total));
    std::printf("audit off: %10.2f ms/sweep (median of %d)\n",
                med_audit_off, kAuditReps);
    std::printf("overhead:  %+9.3f %%  (budget: < 2%%)\n",
                audit_overhead_pct);
    r7_ok = audit_overhead_pct < 2.0;
    if (!r7_ok) {
      std::fprintf(stderr,
                   "R7 FAILED: shadow-audit overhead %.3f%% exceeds the "
                   "2%% budget\n", audit_overhead_pct);
    }
    if (audit_failures != 0) {
      std::fprintf(stderr,
                   "R7 FAILED: %llu clean solves failed their shadow "
                   "audit\n",
                   static_cast<unsigned long long>(audit_failures));
      r7_ok = false;
    }
    char r7_buf[320];
    std::snprintf(r7_buf, sizeof r7_buf,
                  "{\"targets\":500,\"jobs\":%d,\"reps\":%d,"
                  "\"sample_every\":8,\"on_ms\":%.3f,\"off_ms\":%.3f,"
                  "\"overhead_pct\":%.4f,\"budget_pct\":2.0,"
                  "\"audited\":%llu,\"audit_failures\":%llu,"
                  "\"gate_skipped_reason\":null,\"ok\":%s}",
                  kAuditJobs, kAuditReps, med_audit_on, med_audit_off,
                  audit_overhead_pct,
                  static_cast<unsigned long long>(audited_total),
                  static_cast<unsigned long long>(audit_failures),
                  r7_ok ? "true" : "false");
    r7_json = r7_buf;
  }

  char results[3072];
  std::snprintf(results, sizeof results,
                "{\"hardware_threads\":%u,\"cpu_model\":\"%s\","
                "\"r3_overhead\":{\"targets\":500,\"reps\":%d,"
                "\"on_ms\":%.3f,\"off_ms\":%.3f,\"overhead_pct\":%.4f,"
                "\"budget_pct\":1.0,\"exporter_enabled\":%s,\"ok\":%s},"
                "\"r4_reuse\":{\"targets\":500,\"reps\":%d,"
                "\"warm_ms\":%.3f,\"cold_ms\":%.3f,\"reduction_pct\":%.2f,"
                "\"functions_built_warm\":%lld,"
                "\"functions_built_cold\":%lld,\"ok\":%s},"
                "\"r5_engine\":{\"targets\":200,\"jobs\":%d,"
                "\"hardware_threads\":%u,\"workers\":[1,2,4],"
                "\"solves_per_sec\":[%.2f,%.2f,%.2f],"
                "\"speedup_vs_1\":[1.00,%.2f,%.2f]},"
                "\"r6_profiler\":%s,\"r7_audit\":%s}",
                std::thread::hardware_concurrency(),
                bench::cpu_model_name().c_str(),
                kOverheadReps, med_on, med_off, overhead_pct,
                exporter_enabled ? "true" : "false",
                overhead_ok ? "true" : "false", kReuseReps, med_warm,
                med_cold, reduction_pct, static_cast<long long>(warm_built),
                static_cast<long long>(cold_built),
                r4_ok ? "true" : "false", kEngineJobs,
                std::thread::hardware_concurrency(), engine_sps[0],
                engine_sps[1], engine_sps[2],
                engine_sps[1] / engine_sps[0],
                engine_sps[2] / engine_sps[0], r6_json.c_str(),
                r7_json.c_str());
  bench::write_bench_json("runtime", results);

  std::printf(
      "\nShape check (paper): the structured binary-search pipeline beats\n"
      "the generic multi-start non-convex solver by orders of magnitude and\n"
      "scales mildly in T.  Ablation: the separable-DP step replaces the\n"
      "MILP step at ~1000x lower cost with the same O(1/K) guarantee.\n");
  return (overhead_ok && r4_ok && r6_ok && r7_ok) ? 0 : 1;
}

// Experiment E5 — concurrent engine throughput.
//
// Pushes a fixed batch of identical T=200 CUBIS solves through the
// SolveEngine at 1/2/4/8 workers (one shared solver instance, one pinned
// workspace per worker) and reports solves/sec plus speedup over the
// single-worker run.  Correctness is not re-checked here (test_engine owns
// the bitwise-identity guarantee); this bench owns the scaling gate:
//
//   gate: >= 3x solves/sec at 4 workers vs 1 worker, enforced only when
//   the machine actually has >= 4 hardware threads — on smaller hosts the
//   numbers are recorded but informational.
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cubis.hpp"
#include "engine/engine.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

namespace {
using namespace cubisg;
}  // namespace

int main() {
  std::printf("=== E5: engine throughput scaling ===\n\n");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", hw);

  // The T=200 fixture recipe (same instance family as the golden
  // t200_k10 fixture and the R3/R4 workload's smaller sibling).
  Rng rng(1002);
  auto ug = std::make_shared<games::UncertainGame>(
      games::random_uncertain_game(rng, 200, 60.0, 1.5));
  auto game_sp = std::shared_ptr<const games::SecurityGame>(ug, &ug->game);
  auto bounds_sp = std::make_shared<behavior::SuqrIntervalBounds>(
      behavior::SuqrWeightIntervals{}, ug->attacker_intervals);
  core::CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  const int kJobs = 32;
  const std::vector<std::size_t> kWorkerCounts = {1, 2, 4, 8};
  std::vector<double> sps;
  std::printf("\n%8s %14s %10s   (%d jobs, T=200, K=10)\n", "workers",
              "solves/sec", "speedup", kJobs);
  for (std::size_t w : kWorkerCounts) {
    engine::EngineOptions eopt;
    eopt.workers = w;
    eopt.queue_capacity = static_cast<std::size_t>(kJobs);
    engine::SolveEngine eng(solver, eopt);
    // Warm every worker's pinned workspace (first solve per worker pays
    // the allocations the remaining jobs reuse).
    {
      std::vector<std::future<engine::JobOutcome>> warm;
      for (std::size_t j = 0; j < w; ++j) {
        warm.push_back(eng.submit({game_sp, bounds_sp}));
      }
      for (auto& f : warm) f.get();
    }
    Timer t;
    std::vector<std::future<engine::JobOutcome>> futures;
    for (int j = 0; j < kJobs; ++j) {
      futures.push_back(eng.submit({game_sp, bounds_sp}));
    }
    long failed = 0;
    for (auto& f : futures) {
      if (f.get().status != engine::JobStatus::kCompleted) ++failed;
    }
    const double solves_per_sec = kJobs / t.seconds();
    sps.push_back(solves_per_sec);
    std::printf("%8zu %14.2f %9.2fx", w, solves_per_sec,
                solves_per_sec / sps.front());
    if (failed > 0) std::printf("  (%ld FAILED)", failed);
    std::printf("\n");
  }

  const double speedup4 = sps[2] / sps[0];
  const bool gate_applies = hw >= 4;
  bool ok = true;
  if (gate_applies) {
    ok = speedup4 >= 3.0;
    std::printf("\n4-worker speedup: %.2fx  (gate: >= 3x)\n", speedup4);
    if (!ok) {
      std::fprintf(stderr,
                   "E5 FAILED: 4-worker speedup %.2fx below the 3x gate\n",
                   speedup4);
    }
  } else {
    std::printf("\n4-worker speedup: %.2fx  (gate skipped: only %u "
                "hardware threads)\n", speedup4, hw);
  }

  // gate_skipped_reason is null when the gate was enforced; otherwise it
  // names why the recorded numbers are informational only.
  const std::string skipped_reason =
      gate_applies ? "null" : "\"hardware_threads<4\"";
  char results[1024];
  std::snprintf(results, sizeof results,
                "{\"targets\":200,\"jobs\":%d,\"hardware_threads\":%u,"
                "\"cpu_model\":\"%s\",\"workers\":[1,2,4,8],"
                "\"solves_per_sec\":[%.2f,%.2f,%.2f,%.2f],"
                "\"speedup_vs_1\":[1.00,%.2f,%.2f,%.2f],"
                "\"gate_4x_workers_min_3x\":{\"applies\":%s,"
                "\"gate_skipped_reason\":%s,"
                "\"speedup\":%.2f,\"ok\":%s}}",
                kJobs, hw, bench::cpu_model_name().c_str(), sps[0], sps[1],
                sps[2], sps[3], sps[1] / sps[0], sps[2] / sps[0],
                sps[3] / sps[0], gate_applies ? "true" : "false",
                skipped_reason.c_str(), speedup4, ok ? "true" : "false");
  bench::write_bench_json("engine", results);

  std::printf(
      "\nShape check: one immutable solver + per-worker workspaces should\n"
      "scale near-linearly until workers exceed cores; the queue then\n"
      "holds throughput flat instead of degrading it.\n");
  return ok ? 0 : 1;
}

// Experiment E5 — concurrent engine throughput.
//
// Pushes a fixed batch of identical T=200 CUBIS solves through the
// SolveEngine at 1/2/4/8 workers (one shared solver instance, one pinned
// workspace per worker) and reports solves/sec plus speedup over the
// single-worker run.  Correctness is not re-checked here (test_engine owns
// the bitwise-identity guarantee); this bench owns two gates:
//
//   scaling gate: >= 3x solves/sec at 4 workers vs 1 worker, enforced
//   only when the machine actually has >= 4 hardware threads — on
//   smaller hosts the numbers are recorded but informational.
//
//   isolation gate: process-isolated workers (fork + wire protocol +
//   supervisor) may cost at most 10% solves/sec vs thread mode at 4
//   workers.  Skipped (with a recorded reason) on hosts with < 4
//   hardware threads or builds without process isolation.
//
//   R9 cache gate: a repeat mix (4 scenario variants cycled through the
//   batch) with the exact-hit cross-solve cache must run >= 2x the
//   solves/sec of the same mix solved cold.  Skipped (recorded) on
//   single-core hosts.
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "behavior/bounds.hpp"
#include "behavior/scenario.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cubis.hpp"
#include "engine/engine.hpp"
#include "engine/process_pool.hpp"
#include "games/generators.hpp"
#include "bench_util.hpp"

namespace {
using namespace cubisg;
}  // namespace

int main() {
  std::printf("=== E5: engine throughput scaling ===\n\n");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", hw);

  // The T=200 fixture recipe (same instance family as the golden
  // t200_k10 fixture and the R3/R4 workload's smaller sibling).
  Rng rng(1002);
  auto ug = std::make_shared<games::UncertainGame>(
      games::random_uncertain_game(rng, 200, 60.0, 1.5));
  auto game_sp = std::shared_ptr<const games::SecurityGame>(ug, &ug->game);
  auto bounds_sp = std::make_shared<behavior::SuqrIntervalBounds>(
      behavior::SuqrWeightIntervals{}, ug->attacker_intervals);
  // Text-form carrier for process-isolated runs (the worker child
  // re-reads the model from this).
  auto scn_sp = std::make_shared<behavior::Scenario>(behavior::Scenario{
      *ug, behavior::SuqrWeightIntervals{}, behavior::IntervalMode::kExactBox});
  core::CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  auto solver = std::make_shared<core::CubisSolver>(opt);

  const int kJobs = 32;

  // One timed batch: warm each worker's pinned state, then push kJobs
  // through and report solves/sec.
  const auto measure = [&](engine::EngineOptions eopt,
                           bool with_scenario) -> double {
    eopt.queue_capacity = static_cast<std::size_t>(kJobs);
    engine::SolveEngine eng(solver, eopt);
    const auto job = [&]() {
      engine::SolveJob j;
      j.game = game_sp;
      j.bounds = bounds_sp;
      if (with_scenario) j.scenario = scn_sp;
      return j;
    };
    {
      std::vector<std::future<engine::JobOutcome>> warm;
      for (std::size_t j = 0; j < eopt.workers; ++j) {
        warm.push_back(eng.submit(job()));
      }
      for (auto& f : warm) f.get();
    }
    Timer t;
    std::vector<std::future<engine::JobOutcome>> futures;
    for (int j = 0; j < kJobs; ++j) futures.push_back(eng.submit(job()));
    long failed = 0;
    for (auto& f : futures) {
      if (f.get().status != engine::JobStatus::kCompleted) ++failed;
    }
    const double sps = kJobs / t.seconds();
    if (failed > 0) std::printf("  (%ld FAILED)\n", failed);
    return sps;
  };

  const std::vector<std::size_t> kWorkerCounts = {1, 2, 4, 8};
  std::vector<double> sps;
  std::printf("\n%8s %14s %10s   (%d jobs, T=200, K=10)\n", "workers",
              "solves/sec", "speedup", kJobs);
  for (std::size_t w : kWorkerCounts) {
    engine::EngineOptions eopt;
    eopt.workers = w;
    sps.push_back(measure(eopt, /*with_scenario=*/false));
    std::printf("%8zu %14.2f %9.2fx\n", w, sps.back(),
                sps.back() / sps.front());
  }

  const double speedup4 = sps[2] / sps[0];
  const bool gate_applies = hw >= 4;
  bool ok = true;
  if (gate_applies) {
    ok = speedup4 >= 3.0;
    std::printf("\n4-worker speedup: %.2fx  (gate: >= 3x)\n", speedup4);
    if (!ok) {
      std::fprintf(stderr,
                   "E5 FAILED: 4-worker speedup %.2fx below the 3x gate\n",
                   speedup4);
    }
  } else {
    std::printf("\n4-worker speedup: %.2fx  (gate skipped: only %u "
                "hardware threads)\n", speedup4, hw);
  }

  // Process isolation at 4 workers: the fork/protocol/supervisor tax on
  // chunky solves must stay within 10% of thread mode.
  const bool iso_available = engine::process_isolation_available();
  double proc_sps = 0.0;
  double overhead = 0.0;
  bool iso_gate_applies = iso_available && hw >= 4;
  bool iso_ok = true;
  if (iso_available) {
    engine::EngineOptions eopt;
    eopt.workers = 4;
    eopt.isolation = engine::IsolationMode::kProcess;
    proc_sps = measure(eopt, /*with_scenario=*/true);
    overhead = (sps[2] - proc_sps) / sps[2];
    std::printf("\n%8s %14s   (isolation_mode=process, 4 workers)\n",
                "workers", "solves/sec");
    std::printf("%8d %14.2f   overhead vs threads: %+.1f%%\n", 4, proc_sps,
                overhead * 100.0);
    if (iso_gate_applies) {
      iso_ok = overhead <= 0.10;
      std::printf("isolation gate: overhead <= 10%% -> %s\n",
                  iso_ok ? "ok" : "FAILED");
      if (!iso_ok) {
        std::fprintf(stderr,
                     "E5 FAILED: process-isolation overhead %.1f%% above "
                     "the 10%% gate\n", overhead * 100.0);
      }
    } else {
      std::printf("isolation gate skipped: only %u hardware threads\n", hw);
    }
  } else {
    std::printf("\nprocess isolation unavailable on this build; "
                "isolation gate skipped\n");
  }

  // R9 — cross-solve cache on a repeat mix: 4 scenario variants (the base
  // instance plus three one-target perturbations) cycled through kJobs
  // submissions.  Cold solves every job; the exact cache serves every
  // repeat from the LRU after the first pass over the variants.
  struct MixInstance {
    std::shared_ptr<const behavior::Scenario> scenario;
    std::shared_ptr<const behavior::SuqrIntervalBounds> bounds;
    std::shared_ptr<const games::SecurityGame> game;
  };
  const auto wrap_scenario = [](behavior::Scenario s) {
    auto sp = std::make_shared<behavior::Scenario>(std::move(s));
    MixInstance mi;
    mi.scenario = sp;
    mi.bounds = std::make_shared<behavior::SuqrIntervalBounds>(
        sp->make_bounds());
    mi.game = std::shared_ptr<const games::SecurityGame>(sp, &sp->game.game);
    return mi;
  };
  std::vector<MixInstance> mix;
  mix.push_back(wrap_scenario(*scn_sp));
  for (std::size_t v = 1; v <= 3; ++v) {
    std::vector<games::TargetPayoffs> payoffs;
    for (std::size_t t = 0; t < ug->game.num_targets(); ++t) {
      payoffs.push_back(ug->game.target(t));
    }
    payoffs[v].attacker_reward += 0.25 * static_cast<double>(v);
    mix.push_back(wrap_scenario(behavior::Scenario{
        games::UncertainGame{
            games::SecurityGame(std::move(payoffs), ug->game.resources()),
            ug->attacker_intervals},
        behavior::SuqrWeightIntervals{},
        behavior::IntervalMode::kExactBox}));
  }
  const auto measure_mix = [&](engine::EngineOptions eopt) -> double {
    eopt.queue_capacity = static_cast<std::size_t>(kJobs);
    engine::SolveEngine eng(solver, eopt);
    Timer t;
    std::vector<std::future<engine::JobOutcome>> futures;
    for (int j = 0; j < kJobs; ++j) {
      const MixInstance& mi = mix[static_cast<std::size_t>(j) % mix.size()];
      engine::SolveJob job;
      job.game = mi.game;
      job.bounds = mi.bounds;
      job.scenario = mi.scenario;
      futures.push_back(eng.submit(std::move(job)));
    }
    long failed = 0;
    for (auto& f : futures) {
      if (f.get().status != engine::JobStatus::kCompleted) ++failed;
    }
    const double mix_sps = kJobs / t.seconds();
    if (failed > 0) std::printf("  (%ld FAILED)\n", failed);
    return mix_sps;
  };
  engine::EngineOptions mix_cold_opt;
  mix_cold_opt.workers = 2;
  const double mix_cold = measure_mix(mix_cold_opt);
  engine::EngineOptions mix_warm_opt;
  mix_warm_opt.workers = 2;
  mix_warm_opt.cache.mode = engine::CacheMode::kExact;
  mix_warm_opt.cache.entries = 8;
  mix_warm_opt.cache.solver_config = "bench-cubis-t200-k10";
  const double mix_warm = measure_mix(mix_warm_opt);
  const double warm_speedup = mix_warm / mix_cold;
  const bool r9_applies = hw >= 2;
  const bool r9_ok = !r9_applies || warm_speedup >= 2.0;
  std::printf("\nR9 repeat mix (4 variants, %d jobs, 2 workers):\n"
              "  cache=off   %10.2f solves/sec\n"
              "  cache=exact %10.2f solves/sec  (%.2fx)\n",
              kJobs, mix_cold, mix_warm, warm_speedup);
  if (r9_applies) {
    std::printf("R9 gate: warm >= 2x cold -> %s\n", r9_ok ? "ok" : "FAILED");
    if (!r9_ok) {
      std::fprintf(stderr,
                   "E5 FAILED: warm repeat-mix speedup %.2fx below the 2x "
                   "R9 gate\n", warm_speedup);
    }
  } else {
    std::printf("R9 gate skipped: only %u hardware threads\n", hw);
  }

  // Per-family throughput: the same engine recipe over one instance of
  // each coverage family, so BENCH_engine.json tracks how the polytope
  // (grouped budgets, reachability caps) moves solves/sec.  The family
  // instances match the main workload's scale (T=200, K=10).
  std::vector<std::pair<std::string, MixInstance>> families;
  families.emplace_back("simplex", wrap_scenario(*scn_sp));
  {
    Rng frng(2002);
    games::FamilyGame md =
        games::multi_defender_uncertain_game(frng, 8, 25, 7.5, 1.5);
    families.emplace_back(
        "multi-defender",
        wrap_scenario(behavior::Scenario{
            std::move(md.game), behavior::SuqrWeightIntervals{},
            behavior::IntervalMode::kExactBox, std::move(md.coverage)}));
    games::FamilyGame pg =
        games::patrol_graph_uncertain_game(frng, 20, 10, 3.0, 1.5);
    families.emplace_back(
        "patrol-graph",
        wrap_scenario(behavior::Scenario{
            std::move(pg.game), behavior::SuqrWeightIntervals{},
            behavior::IntervalMode::kExactBox, std::move(pg.coverage)}));
  }
  const int kFamilyJobs = 16;
  std::vector<double> family_sps;
  std::printf("\nper-family throughput (%d jobs, 2 workers):\n", kFamilyJobs);
  for (const auto& [family_name, mi] : families) {
    engine::EngineOptions eopt;
    eopt.workers = 2;
    eopt.queue_capacity = static_cast<std::size_t>(kFamilyJobs);
    engine::SolveEngine eng(solver, eopt);
    Timer t;
    std::vector<std::future<engine::JobOutcome>> futures;
    for (int j = 0; j < kFamilyJobs; ++j) {
      engine::SolveJob job;
      job.game = mi.game;
      job.bounds = mi.bounds;
      job.scenario = mi.scenario;
      futures.push_back(eng.submit(std::move(job)));
    }
    long failed = 0;
    for (auto& f : futures) {
      if (f.get().status != engine::JobStatus::kCompleted) ++failed;
    }
    family_sps.push_back(kFamilyJobs / t.seconds());
    std::printf("  %-16s %10.2f solves/sec%s\n", family_name.c_str(),
                family_sps.back(), failed > 0 ? "  (FAILED jobs)" : "");
  }

  // gate_skipped_reason is null when a gate was enforced; otherwise it
  // names why the recorded numbers are informational only.
  const std::string skipped_reason =
      gate_applies ? "null" : "\"hardware_threads<4\"";
  const std::string iso_skipped_reason =
      iso_gate_applies ? "null"
      : iso_available  ? "\"hardware_threads<4\""
                       : "\"process_isolation_unavailable\"";
  const std::string r9_skipped_reason =
      r9_applies ? "null" : "\"hardware_threads<2\"";
  char results[3072];
  std::snprintf(results, sizeof results,
                "{\"targets\":200,\"jobs\":%d,\"hardware_threads\":%u,"
                "\"cpu_model\":\"%s\",\"workers\":[1,2,4,8],"
                "\"game_family\":\"simplex\","
                "\"isolation_mode\":\"thread\",\"cache_mode\":\"off\","
                "\"solves_per_sec\":[%.2f,%.2f,%.2f,%.2f],"
                "\"speedup_vs_1\":[1.00,%.2f,%.2f,%.2f],"
                "\"gate_4x_workers_min_3x\":{\"applies\":%s,"
                "\"gate_skipped_reason\":%s,"
                "\"speedup\":%.2f,\"ok\":%s},"
                "\"process_isolation\":{\"available\":%s,"
                "\"workers\":4,\"isolation_mode\":\"process\","
                "\"solves_per_sec\":%.2f,\"overhead_vs_thread\":%.4f,"
                "\"gate_overhead_max_10pct\":{\"applies\":%s,"
                "\"gate_skipped_reason\":%s,\"ok\":%s}},"
                "\"cache_repeat_mix\":{\"variants\":4,\"workers\":2,"
                "\"cold_cache_mode\":\"off\",\"warm_cache_mode\":\"exact\","
                "\"cold_solves_per_sec\":%.2f,"
                "\"warm_solves_per_sec\":%.2f,\"warm_speedup\":%.2f,"
                "\"gate_warm_min_2x\":{\"applies\":%s,"
                "\"gate_skipped_reason\":%s,\"ok\":%s}},"
                "\"family_throughput\":[{\"game_family\":\"simplex\","
                "\"solves_per_sec\":%.2f},"
                "{\"game_family\":\"multi-defender\","
                "\"solves_per_sec\":%.2f},"
                "{\"game_family\":\"patrol-graph\","
                "\"solves_per_sec\":%.2f}]}",
                kJobs, hw, bench::cpu_model_name().c_str(), sps[0], sps[1],
                sps[2], sps[3], sps[1] / sps[0], sps[2] / sps[0],
                sps[3] / sps[0], gate_applies ? "true" : "false",
                skipped_reason.c_str(), speedup4, ok ? "true" : "false",
                iso_available ? "true" : "false", proc_sps, overhead,
                iso_gate_applies ? "true" : "false",
                iso_skipped_reason.c_str(), iso_ok ? "true" : "false",
                mix_cold, mix_warm, warm_speedup,
                r9_applies ? "true" : "false", r9_skipped_reason.c_str(),
                r9_ok ? "true" : "false", family_sps[0], family_sps[1],
                family_sps[2]);
  bench::write_bench_json("engine", results);

  std::printf(
      "\nShape check: one immutable solver + per-worker workspaces should\n"
      "scale near-linearly until workers exceed cores; the queue then\n"
      "holds throughput flat instead of degrading it.\n");
  return ok && iso_ok && r9_ok ? 0 : 1;
}

// cubisg — command-line front end for the library.
//
//   cubisg generate --targets N [--resources R] [--width W] [--seed S]
//                   [--zero-sum 0|1] [--family F] --out FILE
//   cubisg table1 --out FILE
//   cubisg solve FILE [--solver NAME] [--segments K] [--epsilon E]
//                [--polish N] [--types N]
//   cubisg compare FILE [--types N]
//   cubisg eval FILE --coverage x1,x2,...
//   cubisg patrol FILE [--solver NAME] [--days N] [--seed S]
//   cubisg serve FILE [--listen PORT] [--solves N] [--interval-ms M]
//                [--workers N]
//   cubisg batch DIR|MANIFEST [--workers N] [--solver NAME]
//
// Scenario files use the cubisg text format (behavior/scenario.hpp).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/shadow.hpp"
#include "audit/verify.hpp"
#include "behavior/attacker_sim.hpp"
#include "behavior/scenario.hpp"
#include "common/budget.hpp"
#include "common/build_info.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include <set>

#include "core/registry.hpp"
#include "core/worst_case.hpp"
#include "engine/engine.hpp"
#include "engine/journal.hpp"
#include "engine/process_pool.hpp"
#include "games/comb_sampling.hpp"
#include "games/generators.hpp"
#include "learning/data_io.hpp"
#include "learning/suqr_mle.hpp"
#include "obs/audit_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/solve_report.hpp"
#include "obs/trace.hpp"

namespace {

using namespace cubisg;

[[noreturn]] void usage(const char* why = nullptr) {
  if (why) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr,
               "usage:\n"
               "  cubisg generate --targets N [--resources R] [--width W]\n"
               "                  [--seed S] [--zero-sum 0|1] --out FILE\n"
               "                  [--family simplex|multi-defender|\n"
               "                   patrol-graph]\n"
               "                  multi-defender: [--defenders D] [--block T]\n"
               "                  [--budget B];  patrol-graph: [--locations L]\n"
               "                  [--slots S] [--per-slot B]\n"
               "  cubisg table1 --out FILE\n"
               "  cubisg solve FILE [--solver NAME] [--segments K]\n"
               "                [--epsilon E] [--polish N] [--types N]\n"
               "                [--sections S] [--deadline-ms MS]\n"
               "                [--max-nodes N]\n"
               "  cubisg verify FILE [--solver NAME] [solve flags]\n"
               "                (solve, then independently re-verify the\n"
               "                solution against its certificate)\n"
               "  cubisg compare FILE [--types N]\n"
               "  cubisg eval FILE --coverage x1,x2,...\n"
               "  cubisg patrol FILE [--solver NAME] [--days N] [--seed S]\n"
               "  cubisg simulate-data FILE --records N --out DATA\n"
               "                [--truth w1,w2,w3] [--seed S]\n"
               "  cubisg learn FILE --data DATA [--resamples N]\n"
               "                [--confidence C] [--solve 0|1]\n"
               "  cubisg report FILE [--out REPORT.md]\n"
               "  cubisg serve FILE [--solver NAME] [--solves N]\n"
               "                [--interval-ms M] [--workers N] [--queue N]\n"
               "                [--isolate 0|1] [--retries N]\n"
               "                [--cache MODE] [--cache-entries N]\n"
               "                (solve loop on the concurrent engine; keeps\n"
               "                the process alive for /metrics scraping)\n"
               "  cubisg batch DIR|MANIFEST [--solver NAME] [--workers N]\n"
               "                [--queue N] [--isolate 0|1] [--retries N]\n"
               "                [--journal FILE] [--resume 0|1]\n"
               "                [--cache MODE] [--cache-entries N]\n"
               "                (shard scenario files — *.scn\n"
               "                or *.txt in DIR, or one path per line in a\n"
               "                manifest — across engine workers; malformed\n"
               "                entries are skipped and counted, SIGINT\n"
               "                prints a partial summary and exits 2, and\n"
               "                --journal/--resume skip already-completed\n"
               "                jobs after a crash or interrupt)\n"
               "  cubisg --version     print build provenance (version, git\n"
               "                sha, compiler, obs/fault-injection flags)\n"
               "\nglobal flags (any command):\n"
               "  --metrics-out FILE   write the metrics registry as JSON\n"
               "  --trace-out FILE     record phase spans; write Chrome\n"
               "                       trace JSON (chrome://tracing)\n"
               "  --listen PORT        serve GET /metrics (Prometheus),\n"
               "                       /healthz, /solvez, /slowz and\n"
               "                       /profilez?seconds=N while the\n"
               "                       command runs (0 = ephemeral port)\n"
               "  --listen-host ADDR   bind address (default 127.0.0.1)\n"
               "  --profile-out FILE   sample every solver thread's wall\n"
               "                       clock (99 Hz default) and write\n"
               "                       collapsed flamegraph stacks\n"
               "  --profile-hz N       sampling frequency for --profile-out\n"
               "  --slow-solve-ms MS   arm the flight recorder: any solve\n"
               "                       taking >= MS deposits a forensic\n"
               "                       record (served at GET /slowz)\n"
               "  --slow-solve-out FILE  write the flight-recorder ring as\n"
               "                       JSON when the command exits\n"
               "  --audit-sample N     (serve/batch) shadow-audit every Nth\n"
               "                       completed solve on a low-priority\n"
               "                       worker; failures are served at GET\n"
               "                       /auditz and counted in\n"
               "                       audit.failures_total\n"
               "  --audit-out FILE     write the audit-failure ring as JSON\n"
               "                       when the command exits\n"
               "\nsolve budget (solve/patrol/serve; in serve mode the\n"
               "budget re-arms per request, acting as a watchdog):\n"
               "  --deadline-ms MS     wall-clock budget; on expiry the best\n"
               "                       incumbent + certified bracket return\n"
               "  --max-nodes N        cap total branch-and-bound nodes\n"
               "\ncrash containment (serve/batch):\n"
               "  --isolate 0|1        run each solve in a forked worker\n"
               "                       process: a crashing solve is retried\n"
               "                       on a respawned worker instead of\n"
               "                       taking the service down (POSIX +\n"
               "                       CUBISG_OBS=ON builds; degrades to\n"
               "                       threads with a warning elsewhere);\n"
               "                       live worker state at GET /workersz\n"
               "  --retries N          extra attempts per job on transient\n"
               "                       failures (numeric trouble, crashes);\n"
               "                       deterministic failures never retry\n"
               "  --max-crashes N      worker crashes one job may absorb\n"
               "                       before quarantine (default 2)\n"
               "  --journal FILE       (batch) append-only fsynced progress\n"
               "                       journal, one record per finished job\n"
               "  --resume 0|1         (batch) skip jobs the journal already\n"
               "                       records as completed\n"
               "\ncross-solve cache (serve/batch):\n"
               "  --cache MODE         off (default) | exact | transplant.\n"
               "                       exact: identical scenarios are served\n"
               "                       from an engine-level LRU, bitwise-\n"
               "                       identical to a fresh solve.  transplant\n"
               "                       additionally warm-starts near-miss\n"
               "                       solves from the nearest cached\n"
               "                       neighbor (adopt/repair/reject per\n"
               "                       target; never the simplex basis) —\n"
               "                       results stay bitwise-identical to a\n"
               "                       cold solve.  Live state at GET /cachez\n"
               "  --cache-entries N    LRU capacity in cached solutions\n"
               "                       (default 256)\n"
               "\nsolve exit codes:\n"
               "  0  optimal           solved to the requested epsilon\n"
               "  2  budget stop       deadline/cancel/cap hit; incumbent\n"
               "                       coverage and [lb, ub] still printed\n"
               "  3  infeasible        the model admits no strategy\n"
               "  4  numeric failure   retries exhausted; check the logs\n"
               "\nbatch exit codes:\n"
               "  0  every job solved  (resumed jobs count as solved)\n"
               "  1  some jobs failed, were skipped or were quarantined\n"
               "  2  interrupted       SIGINT/SIGTERM; journal flushed and\n"
               "                       partial summary printed — rerun with\n"
               "                       --resume to pick up where it stopped\n"
               "\nverify exit codes (in addition to the above):\n"
               "  5  audit failure     the independent verifier refuted the\n"
               "                       solution (bracket, feasibility or\n"
               "                       worst-case mismatch)\n"
               "  6  malformed certificate  the certificate is self-\n"
               "                       inconsistent or for the wrong model\n"
               "\nsolvers:");
  for (const std::string& n : core::solver_names()) {
    std::fprintf(stderr, " %s", n.c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

/// flag -> value map from argv after the subcommand (and optional file).
struct Args {
  std::string file;
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : it->second;
  }
  double get_d(const std::string& key, double dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  long get_i(const std::string& key, long dflt) const {
    auto it = flags.find(key);
    return it == flags.end() ? dflt
                             : std::strtol(it->second.c_str(), nullptr, 10);
  }
};

Args parse_args(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      args.flags[a.substr(2)] = argv[++i];
    } else if (args.file.empty()) {
      args.file = a;
    } else {
      usage(("unexpected argument " + a).c_str());
    }
  }
  return args;
}

behavior::Scenario load_or_die(const std::string& path) {
  if (path.empty()) usage("scenario file required");
  return behavior::load_scenario(path);
}

/// The scenario's coverage polytope as a SolveContext::space pointer:
/// null for the default simplex (the legacy, bitwise-pinned path), else
/// the scenario's own polytope.  The scenario outlives every solve here.
const games::CoverageSpace* space_of(const behavior::Scenario& scenario) {
  return scenario.coverage.is_default() ? nullptr : &scenario.coverage;
}

/// Scenario-independent part of the solver spec (everything but the
/// sampled population).  Used directly by `batch`, which shares one solver
/// across many scenarios.
core::SolverSpec base_spec_from(const Args& args) {
  core::SolverSpec spec;
  spec.name = args.get("solver", "cubis");
  spec.segments = static_cast<std::size_t>(args.get_i("segments", 20));
  spec.epsilon = args.get_d("epsilon", 1e-3);
  spec.polish_iterations = static_cast<int>(args.get_i("polish", 0));
  spec.parallel_sections = static_cast<int>(args.get_i("sections", 1));
  spec.seed = static_cast<std::uint64_t>(args.get_i("seed", 0x5EED));
  return spec;
}

core::SolverSpec spec_from(const Args& args,
                           const behavior::Scenario& scenario) {
  core::SolverSpec spec = base_spec_from(args);
  if (spec.name == "robust-types" || spec.name == "bayesian") {
    Rng rng(spec.seed);
    spec.population = std::make_shared<behavior::SampledSuqrPopulation>(
        scenario.weights, scenario.game.attacker_intervals,
        static_cast<std::size_t>(args.get_i("types", 100)), rng);
  }
  return spec;
}

void print_solution(const behavior::Scenario& scenario,
                    const core::DefenderSolution& sol, const char* name) {
  std::printf("solver:            %s\n", name);
  std::printf("status:            %s\n",
              std::string(to_string(sol.status)).c_str());
  std::printf("coverage:         ");
  for (double xi : sol.strategy) std::printf(" %.4f", xi);
  std::printf("\n");
  std::printf("worst-case utility: %+.4f\n", sol.worst_case_utility);
  auto bounds = scenario.make_bounds();
  if (!sol.strategy.empty()) {
    std::printf("best-case utility:  %+.4f\n",
                core::best_case_utility(scenario.game.game, bounds,
                                        sol.strategy));
  }
  std::printf("wall time:          %.1f ms\n", sol.wall_seconds * 1e3);
  if (sol.binary_steps > 0) {
    std::printf("binary steps:       %d  (lb=%.4f ub=%.4f)\n",
                sol.binary_steps, sol.lb, sol.ub);
  }
}

int cmd_generate(const Args& args) {
  const double width = args.get_d("width", 2.0);
  Rng rng(static_cast<std::uint64_t>(args.get_i("seed", 1)));
  games::GeneratorOptions gopt;
  gopt.zero_sum = args.get_i("zero-sum", 1) != 0;
  const std::string family = args.get("family", "simplex");

  games::FamilyGame fg = [&]() -> games::FamilyGame {
    if (family == "simplex") {
      const std::size_t targets =
          static_cast<std::size_t>(args.get_i("targets", 0));
      if (targets == 0) usage("--targets required");
      const double resources = args.get_d(
          "resources", std::max(1.0, 0.3 * static_cast<double>(targets)));
      return {games::random_uncertain_game(rng, targets, resources, width,
                                           gopt),
              games::CoverageSpace{}};
    }
    if (family == "multi-defender") {
      const std::size_t defenders =
          static_cast<std::size_t>(args.get_i("defenders", 3));
      const std::size_t block =
          static_cast<std::size_t>(args.get_i("block", 5));
      const double budget = args.get_d(
          "budget", std::max(1.0, 0.3 * static_cast<double>(block)));
      return games::multi_defender_uncertain_game(rng, defenders, block,
                                                  budget, width, gopt);
    }
    if (family == "patrol-graph") {
      const std::size_t locations =
          static_cast<std::size_t>(args.get_i("locations", 5));
      const std::size_t slots =
          static_cast<std::size_t>(args.get_i("slots", 4));
      const double per_slot = args.get_d("per-slot", 2.0);
      return games::patrol_graph_uncertain_game(rng, locations, slots,
                                                per_slot, width, gopt);
    }
    usage("--family must be simplex, multi-defender or patrol-graph");
  }();
  behavior::Scenario scenario{std::move(fg.game),
                              behavior::SuqrWeightIntervals{},
                              behavior::IntervalMode::kExactBox,
                              std::move(fg.coverage)};

  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out required");
  if (!behavior::save_scenario(out, scenario)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (%s, %zu targets, %.1f resources, width %.1f)\n",
              out.c_str(), family.c_str(),
              scenario.game.game.num_targets(),
              scenario.game.game.resources(), width);
  return 0;
}

int cmd_table1(const Args& args) {
  behavior::Scenario scenario{games::table1_game(),
                              behavior::SuqrWeightIntervals{},
                              behavior::IntervalMode::kPaperCorners};
  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out required");
  if (!behavior::save_scenario(out, scenario)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (the paper's Table I instance)\n", out.c_str());
  return 0;
}

std::atomic<bool> g_interrupted{false};

/// Budget table for the signal handler: one slot per concurrent solve
/// (engine workers register one each; single-shot commands use one slot).
/// A fixed array of atomics keeps the handler async-signal-safe — it only
/// walks preallocated storage doing relaxed loads and stores, never
/// allocating or locking.  Replaces the old single "active budget" slot,
/// which could only cancel one in-flight solve.
constexpr std::size_t kBudgetSlots = 64;
std::atomic<SolveBudget*> g_budget_slots[kBudgetSlots]{};
/// The running engine (if any), so SIGINT also marks queued jobs
/// cancelled; SolveEngine::cancel_all is async-signal-safe by contract.
std::atomic<engine::SolveEngine*> g_active_engine{nullptr};

void on_termination_signal(int) {
  g_interrupted.store(true);
  for (std::atomic<SolveBudget*>& slot : g_budget_slots) {
    if (SolveBudget* b = slot.load()) b->request_cancel();
  }
  if (engine::SolveEngine* e = g_active_engine.load()) e->cancel_all();
}

void install_signal_handlers() {
  std::signal(SIGINT, on_termination_signal);
  std::signal(SIGTERM, on_termination_signal);
}

/// RAII registration of one budget in the signal table.
class BudgetRegistration {
 public:
  explicit BudgetRegistration(SolveBudget& budget) {
    for (std::size_t i = 0; i < kBudgetSlots; ++i) {
      SolveBudget* expected = nullptr;
      if (g_budget_slots[i].compare_exchange_strong(expected, &budget)) {
        slot_ = i;
        return;
      }
    }
    // Table full (more concurrent budgets than slots): SIGINT still stops
    // the loop via g_interrupted / the engine-level cancel.
  }
  ~BudgetRegistration() {
    if (slot_ != kBudgetSlots) g_budget_slots[slot_].store(nullptr);
  }
  BudgetRegistration(const BudgetRegistration&) = delete;
  BudgetRegistration& operator=(const BudgetRegistration&) = delete;

 private:
  std::size_t slot_ = kBudgetSlots;
};

/// Maps a final solver status to the documented process exit code.
int exit_code_for(SolverStatus status) {
  switch (status) {
    case SolverStatus::kOptimal:
      return 0;
    case SolverStatus::kDeadlineExceeded:
    case SolverStatus::kCancelled:
    case SolverStatus::kIterLimit:
    case SolverStatus::kTimeLimit:
      return 2;  // budget stop: incumbent + bracket were still reported
    case SolverStatus::kInfeasible:
      return 3;
    default:
      return 4;  // numeric failure / unbounded / unexpected
  }
}

/// Arms `budget` from --deadline-ms / --max-nodes (no flags = unlimited).
void arm_budget_from_flags(const Args& args, SolveBudget& budget) {
  const double deadline_ms = args.get_d("deadline-ms", 0.0);
  if (deadline_ms > 0.0) budget.set_deadline_after(deadline_ms * 1e-3);
  const long max_nodes = args.get_i("max-nodes", 0);
  if (max_nodes > 0) budget.set_node_limit(max_nodes);
}

int cmd_solve(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  auto bounds = scenario.make_bounds();
  core::SolverSpec spec = spec_from(args, scenario);
  auto solver = core::make_solver(spec);
  // Every solve runs under a budget so Ctrl-C degrades to "best incumbent
  // + certified bracket" instead of killing the process mid-solve.
  SolveBudget budget;
  arm_budget_from_flags(args, budget);
  install_signal_handlers();
  core::DefenderSolution sol;
#if CUBISG_OBS_ENABLED
  obs::begin_phase_accounting();
  const std::int64_t report_before =
      obs::last_solve_report_on_this_thread().id;
#endif
  {
    BudgetRegistration reg(budget);
    sol = solver->solve({scenario.game.game, bounds, &budget,
                         /*workspace=*/nullptr, space_of(scenario)});
  }
#if CUBISG_OBS_ENABLED
  // One-shot solves feed the flight recorder too (job_id 0): the same
  // --slow-solve-ms forensics work without the engine.
  {
    obs::FlightRecorder& recorder = obs::FlightRecorder::global();
    if (recorder.armed() && sol.wall_seconds >= recorder.slo_seconds()) {
      obs::FlightEntry entry;
      entry.tag = args.file;
      entry.solve_seconds = sol.wall_seconds;
      entry.slo_seconds = recorder.slo_seconds();
      entry.budget_deadline_seconds = budget.deadline_seconds();
      entry.budget_nodes = budget.nodes_charged();
      entry.budget_iterations = budget.iterations_charged();
      entry.budget_cancelled = budget.cancel_requested();
      entry.phases = obs::collect_phase_accounting();
      obs::SolveReport report = obs::last_solve_report_on_this_thread();
      if (report.id != report_before) {
        entry.has_report = true;
        entry.report = std::move(report);
      }
      recorder.record(std::move(entry));
    }
  }
#endif
  print_solution(scenario, sol, solver->name().c_str());
  if (is_budget_stop(sol.status)) {
    std::printf("note: stopped early (%s); coverage above is the best "
                "incumbent, certified within [%.4f, %.4f]\n",
                std::string(to_string(sol.status)).c_str(), sol.lb, sol.ub);
  }
  return exit_code_for(sol.status);
}

/// Solve-then-audit: runs the requested solver, then hands the solution
/// and its certificate to the independent verifier (src/audit), which
/// re-derives feasibility, the worst-case utility and the bracket claims
/// from the model alone.  Exit code 0 = verified clean, 5 = the verifier
/// refuted the solution, 6 = the certificate itself is malformed.
int cmd_verify(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  auto bounds = scenario.make_bounds();
  core::SolverSpec spec = spec_from(args, scenario);
  auto solver = core::make_solver(spec);
  SolveBudget budget;
  arm_budget_from_flags(args, budget);
  install_signal_handlers();
  core::DefenderSolution sol;
  {
    BudgetRegistration reg(budget);
    sol = solver->solve({scenario.game.game, bounds, &budget,
                         /*workspace=*/nullptr, space_of(scenario)});
  }
  if (!sol.ok() && sol.strategy.empty()) {
    std::fprintf(stderr, "verify: solve failed: %s\n",
                 std::string(to_string(sol.status)).c_str());
    return exit_code_for(sol.status);
  }
  const audit::AuditResult result =
      audit::verify(scenario.game.game, bounds, sol);
  audit::record_outcome(result, solver->name(), /*job_id=*/0, args.file);
  std::printf("verify: %s\n",
              result.ok()
                  ? "PASS"
                  : (std::string("FAIL (") +
                     audit::audit_code_name(result.worst()) + ")")
                        .c_str());
  std::printf("  solver:                %s\n", solver->name().c_str());
  std::printf("  recomputed worst-case: %+.6f (claimed %+.6f)\n",
              result.recomputed_worst_case, sol.worst_case_utility);
  if (sol.certificate.has_bracket) {
    std::printf("  certified bracket:     [%.6f, %.6f] eps=%g K=%d%s\n",
                sol.certificate.lb, sol.certificate.ub,
                sol.certificate.epsilon, sol.certificate.segments,
                sol.certificate.bracket_converged ? " (converged)" : "");
  }
  std::printf("  max residual:          %.3e\n", result.max_residual);
  std::printf("  verify time:           %.2f ms\n",
              result.verify_seconds * 1e3);
  for (const audit::AuditFinding& f : result.findings) {
    std::printf("  finding [%s]: %s (residual %.3e)\n",
                audit::audit_code_name(f.code), f.detail.c_str(), f.residual);
  }
  if (result.ok()) return 0;
  return result.worst() == audit::AuditCode::kMalformedCertificate ? 6 : 5;
}

int cmd_compare(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  auto bounds = scenario.make_bounds();
  core::SolveContext ctx{scenario.game.game, bounds, /*budget=*/nullptr,
                         /*workspace=*/nullptr, space_of(scenario)};
  std::printf("%-16s %12s %12s %10s\n", "solver", "worst-case", "best-case",
              "time(ms)");
  for (const std::string& name : core::solver_names()) {
    if (name == "cubis-milp") continue;  // slow; run explicitly via solve
    Args a2 = args;
    a2.flags["solver"] = name;
    core::SolverSpec spec = spec_from(a2, scenario);
    auto solver = core::make_solver(spec);
    core::DefenderSolution sol = solver->solve(ctx);
    const double best = sol.strategy.empty()
                            ? 0.0
                            : core::best_case_utility(
                                  scenario.game.game, bounds, sol.strategy);
    std::printf("%-16s %12.4f %12.4f %10.1f\n", name.c_str(),
                sol.worst_case_utility, best, sol.wall_seconds * 1e3);
  }
  return 0;
}

int cmd_eval(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  const std::string cov = args.get("coverage", "");
  if (cov.empty()) usage("--coverage required");
  std::vector<double> x;
  const char* p = cov.c_str();
  char* end = nullptr;
  for (double v = std::strtod(p, &end); p != end;
       v = std::strtod(p, &end)) {
    x.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  if (x.size() != scenario.game.game.num_targets()) {
    usage("coverage length must equal the number of targets");
  }
  auto bounds = scenario.make_bounds();
  core::WorstCaseResult wc =
      core::worst_case(scenario.game.game, bounds, x);
  std::printf("worst-case utility: %+.4f\n", wc.value);
  std::printf("best-case utility:  %+.4f\n",
              core::best_case_utility(scenario.game.game, bounds, x));
  std::printf("worst-case attack distribution:");
  for (double q : wc.attack_q) std::printf(" %.3f", q);
  std::printf("\n");
  return 0;
}

int cmd_patrol(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  auto bounds = scenario.make_bounds();
  core::SolverSpec spec = spec_from(args, scenario);
  auto solver = core::make_solver(spec);
  SolveBudget budget;
  arm_budget_from_flags(args, budget);
  install_signal_handlers();
  core::DefenderSolution sol;
  {
    BudgetRegistration reg(budget);
    sol = solver->solve({scenario.game.game, bounds, &budget,
                         /*workspace=*/nullptr, space_of(scenario)});
  }
  if (!sol.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 std::string(to_string(sol.status)).c_str());
    return exit_code_for(sol.status);
  }
  std::printf("marginal coverage: ");
  for (double xi : sol.strategy) std::printf(" %.4f", xi);
  std::printf("  (worst case %+.4f)\n\n", sol.worst_case_utility);

  auto mix = games::comb_decomposition(sol.strategy);
  std::printf("implementable mixture (%zu pure patrols):\n", mix.size());
  for (const auto& alloc : mix) {
    std::printf("  p=%.4f  patrol {", alloc.probability);
    for (std::size_t k = 0; k < alloc.covered.size(); ++k) {
      std::printf("%s%zu", k ? ", " : "", alloc.covered[k]);
    }
    std::printf("}\n");
  }

  const long days = args.get_i("days", 0);
  if (days > 0) {
    Rng rng(static_cast<std::uint64_t>(args.get_i("seed", 7)));
    std::printf("\nsampled schedule (%ld days):\n", days);
    for (long d = 0; d < days; ++d) {
      auto patrol = games::comb_sample(sol.strategy, rng);
      std::printf("  day %2ld: {", d + 1);
      for (std::size_t k = 0; k < patrol.size(); ++k) {
        std::printf("%s%zu", k ? ", " : "", patrol[k]);
      }
      std::printf("}\n");
    }
  }
  return 0;
}

std::vector<double> parse_csv_doubles(const std::string& s) {
  std::vector<double> out;
  const char* p = s.c_str();
  char* end = nullptr;
  for (double v = std::strtod(p, &end); p != end;
       v = std::strtod(p, &end)) {
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

int cmd_report(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  auto bounds = scenario.make_bounds();
  core::SolveContext ctx{scenario.game.game, bounds, /*budget=*/nullptr,
                         /*workspace=*/nullptr, space_of(scenario)};
  const std::string out_path = args.get("out", "");
  std::FILE* out = out_path.empty() ? stdout
                                    : std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }

  const games::SecurityGame& g = scenario.game.game;
  std::fprintf(out, "# cubisg deployment report\n\n");
  std::fprintf(out, "## Instance\n\n");
  std::fprintf(out, "- targets: %zu\n- resources: %.2f\n- interval mode: "
               "%s\n\n", g.num_targets(), g.resources(),
               scenario.mode == behavior::IntervalMode::kPaperCorners
                   ? "paper-corners" : "exact-box");
  std::fprintf(out,
               "| target | Ra | Pa | Rd | Pd | Ra interval | Pa interval |\n"
               "|---|---|---|---|---|---|---|\n");
  for (std::size_t i = 0; i < g.num_targets(); ++i) {
    const auto& p = g.target(i);
    const auto& iv = scenario.game.attacker_intervals[i];
    std::fprintf(out,
                 "| %zu | %.2f | %.2f | %.2f | %.2f | [%.2f, %.2f] | "
                 "[%.2f, %.2f] |\n",
                 i, p.attacker_reward, p.attacker_penalty,
                 p.defender_reward, p.defender_penalty,
                 iv.attacker_reward.lo(), iv.attacker_reward.hi(),
                 iv.attacker_penalty.lo(), iv.attacker_penalty.hi());
  }

  std::fprintf(out, "\n## Solver comparison\n\n");
  std::fprintf(out, "| solver | worst-case | best-case | time (ms) |\n"
               "|---|---|---|---|\n");
  core::DefenderSolution recommended;
  for (const std::string& name : core::solver_names()) {
    if (name == "cubis-milp" || name == "robust-types" ||
        name == "bayesian") {
      continue;  // slow / needs a sampled population
    }
    Args a2 = args;
    a2.flags["solver"] = name;
    auto sol = core::make_solver(spec_from(a2, scenario))->solve(ctx);
    const double best = sol.strategy.empty()
                            ? 0.0
                            : core::best_case_utility(g, bounds,
                                                      sol.strategy);
    std::fprintf(out, "| %s | %+.4f | %+.4f | %.1f |\n", name.c_str(),
                 sol.worst_case_utility, best, sol.wall_seconds * 1e3);
    if (name == "cubis-adaptive") recommended = sol;
  }

  std::fprintf(out, "\n## Recommended plan (cubis-adaptive)\n\n");
  std::fprintf(out, "- certified worst-case utility: **%+.4f**\n",
               recommended.worst_case_utility);
  std::fprintf(out, "- coverage:");
  for (double xi : recommended.strategy) std::fprintf(out, " %.3f", xi);
  std::fprintf(out, "\n\n### Implementable patrol mixture\n\n");
  auto mix = games::comb_decomposition(recommended.strategy);
  std::fprintf(out, "| probability | patrol |\n|---|---|\n");
  for (const auto& alloc : mix) {
    std::fprintf(out, "| %.4f | {", alloc.probability);
    for (std::size_t k = 0; k < alloc.covered.size(); ++k) {
      std::fprintf(out, "%s%zu", k ? ", " : "", alloc.covered[k]);
    }
    std::fprintf(out, "} |\n");
  }
  if (out != stdout) {
    std::fclose(out);
    std::printf("wrote report to %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_simulate_data(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  const long records = args.get_i("records", 0);
  if (records <= 0) usage("--records required");
  const std::string out = args.get("out", "");
  if (out.empty()) usage("--out required");
  behavior::SuqrWeights truth{-4.0, 0.75, 0.65};
  const std::string truth_csv = args.get("truth", "");
  if (!truth_csv.empty()) {
    auto w = parse_csv_doubles(truth_csv);
    if (w.size() != 3) usage("--truth must be w1,w2,w3");
    truth = {w[0], w[1], w[2]};
  }
  Rng rng(static_cast<std::uint64_t>(args.get_i("seed", 7)));
  auto data = learning::simulate_attack_data(
      scenario.game.game, truth, static_cast<std::size_t>(records), rng);
  if (!learning::save_attack_data(out, data)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %ld attack records to %s (hidden truth %.2f, %.2f, "
              "%.2f)\n", records, out.c_str(), truth.w1, truth.w2,
              truth.w3);
  return 0;
}

int cmd_learn(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  const std::string data_path = args.get("data", "");
  if (data_path.empty()) usage("--data required");
  auto data = learning::load_attack_data(data_path);
  std::printf("loaded %zu attack records\n", data.size());

  auto fit = learning::fit_suqr(scenario.game.game, data);
  std::printf("MLE weights:      (%.4f, %.4f, %.4f)   logL %.2f, %s in "
              "%d iters\n",
              fit.weights.w1, fit.weights.w2, fit.weights.w3,
              fit.log_likelihood, fit.converged ? "converged" : "stopped",
              fit.iterations);

  learning::BootstrapOptions bo;
  bo.resamples = static_cast<int>(args.get_i("resamples", 80));
  bo.confidence = args.get_d("confidence", 0.9);
  bo.seed = static_cast<std::uint64_t>(args.get_i("seed", 0xB007));
  auto intervals = learning::bootstrap_weight_intervals(
      scenario.game.game, data, {}, bo);
  std::printf("bootstrap %.0f%% boxes: w1 [%.3f, %.3f]  w2 [%.3f, %.3f]  "
              "w3 [%.3f, %.3f]\n",
              bo.confidence * 100.0, intervals.w1.lo(), intervals.w1.hi(),
              intervals.w2.lo(), intervals.w2.hi(), intervals.w3.lo(),
              intervals.w3.hi());

  if (args.get_i("solve", 1) != 0) {
    behavior::SuqrIntervalBounds bounds(intervals,
                                        scenario.game.attacker_intervals);
    core::SolverSpec spec = spec_from(args, scenario);
    auto solver = core::make_solver(spec);
    auto sol = solver->solve({scenario.game.game, bounds});
    std::printf("\nrobust plan on the LEARNED intervals:\n");
    print_solution(scenario, sol, solver->name().c_str());
  }
  return 0;
}

/// Sleeps `ms` milliseconds in <= 50 ms chunks, returning early once
/// g_interrupted is set, so a SIGINT during --interval-ms no longer waits
/// out the full interval before the loop can exit.
void interruptible_sleep_ms(long ms) {
  long remaining = ms;
  while (remaining > 0 && !g_interrupted.load()) {
    const long chunk = std::min<long>(50, remaining);
    std::this_thread::sleep_for(std::chrono::milliseconds(chunk));
    remaining -= chunk;
  }
}

/// Engine sizing shared by serve and batch: --workers/--queue plus the
/// budget flags as per-job defaults (the engine re-arms each worker's
/// budget per job, so --deadline-ms stays a per-request watchdog).
engine::EngineOptions engine_options_from(const Args& args) {
  engine::EngineOptions eopt;
  eopt.workers = static_cast<std::size_t>(
      std::max<long>(1, args.get_i("workers", 1)));
  eopt.queue_capacity = static_cast<std::size_t>(
      std::max<long>(1, args.get_i("queue", 64)));
  eopt.default_deadline_seconds = args.get_d("deadline-ms", 0.0) * 1e-3;
  eopt.default_max_nodes = args.get_i("max-nodes", 0);
  if (args.get_i("isolate", 0) != 0) {
    eopt.isolation = engine::IsolationMode::kProcess;
  }
  // --retries N = extra attempts beyond the first; the engine retries
  // only transient failures, so deterministic errors still fail fast.
  eopt.retry.max_attempts =
      1 + static_cast<int>(std::max<long>(0, args.get_i("retries", 0)));
  eopt.retry.max_crashes =
      static_cast<int>(std::max<long>(0, args.get_i("max-crashes", 2)));
  // Cross-solve cache: --cache off|exact|transplant + --cache-entries N.
  // The caller must still stamp eopt.cache.solver_config from its solver
  // spec (canonical_solver_config) so fingerprints are config-scoped.
  const std::string cache_mode = args.get("cache", "off");
  if (!engine::parse_cache_mode(cache_mode, eopt.cache.mode)) {
    usage(("bad --cache value '" + cache_mode +
           "' (off|exact|transplant)").c_str());
  }
  eopt.cache.entries = static_cast<std::size_t>(
      std::max<long>(1, args.get_i("cache-entries", 256)));
  return eopt;
}

/// Shadow-audit wiring shared by serve and batch: --audit-sample N arms a
/// ShadowAuditor and hooks it into the engine's completion callback, so
/// every Nth completed solve is re-verified against its certificate on a
/// low-priority background worker.  Returns nullptr when the flag is
/// absent; with the observability layer compiled out the flag warns and
/// no-ops (there would be no /auditz ring or audit.* metrics to see the
/// verdicts in), so scripted runs keep working.
std::unique_ptr<audit::ShadowAuditor> maybe_start_auditor(
    const Args& args, engine::EngineOptions& eopt) {
  const long every = args.get_i("audit-sample", 0);
  if (every <= 0) return nullptr;
#if CUBISG_OBS_ENABLED
  audit::ShadowAuditor::Options aopt;
  aopt.sample_every = static_cast<std::size_t>(every);
  auto auditor = std::make_unique<audit::ShadowAuditor>(aopt);
  auditor->start();
  audit::ShadowAuditor* raw = auditor.get();
  eopt.on_outcome = [raw](const engine::SolveJob& job,
                          const engine::JobOutcome& out) {
    // Only completed solves with a strategy are auditable; failed or
    // drained jobs are already counted by the serve/batch loop.
    if (out.status != engine::JobStatus::kCompleted ||
        out.solution.strategy.empty()) {
      return;
    }
    raw->observe(job.game, job.bounds, out.solution, out.id, out.tag);
  };
  std::fprintf(stderr, "shadow audit: verifying every %ldth solve\n",
               every);
  return auditor;
#else
  std::fprintf(stderr,
               "warning: --audit-sample ignored (shadow audits need the "
               "observability layer; built with CUBISG_OBS=OFF)\n");
  return nullptr;
#endif
}

/// Drains the auditor (if armed) and prints its exit summary.
void finish_auditor(std::unique_ptr<audit::ShadowAuditor>& auditor) {
  if (auditor == nullptr) return;
  auditor->stop();
  std::printf("shadow audit: observed %llu, audited %llu, failures %llu, "
              "dropped %llu\n",
              static_cast<unsigned long long>(auditor->observed()),
              static_cast<unsigned long long>(auditor->audited()),
              static_cast<unsigned long long>(auditor->failures()),
              static_cast<unsigned long long>(auditor->dropped()));
}

/// Registers every engine worker budget in the signal table (SIGINT then
/// cancels ALL in-flight jobs, not just one) and publishes the engine for
/// the handler's queue-drain cancel.
class EngineSignalHookup {
 public:
  explicit EngineSignalHookup(engine::SolveEngine& eng) {
    regs_.reserve(eng.num_workers());
    for (std::size_t i = 0; i < eng.num_workers(); ++i) {
      regs_.push_back(
          std::make_unique<BudgetRegistration>(eng.worker_budget(i)));
    }
    g_active_engine.store(&eng);
  }
  ~EngineSignalHookup() { g_active_engine.store(nullptr); }

 private:
  std::vector<std::unique_ptr<BudgetRegistration>> regs_;
};

/// FIFO reaper shared by serve and batch: outcomes print in submission
/// order (like the old sequential loop) while workers run ahead.
struct OutcomeStats {
  long done = 0;
  long failures = 0;
  long cancelled = 0;  ///< of the failures, jobs drained after SIGINT
  long cache_hits = 0;        ///< served from the cross-solve cache
  long cache_transplants = 0; ///< solved from a transplant seed
};

/// Canonical digest of a solution for the batch journal: FNV-1a 64 over
/// the solution's wire bytes with everything run-specific zeroed (job
/// id, wall clocks, telemetry), so the same scenario solved in different
/// runs digests identically — the property the resume-idempotence tests
/// assert.
std::uint64_t solution_digest(const core::DefenderSolution& solution) {
  engine::ResultFrame frame;
  frame.id = 0;
  frame.solution = solution;
  frame.solution.wall_seconds = 0.0;
  frame.solution.telemetry = {};
  const std::string bytes = engine::encode_result(frame);
  return engine::fnv1a64(bytes.data(), bytes.size());
}

void reap_outcome(long index, const std::string& label,
                  std::future<engine::JobOutcome>& fut, OutcomeStats& stats,
                  obs::Counter& errors,
                  engine::BatchJournal* journal = nullptr) {
  engine::JobOutcome out = fut.get();
  ++stats.done;
  // A retried or crash-surviving job annotates its line so the recovery
  // is visible without grepping worker logs.
  char recovery[96] = "";
  if (out.attempts > 1 || out.crashes > 0) {
    std::snprintf(recovery, sizeof recovery, " attempts=%d crashes=%d",
                  out.attempts, out.crashes);
  }
  // Cache involvement annotates the line so warm solves are visible
  // without scraping /cachez.
  if (out.cache_hit) {
    ++stats.cache_hits;
    std::strncat(recovery, " cache=hit", sizeof recovery - strlen(recovery) - 1);
  } else if (out.cache_transplant) {
    ++stats.cache_transplants;
    std::strncat(recovery, " cache=transplant",
                 sizeof recovery - strlen(recovery) - 1);
  }
  const char* journal_status = nullptr;  // null = do not journal
  std::uint64_t digest = 0;
  switch (out.status) {
    case engine::JobStatus::kCompleted:
      if (!out.solution.ok()) {
        ++stats.failures;
        errors.add(1);
      }
      std::printf("%s %ld: status=%s worst-case=%+.4f gap=%.2e "
                  "wall=%.1fms%s\n",
                  label.c_str(), index,
                  std::string(to_string(out.solution.status)).c_str(),
                  out.solution.worst_case_utility,
                  out.solution.ub - out.solution.lb,
                  out.solution.wall_seconds * 1e3, recovery);
      // Only a clean optimal solve earns an "ok" (resume skips those);
      // budget stops and cancelled incumbents are re-attempted.
      journal_status = out.solution.ok() ? "ok" : "failed";
      digest = solution_digest(out.solution);
      break;
    case engine::JobStatus::kFailed:
      ++stats.failures;
      errors.add(1);
      std::printf("%s %ld: ERROR %s (continuing)%s\n", label.c_str(), index,
                  out.error.c_str(), recovery);
      journal_status = "failed";
      break;
    case engine::JobStatus::kWorkerCrashed:
      ++stats.failures;
      errors.add(1);
      std::printf("%s %ld: WORKER CRASHED %s (continuing)%s\n",
                  label.c_str(), index, out.error.c_str(), recovery);
      journal_status = "crashed";
      break;
    case engine::JobStatus::kQuarantined:
      ++stats.failures;
      errors.add(1);
      std::printf("%s %ld: QUARANTINED %s%s\n", label.c_str(), index,
                  out.error.c_str(), recovery);
      journal_status = "quarantined";
      break;
    case engine::JobStatus::kCancelled:
      ++stats.failures;
      ++stats.cancelled;
      errors.add(1);
      std::printf("%s %ld: status=cancelled (drained before start)\n",
                  label.c_str(), index);
      // Deliberately not journaled: a cancelled job was never attempted,
      // so --resume must re-solve it.
      break;
  }
  if (!out.tag.empty() && out.status != engine::JobStatus::kCompleted) {
    std::printf("  ^ %s\n", out.tag.c_str());
  }
  if (journal != nullptr && journal->is_open() && journal_status != nullptr &&
      !out.tag.empty()) {
    journal->record(out.tag, digest, journal_status, out.cache_hit ? 1 : 0,
                    out.cache_transplant ? 1 : 0);
  }
  std::fflush(stdout);
}

/// Solve loop that keeps the process alive for live scraping: solves the
/// scenario repeatedly (forever with --solves 0) until SIGINT/SIGTERM,
/// printing one convergence line per solve.  Pair with --listen so a
/// Prometheus scraper sees the metrics and /solvez reports evolve.
///
/// Requests run on the concurrent engine (--workers N; default 1 keeps
/// the old sequential behavior, including output order — outcomes are
/// reaped FIFO).  Resilience: one failed solve never takes the service
/// down.  Failures (non-optimal statuses and escaped exceptions alike)
/// are logged, counted in `solve.errors_total`, and the loop moves on.
/// Each worker re-arms its budget per job, so --deadline-ms doubles as a
/// per-request watchdog and SIGINT cancels every in-flight solve at a
/// safe point before the loop exits.
int cmd_serve(const Args& args) {
  behavior::Scenario scenario = load_or_die(args.file);
  core::SolverSpec spec = spec_from(args, scenario);
  std::shared_ptr<const core::DefenderSolver> solver = core::make_solver(spec);
  const long max_solves = args.get_i("solves", 0);  // 0 = until signal
  const long interval_ms = args.get_i("interval-ms", 0);
  engine::EngineOptions eopt = engine_options_from(args);
  eopt.cache.solver_config = core::canonical_solver_config(spec);
  // The auditor outlives the engine: workers invoke the completion hook
  // until shutdown() joins them.
  std::unique_ptr<audit::ShadowAuditor> auditor =
      maybe_start_auditor(args, eopt);
  install_signal_handlers();
  std::printf("serving %s with solver %s (%s, %zu workers)\n",
              args.file.c_str(), solver->name().c_str(),
              max_solves > 0 ? (std::to_string(max_solves) + " solves").c_str()
                             : "until SIGINT",
              eopt.workers);
  obs::Counter& errors =
      obs::Registry::global().counter("solve.errors_total");

  // The engine jobs reference the scenario through aliasing shared_ptrs,
  // so the problem outlives every queued job no matter how the command
  // exits.
  auto scenario_sp =
      std::make_shared<behavior::Scenario>(std::move(scenario));
  auto bounds_sp = std::make_shared<behavior::SuqrIntervalBounds>(
      scenario_sp->make_bounds());
  std::shared_ptr<const games::SecurityGame> game_sp(
      scenario_sp, &scenario_sp->game.game);

  engine::SolveEngine eng(solver, eopt);
  EngineSignalHookup hookup(eng);
  // Keep at most 2 jobs per worker in flight so output (reaped FIFO)
  // stays close to real time while the pipeline never starves.
  const std::size_t window = eopt.workers * 2;
  std::deque<std::pair<long, std::future<engine::JobOutcome>>> pending;
  OutcomeStats stats;
  long submitted = 0;
  while (!g_interrupted.load() &&
         (max_solves == 0 || submitted < max_solves)) {
    engine::SolveJob job;
    job.game = game_sp;
    job.bounds = bounds_sp;
    job.scenario = scenario_sp;  // process isolation ships the text form
    try {
      std::future<engine::JobOutcome> fut = eng.submit(std::move(job));
      ++submitted;
      pending.emplace_back(submitted, std::move(fut));
    } catch (const std::exception&) {
      break;  // engine cancelled/stopped while waiting for queue space
    }
    while (pending.size() >= window) {
      reap_outcome(pending.front().first, "solve", pending.front().second,
                   stats, errors);
      pending.pop_front();
    }
    if (interval_ms > 0 && !g_interrupted.load()) {
      interruptible_sleep_ms(interval_ms);
    }
  }
  while (!pending.empty()) {
    reap_outcome(pending.front().first, "solve", pending.front().second,
                 stats, errors);
    pending.pop_front();
  }
  eng.shutdown();
  finish_auditor(auditor);
  if (eopt.cache.mode != engine::CacheMode::kOff) {
    std::printf("served %ld solves (%ld failed, %ld cache hits, "
                "%ld transplants)\n",
                stats.done, stats.failures, stats.cache_hits,
                stats.cache_transplants);
  } else {
    std::printf("served %ld solves (%ld failed)\n", stats.done,
                stats.failures);
  }
  return stats.failures == 0 ? 0 : 1;
}

/// Shards a directory (every *.scn / *.txt file, sorted) or a manifest
/// (one scenario path per line; '#' comments) across the engine workers.
/// One solver instance is shared by every worker; each job's outcome
/// prints in submission order with its file tag, followed by a throughput
/// summary.  A file that fails to load or solve counts as failed without
/// stopping the batch.
int cmd_batch(const Args& args) {
  if (args.file.empty()) usage("batch: directory or manifest required");
  const std::string solver_name = args.get("solver", "cubis");
  if (solver_name == "robust-types" || solver_name == "bayesian") {
    usage("batch does not support population solvers (per-scenario "
          "populations)");
  }

  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  if (fs::is_directory(args.file, ec)) {
    for (const auto& entry : fs::directory_iterator(args.file, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".scn" || ext == ".txt") {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
  } else {
    std::FILE* f = std::fopen(args.file.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", args.file.c_str());
      return 1;
    }
    char line[4096];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      std::string s(line);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                            s.back() == ' ' || s.back() == '\t')) {
        s.pop_back();
      }
      std::size_t start = 0;
      while (start < s.size() && (s[start] == ' ' || s[start] == '\t')) {
        ++start;
      }
      s = s.substr(start);
      if (s.empty() || s[0] == '#') continue;
      paths.push_back(s);
    }
    std::fclose(f);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "error: no scenario files in %s\n",
                 args.file.c_str());
    return 1;
  }

  core::SolverSpec spec = base_spec_from(args);
  std::shared_ptr<const core::DefenderSolver> solver = core::make_solver(spec);
  engine::EngineOptions eopt = engine_options_from(args);
  eopt.cache.solver_config = core::canonical_solver_config(spec);
  std::unique_ptr<audit::ShadowAuditor> auditor =
      maybe_start_auditor(args, eopt);
  install_signal_handlers();
  std::printf("batch: %zu scenario files on %zu workers (solver %s)\n",
              paths.size(), eopt.workers, solver->name().c_str());
  obs::Counter& errors =
      obs::Registry::global().counter("solve.errors_total");
  obs::Counter& skipped_counter =
      obs::Registry::global().counter("batch.jobs_skipped_total");

  // --resume: jobs a previous run's journal marks "ok" are not re-solved.
  // failed/crashed/quarantined records are informational only — those
  // jobs get another chance.  A missing/unreadable journal is a fresh
  // start, not an error.
  const std::string journal_path = args.get("journal", "");
  std::set<std::string> already_done;
  if (args.get_i("resume", 0) != 0) {
    if (journal_path.empty()) usage("batch: --resume requires --journal");
    std::vector<engine::JournalEntry> entries;
    std::string jerr;
    std::size_t torn = 0;
    if (engine::BatchJournal::load(journal_path, entries, jerr, &torn)) {
      for (const engine::JournalEntry& e : entries) {
        if (e.status == "ok") already_done.insert(e.tag);
      }
      std::printf("resume: journal %s has %zu completed jobs"
                  " (%zu malformed lines tolerated)\n",
                  journal_path.c_str(), already_done.size(), torn);
    } else {
      std::fprintf(stderr, "warning: %s; starting fresh\n", jerr.c_str());
    }
  }
  engine::BatchJournal journal;
  if (!journal_path.empty()) {
    std::string jerr;
    if (!journal.open(journal_path, jerr)) {
      std::fprintf(stderr, "error: %s\n", jerr.c_str());
      return 1;
    }
  }
  engine::BatchJournal* journal_ptr = journal.is_open() ? &journal : nullptr;

  engine::SolveEngine eng(solver, eopt);
  EngineSignalHookup hookup(eng);
  Timer wall;
  const std::size_t window = eopt.workers * 2;
  std::deque<std::pair<long, std::future<engine::JobOutcome>>> pending;
  OutcomeStats stats;
  long submitted = 0;
  long skipped = 0;
  long resumed = 0;
  for (const std::string& path : paths) {
    if (g_interrupted.load()) break;
    if (already_done.count(path) != 0) {
      ++resumed;
      continue;
    }
    engine::SolveJob job;
    try {
      auto scn = std::make_shared<behavior::Scenario>(
          behavior::load_scenario(path));
      job.bounds = std::make_shared<behavior::SuqrIntervalBounds>(
          scn->make_bounds());
      job.game = std::shared_ptr<const games::SecurityGame>(
          scn, &scn->game.game);
      job.scenario = scn;  // process isolation ships the text form
    } catch (const std::exception& e) {
      // Malformed/truncated entry: skip it — typed, counted, visible in
      // the summary — instead of failing or aborting the batch.
      ++skipped;
      skipped_counter.add(1);
      std::printf("batch %s: SKIPPED (parse error: %s)\n", path.c_str(),
                  e.what());
      continue;
    }
    job.tag = path;
    try {
      // Blocking admission: backpressure from a full queue paces the
      // submitter instead of rejecting work we already decided to do.
      std::future<engine::JobOutcome> fut = eng.submit(std::move(job));
      ++submitted;
      pending.emplace_back(submitted, std::move(fut));
    } catch (const std::exception&) {
      break;  // engine cancelled/stopped
    }
    while (pending.size() >= window) {
      reap_outcome(pending.front().first, "batch", pending.front().second,
                   stats, errors, journal_ptr);
      pending.pop_front();
    }
  }
  while (!pending.empty()) {
    reap_outcome(pending.front().first, "batch", pending.front().second,
                 stats, errors, journal_ptr);
    pending.pop_front();
  }
  eng.shutdown();
  journal.close();  // final fsync before the summary claims durability
  finish_auditor(auditor);
  const double seconds = wall.seconds();
  const long solved_ok = stats.done - stats.failures + resumed;
  const long failures = stats.failures - stats.cancelled;
  const bool interrupted = g_interrupted.load();
  if (interrupted) {
    // Everything not completed or definitively failed remains to do:
    // cancelled drains, never-submitted files, and skips (a malformed
    // file is still "remaining" in the sense that rerunning reports it).
    const long remaining =
        static_cast<long>(paths.size()) - solved_ok - failures;
    std::printf("batch interrupted: %ld completed, %ld failed, %ld "
                "remaining%s\n",
                solved_ok, failures, remaining,
                journal.is_open() || !journal_path.empty()
                    ? " (journal flushed; rerun with --resume)"
                    : "");
  }
  std::printf("batch done: %zu files, %ld solved ok, %ld failed, "
              "%ld skipped, %.2fs (%.2f solves/sec, %zu workers), "
              "cache_hits=%ld cache_transplants=%ld\n",
              paths.size(), solved_ok, failures + skipped, skipped, seconds,
              seconds > 0.0 ? static_cast<double>(stats.done) / seconds
                            : 0.0,
              eopt.workers, stats.cache_hits, stats.cache_transplants);
  if (interrupted) return 2;
  return failures + skipped == 0 ? 0 : 1;
}

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "table1") return cmd_table1(args);
  if (cmd == "solve") return cmd_solve(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "eval") return cmd_eval(args);
  if (cmd == "patrol") return cmd_patrol(args);
  if (cmd == "simulate-data") return cmd_simulate_data(args);
  if (cmd == "learn") return cmd_learn(args);
  if (cmd == "report") return cmd_report(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "batch") return cmd_batch(args);
  usage(("unknown command " + cmd).c_str());
}

/// RAII flush of the --metrics-out/--trace-out files.  Static storage
/// duration, so the destructor also runs on the std::exit paths (usage()
/// after a missing flag, for example) and after a solver exception —
/// telemetry of a failed run is exactly the telemetry worth keeping.
/// The registries it reads are intentionally immortal (never destroyed),
/// so flushing during static destruction is safe.  flush() is
/// idempotent; main() calls it explicitly to capture the exit code.
struct TelemetryOutputs {
  std::string metrics_path;
  std::string trace_path;
  std::string profile_path;
  std::string slow_path;
  std::string audit_path;
  bool flushed = false;

  /// Returns 1 on I/O failure so a broken path fails the run visibly.
  int flush() {
    if (flushed) return 0;
    flushed = true;
    int rc = 0;
    if (!metrics_path.empty()) {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_path.c_str());
        rc = 1;
      } else {
        obs::update_process_metrics();  // final process_* gauge values
        const std::string json =
            obs::Registry::global().snapshot().to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
      }
    }
    if (!trace_path.empty()) {
      if (!obs::write_trace_json(trace_path)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        rc = 1;
      } else {
        std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
      }
    }
    if (!profile_path.empty()) {
      obs::profiler_stop();
      if (!obs::profiler_available()) {
        // A build without the sampler still honors the flag shape:
        // scripted runs keep working, with a visible note and no file.
        std::fprintf(stderr, "warning: --profile-out skipped (%s)\n",
                     obs::profiler_last_error().c_str());
      } else if (!obs::write_profile_collapsed(profile_path)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     profile_path.c_str());
        rc = 1;
      } else {
        std::fprintf(stderr,
                     "wrote profile (%lld samples, %lld dropped) to %s\n",
                     static_cast<long long>(obs::profiler_samples_total()),
                     static_cast<long long>(obs::profiler_samples_dropped()),
                     profile_path.c_str());
      }
    }
    if (!slow_path.empty()) {
      if (!obs::FlightRecorder::global().write_json(slow_path)) {
        std::fprintf(stderr, "error: cannot write %s\n", slow_path.c_str());
        rc = 1;
      } else {
        std::fprintf(stderr, "wrote slow-solve records to %s\n",
                     slow_path.c_str());
      }
    }
    if (!audit_path.empty()) {
      if (!obs::AuditLog::global().write_json(audit_path)) {
        std::fprintf(stderr, "error: cannot write %s\n", audit_path.c_str());
        rc = 1;
      } else {
        std::fprintf(stderr, "wrote audit failures to %s\n",
                     audit_path.c_str());
      }
    }
    return rc;
  }

  ~TelemetryOutputs() { flush(); }
};

TelemetryOutputs g_telemetry;

/// Starts the live exporter when --listen was given.  Exits the process
/// on a real bind failure; a build with the exporter compiled out
/// (CUBISG_OBS=OFF) warns and continues so scripted runs still work.
void maybe_start_exporter(obs::HttpExporter& exporter, const Args& args) {
  if (args.flags.find("listen") == args.flags.end()) return;
  if (!obs::http_exporter_available()) {
    std::fprintf(stderr,
                 "warning: --listen ignored (%s)\n",
                 "telemetry service compiled out with CUBISG_OBS=OFF");
    return;
  }
  obs::HttpExporterOptions opt;
  opt.port = static_cast<int>(args.get_i("listen", 0));
  opt.bind_address = args.get("listen-host", "127.0.0.1");
  if (!exporter.start(opt)) {
    std::fprintf(stderr, "error: --listen: %s\n",
                 exporter.last_error().c_str());
    std::exit(1);
  }
  std::fprintf(stderr,
               "telemetry: http://%s:%d/  (/metrics /healthz /solvez "
               "/slowz /profilez)\n",
               opt.bind_address.c_str(), exporter.port());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  // --version takes no value, so it is handled before parse_args (which
  // requires one after every flag).  The same provenance is exported as
  // the cubisg_build_info gauge on /metrics and stamped into bench JSON.
  if (cmd == "--version" || cmd == "version") {
    std::printf("cubisg %s\n  git sha:         %s\n  compiler:        %s\n"
                "  obs:             %s\n  fault injection: %s\n",
                buildinfo::kVersion, buildinfo::kGitSha, buildinfo::kCompiler,
                std::strcmp(buildinfo::kObsEnabled, "1") == 0 ? "on" : "off",
                std::strcmp(buildinfo::kFaultInjection, "1") == 0 ? "on"
                                                                  : "off");
    return 0;
  }
  // Test hook: CUBISG_FAULT_INJECT="site[:count[:skip]],..." arms the
  // deterministic fault-injection sites (no-op in production builds).
  faultinject::arm_from_env();
  Args args = parse_args(argc, argv, 2);
  g_telemetry.metrics_path = args.get("metrics-out", "");
  g_telemetry.trace_path = args.get("trace-out", "");
  g_telemetry.profile_path = args.get("profile-out", "");
  g_telemetry.slow_path = args.get("slow-solve-out", "");
  g_telemetry.audit_path = args.get("audit-out", "");
  if (!g_telemetry.trace_path.empty()) {
    obs::set_trace_enabled(true);
  }
  if (args.flags.count("slow-solve-ms") != 0) {
#if CUBISG_OBS_ENABLED
    obs::FlightRecorder::global().arm(args.get_d("slow-solve-ms", 0.0) *
                                      1e-3);
#else
    std::fprintf(stderr,
                 "warning: --slow-solve-ms ignored (flight recorder "
                 "compiled out with CUBISG_OBS=OFF)\n");
#endif
  }
  if (!g_telemetry.profile_path.empty()) {
    if (obs::profiler_available()) {
      // The main thread samples too: one-shot commands (solve, patrol)
      // run the solver right here.
      obs::profiler_register_this_thread();
      obs::ProfilerOptions popt;
      popt.hz = static_cast<int>(args.get_i("profile-hz", 99));
      if (!obs::profiler_start(popt)) {
        std::fprintf(stderr, "warning: profiler failed to start (%s)\n",
                     obs::profiler_last_error().c_str());
      }
    } else {
      std::fprintf(stderr, "warning: --profile-out will be skipped (%s)\n",
                   obs::profiler_last_error().c_str());
    }
  }
  obs::HttpExporter exporter;
  maybe_start_exporter(exporter, args);
  int rc;
  try {
    rc = dispatch(cmd, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  const int obs_rc = g_telemetry.flush();
  return rc != 0 ? rc : obs_rc;
}

// PASAQ-style non-robust baseline (the paper's reference [21], Yang et al.
// IJCAI'11): computes the defender strategy that is optimal *if* the
// attacker follows a known point attractiveness model F_i — here the
// midpoint of the uncertainty interval, matching the paper's Section III
// example ("if the defender simply uses the mid points of the uncertainty
// intervals...").
//
// Algorithm: binary search on the defender utility c.  A value c is
// achievable iff max_x sum_i F_i(x_i) (Ud_i(x_i) - c) >= 0 (multiply the
// fractional objective through by the positive denominator).  Each step is
// a separable piecewise-linear maximization over the resource polytope —
// the same step solver CUBIS uses.
#pragma once

#include <memory>

#include "behavior/suqr.hpp"
#include "common/tolerances.hpp"
#include "core/solvers.hpp"

namespace cubisg::core {

/// Which point model the baseline assumes for the attacker.
enum class PasaqModelSource {
  kIntervalMidpoint,  ///< F = (L + U) / 2 from the context's bounds
  kCustom,            ///< caller-supplied AttractivenessModel
};

/// Options for the midpoint baseline.
struct PasaqOptions {
  std::size_t segments = 10;
  double epsilon = Tol::kBinarySearchEps;
  PasaqModelSource source = PasaqModelSource::kIntervalMidpoint;
  /// Used when source == kCustom.
  std::shared_ptr<const behavior::AttractivenessModel> model;
  bool top_up_resources = true;
  double feasibility_slack = 1e-9;
};

/// The midpoint (non-robust) baseline solver.
class PasaqSolver final : public DefenderSolver {
 public:
  explicit PasaqSolver(PasaqOptions options = {});

  std::string name() const override { return "midpoint-pasaq"; }
  DefenderSolution solve(const SolveContext& ctx) const override;

  /// Expected defender utility of `x` under this solver's assumed point
  /// model (what the baseline *believes* it achieves).
  double believed_utility(const SolveContext& ctx,
                          std::span<const double> x) const;

 private:
  PasaqOptions opt_;
};

}  // namespace cubisg::core

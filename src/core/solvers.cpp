#include "core/solvers.hpp"

#include <algorithm>
#include <string>

#include "common/fault_inject.hpp"
#include "common/timer.hpp"
#include "core/worst_case.hpp"
#include "games/strategy_space.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

games::CoverageSpace effective_space(const SolveContext& ctx) {
  if (ctx.space != nullptr && !ctx.space->is_default()) {
    if (ctx.space->num_targets() != ctx.game.num_targets()) {
      throw InvalidModelError(
          "effective_space: coverage space does not match the game's "
          "target count");
    }
    return *ctx.space;
  }
  return games::CoverageSpace::simplex(ctx.game.num_targets(),
                                       ctx.game.resources());
}

void finalize_solution(const SolveContext& ctx, DefenderSolution& sol,
                       double seconds) {
  sol.wall_seconds = seconds;
  // Non-simplex polytope: solvers without native support produce a
  // simplex-feasible strategy; the degrade path projects it onto the
  // actual space before anything downstream (worst case, certificate
  // residuals) is measured.  Natively-feasible strategies pass the check
  // untouched, and the simplex path never enters this branch, keeping it
  // bitwise-identical to the pre-abstraction behavior.
  const bool nontrivial_space = ctx.space != nullptr &&
                                !ctx.space->is_default() &&
                                !ctx.space->is_simplex();
  if (nontrivial_space &&
      sol.strategy.size() == ctx.space->num_targets() &&
      !ctx.space->is_feasible(sol.strategy, 1e-9)) {
    sol.strategy = ctx.space->project(sol.strategy);
  }
  if (!sol.strategy.empty()) {
    sol.worst_case_utility =
        worst_case_utility(ctx.game, ctx.bounds, sol.strategy);
  }
  // Base certificate: every solver family carries enough evidence for
  // audit::verify to re-check feasibility and the realized worst case.
  audit::SolutionCertificate& cert = sol.certificate;
  cert.present = true;
  cert.targets = ctx.game.num_targets();
  cert.resources = ctx.game.resources();
  cert.claimed_worst_case = sol.worst_case_utility;
  if (nontrivial_space) {
    cert.coverage = ctx.space->descriptor();
    ctx.space->residuals(sol.strategy, cert.budget_residual,
                         cert.box_residual);
  } else {
    double sum = 0.0;
    double box = 0.0;
    for (double xi : sol.strategy) {
      sum += xi;
      box = std::max(box, std::max(-xi, xi - 1.0));
    }
    cert.box_residual = std::max(0.0, box);
    cert.budget_residual = std::max(0.0, sum - ctx.game.resources());
  }
  // Injected corruptions, AFTER the claims above are recorded, so the
  // independent verifier must catch the disagreement (end-to-end audit
  // detection tests + CI smoke).
  if (!sol.strategy.empty() &&
      faultinject::should_fail(
          faultinject::Site::kAuditCorruptSolution)) {
    // Move coordinate 0 by 0.4 away from its nearest box edge: always a
    // real change (never clamped into a no-op), so the recomputed worst
    // case cannot match the claim.
    double& x0 = sol.strategy.front();
    x0 += x0 > 0.5 ? -0.4 : 0.4;
  }
  if (faultinject::should_fail(
          faultinject::Site::kAuditCorruptCertificate)) {
    // Invert the bracket: structurally malformed evidence.
    cert.has_bracket = true;
    cert.epsilon = cert.epsilon > 0.0 ? cert.epsilon : 1e-3;
    cert.segments = std::max(cert.segments, 1);
    cert.lb = cert.ub + 1.0;
    cert.rounds.clear();
  }
  // Per-terminal-status counters: one family keyed by status name plus
  // dedicated totals for the two budget outcomes dashboards alert on.
  obs::Registry::global()
      .counter(std::string("solve.status.")
                   .append(to_string(sol.status)))
      .add(1);
  if (sol.status == SolverStatus::kDeadlineExceeded) {
    obs::Registry::global().counter("solve.deadline_exceeded_total").add(1);
  } else if (sol.status == SolverStatus::kCancelled) {
    obs::Registry::global().counter("solve.cancelled_total").add(1);
  }
}

DefenderSolution UniformSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  DefenderSolution sol;
  // The simplex seed is R/T exactly — the legacy uniform_strategy.
  sol.strategy = effective_space(ctx).uniform_seed();
  sol.status = SolverStatus::kOptimal;
  sol.solver_objective = 0.0;
  sol.certificate.solver = name();
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

#include "core/solvers.hpp"

#include <string>

#include "common/timer.hpp"
#include "core/worst_case.hpp"
#include "games/strategy_space.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

void finalize_solution(const SolveContext& ctx, DefenderSolution& sol,
                       double seconds) {
  sol.wall_seconds = seconds;
  if (!sol.strategy.empty()) {
    sol.worst_case_utility =
        worst_case_utility(ctx.game, ctx.bounds, sol.strategy);
  }
  // Per-terminal-status counters: one family keyed by status name plus
  // dedicated totals for the two budget outcomes dashboards alert on.
  obs::Registry::global()
      .counter(std::string("solve.status.")
                   .append(to_string(sol.status)))
      .add(1);
  if (sol.status == SolverStatus::kDeadlineExceeded) {
    obs::Registry::global().counter("solve.deadline_exceeded_total").add(1);
  } else if (sol.status == SolverStatus::kCancelled) {
    obs::Registry::global().counter("solve.cancelled_total").add(1);
  }
}

DefenderSolution UniformSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  DefenderSolution sol;
  sol.strategy = games::uniform_strategy(ctx.game.num_targets(),
                                         ctx.game.resources());
  sol.status = SolverStatus::kOptimal;
  sol.solver_objective = 0.0;
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

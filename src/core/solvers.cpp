#include "core/solvers.hpp"

#include "common/timer.hpp"
#include "core/worst_case.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {

void finalize_solution(const SolveContext& ctx, DefenderSolution& sol,
                       double seconds) {
  sol.wall_seconds = seconds;
  if (!sol.strategy.empty()) {
    sol.worst_case_utility =
        worst_case_utility(ctx.game, ctx.bounds, sol.strategy);
  }
}

DefenderSolution UniformSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  DefenderSolution sol;
  sol.strategy = games::uniform_strategy(ctx.game.num_targets(),
                                         ctx.game.resources());
  sol.status = SolverStatus::kOptimal;
  sol.solver_objective = 0.0;
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

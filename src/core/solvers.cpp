#include "core/solvers.hpp"

#include <algorithm>
#include <string>

#include "common/fault_inject.hpp"
#include "common/timer.hpp"
#include "core/worst_case.hpp"
#include "games/strategy_space.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

void finalize_solution(const SolveContext& ctx, DefenderSolution& sol,
                       double seconds) {
  sol.wall_seconds = seconds;
  if (!sol.strategy.empty()) {
    sol.worst_case_utility =
        worst_case_utility(ctx.game, ctx.bounds, sol.strategy);
  }
  // Base certificate: every solver family carries enough evidence for
  // audit::verify to re-check feasibility and the realized worst case.
  audit::SolutionCertificate& cert = sol.certificate;
  cert.present = true;
  cert.targets = ctx.game.num_targets();
  cert.resources = ctx.game.resources();
  cert.claimed_worst_case = sol.worst_case_utility;
  double sum = 0.0;
  double box = 0.0;
  for (double xi : sol.strategy) {
    sum += xi;
    box = std::max(box, std::max(-xi, xi - 1.0));
  }
  cert.box_residual = std::max(0.0, box);
  cert.budget_residual = std::max(0.0, sum - ctx.game.resources());
  // Injected corruptions, AFTER the claims above are recorded, so the
  // independent verifier must catch the disagreement (end-to-end audit
  // detection tests + CI smoke).
  if (!sol.strategy.empty() &&
      faultinject::should_fail(
          faultinject::Site::kAuditCorruptSolution)) {
    // Move coordinate 0 by 0.4 away from its nearest box edge: always a
    // real change (never clamped into a no-op), so the recomputed worst
    // case cannot match the claim.
    double& x0 = sol.strategy.front();
    x0 += x0 > 0.5 ? -0.4 : 0.4;
  }
  if (faultinject::should_fail(
          faultinject::Site::kAuditCorruptCertificate)) {
    // Invert the bracket: structurally malformed evidence.
    cert.has_bracket = true;
    cert.epsilon = cert.epsilon > 0.0 ? cert.epsilon : 1e-3;
    cert.segments = std::max(cert.segments, 1);
    cert.lb = cert.ub + 1.0;
    cert.rounds.clear();
  }
  // Per-terminal-status counters: one family keyed by status name plus
  // dedicated totals for the two budget outcomes dashboards alert on.
  obs::Registry::global()
      .counter(std::string("solve.status.")
                   .append(to_string(sol.status)))
      .add(1);
  if (sol.status == SolverStatus::kDeadlineExceeded) {
    obs::Registry::global().counter("solve.deadline_exceeded_total").add(1);
  } else if (sol.status == SolverStatus::kCancelled) {
    obs::Registry::global().counter("solve.cancelled_total").add(1);
  }
}

DefenderSolution UniformSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  DefenderSolution sol;
  sol.strategy = games::uniform_strategy(ctx.game.num_targets(),
                                         ctx.game.resources());
  sol.status = SolverStatus::kOptimal;
  sol.solver_objective = 0.0;
  sol.certificate.solver = name();
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

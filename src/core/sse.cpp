#include "core/sse.hpp"

#include <limits>
#include <string>

#include "common/timer.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::core {

std::size_t best_response_target(const games::SecurityGame& game,
                                 std::span<const double> x) {
  std::size_t best = 0;
  double best_ua = -std::numeric_limits<double>::infinity();
  double best_ud = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < game.num_targets(); ++i) {
    const double ua = game.attacker_utility(i, x[i]);
    const double ud = game.defender_utility(i, x[i]);
    // Strict attacker improvement, or a tie broken in the defender's favor.
    if (ua > best_ua + 1e-12 || (ua > best_ua - 1e-12 && ud > best_ud)) {
      best = i;
      best_ua = ua;
      best_ud = ud;
    }
  }
  return best;
}

double epsilon_response_utility(const games::SecurityGame& game,
                                std::span<const double> x, double epsilon) {
  if (!(epsilon >= 0.0)) {
    throw InvalidModelError("epsilon_response_utility: epsilon must be >= 0");
  }
  double best_ua = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < game.num_targets(); ++i) {
    best_ua = std::max(best_ua, game.attacker_utility(i, x[i]));
  }
  double worst_ud = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < game.num_targets(); ++i) {
    if (game.attacker_utility(i, x[i]) >= best_ua - epsilon - 1e-12) {
      worst_ud = std::min(worst_ud, game.defender_utility(i, x[i]));
    }
  }
  return worst_ud;
}

SseResult solve_sse(const games::SecurityGame& game) {
  const std::size_t n = game.num_targets();
  SseResult out;
  double best = -std::numeric_limits<double>::infinity();

  // Multiple-LPs method: one LP per candidate best-response target t.
  for (std::size_t t = 0; t < n; ++t) {
    const auto& pt = game.target(t);
    // max Ud_t(x_t) = Pd_t + (Rd_t - Pd_t) x_t
    // s.t. Ua_t(x_t) >= Ua_i(x_i) for all i,  x in X.
    lp::Model m;
    m.set_objective_sense(lp::Objective::kMaximize);
    std::vector<int> xc(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double obj =
          i == t ? pt.defender_reward - pt.defender_penalty : 0.0;
      xc[i] = m.add_col("x" + std::to_string(i), 0.0, 1.0, obj);
    }
    // Fixed column carrying the constant Pd_t, so objective values are
    // directly comparable across the n LPs.
    m.add_col("one", 1.0, 1.0, pt.defender_penalty);

    const int budget = m.add_row("budget", lp::Sense::kEq,
                                 game.resources());
    for (std::size_t i = 0; i < n; ++i) m.set_coeff(budget, xc[i], 1.0);

    // Ua_t >= Ua_i:
    //   Ra_t + (Pa_t - Ra_t) x_t >= Ra_i + (Pa_i - Ra_i) x_i
    for (std::size_t i = 0; i < n; ++i) {
      if (i == t) continue;
      const auto& pi = game.target(i);
      const int r = m.add_row("br" + std::to_string(i), lp::Sense::kGe,
                              pi.attacker_reward - pt.attacker_reward);
      m.set_coeff(r, xc[t], pt.attacker_penalty - pt.attacker_reward);
      m.set_coeff(r, xc[i], -(pi.attacker_penalty - pi.attacker_reward));
    }

    lp::LpSolution s = lp::solve_lp(m);
    if (!s.optimal()) continue;  // t cannot be made a best response
    if (s.objective > best) {
      best = s.objective;
      out.strategy.assign(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) out.strategy[i] = s.x[xc[i]];
      out.attacked_target = t;
      out.defender_utility = s.objective;
      out.attacker_utility = game.attacker_utility(t, s.x[xc[t]]);
    }
  }

  out.status = out.strategy.empty() ? SolverStatus::kInfeasible
                                    : SolverStatus::kOptimal;
  return out;
}

DefenderSolution SseSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  SseResult sse = solve_sse(ctx.game);
  DefenderSolution sol;
  sol.status = sse.status;
  sol.strategy = std::move(sse.strategy);
  sol.solver_objective = sse.defender_utility;
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

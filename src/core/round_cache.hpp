// Solve-scoped reuse for the warm-started binary search.
//
// Both per-target functions of Section IV.C are affine in the search value
// c once the breakpoint grid is fixed:
//
//   f1_i(k/K) = L_i(k/K) * Ud_i(k/K) - c * L_i(k/K)
//   f2_i(k/K) = U_i(k/K) * Ud_i(k/K) - c * U_i(k/K)
//
// so a RoundCache precomputes the four tables L, U, L*Ud, U*Ud once per
// solve and every round's f1/f2/phi rebuild is one axpy per function
// (table_a - c * table_b) instead of 2*T*(K+1) functor evaluations and
// 3*T fresh PiecewiseLinear allocations.  The step MILP's constraint
// skeleton (rows (34)-(40), big-M rows) is likewise round-invariant: a
// MilpStepCache builds it once (dense, so the entry layout never changes)
// and patches only the c-dependent objective coefficients, big-M entries
// and right-hand sides between rounds, carrying the previous round's
// optimal root basis as a lp::WarmStart for the next root relaxation.
//
// Everything here is bitwise-compatible with the fresh per-round path in
// cubis.cpp (the reuse_rounds=off oracle): f1_of/f2_of use the same
// distributed arithmetic as the axpy, the dense skeleton differs from the
// fresh model only in explicitly-stored zero coefficients (dropped by both
// the simplex standard form and presolve), and the per-round big-M is
// recomputed with the fresh path's exact formula.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cubis.hpp"
#include "core/piecewise.hpp"
#include "core/step_solver.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::core {

/// Piecewise approximations of f1_i and f2_i (Section IV.C) at a value c.
struct TargetPls {
  PiecewiseLinear f1;
  PiecewiseLinear f2;
};

/// Column layout of the paper MILP (33)-(40).
struct MilpLayout {
  int one = 0;                      ///< fixed [1,1] column for constants
  int x0 = 0;                       ///< x_{i,k} block start (T*K columns)
  int v0 = 0;                       ///< v_i block start
  int q0 = 0;                       ///< q_i block start
  int h0 = 0;                       ///< h_{i,k} block start (T*(K-1))
  std::size_t t_count = 0;
  std::size_t k_count = 0;

  int xcol(std::size_t i, std::size_t k) const {
    return x0 + static_cast<int>(i * k_count + k);
  }
  int vcol(std::size_t i) const { return v0 + static_cast<int>(i); }
  int qcol(std::size_t i) const { return q0 + static_cast<int>(i); }
  int hcol(std::size_t i, std::size_t k) const {
    return h0 + static_cast<int>(i * (k_count - 1) + k);
  }
};

/// Per-target row ids of the big-M block, recorded at assembly time so a
/// MilpStepCache can patch without re-deriving the row order.
struct MilpRowIds {
  std::vector<int> r34;  ///< link_vq:  v_i - M q_i <= 0
  std::vector<int> r35;  ///< lb_v:     sum (s1-s2) x - v_i <= -d0
  std::vector<int> r36;  ///< ub_v:     v_i - sum (s1-s2) x + M q_i <= d0+M
};

/// Assembles the MILP (33)-(40).  `big_m` must dominate |f1~ - f2~|.
/// With `dense` set, the (35)/(36) rows store every x coefficient even
/// when it is zero, so the entry layout is invariant under later patching
/// (explicit zeros are dropped again by the simplex standard form and by
/// presolve, so the solved problem is identical).  `space`, when non-null
/// and not the simplex, drives the (37) budget rows instead of the legacy
/// CubisOptions group fields: one row per polytope budget group plus one
/// cap row per target with cap < 1 (patrol-graph reachability).  Null or
/// simplex keeps the legacy emission byte-for-byte.
lp::Model build_step_milp(const SolveContext& ctx,
                          const std::vector<TargetPls>& pls, double big_m,
                          const CubisOptions& opt, MilpLayout& layout,
                          bool dense = false, MilpRowIds* rows = nullptr,
                          const games::CoverageSpace* space = nullptr);

/// Maps a coverage vector x (on the segment grid or not) to a full MILP
/// variable assignment satisfying (34)-(40).
std::vector<double> milp_point_from_x(const MilpLayout& layout,
                                      const std::vector<TargetPls>& pls,
                                      const std::vector<double>& x,
                                      int num_cols);

/// The per-round big-M of the fresh path: max over breakpoints of
/// |f1 - f2| + 1, floored at 1.  Shared so patched models match bitwise.
double step_big_m(const std::vector<TargetPls>& pls);

/// Affine-in-c breakpoint cache (one per solve, or one per multisection
/// slot).  set_value(c) rebuilds every f1/f2/phi table in place.
class RoundCache {
 public:
  /// Flattens `tables` and precomputes the products.  `build_pls` keeps
  /// PiecewiseLinear views of f1/f2 alive for the MILP backend; the DP
  /// backend only needs the flat phi table.
  RoundCache(const StepTables& tables, bool build_pls);

  /// Re-runs the constructor's flattening in place for a new solve,
  /// reusing the existing buffers when the shape matches (the workspace
  /// reuse contract: capacity survives, values never do).  Every table the
  /// next set_value reads is overwritten.
  void rebuild(const StepTables& tables, bool build_pls);

  std::size_t t_count() const { return t_; }
  std::size_t k_count() const { return kp1_ - 1; }

  /// Rebuilds f1/f2/phi for the given binary-search value.  Counts one
  /// piecewise.cache_hits_total per function rebuilt (3 per target), the
  /// same 3*T functions the fresh path would have constructed.
  void set_value(double c);

  /// phi breakpoints, flattened [T][K+1]: the DP backend's objective.
  const std::vector<double>& phi_flat() const { return phi_; }
  /// f1/f2 views for the MILP backend; empty when built with !build_pls.
  const std::vector<TargetPls>& pls() const { return pls_; }

 private:
  std::size_t t_ = 0;
  std::size_t kp1_ = 0;  ///< K+1
  std::vector<double> l_;    ///< L_i(x_k), flattened [T][K+1]
  std::vector<double> u_;    ///< U_i(x_k)
  std::vector<double> lud_;  ///< L_i(x_k) * Ud_i(x_k)
  std::vector<double> uud_;  ///< U_i(x_k) * Ud_i(x_k)
  std::vector<double> f1_;   ///< current round, flattened
  std::vector<double> f2_;
  std::vector<double> phi_;
  std::vector<TargetPls> pls_;
};

/// Patchable MILP skeleton plus the cross-round root warm-start basis.
class MilpStepCache {
 public:
  /// Builds the dense skeleton from the cache's current pls.
  MilpStepCache(const SolveContext& ctx, const RoundCache& cache,
                const CubisOptions& opt);

  /// Seeds the skeleton from a transplant donor's copy (cross-solve
  /// cache).  The structure must come from the same (T, K, R, group
  /// config); every value-dependent entry is stale until the caller's
  /// first patch(), and the root basis starts empty — a donor's basis is
  /// never carried across solves.
  MilpStepCache(lp::Model model, MilpLayout layout, MilpRowIds rows)
      : model_(std::move(model)),
        layout_(std::move(layout)),
        rows_(std::move(rows)) {}

  /// Rewrites the c-dependent pieces (objective coefficients, big-M
  /// entries, RHS, v bounds) for the cache's current round.  Counts one
  /// milp.model_patches_total.
  void patch(const RoundCache& cache);

  const lp::Model& model() const { return model_; }
  const MilpLayout& layout() const { return layout_; }
  const MilpRowIds& rows() const { return rows_; }
  lp::WarmStart& root_basis() { return root_basis_; }

 private:
  lp::Model model_;
  MilpLayout layout_;
  MilpRowIds rows_;
  lp::WarmStart root_basis_;
};

/// Everything one binary-search stream reuses across rounds.  CubisSolver
/// allocates one slot per multisection lane when reuse_rounds is on and
/// threads it through cubis_step; the slot owns the breakpoint cache, the
/// DP scratch and (lazily, for the kMilp backend) the MILP skeleton.
struct RoundReuse {
  RoundReuse(const StepTables& tables, bool milp_backend)
      : cache(tables, milp_backend) {}

  /// Re-arms the slot for a new solve: rebuilds the breakpoint cache from
  /// `tables` and drops the MILP skeleton plus its root basis (the
  /// skeleton's budget rows encode the game's resources and patch() never
  /// rewrites them, and a stale basis could steer the next solve's
  /// branch-and-bound differently — dropping both keeps a reused slot
  /// bitwise-identical to a fresh one).  The DP scratch keeps its buffer:
  /// solve_step_dp_flat overwrites every value it reads.
  void reset(const StepTables& tables, bool milp_backend) {
    cache.rebuild(tables, milp_backend);
    milp.reset();
  }

  RoundCache cache;
  DpScratch dp_scratch;
  std::unique_ptr<MilpStepCache> milp;
};

}  // namespace cubisg::core

#include "core/origami.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/timer.hpp"

namespace cubisg::core {

namespace {

/// Coverage needed at target i for attacker utility u:
///   Ua_i(x) = Ra_i + (Pa_i - Ra_i) x = u  ->  x = (Ra_i - u)/(Ra_i - Pa_i).
double coverage_for_utility(const games::TargetPayoffs& p, double u) {
  return (p.attacker_reward - u) / (p.attacker_reward - p.attacker_penalty);
}

}  // namespace

OrigamiResult solve_origami(const games::SecurityGame& game) {
  const std::size_t n = game.num_targets();
  OrigamiResult out;
  out.strategy.assign(n, 0.0);

  // Order targets by uncovered attacker utility Ra descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return game.target(a).attacker_reward > game.target(b).attacker_reward;
  });

  double budget = game.resources();
  // The attack set is order[0..k): targets currently indifferent at
  // utility `u`.  Saturated targets (coverage 1) stay in the set but no
  // longer consume budget as u drops further than their Pa.
  double u = game.target(order[0]).attacker_reward;
  std::size_t k = 1;

  // Lower the common utility u in stages; each stage either admits the
  // next target (u reaches its Ra), saturates a member (u reaches its Pa),
  // or exhausts the budget.
  while (true) {
    // Unsaturated members determine the marginal budget per unit of u.
    double inv_sum = 0.0;       // sum of 1/(Ra - Pa)
    double used_fixed = 0.0;    // budget consumed by saturated members
    double u_floor =
        -std::numeric_limits<double>::infinity();  // next saturation
    for (std::size_t j = 0; j < k; ++j) {
      const auto& p = game.target(order[j]);
      if (u <= p.attacker_penalty) {
        used_fixed += 1.0;  // saturated at coverage 1
      } else {
        inv_sum += 1.0 / (p.attacker_reward - p.attacker_penalty);
        u_floor = std::max(u_floor, p.attacker_penalty);
      }
    }
    // Candidate stopping utilities: the next target's Ra, the next
    // saturation point, and the budget-exhaustion utility.
    const double u_next = k < n
                              ? game.target(order[k]).attacker_reward
                              : -std::numeric_limits<double>::infinity();
    // Budget consumed at utility value v (> u_floor):
    //   used_fixed + sum_j coverage_for_utility(j, v)
    auto budget_at = [&](double v) {
      double b = used_fixed;
      for (std::size_t j = 0; j < k; ++j) {
        const auto& p = game.target(order[j]);
        if (u <= p.attacker_penalty) continue;  // already saturated
        b += std::min(1.0, coverage_for_utility(p, v));
      }
      return b;
    };

    double stop_u = std::max(u_next, u_floor);
    bool exhausted = false;
    if (inv_sum == 0.0) {
      // Everything saturated: can only admit the next target (for free —
      // its required coverage at its own Ra is zero).
      if (k >= n || used_fixed >= budget) break;
      u = u_next;
      ++k;
      continue;
    }
    if (budget_at(stop_u) >= budget) {
      // The budget runs out before reaching stop_u: solve budget_at(v) = R
      // on the linear stretch (no saturation changes in (stop_u, u)).
      //   used_fixed + sum (Ra_j - v)/(Ra_j - Pa_j) = R
      double ra_ratio = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const auto& p = game.target(order[j]);
        if (u <= p.attacker_penalty) continue;
        ra_ratio += p.attacker_reward /
                    (p.attacker_reward - p.attacker_penalty);
      }
      stop_u = (ra_ratio + used_fixed - budget) / inv_sum;
      exhausted = true;
    }
    u = stop_u;
    if (exhausted) break;
    if (k < n && u == u_next) {
      ++k;  // admit the next target into the attack set
      continue;
    }
    // Otherwise a member just saturated (u == its Pa); loop to rebuild the
    // saturation bookkeeping.  Guard against infinite loops when nothing
    // can change anymore.
    if (u <= u_floor && k >= n) break;
    if (u > u_floor) break;  // nothing left to do
  }

  // Materialize coverage for the attack set at the final utility u.
  for (std::size_t j = 0; j < k; ++j) {
    const auto& p = game.target(order[j]);
    out.strategy[order[j]] =
        std::min(1.0, std::max(0.0, coverage_for_utility(p, u)));
  }
  out.attack_set.assign(order.begin(), order.begin() + k);
  std::sort(out.attack_set.begin(), out.attack_set.end());
  out.attacker_utility = u;

  // The attacker picks, within the attack set, the target best for the
  // defender (SSE tie-breaking).
  double best_ud = -std::numeric_limits<double>::infinity();
  for (std::size_t i : out.attack_set) {
    const double ud = game.defender_utility(i, out.strategy[i]);
    if (ud > best_ud) {
      best_ud = ud;
      out.attacked_target = i;
    }
  }
  out.defender_utility = best_ud;
  out.status = SolverStatus::kOptimal;
  return out;
}

DefenderSolution OrigamiSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  OrigamiResult res = solve_origami(ctx.game);
  DefenderSolution sol;
  sol.status = res.status;
  sol.strategy = std::move(res.strategy);
  sol.solver_objective = res.defender_utility;
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

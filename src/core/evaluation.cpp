#include "core/evaluation.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "games/generators.hpp"

namespace cubisg::core {

namespace {

struct Accumulator {
  std::vector<double> worst, samp_min, samp_mean, ms;
};

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double std_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean_of(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

}  // namespace

std::vector<EvaluationRow> evaluate_solvers(const EvaluationSpec& spec) {
  if (spec.solvers.empty()) {
    throw InvalidModelError("evaluate_solvers: no solvers given");
  }
  if (spec.games < 1) {
    throw InvalidModelError("evaluate_solvers: games must be >= 1");
  }
  std::vector<Accumulator> acc(spec.solvers.size());

  for (int g = 0; g < spec.games; ++g) {
    Rng rng(spec.seed + static_cast<std::uint64_t>(g));
    auto ug = games::random_uncertain_game(rng, spec.targets,
                                           spec.resources,
                                           spec.payoff_width);
    behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                        ug.attacker_intervals);
    SolveContext ctx{ug.game, bounds};

    std::shared_ptr<behavior::SampledSuqrPopulation> population;
    if (spec.sample_types > 0) {
      Rng pop_rng(spec.seed ^ (0x5A5A5A5AULL + g));
      population = std::make_shared<behavior::SampledSuqrPopulation>(
          behavior::SuqrWeightIntervals{}, ug.attacker_intervals,
          spec.sample_types, pop_rng);
    }

    for (std::size_t s = 0; s < spec.solvers.size(); ++s) {
      SolverSpec solver_spec = spec.solvers[s];
      if (!solver_spec.population) solver_spec.population = population;
      auto solution = make_solver(solver_spec)->solve(ctx);
      acc[s].worst.push_back(solution.worst_case_utility);
      acc[s].ms.push_back(solution.wall_seconds * 1e3);
      if (population && !solution.strategy.empty()) {
        acc[s].samp_min.push_back(
            population->min_defender_utility(ug.game, solution.strategy));
        acc[s].samp_mean.push_back(
            population->mean_defender_utility(ug.game, solution.strategy));
      }
    }
  }

  std::vector<EvaluationRow> rows;
  for (std::size_t s = 0; s < spec.solvers.size(); ++s) {
    EvaluationRow row;
    row.solver = spec.solvers[s].name;
    row.worst_mean = mean_of(acc[s].worst);
    row.worst_std = std_of(acc[s].worst);
    row.sampled_min_mean = mean_of(acc[s].samp_min);
    row.sampled_mean_mean = mean_of(acc[s].samp_mean);
    row.wall_ms_mean = mean_of(acc[s].ms);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string to_markdown(const std::vector<EvaluationRow>& rows,
                        bool with_samples) {
  std::string out = with_samples
                        ? "| solver | worst-case | sampled-min | "
                          "sampled-mean | ms |\n|---|---|---|---|---|\n"
                        : "| solver | worst-case | ms |\n|---|---|---|\n";
  char buf[160];
  for (const EvaluationRow& r : rows) {
    if (with_samples) {
      std::snprintf(buf, sizeof buf,
                    "| %s | %.3f ± %.3f | %.3f | %.3f | %.2f |\n",
                    r.solver.c_str(), r.worst_mean, r.worst_std,
                    r.sampled_min_mean, r.sampled_mean_mean,
                    r.wall_ms_mean);
    } else {
      std::snprintf(buf, sizeof buf, "| %s | %.3f ± %.3f | %.2f |\n",
                    r.solver.c_str(), r.worst_mean, r.worst_std,
                    r.wall_ms_mean);
    }
    out += buf;
  }
  return out;
}

}  // namespace cubisg::core

// The paper's H and G functions (Equations 14 and 18).
//
// Given a strategy x with defender utilities u_i = Ud_i(x_i) and
// attractiveness bounds L_i = L_i(x_i), U_i = U_i(x_i):
//
//   H(x, b) = [ sum_i L_i u_i - sum_i (U_i - L_i) b_i ] / sum_i L_i   (14)
//
// is the defender's worst-case utility as a function of the dual variables
// b (beta in the paper), and
//
//   G(x, b, c) = sum_i L_i u_i - sum_i (U_i - L_i) b_i - c sum_i L_i  (18)
//
// is the numerator of H - c.  Proposition 3 pins the optimal duals to
// b_i = max(0, c - u_i), making both functions univariate in c for fixed x.
#pragma once

#include <span>
#include <vector>

namespace cubisg::core {

/// Pointwise data of a strategy evaluation: utilities and bounds at x.
struct PointData {
  std::vector<double> u;  ///< Ud_i(x_i)
  std::vector<double> L;  ///< L_i(x_i)
  std::vector<double> U;  ///< U_i(x_i)
};

/// H(x, b) of Eq. 14 given precomputed point data.
double h_value(const PointData& p, std::span<const double> beta);

/// G(x, b, c) of Eq. 18 given precomputed point data.
double g_value(const PointData& p, std::span<const double> beta, double c);

/// Proposition 3 duals: b_i = max(0, c - u_i).
std::vector<double> beta_of(const PointData& p, double c);

/// G(x, beta_of(c), c): strictly decreasing in c; its unique root is the
/// defender's worst-case utility at x (equals the inner LP optimum).
double g_at(const PointData& p, double c);

/// The per-target functions of Section IV.C:
///   f1_i(x) = L_i(x) (Ud_i(x) - c),  f2_i(x) = U_i(x) (Ud_i(x) - c).
/// Provided as free helpers so the piecewise machinery and the MILP
/// assembly share one definition.
double f1_of(double L, double u, double c);
double f2_of(double U, double u, double c);

}  // namespace cubisg::core

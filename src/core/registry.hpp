// Name-based solver construction, for CLIs, benches and config files.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "behavior/attacker_sim.hpp"
#include "core/solvers.hpp"

namespace cubisg::core {

/// Declarative description of a solver configuration.
struct SolverSpec {
  /// One of solver_names(): "cubis", "cubis-milp", "cubis-adaptive",
  /// "midpoint", "maximin", "gradient", "sse", "uniform", "robust-types",
  /// "bayesian".
  std::string name = "cubis";
  std::size_t segments = 20;       ///< K for binary-search solvers
  double epsilon = 1e-3;           ///< binary-search threshold
  int polish_iterations = 0;       ///< gradient polish (cubis variants)
  int parallel_sections = 1;       ///< multisection width (cubis variants)
  int num_starts = 8;              ///< restarts (gradient-based solvers)
  std::uint64_t seed = 0x5EED;     ///< seed for stochastic components
  /// Sampled attacker types; required by "robust-types" and "bayesian".
  std::shared_ptr<const behavior::SampledSuqrPopulation> population;
  /// Coverage polytope the solve runs on.  Default-constructed = the
  /// paper's simplex.  Folded into canonical_solver_config (and hence the
  /// fingerprint compat hash) so two configs over different polytopes can
  /// never alias into the same exact-cache entry.
  games::CoverageSpace coverage{};
  /// Legacy grouped-budget passthrough (CubisOptions::target_groups /
  /// group_budgets); prefer `coverage` for new callers.  Also folded into
  /// canonical_solver_config — the historical aliasing bug was that two
  /// grouped configs differing only in per-slot budgets hashed equal.
  std::vector<std::size_t> target_groups;
  std::vector<double> group_budgets;
};

/// All registered solver names.
std::vector<std::string> solver_names();

/// Stable canonical string of every tolerance-relevant field of `spec`,
/// the solver-identity component of a core::Fingerprint.  Two specs map
/// to the same string iff make_solver would build solvers whose solutions
/// are bitwise-interchangeable on every scenario (floating-point fields
/// are rendered losslessly with %a).  Over-discrimination is safe — a
/// field some solver ignores only costs cache hits across configs that
/// differ in it — so every spec field is included.
std::string canonical_solver_config(const SolverSpec& spec);

/// Builds the solver described by `spec`.  Throws InvalidModelError on an
/// unknown name or a missing required field.
std::unique_ptr<DefenderSolver> make_solver(const SolverSpec& spec);

}  // namespace cubisg::core

#include "core/maximin.hpp"

#include <string>

#include "common/timer.hpp"
#include "core/workspace.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::core {

namespace {

/// Builds the maximin LP skeleton from scratch for `n` targets.
void build_maximin_skeleton(const SolveContext& ctx, std::size_t n,
                            MaximinSkeleton& sk) {
  sk.model = lp::Model();
  sk.model.set_objective_sense(lp::Objective::kMaximize);
  sk.xcol.resize(n);
  sk.floor_rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sk.xcol[i] = sk.model.add_col("x" + std::to_string(i), 0.0, 1.0, 0.0);
  }
  sk.zcol = sk.model.add_col("z", -lp::kInf, lp::kInf, 1.0);
  sk.budget_row = sk.model.add_row("budget", lp::Sense::kEq,
                                   ctx.game.resources());
  for (std::size_t i = 0; i < n; ++i) {
    sk.model.set_coeff(sk.budget_row, sk.xcol[i], 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // z - (Rd_i - Pd_i) x_i <= Pd_i
    const auto& p = ctx.game.target(i);
    sk.floor_rows[i] = sk.model.add_row("floor" + std::to_string(i),
                                        lp::Sense::kLe, p.defender_penalty);
    sk.model.set_coeff(sk.floor_rows[i], sk.zcol, 1.0);
    sk.model.set_coeff(sk.floor_rows[i], sk.xcol[i],
                       -(p.defender_reward - p.defender_penalty));
  }
  sk.targets = n;
  sk.built = true;
}

/// Space-driven variant for non-simplex polytopes, built fresh per solve
/// (the patchable skeleton encodes the single simplex budget row, which
/// patch never rewrites): per-group <= budget rows, column upper bounds
/// from the reachability caps, same floor rows.
void build_maximin_space_model(const SolveContext& ctx,
                               const games::CoverageSpace& space,
                               std::size_t n, MaximinSkeleton& sk) {
  sk.model = lp::Model();
  sk.model.set_objective_sense(lp::Objective::kMaximize);
  sk.xcol.resize(n);
  sk.floor_rows.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sk.xcol[i] = sk.model.add_col("x" + std::to_string(i), 0.0,
                                  space.cap(i), 0.0);
  }
  sk.zcol = sk.model.add_col("z", -lp::kInf, lp::kInf, 1.0);
  sk.budget_row = -1;
  for (std::size_t g = 0; g < space.num_groups(); ++g) {
    // <= (not ==): with caps an equality can be unattainable, and more
    // coverage never lowers the floor objective anyway.
    const int row = sk.model.add_row("budget" + std::to_string(g),
                                     lp::Sense::kLe, space.budget(g));
    for (std::size_t i = 0; i < n; ++i) {
      if (space.group_of(i) == g) sk.model.set_coeff(row, sk.xcol[i], 1.0);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = ctx.game.target(i);
    sk.floor_rows[i] = sk.model.add_row("floor" + std::to_string(i),
                                        lp::Sense::kLe, p.defender_penalty);
    sk.model.set_coeff(sk.floor_rows[i], sk.zcol, 1.0);
    sk.model.set_coeff(sk.floor_rows[i], sk.xcol[i],
                       -(p.defender_reward - p.defender_penalty));
  }
  sk.targets = n;
  // Deliberately NOT reusable as a patch target: the in-place rewrite
  // below assumes the simplex layout.
  sk.built = false;
}

}  // namespace

DefenderSolution MaximinSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  const std::size_t n = ctx.game.num_targets();
  const games::CoverageSpace space = effective_space(ctx);

  // The LP's entry layout depends only on the target count, so a workspace
  // with a shape-matching skeleton just rewrites the game-dependent
  // numbers in place; the patched model equals a freshly built one
  // coefficient-for-coefficient (every entry is stored unconditionally).
  // Non-simplex polytopes rebuild fresh every call — their row set varies
  // with the space, so the skeleton contract does not apply.
  SolveWorkspace local_ws;
  SolveWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local_ws;
  MaximinSkeleton& sk = ws.maximin;
  if (!space.is_simplex()) {
    build_maximin_space_model(ctx, space, n, sk);
  } else if (!sk.built || sk.targets != n) {
    build_maximin_skeleton(ctx, n, sk);
  } else {
    sk.model.set_row_rhs(sk.budget_row, ctx.game.resources());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& p = ctx.game.target(i);
      sk.model.set_row_rhs(sk.floor_rows[i], p.defender_penalty);
      // Floor-row entry order from assembly: [z, x_i].
      sk.model.set_row_entry_value(
          sk.floor_rows[i], 1, -(p.defender_reward - p.defender_penalty));
    }
  }

  lp::LpSolution s = lp::solve_lp(sk.model);
  DefenderSolution sol;
  sol.status = s.status;
  if (s.optimal()) {
    sol.strategy.resize(n);
    for (std::size_t i = 0; i < n; ++i) sol.strategy[i] = s.x[sk.xcol[i]];
    sol.solver_objective = s.objective;
  }
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

#include "core/maximin.hpp"

#include <string>

#include "common/timer.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::core {

DefenderSolution MaximinSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  const std::size_t n = ctx.game.num_targets();

  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  std::vector<int> xcol(n);
  for (std::size_t i = 0; i < n; ++i) {
    xcol[i] = m.add_col("x" + std::to_string(i), 0.0, 1.0, 0.0);
  }
  const int z = m.add_col("z", -lp::kInf, lp::kInf, 1.0);
  const int budget = m.add_row("budget", lp::Sense::kEq,
                               ctx.game.resources());
  for (std::size_t i = 0; i < n; ++i) m.set_coeff(budget, xcol[i], 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    // z - (Rd_i - Pd_i) x_i <= Pd_i
    const auto& p = ctx.game.target(i);
    const int r = m.add_row("floor" + std::to_string(i), lp::Sense::kLe,
                            p.defender_penalty);
    m.set_coeff(r, z, 1.0);
    m.set_coeff(r, xcol[i], -(p.defender_reward - p.defender_penalty));
  }

  lp::LpSolution s = lp::solve_lp(m);
  DefenderSolution sol;
  sol.status = s.status;
  if (s.optimal()) {
    sol.strategy.resize(n);
    for (std::size_t i = 0; i < n; ++i) sol.strategy[i] = s.x[xcol[i]];
    sol.solver_objective = s.objective;
  }
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

#include "core/population_solvers.hpp"

#include <functional>
#include <limits>

#include "common/timer.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {

namespace {

/// Multi-start ascent of `objective` over X; shared driver for both
/// population baselines.
DefenderSolution maximize_over_strategies(
    const SolveContext& ctx, const GradientOptions& ascent,
    const std::function<double(const std::vector<double>&)>& objective) {
  Timer timer;
  const std::size_t n = ctx.game.num_targets();
  const double resources = ctx.game.resources();

  std::vector<std::vector<double>> starts;
  starts.push_back(games::uniform_strategy(n, resources));
  {
    std::vector<double> penalties(n);
    for (std::size_t i = 0; i < n; ++i) {
      penalties[i] = ctx.game.target(i).defender_penalty;
    }
    starts.push_back(games::greedy_by_penalty(penalties, resources));
  }
  Rng rng(ascent.seed);
  while (starts.size() < static_cast<std::size_t>(ascent.num_starts) + 2) {
    std::vector<double> x(n);
    for (double& xi : x) xi = rng.uniform();
    starts.push_back(games::project_to_simplex_box(x, resources));
  }

  DefenderSolution sol;
  sol.status = SolverStatus::kOptimal;
  double best = -std::numeric_limits<double>::infinity();
  for (auto& start : starts) {
    auto [x, value] =
        projected_ascent(objective, resources, std::move(start), ascent);
    if (value > best) {
      best = value;
      sol.strategy = std::move(x);
    }
  }
  sol.solver_objective = best;
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace

RobustTypesSolver::RobustTypesSolver(PopulationOptions options)
    : opt_(std::move(options)) {
  if (!opt_.population) {
    throw InvalidModelError("RobustTypesSolver: population required");
  }
}

DefenderSolution RobustTypesSolver::solve(const SolveContext& ctx) const {
  const behavior::SampledSuqrPopulation& pop = *opt_.population;
  auto objective = [&](const std::vector<double>& x) {
    return pop.min_defender_utility(ctx.game, x);
  };
  return maximize_over_strategies(ctx, opt_.ascent, objective);
}

BayesianSolver::BayesianSolver(PopulationOptions options)
    : opt_(std::move(options)) {
  if (!opt_.population) {
    throw InvalidModelError("BayesianSolver: population required");
  }
}

DefenderSolution BayesianSolver::solve(const SolveContext& ctx) const {
  const behavior::SampledSuqrPopulation& pop = *opt_.population;
  auto objective = [&](const std::vector<double>& x) {
    return pop.mean_defender_utility(ctx.game, x);
  };
  return maximize_over_strategies(ctx, opt_.ascent, objective);
}

}  // namespace cubisg::core

// ORIGAMI — Optimizing Resources In GAmes using Maximal Indifference
// (Kiekintveld et al., AAMAS 2009).
//
// The specialized O(T log T + T^2) algorithm for strong Stackelberg
// equilibria of security games: grow the attacker's *attack set* in
// decreasing order of uncovered attacker utility, spreading coverage so
// every member stays indifferent, until the budget runs out or a target's
// coverage saturates at 1.  Produces the same equilibrium as the
// multiple-LPs method (sse.hpp) at a fraction of the cost — the test suite
// cross-checks the two on random games.
#pragma once

#include <cstddef>
#include <vector>

#include "core/sse.hpp"
#include "games/security_game.hpp"

namespace cubisg::core {

/// ORIGAMI output: the SSE coverage plus attack-set diagnostics.
struct OrigamiResult {
  SolverStatus status = SolverStatus::kNumericalIssue;
  std::vector<double> strategy;
  /// Targets in the final attack set (attacker-indifferent, maximal Ua).
  std::vector<std::size_t> attack_set;
  /// The attacker's (indifferent) utility across the attack set.
  double attacker_utility = 0.0;
  /// Defender utility at the (favorably tie-broken) attacked target.
  double defender_utility = 0.0;
  std::size_t attacked_target = 0;
};

/// Runs ORIGAMI on `game`.
OrigamiResult solve_origami(const games::SecurityGame& game);

/// DefenderSolver adaptor for ORIGAMI (same equilibrium as SseSolver at a
/// fraction of the cost).
class OrigamiSolver final : public DefenderSolver {
 public:
  std::string name() const override { return "origami"; }
  DefenderSolution solve(const SolveContext& ctx) const override;
};

}  // namespace cubisg::core

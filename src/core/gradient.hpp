// Multi-start projected gradient ascent on the exact worst-case utility.
//
// This is the repo's substitute for the paper's generic non-convex solver
// baseline (MATLAB fmincon with multiple starting points): it maximizes
// W(x) — the closed-form worst-case evaluator — directly over
// X = {0 <= x <= 1, sum x = R} with numeric gradients, Euclidean projection
// and backtracking line search.  Starts run as independent tasks on the
// thread pool (each with its own RNG stream), so wall-clock scales with
// cores while results stay deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/solvers.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg::core {

/// Options for the projected-gradient baseline.
struct GradientOptions {
  int num_starts = 8;            ///< random restarts (plus uniform + greedy)
  int max_iterations = 200;      ///< ascent steps per start
  double initial_step = 0.25;    ///< first trial step length
  double step_shrink = 0.5;      ///< backtracking factor
  int max_backtracks = 20;
  double grad_eps = 1e-6;        ///< central-difference half-width
  double converge_tol = 1e-9;    ///< stop when the iterate stalls
  std::uint64_t seed = 0x5EEDU;  ///< restart sampling seed
  ThreadPool* pool = nullptr;    ///< null = global pool
};

/// Projected gradient ascent of an arbitrary objective over the strategy
/// polytope {0 <= x <= 1, sum x = R}: numeric central-difference gradient,
/// Euclidean projection, backtracking line search.  Returns the best
/// iterate and its objective value.  Shared by GradientSolver (objective =
/// exact worst case), the population-based baselines (min / mean expected
/// utility over sampled attacker types) and CUBIS's polish step.
std::pair<std::vector<double>, double> projected_ascent(
    const std::function<double(const std::vector<double>&)>& objective,
    double resources, std::vector<double> x0,
    const GradientOptions& options);

/// One projected-gradient ascent run on the exact worst-case utility W(x)
/// starting from `x0`.  Returns the improved strategy and its W value.
/// Used standalone by GradientSolver's restarts and as the optional polish
/// step of CubisSolver (a beyond-the-paper extension: the CUBIS grid
/// solution is already within O(1/K) of optimal, and a few exact ascent
/// steps remove most of that residual).
std::pair<std::vector<double>, double> local_ascent(
    const SolveContext& ctx, std::vector<double> x0,
    const GradientOptions& options);

/// The fmincon-style non-convex baseline.
class GradientSolver final : public DefenderSolver {
 public:
  explicit GradientSolver(GradientOptions options = {});

  std::string name() const override { return "gradient-multistart"; }
  DefenderSolution solve(const SolveContext& ctx) const override;

 private:
  GradientOptions opt_;
};

}  // namespace cubisg::core

// Strong Stackelberg equilibrium against a perfectly rational attacker.
//
// The classical SSG solution concept the behavioral line (QR, SUQR, CUBIS)
// departs from: the attacker observes x and attacks the target maximizing
// his own expected utility, breaking ties in the defender's favor.  Solved
// by the multiple-LPs method (Conitzer & Sandholm 2006, adapted to
// security games): for each candidate target t, an LP maximizes the
// defender's utility subject to t being an attacker best response; the
// best feasible t wins.
//
// Included both as a baseline (the "fully rational" end of the behavioral
// spectrum) and as a substrate other components can reuse (e.g. to measure
// how far a robust strategy is from the rational-attacker optimum).
#pragma once

#include <cstddef>
#include <vector>

#include "core/solvers.hpp"
#include "games/security_game.hpp"

namespace cubisg::core {

/// SSE solve result.
struct SseResult {
  SolverStatus status = SolverStatus::kNumericalIssue;
  std::vector<double> strategy;
  double defender_utility = 0.0;     ///< at the equilibrium
  double attacker_utility = 0.0;     ///< best-response value
  std::size_t attacked_target = 0;   ///< the attacker's (favorable) choice
};

/// Computes the strong Stackelberg equilibrium of `game`.
SseResult solve_sse(const games::SecurityGame& game);

/// The attacker's best-response target under coverage x (ties broken in
/// the defender's favor, per the SSE convention).
std::size_t best_response_target(const games::SecurityGame& game,
                                 std::span<const double> x);

/// Fragility analysis (COBRA-style, Pita et al.): the defender's utility
/// if the attacker may strike ANY target whose utility is within `epsilon`
/// of his best response, choosing adversarially within that set.  epsilon
/// = 0 gives the pessimistic-tie-break rational response; epsilon -> inf
/// converges to the maximin floor min_i Ud_i(x_i).  Monotonically
/// non-increasing in epsilon — quantifies how much an SSE strategy's value
/// depends on perfect attacker rationality.
double epsilon_response_utility(const games::SecurityGame& game,
                                std::span<const double> x, double epsilon);

/// DefenderSolver adaptor: plans against a rational attacker, evaluated
/// (like every solver) under the behavioral worst case — quantifying how
/// badly the rationality assumption can mislead under uncertainty.
class SseSolver final : public DefenderSolver {
 public:
  std::string name() const override { return "sse-rational"; }
  DefenderSolution solve(const SolveContext& ctx) const override;
};

}  // namespace cubisg::core

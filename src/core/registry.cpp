#include "core/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/adaptive.hpp"
#include "core/cubis.hpp"
#include "core/gradient.hpp"
#include "core/maximin.hpp"
#include "core/origami.hpp"
#include "core/pasaq.hpp"
#include "core/population_solvers.hpp"
#include "core/sse.hpp"

namespace cubisg::core {

std::vector<std::string> solver_names() {
  return {"cubis",   "cubis-milp", "cubis-adaptive", "midpoint",
          "maximin", "gradient",   "sse",            "origami",
          "uniform", "robust-types", "bayesian"};
}

std::string canonical_solver_config(const SolverSpec& spec) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "|k=%zu|eps=%a|polish=%d|sections=%d|starts=%d|seed=%llu"
                "|types=%zu",
                spec.segments, spec.epsilon, spec.polish_iterations,
                std::max(1, spec.parallel_sections), spec.num_starts,
                static_cast<unsigned long long>(spec.seed),
                spec.population != nullptr ? spec.population->num_types()
                                           : std::size_t{0});
  // Coverage-polytope identity: the canonical descriptor (lossless %a
  // budgets/caps), or the one derived from the legacy grouped-budget
  // fields.  The simplex renders as "simplex" — including it even in the
  // default case keeps the config self-describing.
  std::string space = "simplex";
  if (!spec.coverage.is_default()) {
    space = spec.coverage.descriptor();
  } else if (!spec.group_budgets.empty()) {
    try {
      space = games::CoverageSpace::grouped(spec.target_groups,
                                            spec.group_budgets)
                  .descriptor();
    } catch (const std::invalid_argument&) {
      // Malformed spec: make_solver will reject it; still discriminate.
      space = "grouped-invalid";
    }
  }
  return spec.name + buf + "|space=" + space;
}

std::unique_ptr<DefenderSolver> make_solver(const SolverSpec& spec) {
  if (spec.name == "cubis" || spec.name == "cubis-milp") {
    CubisOptions opt;
    opt.segments = spec.segments;
    opt.epsilon = spec.epsilon;
    opt.polish_iterations = spec.polish_iterations;
    opt.parallel_sections = std::max(1, spec.parallel_sections);
    opt.target_groups = spec.target_groups;
    opt.group_budgets = spec.group_budgets;
    if (spec.name == "cubis-milp") opt.backend = StepBackend::kMilp;
    return std::make_unique<CubisSolver>(opt);
  }
  if (spec.name == "cubis-adaptive") {
    AdaptiveCubisOptions opt;
    opt.cubis.epsilon = spec.epsilon;
    opt.cubis.parallel_sections = std::max(1, spec.parallel_sections);
    opt.max_segments = std::max(spec.segments, opt.initial_segments);
    // Polish is the point of the adaptive driver; only let the spec raise
    // it above the solver's own default.
    opt.polish_iterations =
        std::max(opt.polish_iterations, spec.polish_iterations);
    return std::make_unique<AdaptiveCubisSolver>(opt);
  }
  if (spec.name == "midpoint") {
    PasaqOptions opt;
    opt.segments = spec.segments;
    opt.epsilon = spec.epsilon;
    return std::make_unique<PasaqSolver>(opt);
  }
  if (spec.name == "maximin") return std::make_unique<MaximinSolver>();
  if (spec.name == "gradient") {
    GradientOptions opt;
    opt.num_starts = spec.num_starts;
    opt.seed = spec.seed;
    return std::make_unique<GradientSolver>(opt);
  }
  if (spec.name == "sse") return std::make_unique<SseSolver>();
  if (spec.name == "origami") return std::make_unique<OrigamiSolver>();
  if (spec.name == "uniform") return std::make_unique<UniformSolver>();
  if (spec.name == "robust-types" || spec.name == "bayesian") {
    if (!spec.population) {
      throw InvalidModelError("make_solver: '" + spec.name +
                              "' requires a sampled population");
    }
    PopulationOptions opt;
    opt.population = spec.population;
    opt.ascent.num_starts = spec.num_starts;
    opt.ascent.seed = spec.seed;
    if (spec.name == "robust-types") {
      return std::make_unique<RobustTypesSolver>(opt);
    }
    return std::make_unique<BayesianSolver>(opt);
  }
  throw InvalidModelError("make_solver: unknown solver '" + spec.name + "'");
}

}  // namespace cubisg::core

#include "core/workspace.hpp"

namespace cubisg::core {

void SolveWorkspace::ensure_cubis_lanes(std::size_t count,
                                        const StepTables& step_tables,
                                        bool milp_backend) {
  if (cubis_lanes.size() < count) cubis_lanes.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    if (s < cubis_lanes.size()) {
      cubis_lanes[s]->reset(step_tables, milp_backend);
    } else {
      cubis_lanes.push_back(
          std::make_unique<RoundReuse>(step_tables, milp_backend));
    }
  }
}

}  // namespace cubisg::core

#include "core/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

namespace {

obs::Counter& segments_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("piecewise.segments_generated");
  return c;
}

obs::Counter& functions_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("piecewise.functions_built");
  return c;
}

obs::Counter& cache_hits_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("piecewise.cache_hits_total");
  return c;
}

}  // namespace

PiecewiseLinear::PiecewiseLinear(const std::function<double(double)>& f,
                                 std::size_t segments) {
  if (segments == 0) {
    throw std::invalid_argument("PiecewiseLinear: segments must be >= 1");
  }
  functions_counter().add(1);
  segments_counter().add(static_cast<std::int64_t>(segments));
  values_.resize(segments + 1);
  const double k_inv = 1.0 / static_cast<double>(segments);
  for (std::size_t k = 0; k <= segments; ++k) {
    values_[k] = f(std::min(1.0, static_cast<double>(k) * k_inv));
  }
}

PiecewiseLinear::PiecewiseLinear(std::vector<double> values)
    : values_(std::move(values)) {
  if (values_.size() < 2) {
    throw std::invalid_argument("PiecewiseLinear: need >= 2 breakpoints");
  }
  functions_counter().add(1);
  segments_counter().add(static_cast<std::int64_t>(values_.size() - 1));
}

void PiecewiseLinear::rebuild_from_values(std::span<const double> values) {
  if (values.size() != values_.size()) {
    throw std::invalid_argument("rebuild_from_values: size mismatch");
  }
  std::copy(values.begin(), values.end(), values_.begin());
  cache_hits_counter().add(1);
}

void PiecewiseLinear::rebuild_axpy(std::span<const double> a,
                                   std::span<const double> b, double c) {
  if (a.size() != values_.size() || b.size() != values_.size()) {
    throw std::invalid_argument("rebuild_axpy: size mismatch");
  }
  for (std::size_t k = 0; k < values_.size(); ++k) {
    values_[k] = a[k] - c * b[k];
  }
  cache_hits_counter().add(1);
}

void PiecewiseLinear::rebuild_min_of(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b) {
  if (a.values_.size() != values_.size() ||
      b.values_.size() != values_.size()) {
    throw std::invalid_argument("rebuild_min_of: size mismatch");
  }
  for (std::size_t k = 0; k < values_.size(); ++k) {
    values_[k] = std::min(a.values_[k], b.values_[k]);
  }
  cache_hits_counter().add(1);
}

double PiecewiseLinear::slope(std::size_t k) const {
  if (k + 1 >= values_.size()) {
    throw std::out_of_range("PiecewiseLinear::slope");
  }
  return static_cast<double>(segments()) * (values_[k + 1] - values_[k]);
}

double PiecewiseLinear::evaluate(double x) const {
  const std::size_t k_count = segments();
  const double xc = clamp(x, 0.0, 1.0);
  // Segment index containing xc.
  std::size_t k = static_cast<std::size_t>(
      std::floor(xc * static_cast<double>(k_count)));
  if (k >= k_count) k = k_count - 1;
  const double x_lo = static_cast<double>(k) / static_cast<double>(k_count);
  return values_[k] + slope(k) * (xc - x_lo);
}

std::vector<double> segment_portions(double x, std::size_t segments) {
  if (segments == 0) {
    throw std::invalid_argument("segment_portions: segments must be >= 1");
  }
  const double seg = 1.0 / static_cast<double>(segments);
  std::vector<double> portions(segments, 0.0);
  const double xc = clamp(x, 0.0, 1.0);
  // Fill whole segments while the running sum stays within xc, then assign
  // the EXACT residual to the next segment.  At the stop point either no
  // segment was filled (acc = 0, the subtraction is trivially exact) or
  // acc >= seg and acc + seg > xc, so xc <= 2*acc and xc - acc is exact by
  // Sterbenz.  from_segment_portions replays the same fl(+seg) prefix sums,
  // so the round trip returns xc bit-for-bit.  (The residual can exceed
  // 1/K by an ulp when the guard rejects on a rounded-up sum; downstream
  // feasibility tolerances absorb that.)
  double acc = 0.0;
  std::size_t k = 0;
  while (k + 1 < segments && acc + seg <= xc) {
    portions[k] = seg;
    acc += seg;
    ++k;
  }
  portions[k] = xc - acc;
  return portions;
}

double from_segment_portions(const std::vector<double>& portions) {
  double x = 0.0;
  for (double p : portions) x += p;
  return x;
}

double max_approximation_error(const std::function<double(double)>& f,
                               const PiecewiseLinear& approx,
                               std::size_t samples) {
  double worst = 0.0;
  for (std::size_t s = 0; s <= samples; ++s) {
    const double x = static_cast<double>(s) / static_cast<double>(samples);
    worst = std::max(worst, std::abs(f(x) - approx.evaluate(x)));
  }
  return worst;
}

}  // namespace cubisg::core

#include "core/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/math_util.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

namespace {

obs::Counter& segments_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("piecewise.segments_generated");
  return c;
}

obs::Counter& functions_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("piecewise.functions_built");
  return c;
}

}  // namespace

PiecewiseLinear::PiecewiseLinear(const std::function<double(double)>& f,
                                 std::size_t segments) {
  if (segments == 0) {
    throw std::invalid_argument("PiecewiseLinear: segments must be >= 1");
  }
  functions_counter().add(1);
  segments_counter().add(static_cast<std::int64_t>(segments));
  values_.resize(segments + 1);
  const double k_inv = 1.0 / static_cast<double>(segments);
  for (std::size_t k = 0; k <= segments; ++k) {
    values_[k] = f(std::min(1.0, static_cast<double>(k) * k_inv));
  }
}

double PiecewiseLinear::slope(std::size_t k) const {
  if (k + 1 >= values_.size()) {
    throw std::out_of_range("PiecewiseLinear::slope");
  }
  return static_cast<double>(segments()) * (values_[k + 1] - values_[k]);
}

double PiecewiseLinear::evaluate(double x) const {
  const std::size_t k_count = segments();
  const double xc = clamp(x, 0.0, 1.0);
  // Segment index containing xc.
  std::size_t k = static_cast<std::size_t>(
      std::floor(xc * static_cast<double>(k_count)));
  if (k >= k_count) k = k_count - 1;
  const double x_lo = static_cast<double>(k) / static_cast<double>(k_count);
  return values_[k] + slope(k) * (xc - x_lo);
}

std::vector<double> segment_portions(double x, std::size_t segments) {
  if (segments == 0) {
    throw std::invalid_argument("segment_portions: segments must be >= 1");
  }
  const double seg = 1.0 / static_cast<double>(segments);
  std::vector<double> portions(segments, 0.0);
  double remaining = clamp(x, 0.0, 1.0);
  for (std::size_t k = 0; k < segments && remaining > 0.0; ++k) {
    const double take = std::min(seg, remaining);
    portions[k] = take;
    remaining -= take;
  }
  return portions;
}

double from_segment_portions(const std::vector<double>& portions) {
  double x = 0.0;
  for (double p : portions) x += p;
  return x;
}

double max_approximation_error(const std::function<double(double)>& f,
                               const PiecewiseLinear& approx,
                               std::size_t samples) {
  double worst = 0.0;
  for (std::size_t s = 0; s <= samples; ++s) {
    const double x = static_cast<double>(s) / static_cast<double>(samples);
    worst = std::max(worst, std::abs(f(x) - approx.evaluate(x)));
  }
  return worst;
}

}  // namespace cubisg::core

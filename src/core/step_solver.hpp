// Binary-search step solvers: maximize a sum of per-target piecewise-linear
// functions over the resource constraint sum_i x_i <= R.
//
// Every CUBIS / PASAQ binary-search step reduces to
//
//   max_{x in [0,1]^T, sum x_i <= R}  sum_i phi_i(x_i)
//
// with phi_i piecewise linear on the K-segment grid (for CUBIS,
// phi_i = min(f1~_i, f2~_i); for PASAQ, phi_i = g~_i).  Two exact backends:
//
//  * kDp — dynamic programming over coverage units of size 1/K.  Exact
//    whenever R*K is integral: with a single knapsack constraint and box
//    bounds, some optimal vertex has at most one off-grid coordinate, and
//    a tight integral budget forces that one onto the grid too, while a
//    slack budget puts every coordinate at a breakpoint maximum.
//  * kMilp — the paper's MILP (33)-(40) with segment variables and ordering
//    binaries, solved by the branch-and-bound substrate.  CUBIS's v_i/q_i
//    product linearization lives in cubis.cpp on top of this layout.
#pragma once

#include <cstdint>
#include <vector>

#include "common/errors.hpp"
#include "core/piecewise.hpp"
#include "games/coverage_space.hpp"

namespace cubisg::core {

/// Result of one step maximization.
struct StepResult {
  SolverStatus status = SolverStatus::kNumericalIssue;
  double objective = 0.0;      ///< max sum_i phi_i(x_i)
  std::vector<double> x;       ///< maximizing coverage vector
  std::int64_t milp_nodes = 0;
  /// Branch-and-bound evidence (kMilp backend only): the incumbent and
  /// its proven bound, carried into the solution certificate.
  bool from_milp = false;
  double milp_incumbent = 0.0;
  double milp_bound = 0.0;
};

/// Exact DP solver over coverage units of 1/K.  When resources * segments
/// is fractional the budget is floored to the grid — a conservative
/// under-approximation whose error stays within the O(1/K) budget (the
/// returned x always satisfies sum x <= resources).  All phi must share a
/// segment count.
StepResult solve_step_dp(const std::vector<PiecewiseLinear>& phi,
                         double resources);

/// Reusable buffers for solve_step_dp_flat.  The full per-target value
/// tables replace solve_step_dp's choice matrix (the backtrack recomputes
/// the argmax from them) and survive across binary-search rounds, so a
/// warm solve performs no per-round DP allocation at all.
struct DpScratch {
  std::vector<double> values;  ///< (T+1) x (units+1) DP value tables
};

/// Cache-friendly variant of solve_step_dp over flattened phi breakpoints
/// (phi_flat[i * (segments + 1) + k]), used by the reuse_rounds path.
/// Produces a bit-identical objective and coverage vector to solve_step_dp
/// on the same breakpoints: the max-plus recurrence evaluates exactly the
/// same candidate sums (max is order-independent), and the backtrack
/// replays the largest-take tie-break that the forward strict-improvement
/// updates encode.  The inner loop is a pure contiguous add-and-max with
/// no conditional stores, which is what makes the warm path fast.
StepResult solve_step_dp_flat(const double* phi_flat, std::size_t t_count,
                              std::size_t segments, double resources,
                              DpScratch& scratch);

/// Grouped variant: targets are partitioned into budget groups (e.g. time
/// slots of a patrol schedule), each with its own knapsack constraint
/// sum_{i in g} x_i <= budgets[g].  The groups decouple, so this runs one
/// DP per group and stitches the results — still exact on the grid.
/// `groups[i]` is target i's group id in [0, budgets.size()).
StepResult solve_step_dp_grouped(const std::vector<PiecewiseLinear>& phi,
                                 const std::vector<std::size_t>& groups,
                                 const std::vector<double>& budgets);

/// Polytope-driven variant: one knapsack DP per budget group of `space`,
/// honoring per-target coverage caps (a target with cap c_i contributes
/// at most floor(c_i * K) units).  The simplex instance delegates to
/// solve_step_dp — bit-identical to the legacy single-budget path.  Caps
/// keep the problem separable, so the DP stays exact on the grid.
StepResult solve_step_dp_space(const std::vector<PiecewiseLinear>& phi,
                               const games::CoverageSpace& space);

/// Flat-breakpoint variant of solve_step_dp_space for the PASAQ-style
/// round-invariant tables (phi_flat[i * (segments + 1) + k]).  Simplex
/// delegates to solve_step_dp_flat (bit-identical, allocation-free);
/// grouped/capped spaces run the per-group DP.
StepResult solve_step_dp_flat_space(const double* phi_flat,
                                    std::size_t t_count,
                                    std::size_t segments,
                                    const games::CoverageSpace& space,
                                    DpScratch& scratch);

}  // namespace cubisg::core

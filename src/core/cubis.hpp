// CUBIS — Competing Uncertainty in attacker Behaviors using Interval-based
// maximin Solution (Section IV of the paper).
//
// Computes the defender strategy maximizing her worst-case expected utility
// under attractiveness intervals [L_i(x), U_i(x)]:
//
//   max_{x in X} min_{F in I(x)} sum_i q_i(x) Ud_i(x_i)          (5)
//
// Pipeline (matching the paper):
//  1. LP duality collapses the maximin into max H(x, beta) (Eqs. 15-17).
//  2. Binary search on the utility value c; each step answers the value
//     point feasibility problem P1 via Propositions 1 and 2 by checking
//     sign(max G) with beta eliminated through Proposition 3.
//  3. Each step's max G is solved after K-segment piecewise linearization,
//     either by the paper's MILP (33)-(40) on the branch-and-bound
//     substrate (kMilp) or by the exact separable DP (kDp, the ablation
//     that replaces CPLEX entirely).
//
// Theorem 1: the result is O(epsilon + 1/K)-optimal.
#pragma once

#include <cstdint>

#include "common/tolerances.hpp"
#include "core/solvers.hpp"
#include "core/step_solver.hpp"
#include "core/worst_case.hpp"
#include "milp/branch_and_bound.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg::core {

/// Backend for the per-step feasibility maximization.
enum class StepBackend {
  kDp,    ///< exact separable dynamic programming (fast default)
  kMilp,  ///< the paper's MILP (33)-(40) via branch and bound
};

/// Options for the CUBIS solver.
struct CubisOptions {
  std::size_t segments = 10;  ///< K, piecewise-linear segment count
  double epsilon = Tol::kBinarySearchEps;  ///< binary-search threshold
  StepBackend backend = StepBackend::kDp;
  milp::MilpOptions milp;  ///< options for the kMilp backend
  /// Seed the MILP incumbent with the DP solution (kMilp backend only).
  bool warm_start_from_dp = true;
  /// Distribute leftover budget (Eq. 37 is <=R) so the final strategy
  /// saturates sum x_i = R; never hurts the worst case (verified in tests).
  bool top_up_resources = true;
  /// Numeric slack accepted when testing max G >= 0.
  double feasibility_slack = 1e-9;
  /// Beyond-the-paper extension: run this many projected-gradient ascent
  /// iterations on the exact worst-case objective from the CUBIS grid
  /// solution.  0 disables (the paper-faithful default); ~30 removes most
  /// of the O(1/K) grid residual at negligible cost.
  int polish_iterations = 0;
  /// Reuse round-invariant work across binary-search rounds: the affine
  /// breakpoint cache (f1/f2/phi become one axpy per round), the step
  /// MILP's constraint skeleton (patched, not rebuilt), and the previous
  /// round's optimal root basis as a simplex warm start.  Produces the
  /// same solution as the fresh path (the differential harness in
  /// tests/test_warm_start.cpp pins this); ignored when group_budgets is
  /// set.  Off = rebuild everything per round (the test oracle).
  bool reuse_rounds = true;
  /// Beyond-the-paper extension: multisection search.  Each round
  /// evaluates this many candidate utility values concurrently (thread
  /// pool), shrinking the bracket by (parallel_sections + 1)x per round
  /// instead of 2x.  1 = the paper's sequential bisection.  The step
  /// problems at different c are fully independent, so this parallelizes
  /// the OUTER loop that bisection serializes.
  int parallel_sections = 1;
  ThreadPool* pool = nullptr;  ///< null = global pool
  /// Beyond-the-paper extension for scheduled patrols: partition the
  /// targets into budget groups (e.g. time slots), each with its own
  /// knapsack constraint sum_{i in g} x_i <= group_budgets[g].  The step
  /// problems stay separable, so the DP backend solves one DP per group.
  /// Empty = the paper's single game-wide budget.  When set,
  /// target_groups.size() must equal the game's target count and the
  /// budgets must sum to the game's resources.
  std::vector<std::size_t> target_groups;
  std::vector<double> group_budgets;
};

/// The CUBIS solver.
class CubisSolver final : public DefenderSolver {
 public:
  explicit CubisSolver(CubisOptions options = {});

  std::string name() const override;
  DefenderSolution solve(const SolveContext& ctx) const override;

  const CubisOptions& options() const { return opt_; }

 private:
  CubisOptions opt_;
};

/// Breakpoint tables that do not depend on the binary-search value c:
/// L_i(k/K), U_i(k/K) and Ud_i(k/K).  Building them once per solve removes
/// the exp()-heavy bounds evaluations from every step (f1 = L*(Ud - c) and
/// f2 = U*(Ud - c) are then trivial per-step arithmetic).
struct StepTables {
  std::size_t segments = 0;
  std::vector<std::vector<double>> lower;    ///< [T][K+1]
  std::vector<std::vector<double>> upper;    ///< [T][K+1]
  std::vector<std::vector<double>> utility;  ///< [T][K+1]
};

/// Samples the bounds and defender utilities at the K+1 breakpoints.
StepTables build_step_tables(const SolveContext& ctx, std::size_t segments);

/// In-place variant for workspace reuse: overwrites `out` completely,
/// keeping its allocations when the shape matches.
void build_step_tables_into(const SolveContext& ctx, std::size_t segments,
                            StepTables& out);

struct RoundReuse;  // core/round_cache.hpp

/// One binary-search step: maximizes the linearized G(x, beta(c), c) over
/// X for the given utility value c.  Exposed for tests and the ablation
/// bench (DP and MILP backends must agree).  `tables`, when provided, must
/// have been built with the same segment count.  `reuse`, when provided,
/// carries this search lane's cross-round state (see core/round_cache.hpp)
/// and must have been built from the same tables; the step then takes the
/// cached path instead of rebuilding its piecewise functions and MILP.
StepResult cubis_step(const SolveContext& ctx, double c,
                      const CubisOptions& options,
                      const StepTables* tables = nullptr,
                      RoundReuse* reuse = nullptr);

}  // namespace cubisg::core

// Adaptive-resolution CUBIS (a beyond-the-paper extension).
//
// Theorem 1 bounds CUBIS's error by O(eps + 1/K), but choosing K a priori
// trades accuracy against step cost blindly.  AdaptiveCubisSolver doubles
// K starting from a coarse grid and stops when the realized worst-case
// utility of the returned strategy stops improving — typically reaching
// fine-grid quality while paying coarse-grid cost on the early (and most
// numerous) binary-search brackets.  An optional final gradient polish
// removes the residual grid error.
#pragma once

#include "core/cubis.hpp"

namespace cubisg::core {

/// Options for the adaptive driver.
struct AdaptiveCubisOptions {
  std::size_t initial_segments = 4;   ///< starting K
  std::size_t max_segments = 128;     ///< hard cap on K
  /// Stop when one doubling improves the realized worst case by less than
  /// this (absolute utility units).
  double improvement_tol = 1e-3;
  /// Base per-resolution CUBIS configuration (segments overridden).
  CubisOptions cubis;
  /// Final polish iterations (0 disables).
  int polish_iterations = 30;
};

/// CUBIS with geometric grid refinement.
class AdaptiveCubisSolver final : public DefenderSolver {
 public:
  explicit AdaptiveCubisSolver(AdaptiveCubisOptions options = {});

  std::string name() const override { return "cubis-adaptive"; }
  DefenderSolution solve(const SolveContext& ctx) const override;

  const AdaptiveCubisOptions& options() const { return opt_; }

 private:
  AdaptiveCubisOptions opt_;
};

}  // namespace cubisg::core

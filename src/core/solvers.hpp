// Common interface for defender-strategy solvers.
//
// Every algorithm (CUBIS and the baselines) consumes the same problem
// description — a SecurityGame plus attractiveness uncertainty bounds — and
// produces a strategy with solver statistics, so benches and examples can
// treat them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/certificate.hpp"
#include "behavior/bounds.hpp"
#include "common/budget.hpp"
#include "common/errors.hpp"
#include "games/coverage_space.hpp"
#include "games/security_game.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

struct SolveWorkspace;  // core/workspace.hpp

/// The problem a defender solver works on.  Both references must outlive
/// the solve call.
struct SolveContext {
  const games::SecurityGame& game;
  const behavior::AttractivenessBounds& bounds;
  /// Optional shared budget/cancellation token, threaded through every
  /// layer of the solve (binary search -> branch and bound -> simplex
  /// pivots).  When it trips, solvers unwind at a safe point and return
  /// the best incumbent with a certified bracket and a budget status
  /// (kDeadlineExceeded / kCancelled / kIterLimit) instead of throwing.
  /// Must outlive the solve call; null = unbudgeted.
  const SolveBudget* budget = nullptr;
  /// Optional caller-owned scratch arena for every per-solve allocation
  /// (see core/workspace.hpp).  Null = the solver builds an ephemeral one.
  /// Reuse across solves preserves capacity only, never values, so a
  /// reused workspace yields bitwise-identical solutions to a fresh one.
  /// One workspace per concurrent solve: the workspace is mutable
  /// single-threaded state even though the solver itself is shareable.
  SolveWorkspace* workspace = nullptr;
  /// Optional coverage polytope overriding the paper's default simplex
  /// X = {0 <= x <= 1, sum <= R}.  Null (or the default-constructed
  /// sentinel) means "simplex from the game's own T and R" — that path is
  /// bitwise-identical to the pre-abstraction behavior.  Non-simplex
  /// spaces route solvers through the grouped/capped machinery; solvers
  /// without native support are projected onto the space by
  /// finalize_solution (the degrade path).  Must outlive the solve call.
  const games::CoverageSpace* space = nullptr;
};

/// The polytope a solve actually runs on: `ctx.space` when it is set and
/// non-default, else the simplex over the game's T and R.
games::CoverageSpace effective_space(const SolveContext& ctx);

/// Outcome of a defender solve.
struct DefenderSolution {
  SolverStatus status = SolverStatus::kNumericalIssue;
  /// Coverage vector with 0 <= x_i <= 1 and sum x_i <= R.  Solvers top the
  /// budget up when that improves the worst case, but keep slack when a
  /// pessimistic adversary is better handled by leaving a low-stakes
  /// target slightly attractive (idle resources are implementable).
  std::vector<double> strategy;
  /// Worst-case defender utility of `strategy` under the bounds, computed
  /// by the canonical closed-form evaluator (comparable across solvers).
  double worst_case_utility = 0.0;
  /// The solver's own objective estimate (e.g. the binary search lb).
  double solver_objective = 0.0;
  /// Binary-search bracket at termination (CUBIS/PASAQ only).
  double lb = 0.0;
  double ub = 0.0;
  int binary_steps = 0;
  std::int64_t milp_nodes = 0;
  double wall_seconds = 0.0;
  /// Registry delta covering this solve (empty when the solver predates
  /// instrumentation or observability is compiled out).
  obs::SolveTelemetry telemetry;
  /// Solver-emitted evidence for audit::verify.  finalize_solution fills
  /// the base claims (shape, residuals, claimed worst case) for every
  /// solver; CUBIS adds bracket/round/MILP evidence before finalizing.
  audit::SolutionCertificate certificate;

  bool ok() const { return status == SolverStatus::kOptimal; }
};

/// Abstract defender solver.  Implementations are immutable configuration:
/// solve() is const and never mutates the solver, so one instance can be
/// driven concurrently from many threads as long as each call gets its own
/// SolveContext (workspace and budget are the per-call mutable state).
class DefenderSolver {
 public:
  virtual ~DefenderSolver() = default;
  virtual std::string name() const = 0;
  virtual DefenderSolution solve(const SolveContext& ctx) const = 0;
};

/// Baseline: the uniform strategy x_i = R/T (no optimization at all).
class UniformSolver final : public DefenderSolver {
 public:
  std::string name() const override { return "uniform"; }
  DefenderSolution solve(const SolveContext& ctx) const override;
};

/// Fills a solution's evaluation fields (worst-case utility), the base
/// certificate claims (model shape, feasibility residuals, claimed worst
/// case) and the clock.  Solver-specific certificate evidence (bracket,
/// rounds, MILP pair) must be set before calling this.
void finalize_solution(const SolveContext& ctx, DefenderSolution& sol,
                       double seconds);

}  // namespace cubisg::core

// Programmatic solver-comparison harness.
//
// What the benches do by hand — run a set of solvers over a seeded
// ensemble of random games and score each strategy on the certified
// worst case and against sampled attacker types — packaged as a library
// API, so downstream users (and the CLI) can produce the comparison for
// THEIR instance family without writing the loop.
#pragma once

#include <string>
#include <vector>

#include "core/registry.hpp"

namespace cubisg::core {

/// The instance family and scoring setup for a comparison run.
struct EvaluationSpec {
  std::vector<SolverSpec> solvers;   ///< competitors (population solvers
                                     ///< get a per-game sampled population)
  int games = 8;                     ///< ensemble size
  std::uint64_t seed = 1;            ///< base seed (game g uses seed + g)
  std::size_t targets = 8;
  double resources = 3.0;
  double payoff_width = 2.0;         ///< attacker payoff interval width
  std::size_t sample_types = 0;      ///< 0 = skip sampled-type scoring
};

/// One solver's aggregate scores over the ensemble.
struct EvaluationRow {
  std::string solver;
  double worst_mean = 0.0;        ///< mean certified worst case
  double worst_std = 0.0;
  double sampled_min_mean = 0.0;  ///< mean of per-game sampled minima
  double sampled_mean_mean = 0.0; ///< mean of per-game sampled means
  double wall_ms_mean = 0.0;
};

/// Runs the comparison.  Deterministic for a fixed spec.
std::vector<EvaluationRow> evaluate_solvers(const EvaluationSpec& spec);

/// Renders rows as a GitHub-flavored markdown table.
std::string to_markdown(const std::vector<EvaluationRow>& rows,
                        bool with_samples);

}  // namespace cubisg::core

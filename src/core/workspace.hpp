// Per-call solve state, split out of the solver objects.
//
// A DefenderSolver is immutable configuration: construct it once, share it
// freely.  Everything a solve call allocates or mutates — breakpoint
// tables, the affine round caches and MILP skeleton of the warm-started
// binary search, DP scratch, gradient restart buffers, the maximin LP
// skeleton — lives in a SolveWorkspace owned by the caller and passed
// through SolveContext::workspace.  Two call patterns:
//
//   * workspace == nullptr (the default): the solver builds an ephemeral
//     workspace on its own stack.  Behavior and allocations match the
//     pre-split code exactly.
//   * a caller-owned workspace, reused across solves: each solve rebuilds
//     every value it reads, so reuse only preserves allocation CAPACITY
//     (vectors keep their buffers, the MILP skeleton its arena), never
//     values.  A reused workspace therefore produces bitwise-identical
//     solutions to a fresh one — the engine's concurrency tests pin this.
//
// A workspace is single-threaded state: one workspace per concurrent solve
// (the engine pins one to each worker thread).  Sharing a workspace across
// simultaneous solves is a data race; sharing the *solver* is fine.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/round_cache.hpp"
#include "core/step_solver.hpp"
#include "lp/model.hpp"

namespace cubisg::core {

/// Patchable skeleton of the maximin LP (columns x_0..x_{T-1}, z; one
/// budget row, one floor row per target).  The entry layout only depends
/// on the target count, so a shape-matching reuse rewrites the
/// game-dependent numbers (budget RHS, floor RHS, floor slope) in place.
struct MaximinSkeleton {
  lp::Model model;
  std::vector<int> xcol;
  int zcol = -1;
  int budget_row = -1;
  std::vector<int> floor_rows;
  std::size_t targets = 0;
  bool built = false;
};

/// Owns every per-solve allocation.  See the file comment for the reuse
/// contract (capacity survives, values never do).
struct SolveWorkspace {
  SolveWorkspace() = default;
  SolveWorkspace(const SolveWorkspace&) = delete;
  SolveWorkspace& operator=(const SolveWorkspace&) = delete;

  // ---- CUBIS ----
  /// Breakpoint tables, rebuilt in place at the top of every CUBIS solve.
  StepTables tables;
  /// One cross-round reuse slot per multisection lane (never shared across
  /// lanes: set_value and the DP scratch mutate in place).
  std::vector<std::unique_ptr<RoundReuse>> cubis_lanes;

  /// Rebuilds the first `count` lanes from `tables` (resetting each lane's
  /// cache and dropping its MILP skeleton — the skeleton's budget rows
  /// depend on the game, and MilpStepCache::patch never rewrites them),
  /// growing the vector when a solve needs more lanes than the last one.
  void ensure_cubis_lanes(std::size_t count, const StepTables& step_tables,
                          bool milp_backend);

  // ---- PASAQ ----
  /// Flattened [T][K+1] tables of the point model F_i(k/K), the defender
  /// utilities Ud_i(k/K), and the per-round objective F*(Ud - c).
  std::vector<double> pasaq_f;
  std::vector<double> pasaq_ud;
  std::vector<double> pasaq_phi;
  DpScratch pasaq_scratch;

  // ---- gradient ----
  /// Restart start-point buffer (cleared and refilled each solve).
  std::vector<std::vector<double>> gradient_starts;

  // ---- maximin ----
  MaximinSkeleton maximin;
};

}  // namespace cubisg::core

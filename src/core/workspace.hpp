// Per-call solve state, split out of the solver objects.
//
// A DefenderSolver is immutable configuration: construct it once, share it
// freely.  Everything a solve call allocates or mutates — breakpoint
// tables, the affine round caches and MILP skeleton of the warm-started
// binary search, DP scratch, gradient restart buffers, the maximin LP
// skeleton — lives in a SolveWorkspace owned by the caller and passed
// through SolveContext::workspace.  Two call patterns:
//
//   * workspace == nullptr (the default): the solver builds an ephemeral
//     workspace on its own stack.  Behavior and allocations match the
//     pre-split code exactly.
//   * a caller-owned workspace, reused across solves: each solve rebuilds
//     every value it reads, so reuse only preserves allocation CAPACITY
//     (vectors keep their buffers, the MILP skeleton its arena), never
//     values.  A reused workspace therefore produces bitwise-identical
//     solutions to a fresh one — the engine's concurrency tests pin this.
//
// A workspace is single-threaded state: one workspace per concurrent solve
// (the engine pins one to each worker thread).  Sharing a workspace across
// simultaneous solves is a data race; sharing the *solver* is fine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/round_cache.hpp"
#include "core/step_solver.hpp"
#include "lp/model.hpp"

namespace cubisg::core {

/// Cross-solve donor state harvested from a completed CUBIS solve by the
/// engine's SolveCache: the breakpoint tables plus (MILP backend only)
/// the dense step-MILP skeleton.  Immutable once published — many
/// concurrent solves may seed from one donor, so consumers copy, never
/// mutate.  The donor's simplex root basis is deliberately NOT carried:
/// a stale basis could steer the next solve's branch-and-bound
/// differently (the same reason RoundReuse::reset drops it).
struct TransplantDonor {
  StepTables tables;
  /// The donor fingerprint's per-target blocks and compat hash
  /// (core/fingerprint.hpp), kept so seeds can be built by bitwise
  /// per-target comparison without reloading the donor scenario.
  std::vector<double> blocks;
  std::uint64_t compat = 0;
  /// MILP skeleton (kMilp backend): structure depends only on compat
  /// quantities (T, K, R, group config), and patch() rewrites every
  /// value-dependent entry before first use.
  bool has_skeleton = false;
  double skeleton_resources = 0.0;
  /// Canonical games::CoverageSpace::descriptor() of the polytope whose
  /// budget rows the skeleton encodes; a consumer adopts the skeleton
  /// only when its own descriptor matches exactly (patch() never rewrites
  /// budget or cap rows).
  std::string skeleton_space;
  lp::Model skeleton_model;
  MilpLayout skeleton_layout;
  MilpRowIds skeleton_rows;
};

/// One transplant offer, attached to SolveWorkspace::transplant_seed by
/// the engine before a near-miss solve.  `adopt[i]` is 1 when target i's
/// fingerprint block matches the donor's bitwise — those targets' table
/// rows may be adopted verbatim; the rest are repaired (recomputed).
struct TransplantSeed {
  std::shared_ptr<const TransplantDonor> donor;
  std::vector<std::uint8_t> adopt;
};

/// Outcome of the adopt/repair/reject ladder, read back by the engine
/// for the cache.transplants/transplant_rejects counters.
struct TransplantStats {
  bool used = false;      ///< a solve consumed the seed
  bool rejected = false;  ///< ladder rejected it wholesale (cold build)
  std::uint32_t adopted = 0;   ///< targets copied from the donor
  std::uint32_t repaired = 0;  ///< targets recomputed fresh
};

/// Patchable skeleton of the maximin LP (columns x_0..x_{T-1}, z; one
/// budget row, one floor row per target).  The entry layout only depends
/// on the target count, so a shape-matching reuse rewrites the
/// game-dependent numbers (budget RHS, floor RHS, floor slope) in place.
struct MaximinSkeleton {
  lp::Model model;
  std::vector<int> xcol;
  int zcol = -1;
  int budget_row = -1;
  std::vector<int> floor_rows;
  std::size_t targets = 0;
  bool built = false;
};

/// Owns every per-solve allocation.  See the file comment for the reuse
/// contract (capacity survives, values never do).
struct SolveWorkspace {
  SolveWorkspace() = default;
  SolveWorkspace(const SolveWorkspace&) = delete;
  SolveWorkspace& operator=(const SolveWorkspace&) = delete;

  // ---- CUBIS ----
  /// Breakpoint tables, rebuilt in place at the top of every CUBIS solve.
  StepTables tables;
  /// One cross-round reuse slot per multisection lane (never shared across
  /// lanes: set_value and the DP scratch mutate in place).
  std::vector<std::unique_ptr<RoundReuse>> cubis_lanes;

  /// Rebuilds the first `count` lanes from `tables` (resetting each lane's
  /// cache and dropping its MILP skeleton — the skeleton's budget rows
  /// depend on the game, and MilpStepCache::patch never rewrites them),
  /// growing the vector when a solve needs more lanes than the last one.
  void ensure_cubis_lanes(std::size_t count, const StepTables& step_tables,
                          bool milp_backend);

  // ---- PASAQ ----
  /// Flattened [T][K+1] tables of the point model F_i(k/K), the defender
  /// utilities Ud_i(k/K), and the per-round objective F*(Ud - c).
  std::vector<double> pasaq_f;
  std::vector<double> pasaq_ud;
  std::vector<double> pasaq_phi;
  DpScratch pasaq_scratch;

  // ---- gradient ----
  /// Restart start-point buffer (cleared and refilled each solve).
  std::vector<std::vector<double>> gradient_starts;

  // ---- maximin ----
  MaximinSkeleton maximin;

  // ---- cross-solve transplant (engine SolveCache) ----
  /// Consumed (moved out) by the first CUBIS solve that sees it; solvers
  /// that never read ws.tables ignore it, and the engine clears it after
  /// every job either way.
  std::shared_ptr<const TransplantSeed> transplant_seed;
  /// Written by the ladder; the engine zeroes it before each job.
  TransplantStats transplant_stats;
  /// Donor-harvest gate, zeroed by the engine before each job so a
  /// harvest can never pick up a previous job's stale state from a
  /// reused workspace: 1 after a solve (re)built `tables` for ITS OWN
  /// scenario, 2 when it additionally rebuilt `cubis_lanes` (so lane 0's
  /// MILP skeleton, if any, is also this scenario's).
  std::uint64_t tables_token = 0;
};

}  // namespace cubisg::core

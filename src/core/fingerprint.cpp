#include "core/fingerprint.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "behavior/scenario.hpp"

namespace cubisg::core {

std::uint64_t fp_fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

void put_u8(std::string& buf, std::uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Raw IEEE-754 bytes, little-endian — the same lossless convention as
/// the wire protocol, so +0.0 and -0.0 (distinct solves through signed
/// comparisons) fingerprint distinctly.
void put_f64(std::string& buf, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(buf, bits);
}

}  // namespace

Fingerprint fingerprint_scenario(const behavior::Scenario& scenario,
                                 std::string_view solver_config) {
  const games::SecurityGame& g = scenario.game.game;
  const std::size_t n = g.num_targets();

  std::string buf;
  buf.reserve(64 + solver_config.size() +
              n * kFingerprintBlockDoubles * sizeof(double));
  // Compat prefix: versioned header, solver config, interval semantics,
  // resources, weight boxes, target count, coverage polytope.  Version 2
  // added the coverage descriptor so scenarios differing only in the
  // polytope (e.g. per-slot budgets) can never alias in the exact cache.
  buf.append("cubisg-fp 2");
  buf.push_back('\0');
  buf.append(solver_config.data(), solver_config.size());
  buf.push_back('\0');
  put_u8(buf, scenario.mode == behavior::IntervalMode::kPaperCorners ? 1 : 2);
  put_f64(buf, g.resources());
  put_f64(buf, scenario.weights.w1.lo());
  put_f64(buf, scenario.weights.w1.hi());
  put_f64(buf, scenario.weights.w2.lo());
  put_f64(buf, scenario.weights.w2.hi());
  put_f64(buf, scenario.weights.w3.lo());
  put_f64(buf, scenario.weights.w3.hi());
  put_u64(buf, static_cast<std::uint64_t>(n));
  const std::string space_desc = scenario.coverage.is_default()
                                     ? std::string("simplex")
                                     : scenario.coverage.descriptor();
  buf.append(space_desc);
  buf.push_back('\0');

  Fingerprint fp;
  fp.compat = fp_fnv1a64(buf.data(), buf.size());

  fp.blocks.reserve(n * kFingerprintBlockDoubles);
  for (std::size_t i = 0; i < n; ++i) {
    const games::TargetPayoffs& p = g.target(i);
    const games::IntervalPayoffs& iv = scenario.game.attacker_intervals[i];
    const double block[kFingerprintBlockDoubles] = {
        p.attacker_reward,          p.attacker_penalty,
        p.defender_reward,          p.defender_penalty,
        iv.attacker_reward.lo(),    iv.attacker_reward.hi(),
        iv.attacker_penalty.lo(),   iv.attacker_penalty.hi()};
    for (double v : block) {
      fp.blocks.push_back(v);
      put_f64(buf, v);
    }
  }
  fp.digest = fp_fnv1a64(buf.data(), buf.size());
  return fp;
}

double fingerprint_distance(const Fingerprint& a, const Fingerprint& b) {
  if (a.compat != b.compat || a.blocks.size() != b.blocks.size()) {
    return std::numeric_limits<double>::infinity();
  }
  std::size_t differing = 0;
  double l1 = 0.0;
  const std::size_t n = a.blocks.size() / kFingerprintBlockDoubles;
  for (std::size_t i = 0; i < n; ++i) {
    bool same = true;
    for (std::size_t j = 0; j < kFingerprintBlockDoubles; ++j) {
      const double av = a.blocks[i * kFingerprintBlockDoubles + j];
      const double bv = b.blocks[i * kFingerprintBlockDoubles + j];
      // Bitwise comparison, matching the transplant adopt test: -0.0 and
      // +0.0 count as different, NaNs with equal payloads as equal.
      std::uint64_t abits;
      std::uint64_t bbits;
      std::memcpy(&abits, &av, sizeof abits);
      std::memcpy(&bbits, &bv, sizeof bbits);
      if (abits != bbits) {
        same = false;
        l1 += std::abs(av - bv);
      }
    }
    if (!same) ++differing;
  }
  // The block count dominates; the L1 tiebreak stays below 1 so it never
  // outranks one extra differing target.
  return static_cast<double>(differing) + l1 / (1.0 + l1);
}

}  // namespace cubisg::core

// K-segment piecewise-linear approximation machinery (Section IV.C).
//
// The coverage domain [0, 1] is split into K equal segments with
// breakpoints k/K.  A univariate function f is approximated by the chords
// through (k/K, f(k/K)); the MILP encodes a point x as segment portions
// x = sum_k x_k with 0 <= x_k <= 1/K filled in order (Example 1 of the
// paper: K=5, x=0.3 -> x_1=0.2, x_2=0.1, rest 0).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace cubisg::core {

/// Chord approximation of a univariate function on [0, 1].
class PiecewiseLinear {
 public:
  /// Samples `f` at the K+1 breakpoints.  Requires segments >= 1.
  PiecewiseLinear(const std::function<double(double)>& f,
                  std::size_t segments);

  /// Adopts precomputed breakpoint values f(0/K)..f(K/K).  Requires
  /// values.size() >= 2.  Counts toward piecewise.functions_built like the
  /// sampling constructor.
  explicit PiecewiseLinear(std::vector<double> values);

  /// In-place rebuild for the solve-scoped RoundCache: overwrites the
  /// breakpoint values without reallocating.  The size must match the
  /// existing K+1.  Counts toward piecewise.cache_hits_total (a function
  /// construction avoided), not functions_built.
  void rebuild_from_values(std::span<const double> values);

  /// In-place axpy rebuild: values[k] = a[k] - c * b[k].  This is the
  /// affine-in-c form of the binary-search functions (f1 = L*Ud - c*L,
  /// f2 = U*Ud - c*U), bitwise-identical to sampling f1_of / f2_of at the
  /// breakpoints when `a` holds the precomputed products.
  void rebuild_axpy(std::span<const double> a, std::span<const double> b,
                    double c);

  /// In-place pointwise-min rebuild: values[k] = min(a(k/K), b(k/K)).
  /// This is phi for the DP step backend.
  void rebuild_min_of(const PiecewiseLinear& a, const PiecewiseLinear& b);

  std::size_t segments() const { return values_.size() - 1; }

  /// Breakpoint value f(k/K) (exact, by construction).
  double value_at_breakpoint(std::size_t k) const { return values_[k]; }

  /// Slope s_k of segment k (1-based k in the paper; 0-based here):
  /// s_k = K * (f((k+1)/K) - f(k/K)).
  double slope(std::size_t k) const;

  /// The approximation f~(x) for x in [0, 1].
  double evaluate(double x) const;

  /// f~(0), the constant term of the MILP objective rows.
  double value_at_zero() const { return values_.front(); }

 private:
  std::vector<double> values_;  // f at breakpoints 0..K
};

/// Splits x in [0,1] into ordered segment portions (Example 1):
/// x_k = 1/K while x >= (k+1)/K, then the remainder, then zeros.  The
/// residual segment receives exactly clamp(x) minus the filled prefix, so
/// from_segment_portions round-trips to clamp(x) bit-for-bit.
std::vector<double> segment_portions(double x, std::size_t segments);

/// Reassembles x = sum_k x_k (exact inverse of segment_portions).
double from_segment_portions(const std::vector<double>& portions);

/// Max |f(x) - f~(x)| sampled on a fine grid; used by the approximation
/// error tests and the convergence bench (Lemma 1: O(1/K)).
double max_approximation_error(const std::function<double(double)>& f,
                               const PiecewiseLinear& approx,
                               std::size_t samples = 1024);

}  // namespace cubisg::core

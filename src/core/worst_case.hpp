// Worst-case defender utility for a fixed strategy (the inner problem of
// the maximin (5)).
//
// Three independent evaluators are provided and cross-checked by the test
// suite; all compute
//
//   W(x) = min_{F_i in [L_i(x_i), U_i(x_i)]} sum_i q_i U^d_i(x_i),
//   q_i = F_i / sum_j F_j
//
//  * kClosedForm: the minimizer of a weighted average over a box is a
//    threshold policy — targets with utility below the optimum get weight
//    U_i, the rest L_i.  Sorting by utility and scanning the n+1 threshold
//    configurations with prefix sums is exact and O(n log n).  This is the
//    canonical (default) evaluator.
//  * kInnerLp: the paper's LP (6)-(8) in variables (y, z), solved by the
//    simplex substrate.  Also yields the worst-case attack distribution.
//  * kDualRoot: bisection on c -> G(x, beta(c), c), which is strictly
//    decreasing with root W(x) (LP duality, Eqs. 9-14).
#pragma once

#include <span>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/hfunction.hpp"
#include "games/security_game.hpp"

namespace cubisg::core {

/// Which algorithm computes the worst case.
enum class WorstCaseMethod { kClosedForm, kInnerLp, kDualRoot };

/// Result of a worst-case evaluation.
struct WorstCaseResult {
  double value = 0.0;              ///< W(x)
  std::vector<double> attack_q;    ///< worst-case attack distribution
  std::vector<double> worst_f;     ///< minimizing attractiveness values
};

/// Precomputes u_i, L_i, U_i at x.  Throws on size mismatch or non-positive
/// bound values.
PointData evaluate_point(const games::SecurityGame& game,
                         const behavior::AttractivenessBounds& bounds,
                         std::span<const double> x);

/// W(x) with the selected method (full result).
WorstCaseResult worst_case(const games::SecurityGame& game,
                           const behavior::AttractivenessBounds& bounds,
                           std::span<const double> x,
                           WorstCaseMethod method = WorstCaseMethod::kClosedForm);

/// Convenience: just the value.
double worst_case_utility(const games::SecurityGame& game,
                          const behavior::AttractivenessBounds& bounds,
                          std::span<const double> x,
                          WorstCaseMethod method = WorstCaseMethod::kClosedForm);

/// The symmetric best case: max over the box (attacker behaves as
/// favourably as the intervals allow).  Used by the price-of-uncertainty
/// analyses; same threshold argument with the opposite ordering.
double best_case_utility(const games::SecurityGame& game,
                         const behavior::AttractivenessBounds& bounds,
                         std::span<const double> x);

/// Robustness to EXECUTION error, on top of behavioral uncertainty: field
/// teams realize coverage clip(x_i + e_i, 0, 1) with e_i ~ U[-delta,
/// +delta] i.i.d.  Reports the Monte-Carlo mean and minimum of the
/// (behavioral) worst case over `samples` noise draws — how much of the
/// certificate survives sloppy execution.
struct ExecutionNoiseReport {
  double nominal = 0.0;  ///< W(x) with exact execution
  double mean = 0.0;     ///< E_noise[ W(clip(x + e)) ]
  double min = 0.0;      ///< min over sampled noise draws
};
ExecutionNoiseReport worst_case_under_execution_noise(
    const games::SecurityGame& game,
    const behavior::AttractivenessBounds& bounds, std::span<const double> x,
    double delta, std::size_t samples, Rng& rng);

/// Worst case from precomputed point data (closed form).
WorstCaseResult worst_case_from_point(const PointData& p);

/// Best case from precomputed point data (closed form).
double best_case_from_point(const PointData& p);

}  // namespace cubisg::core

#include "core/worst_case.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/errors.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::core {

namespace {

/// Threshold-policy scan: weights for the k lowest-utility targets set to
/// their upper bound, the rest to their lower bound; minimizing (or
/// maximizing, with `maximize`) the weighted average of u.
WorstCaseResult threshold_scan(const PointData& p, bool maximize) {
  const std::size_t n = p.u.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return maximize ? p.u[a] > p.u[b] : p.u[a] < p.u[b];
  });

  // Prefix sums over the sorted order.
  // For the min problem, configuration k assigns U to the first k targets
  // (lowest utilities) and L to the rest.
  std::vector<double> prefU_w(n + 1, 0.0), prefU_wu(n + 1, 0.0);
  std::vector<double> sufL_w(n + 1, 0.0), sufL_wu(n + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    prefU_w[k + 1] = prefU_w[k] + p.U[i];
    prefU_wu[k + 1] = prefU_wu[k] + p.U[i] * p.u[i];
  }
  for (std::size_t k = n; k-- > 0;) {
    const std::size_t i = order[k];
    sufL_w[k] = sufL_w[k + 1] + p.L[i];
    sufL_wu[k] = sufL_wu[k + 1] + p.L[i] * p.u[i];
  }

  double best = maximize ? -std::numeric_limits<double>::infinity()
                         : std::numeric_limits<double>::infinity();
  std::size_t best_k = 0;
  for (std::size_t k = 0; k <= n; ++k) {
    const double w = prefU_w[k] + sufL_w[k];
    const double wu = prefU_wu[k] + sufL_wu[k];
    const double avg = wu / w;
    if (maximize ? avg > best : avg < best) {
      best = avg;
      best_k = k;
    }
  }

  WorstCaseResult out;
  out.value = best;
  out.worst_f.assign(n, 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    out.worst_f[i] = k < best_k ? p.U[i] : p.L[i];
    total += out.worst_f[i];
  }
  out.attack_q.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) out.attack_q[i] = out.worst_f[i] / total;
  return out;
}

/// The paper's inner LP (6)-(8) in (y, z).
WorstCaseResult inner_lp(const PointData& p) {
  const std::size_t n = p.u.size();
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMinimize);
  std::vector<int> ycol(n);
  for (std::size_t i = 0; i < n; ++i) {
    ycol[i] = m.add_col("y" + std::to_string(i), 0.0, 1.0, p.u[i]);
  }
  const int zcol = m.add_col("z", 0.0, lp::kInf, 0.0);
  const int sum_row = m.add_row("sum_y", lp::Sense::kEq, 1.0);
  for (std::size_t i = 0; i < n; ++i) m.set_coeff(sum_row, ycol[i], 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    // y_i - L_i z >= 0
    const int rlo = m.add_row("lo" + std::to_string(i), lp::Sense::kGe, 0.0);
    m.set_coeff(rlo, ycol[i], 1.0);
    m.set_coeff(rlo, zcol, -p.L[i]);
    // y_i - U_i z <= 0
    const int rhi = m.add_row("hi" + std::to_string(i), lp::Sense::kLe, 0.0);
    m.set_coeff(rhi, ycol[i], 1.0);
    m.set_coeff(rhi, zcol, -p.U[i]);
  }
  lp::LpSolution s = lp::solve_lp(m);
  if (!s.optimal()) {
    throw NumericalError("worst_case inner LP returned " +
                         std::string(to_string(s.status)));
  }
  WorstCaseResult out;
  out.value = s.objective;
  out.attack_q.assign(n, 0.0);
  out.worst_f.assign(n, 0.0);
  const double z = s.x[zcol];
  for (std::size_t i = 0; i < n; ++i) {
    out.attack_q[i] = s.x[ycol[i]];
    out.worst_f[i] = z > 0.0 ? s.x[ycol[i]] / z : p.L[i];
  }
  return out;
}

/// Bisection on the strictly decreasing c -> G(x, beta(c), c).
double dual_root(const PointData& p) {
  const auto [umin_it, umax_it] =
      std::minmax_element(p.u.begin(), p.u.end());
  double lo = *umin_it - 1.0;
  double hi = *umax_it + 1.0;
  // G(lo) > 0 > G(hi) by construction (W(x) is a convex combination of u).
  for (int iter = 0; iter < 100 && hi - lo > 1e-13 * (1.0 + std::abs(hi));
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (g_at(p, mid) >= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

PointData evaluate_point(const games::SecurityGame& game,
                         const behavior::AttractivenessBounds& bounds,
                         std::span<const double> x) {
  const std::size_t n = game.num_targets();
  if (x.size() != n || bounds.num_targets() != n) {
    throw InvalidModelError("evaluate_point: size mismatch");
  }
  PointData p;
  p.u.resize(n);
  p.L.resize(n);
  p.U.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.u[i] = game.defender_utility(i, x[i]);
    p.L[i] = bounds.lower(i, x[i]);
    p.U[i] = bounds.upper(i, x[i]);
    if (!(p.L[i] > 0.0) || !(p.U[i] >= p.L[i])) {
      throw InvalidModelError(
          "evaluate_point: bounds must satisfy 0 < L <= U at target " +
          std::to_string(i));
    }
  }
  return p;
}

WorstCaseResult worst_case_from_point(const PointData& p) {
  return threshold_scan(p, /*maximize=*/false);
}

double best_case_from_point(const PointData& p) {
  return threshold_scan(p, /*maximize=*/true).value;
}

WorstCaseResult worst_case(const games::SecurityGame& game,
                           const behavior::AttractivenessBounds& bounds,
                           std::span<const double> x,
                           WorstCaseMethod method) {
  const PointData p = evaluate_point(game, bounds, x);
  switch (method) {
    case WorstCaseMethod::kClosedForm:
      return threshold_scan(p, false);
    case WorstCaseMethod::kInnerLp:
      return inner_lp(p);
    case WorstCaseMethod::kDualRoot: {
      WorstCaseResult out = threshold_scan(p, false);
      out.value = dual_root(p);  // value from the dual; witness from scan
      return out;
    }
  }
  throw std::logic_error("worst_case: unknown method");
}

double worst_case_utility(const games::SecurityGame& game,
                          const behavior::AttractivenessBounds& bounds,
                          std::span<const double> x, WorstCaseMethod method) {
  return worst_case(game, bounds, x, method).value;
}

double best_case_utility(const games::SecurityGame& game,
                         const behavior::AttractivenessBounds& bounds,
                         std::span<const double> x) {
  return best_case_from_point(evaluate_point(game, bounds, x));
}

ExecutionNoiseReport worst_case_under_execution_noise(
    const games::SecurityGame& game,
    const behavior::AttractivenessBounds& bounds, std::span<const double> x,
    double delta, std::size_t samples, Rng& rng) {
  if (!(delta >= 0.0)) {
    throw InvalidModelError("execution noise: delta must be >= 0");
  }
  if (samples == 0) {
    throw InvalidModelError("execution noise: samples must be >= 1");
  }
  ExecutionNoiseReport report;
  report.nominal = worst_case_utility(game, bounds, x);
  if (delta == 0.0) {
    report.mean = report.nominal;
    report.min = report.nominal;
    return report;
  }
  double sum = 0.0;
  double worst = std::numeric_limits<double>::infinity();
  std::vector<double> noisy(x.size());
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      noisy[i] = std::clamp(x[i] + rng.uniform(-delta, delta), 0.0, 1.0);
    }
    const double w = worst_case_utility(game, bounds, noisy);
    sum += w;
    worst = std::min(worst, w);
  }
  report.mean = sum / static_cast<double>(samples);
  report.min = worst;
  return report;
}

}  // namespace cubisg::core

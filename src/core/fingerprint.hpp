// Canonical scenario fingerprints for the cross-solve result cache.
//
// A Fingerprint is an order-stable digest of everything that determines a
// solve's bitwise result: the per-target payoffs, the attacker payoff
// intervals [L_i, U_i] feeding the behavioral bounds, the resource count
// R, the SUQR weight boxes and interval mode, and the solver's identity
// plus every tolerance-relevant option (canonical_solver_config).  Two
// scenarios with equal fingerprints produce byte-identical canonical
// solutions from the same solver, so the engine's SolveCache may return a
// cached result for an exact hit (re-stamping only the job id and
// telemetry, the same fields the batch journal's solution digest zeroes).
//
// Layout mirrors the journal's digest conventions: a little-endian byte
// buffer hashed with FNV-1a 64.  The buffer has two regions:
//
//   compat prefix   header, solver config, interval mode, R, weight
//                   boxes, target count — everything that must match
//                   before any per-target state is comparable at all.
//   target blocks   8 doubles per target (Ra, Pa, Rd, Pd, iv.Ra.lo/hi,
//                   iv.Pa.lo/hi), kept verbatim in Fingerprint::blocks
//                   so near-miss candidates can be compared bitwise
//                   per target without reloading the scenario.
//
// `digest` hashes the whole buffer; `compat` hashes only the prefix.
// fingerprint_distance() is +inf across differing compat hashes or block
// shapes (transplanting between them is meaningless), else the number of
// per-target blocks that differ bitwise, with a bounded L1 tiebreak so
// "one target nudged slightly" beats "one target replaced".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cubisg::behavior {
struct Scenario;
}  // namespace cubisg::behavior

namespace cubisg::core {

/// FNV-1a 64 over raw bytes (same primitive and constants as the batch
/// journal's engine::fnv1a64; duplicated here because core must not
/// depend on the engine layer).
std::uint64_t fp_fnv1a64(const void* data, std::size_t len);

/// Doubles per target block (Ra, Pa, Rd, Pd, ivRa.lo, ivRa.hi, ivPa.lo,
/// ivPa.hi).
inline constexpr std::size_t kFingerprintBlockDoubles = 8;

struct Fingerprint {
  /// Hash of the full canonical buffer: equal digests (plus equal blocks,
  /// checked by the cache against collisions) mean bitwise-equal solves.
  std::uint64_t digest = 0;
  /// Hash of the compat prefix only (solver config, mode, R, weights, T):
  /// transplant candidates must match it exactly.
  std::uint64_t compat = 0;
  /// The per-target doubles, flattened [T][kFingerprintBlockDoubles].
  std::vector<double> blocks;

  std::size_t num_targets() const {
    return blocks.size() / kFingerprintBlockDoubles;
  }
  bool operator==(const Fingerprint& other) const {
    return digest == other.digest && compat == other.compat &&
           blocks == other.blocks;
  }
};

/// Builds the canonical fingerprint of `scenario` under `solver_config`
/// (canonical_solver_config of the solver that will run the job; any
/// stable string works as long as distinct tolerance-relevant configs map
/// to distinct strings).
Fingerprint fingerprint_scenario(const behavior::Scenario& scenario,
                                 std::string_view solver_config);

/// Transplant nearness: +inf when compat or shape differs; otherwise the
/// count of per-target blocks that differ bitwise plus an L1 tiebreak in
/// [0, 1).  0.0 means identical fingerprints.
double fingerprint_distance(const Fingerprint& a, const Fingerprint& b);

}  // namespace cubisg::core

#include "core/gradient.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/workspace.hpp"
#include "core/worst_case.hpp"
#include "games/coverage_space.hpp"
#include "parallel/parallel_for.hpp"

namespace cubisg::core {

namespace {

/// One projected-gradient ascent run from `x0`; returns the best iterate.
/// Trial steps are projected onto `space`; the simplex instance delegates
/// to the legacy project_to_simplex_box arithmetic bit-for-bit.
std::pair<std::vector<double>, double> ascend(
    const std::function<double(const std::vector<double>&)>& w_of,
    const games::CoverageSpace& space, const GradientOptions& opt,
    std::vector<double> x) {
  const std::size_t n = x.size();
  double w = w_of(x);
  std::vector<double> grad(n), trial(n), shifted;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    // Central differences (projected evaluation keeps arguments in box;
    // the polytope constraints are handled by projecting the ascent step).
    for (std::size_t i = 0; i < n; ++i) {
      shifted = x;
      const double hi_pt = std::min(1.0, x[i] + opt.grad_eps);
      const double lo_pt = std::max(0.0, x[i] - opt.grad_eps);
      shifted[i] = hi_pt;
      const double up = w_of(shifted);
      shifted[i] = lo_pt;
      const double dn = w_of(shifted);
      grad[i] = (up - dn) / (hi_pt - lo_pt);
    }

    double step = opt.initial_step;
    bool improved = false;
    for (int bt = 0; bt < opt.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) trial[i] = x[i] + step * grad[i];
      trial = space.project(trial);
      const double wt = w_of(trial);
      if (wt > w + 1e-12) {
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          delta = std::max(delta, std::abs(trial[i] - x[i]));
        }
        x = trial;
        w = wt;
        improved = true;
        if (delta < opt.converge_tol) return {x, w};
        break;
      }
      step *= opt.step_shrink;
    }
    if (!improved) break;  // local maximum (up to line-search resolution)
  }
  return {x, w};
}

}  // namespace

std::pair<std::vector<double>, double> projected_ascent(
    const std::function<double(const std::vector<double>&)>& objective,
    double resources, std::vector<double> x0,
    const GradientOptions& options) {
  // Read the size before std::move(x0): function arguments are
  // indeterminately sequenced, so the by-value move may run first.
  const std::size_t n = x0.size();
  return ascend(objective, games::CoverageSpace::simplex(n, resources),
                options, std::move(x0));
}

std::pair<std::vector<double>, double> local_ascent(
    const SolveContext& ctx, std::vector<double> x0,
    const GradientOptions& options) {
  auto w_of = [&ctx](const std::vector<double>& xx) {
    return worst_case_utility(ctx.game, ctx.bounds, xx);
  };
  return ascend(w_of, effective_space(ctx), options, std::move(x0));
}

GradientSolver::GradientSolver(GradientOptions options) : opt_(options) {
  if (opt_.num_starts < 1) {
    throw InvalidModelError("GradientSolver: num_starts must be >= 1");
  }
}

DefenderSolution GradientSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  const std::size_t n = ctx.game.num_targets();
  const games::CoverageSpace space = effective_space(ctx);

  // Start set: uniform, greedy-by-penalty, then random points, each a
  // feasible point of the coverage polytope.  The buffer comes from the
  // workspace (cleared, so only capacity is reused).
  SolveWorkspace local_ws;
  SolveWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local_ws;
  std::vector<std::vector<double>>& starts = ws.gradient_starts;
  starts.clear();
  starts.push_back(space.uniform_seed());
  {
    std::vector<double> penalties(n);
    for (std::size_t i = 0; i < n; ++i) {
      penalties[i] = ctx.game.target(i).defender_penalty;
    }
    starts.push_back(space.greedy_seed(penalties));
  }
  Rng rng(opt_.seed);
  while (starts.size() < static_cast<std::size_t>(opt_.num_starts) + 2) {
    std::vector<double> x(n);
    for (double& xi : x) xi = rng.uniform();
    starts.push_back(space.project(x));
  }

  ThreadPool& pool = opt_.pool ? *opt_.pool : ThreadPool::global();
  auto w_of = [&ctx](const std::vector<double>& xx) {
    return worst_case_utility(ctx.game, ctx.bounds, xx);
  };
  std::vector<std::pair<std::vector<double>, double>> results =
      parallel_map(pool, starts.size(), [&](std::size_t s) {
        return ascend(w_of, space, opt_, starts[s]);
      });

  DefenderSolution sol;
  sol.status = SolverStatus::kOptimal;
  double best = -std::numeric_limits<double>::infinity();
  for (auto& [x, w] : results) {
    if (w > best) {
      best = w;
      sol.strategy = std::move(x);
    }
  }
  sol.solver_objective = best;
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

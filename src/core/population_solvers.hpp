// Population-based baselines from the paper's related work (Section II).
//
// Both operate on N sampled SUQR attacker types drawn from the parameter
// boxes, instead of the interval-bound abstraction CUBIS uses:
//
//  * RobustTypesSolver — the robust-to-types approach of Brown, Haskell,
//    Tambe (GameSec'14, the paper's [3]): maximize the MINIMUM expected
//    defender utility over the sampled types.  The paper criticizes it as
//    requiring precise per-type models and as overly conservative; having
//    it in-repo lets benches quantify that.
//  * BayesianSolver — the Bayesian approach of Yang, Ford, Tambe, Lemieux
//    (AAMAS'14, the paper's [20]) with a uniform prior over the sampled
//    types: maximize the MEAN expected utility.
//
// Both objectives are smooth (mean) or piecewise-smooth (min) functions of
// x and are optimized by multi-start projected gradient ascent over the
// strategy polytope — the same machinery as the fmincon-substitute.
#pragma once

#include <memory>

#include "behavior/attacker_sim.hpp"
#include "core/gradient.hpp"
#include "core/solvers.hpp"

namespace cubisg::core {

/// Options shared by the population baselines.
struct PopulationOptions {
  /// The sampled attacker types.  Required.
  std::shared_ptr<const behavior::SampledSuqrPopulation> population;
  /// Ascent configuration (restarts, iterations, ...).
  GradientOptions ascent;
};

/// max_x min_t E[defender utility | type t]  (the paper's reference [3]).
class RobustTypesSolver final : public DefenderSolver {
 public:
  explicit RobustTypesSolver(PopulationOptions options);
  std::string name() const override { return "robust-types"; }
  DefenderSolution solve(const SolveContext& ctx) const override;

 private:
  PopulationOptions opt_;
};

/// max_x mean_t E[defender utility | type t]  (the paper's reference [20],
/// uniform prior).
class BayesianSolver final : public DefenderSolver {
 public:
  explicit BayesianSolver(PopulationOptions options);
  std::string name() const override { return "bayesian-mean"; }
  DefenderSolution solve(const SolveContext& ctx) const override;

 private:
  PopulationOptions opt_;
};

}  // namespace cubisg::core

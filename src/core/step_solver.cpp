#include "core/step_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cubisg::core {

StepResult solve_step_dp(const std::vector<PiecewiseLinear>& phi,
                         double resources) {
  if (phi.empty()) throw InvalidModelError("solve_step_dp: no targets");
  const std::size_t t_count = phi.size();
  const std::size_t k_count = phi.front().segments();
  for (const PiecewiseLinear& p : phi) {
    if (p.segments() != k_count) {
      throw InvalidModelError("solve_step_dp: mismatched segment counts");
    }
  }
  // Budget in coverage units of 1/K.  A fractional product is floored:
  // the DP then optimizes over a slightly smaller budget, which is a
  // CONSERVATIVE under-approximation — feasibility verdicts derived from
  // its objective remain valid certificates, and the loss is within the
  // O(1/K) approximation budget the grid already carries.
  const double units_exact = resources * static_cast<double>(k_count);
  const auto units =
      static_cast<std::size_t>(std::floor(units_exact + 1e-9));

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  // value[u] = best sum of phi over processed targets using exactly u units.
  std::vector<double> value(units + 1, kNegInf);
  value[0] = 0.0;
  // choice[i][u] = units assigned to target i in the best fill of u.
  std::vector<std::vector<std::uint16_t>> choice(
      t_count, std::vector<std::uint16_t>(units + 1, 0));

  std::vector<double> next(units + 1);
  for (std::size_t i = 0; i < t_count; ++i) {
    std::fill(next.begin(), next.end(), kNegInf);
    const std::size_t max_take = std::min(units, k_count);
    for (std::size_t u = 0; u <= units; ++u) {
      if (value[u] == kNegInf) continue;
      for (std::size_t t = 0; t <= max_take && u + t <= units; ++t) {
        const double cand = value[u] + phi[i].value_at_breakpoint(t);
        if (cand > next[u + t]) {
          next[u + t] = cand;
          choice[i][u + t] = static_cast<std::uint16_t>(t);
        }
      }
    }
    value.swap(next);
  }

  // The budget is an upper bound (paper Eq. 37 uses <= R): take the best
  // total over all unit usages.
  std::size_t best_u = 0;
  double best = kNegInf;
  for (std::size_t u = 0; u <= units; ++u) {
    if (value[u] > best) {
      best = value[u];
      best_u = u;
    }
  }

  StepResult out;
  out.status = SolverStatus::kOptimal;
  out.objective = best;
  out.x.assign(t_count, 0.0);
  std::size_t u = best_u;
  for (std::size_t ii = t_count; ii-- > 0;) {
    const std::size_t t = choice[ii][u];
    out.x[ii] = static_cast<double>(t) / static_cast<double>(k_count);
    u -= t;
  }
  return out;
}

StepResult solve_step_dp_flat(const double* phi_flat, std::size_t t_count,
                              std::size_t segments, double resources,
                              DpScratch& scratch) {
  if (t_count == 0) throw InvalidModelError("solve_step_dp_flat: no targets");
  if (segments == 0) {
    throw InvalidModelError("solve_step_dp_flat: segments must be >= 1");
  }
  const std::size_t k_count = segments;
  // Same budget flooring as solve_step_dp (see the comment there).
  const double units_exact = resources * static_cast<double>(k_count);
  const auto units =
      static_cast<std::size_t>(std::floor(units_exact + 1e-9));

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t stride = units + 1;
  const std::size_t max_take = std::min(units, k_count);
  // Row i = value table after the first i targets; row 0 is the seed.
  // resize() keeps capacity across rounds, so rebuilds after the first
  // round cost no allocation.
  scratch.values.resize((t_count + 1) * stride);
  double* rows = scratch.values.data();
  std::fill(rows, rows + stride, kNegInf);
  rows[0] = 0.0;

  // reach = largest u with a finite value after the processed targets
  // (every u <= reach is attainable, so the finite region is contiguous
  // and the -inf guard of the reference DP becomes a loop bound).
  std::size_t reach = 0;
  for (std::size_t i = 0; i < t_count; ++i) {
    const double* value = rows + i * stride;
    double* next = rows + (i + 1) * stride;
    const double* p = phi_flat + i * (k_count + 1);
    const std::size_t next_reach = std::min(units, reach + max_take);
    std::fill(next, next + next_reach + 1, kNegInf);
    for (std::size_t t = 0; t <= max_take; ++t) {
      const double pt = p[t];
      const std::size_t hi_u = std::min(reach, units - t);
      double* dst = next + t;
      // Branchless max (ties keep dst) computes the same values as the
      // reference DP's strict-improvement update and lets the compiler
      // vectorize; the backtrack recomputes the argmax, so no choice needs
      // recording here.
      for (std::size_t u = 0; u <= hi_u; ++u) {
        dst[u] = std::max(dst[u], value[u] + pt);
      }
    }
    reach = next_reach;
  }

  // Smallest-u maximizer, matching the reference DP's strict-> scan.
  const double* last = rows + t_count * stride;
  std::size_t best_u = 0;
  double best = kNegInf;
  for (std::size_t u = 0; u <= reach; ++u) {
    if (last[u] > best) {
      best = last[u];
      best_u = u;
    }
  }

  StepResult out;
  out.status = SolverStatus::kOptimal;
  out.objective = best;
  out.x.assign(t_count, 0.0);
  // Backtrack: the reference DP's choice[w] keeps the FIRST strict
  // improvement, visited in ascending predecessor order, i.e. descending
  // take order — so its recorded take is the LARGEST maximizer.  Scanning
  // t downward for the first exact candidate match reproduces it (the
  // sums are recomputed from the same doubles, so equality is bitwise).
  std::size_t u = best_u;
  for (std::size_t ii = t_count; ii-- > 0;) {
    const double* value = rows + ii * stride;
    const double* p = phi_flat + ii * (k_count + 1);
    const double target = rows[(ii + 1) * stride + u];
    const std::size_t prev_reach = std::min(units, ii * max_take);
    const std::size_t t_hi = std::min(max_take, u);
    const std::size_t t_lo = u > prev_reach ? u - prev_reach : 0;
    std::size_t take = t_lo;
    for (std::size_t t = t_hi + 1; t-- > t_lo;) {
      if (value[u - t] + p[t] == target) {
        take = t;
        break;
      }
    }
    out.x[ii] = static_cast<double>(take) / static_cast<double>(k_count);
    u -= take;
  }
  return out;
}

namespace {

/// solve_step_dp with per-target unit caps: target i takes at most
/// unit_caps[i] units.  With every cap at K this evaluates exactly the
/// candidate set of solve_step_dp; the cap only shrinks the inner take
/// loop, so the DP stays an exact grid optimizer.
StepResult solve_step_dp_capped(const std::vector<PiecewiseLinear>& phi,
                                double resources,
                                const std::vector<std::size_t>& unit_caps) {
  if (phi.empty()) throw InvalidModelError("solve_step_dp: no targets");
  const std::size_t t_count = phi.size();
  const std::size_t k_count = phi.front().segments();
  for (const PiecewiseLinear& p : phi) {
    if (p.segments() != k_count) {
      throw InvalidModelError("solve_step_dp: mismatched segment counts");
    }
  }
  const double units_exact = resources * static_cast<double>(k_count);
  const auto units =
      static_cast<std::size_t>(std::floor(units_exact + 1e-9));

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> value(units + 1, kNegInf);
  value[0] = 0.0;
  std::vector<std::vector<std::uint16_t>> choice(
      t_count, std::vector<std::uint16_t>(units + 1, 0));

  std::vector<double> next(units + 1);
  for (std::size_t i = 0; i < t_count; ++i) {
    std::fill(next.begin(), next.end(), kNegInf);
    const std::size_t max_take =
        std::min({units, k_count, unit_caps[i]});
    for (std::size_t u = 0; u <= units; ++u) {
      if (value[u] == kNegInf) continue;
      for (std::size_t t = 0; t <= max_take && u + t <= units; ++t) {
        const double cand = value[u] + phi[i].value_at_breakpoint(t);
        if (cand > next[u + t]) {
          next[u + t] = cand;
          choice[i][u + t] = static_cast<std::uint16_t>(t);
        }
      }
    }
    value.swap(next);
  }

  std::size_t best_u = 0;
  double best = kNegInf;
  for (std::size_t u = 0; u <= units; ++u) {
    if (value[u] > best) {
      best = value[u];
      best_u = u;
    }
  }

  StepResult out;
  out.status = SolverStatus::kOptimal;
  out.objective = best;
  out.x.assign(t_count, 0.0);
  std::size_t u = best_u;
  for (std::size_t ii = t_count; ii-- > 0;) {
    const std::size_t t = choice[ii][u];
    out.x[ii] = static_cast<double>(t) / static_cast<double>(k_count);
    u -= t;
  }
  return out;
}

}  // namespace

StepResult solve_step_dp_grouped(const std::vector<PiecewiseLinear>& phi,
                                 const std::vector<std::size_t>& groups,
                                 const std::vector<double>& budgets) {
  if (groups.size() != phi.size()) {
    throw InvalidModelError("solve_step_dp_grouped: groups size mismatch");
  }
  if (budgets.empty()) {
    throw InvalidModelError("solve_step_dp_grouped: no budgets");
  }
  // Partition target indices by group.
  std::vector<std::vector<std::size_t>> members(budgets.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] >= budgets.size()) {
      throw InvalidModelError("solve_step_dp_grouped: group id out of range");
    }
    members[groups[i]].push_back(i);
  }

  StepResult out;
  out.status = SolverStatus::kOptimal;
  out.objective = 0.0;
  out.x.assign(phi.size(), 0.0);
  for (std::size_t g = 0; g < budgets.size(); ++g) {
    if (members[g].empty()) continue;
    std::vector<PiecewiseLinear> sub;
    sub.reserve(members[g].size());
    for (std::size_t i : members[g]) sub.push_back(phi[i]);
    StepResult part = solve_step_dp(sub, budgets[g]);
    out.objective += part.objective;
    for (std::size_t j = 0; j < members[g].size(); ++j) {
      out.x[members[g][j]] = part.x[j];
    }
  }
  return out;
}

StepResult solve_step_dp_space(const std::vector<PiecewiseLinear>& phi,
                               const games::CoverageSpace& space) {
  if (phi.empty()) throw InvalidModelError("solve_step_dp_space: no targets");
  if (!space.is_default() && space.num_targets() != phi.size()) {
    throw InvalidModelError("solve_step_dp_space: space size mismatch");
  }
  if (space.is_default() || space.is_simplex()) {
    const double budget =
        space.is_default() ? 0.0 : space.budget(0);
    return solve_step_dp(phi, budget);
  }
  const std::size_t k_count = phi.front().segments();
  // Partition target indices by group (same stitching as _grouped).
  std::vector<std::vector<std::size_t>> members(space.num_groups());
  for (std::size_t i = 0; i < phi.size(); ++i) {
    members[space.group_of(i)].push_back(i);
  }
  StepResult out;
  out.status = SolverStatus::kOptimal;
  out.objective = 0.0;
  out.x.assign(phi.size(), 0.0);
  for (std::size_t g = 0; g < space.num_groups(); ++g) {
    if (members[g].empty()) continue;
    std::vector<PiecewiseLinear> sub;
    sub.reserve(members[g].size());
    for (std::size_t i : members[g]) sub.push_back(phi[i]);
    StepResult part;
    if (space.has_caps()) {
      std::vector<std::size_t> unit_caps;
      unit_caps.reserve(members[g].size());
      for (std::size_t i : members[g]) {
        // Floored like the budget: a fractional cap under-covers by at
        // most one grid unit, conservatively feasible.
        unit_caps.push_back(static_cast<std::size_t>(std::floor(
            space.cap(i) * static_cast<double>(k_count) + 1e-9)));
      }
      part = solve_step_dp_capped(sub, space.budget(g), unit_caps);
    } else {
      part = solve_step_dp(sub, space.budget(g));
    }
    out.objective += part.objective;
    for (std::size_t j = 0; j < members[g].size(); ++j) {
      out.x[members[g][j]] = part.x[j];
    }
  }
  return out;
}

StepResult solve_step_dp_flat_space(const double* phi_flat,
                                    std::size_t t_count,
                                    std::size_t segments,
                                    const games::CoverageSpace& space,
                                    DpScratch& scratch) {
  if (space.is_default() || space.is_simplex()) {
    const double budget =
        space.is_default() ? 0.0 : space.budget(0);
    return solve_step_dp_flat(phi_flat, t_count, segments, budget, scratch);
  }
  // Grouped/capped spaces rebuild PiecewiseLinear views of the flat rows
  // and run the per-group DP; the allocation is acceptable off the
  // simplex fast path (the flat layout only pays off with one knapsack).
  std::vector<PiecewiseLinear> phi;
  phi.reserve(t_count);
  for (std::size_t i = 0; i < t_count; ++i) {
    std::vector<double> values(phi_flat + i * (segments + 1),
                               phi_flat + (i + 1) * (segments + 1));
    phi.emplace_back(std::move(values));
  }
  return solve_step_dp_space(phi, space);
}

}  // namespace cubisg::core

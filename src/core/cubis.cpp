#include "core/cubis.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/gradient.hpp"
#include "core/round_cache.hpp"
#include "core/workspace.hpp"
#include "games/strategy_space.hpp"
#include "obs/metrics.hpp"
#include "obs/solve_report.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace cubisg::core {

namespace {

/// Registry handles for the binary-search driver, resolved once.
struct CubisMetrics {
  obs::Counter& solves = obs::Registry::global().counter(
      "cubis.solves_total");
  obs::Counter& binary_search_iters = obs::Registry::global().counter(
      "cubis.binary_search_iters");
  obs::Counter& feasibility_checks = obs::Registry::global().counter(
      "cubis.feasibility_checks_total");
  obs::Counter& polish_runs = obs::Registry::global().counter(
      "cubis.polish_runs");
  obs::Counter& bigm_linearizations = obs::Registry::global().counter(
      "milp.bigm_linearizations");

  static CubisMetrics& get() {
    static CubisMetrics m;
    return m;
  }
};

/// Resolves the coverage polytope a step optimizes over.  An explicit
/// SolveContext::space wins; the legacy CubisOptions group fields are an
/// instance of the grouped family; the default is the paper's simplex.
/// The simplex instance routes every caller onto the legacy byte-for-byte
/// arithmetic via is_simplex().
games::CoverageSpace step_space(const SolveContext& ctx,
                                const CubisOptions& opt) {
  if (ctx.space != nullptr && !ctx.space->is_default()) {
    return effective_space(ctx);
  }
  if (!opt.group_budgets.empty()) {
    try {
      return games::CoverageSpace::grouped(opt.target_groups,
                                           opt.group_budgets);
    } catch (const std::invalid_argument& e) {
      throw InvalidModelError(std::string("cubis: ") + e.what());
    }
  }
  return games::CoverageSpace::simplex(ctx.game.num_targets(),
                                       ctx.game.resources());
}

std::vector<TargetPls> build_f_pls(const SolveContext& ctx, double c,
                                   std::size_t segments,
                                   const StepTables* tables) {
  std::vector<TargetPls> out;
  out.reserve(ctx.game.num_targets());
  for (std::size_t i = 0; i < ctx.game.num_targets(); ++i) {
    if (tables != nullptr) {
      // Breakpoint values from the precomputed tables (f1 = L*(Ud - c)).
      const auto k_of = [segments](double x) {
        return static_cast<std::size_t>(
            std::llround(x * static_cast<double>(segments)));
      };
      auto f1 = [&, i](double x) {
        const std::size_t k = k_of(x);
        return f1_of(tables->lower[i][k], tables->utility[i][k], c);
      };
      auto f2 = [&, i](double x) {
        const std::size_t k = k_of(x);
        return f2_of(tables->upper[i][k], tables->utility[i][k], c);
      };
      out.push_back(TargetPls{PiecewiseLinear(f1, segments),
                              PiecewiseLinear(f2, segments)});
    } else {
      auto f1 = [&, i](double x) {
        return f1_of(ctx.bounds.lower(i, x), ctx.game.defender_utility(i, x),
                     c);
      };
      auto f2 = [&, i](double x) {
        return f2_of(ctx.bounds.upper(i, x), ctx.game.defender_utility(i, x),
                     c);
      };
      out.push_back(TargetPls{PiecewiseLinear(f1, segments),
                              PiecewiseLinear(f2, segments)});
    }
  }
  return out;
}

/// phi_i = chord interpolation of min(f1, f2) at breakpoints, the DP
/// backend's objective (a uniformly O(1/K)-close under-approximation of
/// the MILP's min(f1~, f2~); see step_solver.hpp).
std::vector<PiecewiseLinear> phi_from(const std::vector<TargetPls>& pls) {
  std::vector<PiecewiseLinear> phi;
  phi.reserve(pls.size());
  for (const TargetPls& t : pls) {
    const std::size_t k_count = t.f1.segments();
    phi.emplace_back(
        [&](double x) {
          // Only ever evaluated at breakpoints during construction.
          const std::size_t k = static_cast<std::size_t>(
              std::llround(x * static_cast<double>(k_count)));
          return std::min(t.f1.value_at_breakpoint(k),
                          t.f2.value_at_breakpoint(k));
        },
        k_count);
  }
  return phi;
}

/// Shared translation of a branch-and-bound verdict into a StepResult,
/// used by both the fresh and the skeleton-patching MILP paths.
StepResult extract_step_result(const milp::MilpSolution& sol,
                               const MilpLayout& layout,
                               const CubisOptions& opt) {
  StepResult out;
  out.milp_nodes = sol.nodes;
  out.from_milp = true;
  out.milp_incumbent = sol.has_solution() ? sol.objective : 0.0;
  out.milp_bound = sol.best_bound;
  if (sol.status == SolverStatus::kEarlyPositive ||
      ((sol.status == SolverStatus::kOptimal ||
        sol.status == SolverStatus::kIterLimit ||
        sol.status == SolverStatus::kTimeLimit) &&
       sol.has_solution() &&
       sol.objective >= -opt.feasibility_slack)) {
    out.status = SolverStatus::kOptimal;
    out.objective = sol.has_solution() ? sol.objective : 0.0;
    out.x.assign(layout.t_count, 0.0);
    const double k_inv = 1.0 / static_cast<double>(layout.k_count);
    for (std::size_t i = 0; i < layout.t_count; ++i) {
      double xi = 0.0;
      for (std::size_t k = 0; k < layout.k_count; ++k) {
        xi += sol.x[layout.xcol(i, k)] * k_inv;
      }
      out.x[i] = std::clamp(xi, 0.0, 1.0);
    }
  } else if (sol.status == SolverStatus::kEarlyNegative ||
             sol.status == SolverStatus::kOptimal ||
             sol.status == SolverStatus::kInfeasible) {
    // Proven: no point reaches the threshold (or, for kOptimal, the best
    // objective is below the slack).
    out.status = SolverStatus::kOptimal;
    out.objective = sol.has_solution() ? sol.objective : -1.0;
    // No witness strategy: leave x empty; caller treats this as infeasible.
  } else {
    out.status = sol.status;
  }
  return out;
}

StepResult solve_step_milp(const SolveContext& ctx,
                           const std::vector<TargetPls>& pls,
                           const CubisOptions& opt,
                           const games::CoverageSpace& space) {
  MilpLayout layout;
  lp::Model model = build_step_milp(ctx, pls, step_big_m(pls), opt, layout,
                                    /*dense=*/false, nullptr, &space);
  // One (34)-(36) big-M block per target.
  CubisMetrics::get().bigm_linearizations.add(
      static_cast<std::int64_t>(layout.t_count));

  milp::MilpOptions mopt = opt.milp;
  mopt.sign_threshold = -opt.feasibility_slack;
  if (mopt.budget == nullptr) mopt.budget = ctx.budget;
  if (opt.warm_start_from_dp) {
    // The space-driven DP matches the legacy single-budget / grouped
    // warm starts exactly (same per-group knapsacks, same stitching).
    StepResult dp =
        space.is_simplex()
            ? solve_step_dp(phi_from(pls), ctx.game.resources())
            : solve_step_dp_space(phi_from(pls), space);
    mopt.warm_start = milp_point_from_x(layout, pls, dp.x, model.num_cols());
  }
  milp::MilpSolution sol = milp::solve_milp(model, mopt);
  return extract_step_result(sol, layout, opt);
}

/// Skeleton-patching variant: builds the dense MILP once per solve (lane),
/// then only rewrites the c-dependent coefficients each round and carries
/// the previous round's optimal root basis into the next root relaxation.
StepResult solve_step_milp_cached(const SolveContext& ctx,
                                  const CubisOptions& opt,
                                  RoundReuse& reuse) {
  if (reuse.milp == nullptr) {
    // First round: assembly doubles as the patch (the cache already holds
    // this round's values).
    reuse.milp = std::make_unique<MilpStepCache>(ctx, reuse.cache, opt);
  } else {
    reuse.milp->patch(reuse.cache);
  }
  MilpStepCache& cache = *reuse.milp;
  const MilpLayout& layout = cache.layout();
  CubisMetrics::get().bigm_linearizations.add(
      static_cast<std::int64_t>(layout.t_count));

  milp::MilpOptions mopt = opt.milp;
  mopt.sign_threshold = -opt.feasibility_slack;
  if (mopt.budget == nullptr) mopt.budget = ctx.budget;
  if (opt.warm_start_from_dp) {
    StepResult dp = solve_step_dp_flat(
        reuse.cache.phi_flat().data(), reuse.cache.t_count(), layout.k_count,
        ctx.game.resources(), reuse.dp_scratch);
    mopt.warm_start = milp_point_from_x(layout, reuse.cache.pls(), dp.x,
                                        cache.model().num_cols());
  }
  if (mopt.num_workers <= 1) {
    // Cross-round root basis; the parallel search ignores the handle (its
    // write-back order would race), so don't bother pointing it there.
    mopt.root_warm = &cache.root_basis();
  }
  milp::MilpSolution sol = milp::solve_milp(cache.model(), mopt);
  return extract_step_result(sol, layout, opt);
}

/// Cross-solve transplant of the breakpoint tables — the adopt/repair
/// rungs of the ladder.  Returns false (reject rung) when the donor's
/// shape does not match or the transplant-reject fault fires; the caller
/// then cold-builds.  Adoption is bitwise-safe by construction: a step
/// table samples only per-target payoff/interval quantities and the
/// compat-checked weights/mode at x = k/K (R never enters), so a target
/// whose fingerprint block equals the donor's bitwise rebuilds to
/// exactly the donor's rows.  Non-matching targets are repaired with the
/// fresh formula, making the result identical to build_step_tables_into.
bool transplant_step_tables(const SolveContext& ctx, std::size_t segments,
                            const TransplantSeed& seed, StepTables& out,
                            TransplantStats& stats) {
  const TransplantDonor* donor = seed.donor.get();
  const std::size_t n = ctx.game.num_targets();
  if (donor == nullptr || donor->tables.segments != segments ||
      donor->tables.lower.size() != n || seed.adopt.size() != n) {
    return false;
  }
  if (faultinject::should_fail(faultinject::Site::kTransplantReject)) {
    return false;
  }
  out.segments = segments;
  out.lower.resize(n);
  out.upper.resize(n);
  out.utility.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (seed.adopt[i] != 0) {
      out.lower[i] = donor->tables.lower[i];
      out.upper[i] = donor->tables.upper[i];
      out.utility[i] = donor->tables.utility[i];
      ++stats.adopted;
      continue;
    }
    out.lower[i].resize(segments + 1);
    out.upper[i].resize(segments + 1);
    out.utility[i].resize(segments + 1);
    for (std::size_t k = 0; k <= segments; ++k) {
      const double x =
          static_cast<double>(k) / static_cast<double>(segments);
      out.lower[i][k] = ctx.bounds.lower(i, x);
      out.upper[i][k] = ctx.bounds.upper(i, x);
      out.utility[i][k] = ctx.game.defender_utility(i, x);
    }
    ++stats.repaired;
  }
  return true;
}

}  // namespace

StepTables build_step_tables(const SolveContext& ctx,
                             std::size_t segments) {
  StepTables t;
  build_step_tables_into(ctx, segments, t);
  return t;
}

void build_step_tables_into(const SolveContext& ctx, std::size_t segments,
                            StepTables& t) {
  t.segments = segments;
  const std::size_t n = ctx.game.num_targets();
  t.lower.resize(n);
  t.upper.resize(n);
  t.utility.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.lower[i].resize(segments + 1);
    t.upper[i].resize(segments + 1);
    t.utility[i].resize(segments + 1);
    for (std::size_t k = 0; k <= segments; ++k) {
      const double x = static_cast<double>(k) /
                       static_cast<double>(segments);
      t.lower[i][k] = ctx.bounds.lower(i, x);
      t.upper[i][k] = ctx.bounds.upper(i, x);
      t.utility[i][k] = ctx.game.defender_utility(i, x);
    }
  }
}

StepResult cubis_step(const SolveContext& ctx, double c,
                      const CubisOptions& options,
                      const StepTables* tables, RoundReuse* reuse) {
  if (tables != nullptr && tables->segments != options.segments) {
    throw InvalidModelError("cubis_step: table segment-count mismatch");
  }
  obs::TraceSpan span("cubis.P1");
  CubisMetrics::get().feasibility_checks.add(1);
  if (faultinject::should_fail(faultinject::Site::kStepAlloc)) {
    throw std::bad_alloc();  // injected: exercises the round-level catch
  }
  if (faultinject::should_fail(faultinject::Site::kCubisStepInfeasible)) {
    StepResult forced;
    forced.status = SolverStatus::kInfeasible;
    return forced;
  }
  const games::CoverageSpace space = step_space(ctx, options);
  if (reuse != nullptr && space.is_simplex()) {
    if (reuse->cache.k_count() != options.segments) {
      throw InvalidModelError("cubis_step: reuse segment-count mismatch");
    }
    reuse->cache.set_value(c);
    if (options.backend == StepBackend::kDp) {
      return solve_step_dp_flat(reuse->cache.phi_flat().data(),
                                reuse->cache.t_count(), options.segments,
                                ctx.game.resources(), reuse->dp_scratch);
    }
    return solve_step_milp_cached(ctx, options, *reuse);
  }
  const std::vector<TargetPls> pls =
      build_f_pls(ctx, c, options.segments, tables);
  if (options.backend == StepBackend::kDp) {
    if (space.is_simplex()) {
      return solve_step_dp(phi_from(pls), ctx.game.resources());
    }
    return solve_step_dp_space(phi_from(pls), space);
  }
  return solve_step_milp(ctx, pls, options, space);
}

CubisSolver::CubisSolver(CubisOptions options) : opt_(options) {
  if (opt_.segments == 0) {
    throw InvalidModelError("CubisSolver: segments must be >= 1");
  }
  if (!(opt_.epsilon > 0.0)) {
    throw InvalidModelError("CubisSolver: epsilon must be positive");
  }
}

std::string CubisSolver::name() const {
  return opt_.backend == StepBackend::kDp ? "cubis-dp" : "cubis-milp";
}

DefenderSolution CubisSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  const obs::SolveScope scope;
  obs::TraceSpan span("cubis.solve");
  CubisMetrics::get().solves.add(1);
  const std::size_t n = ctx.game.num_targets();
  if (!opt_.group_budgets.empty()) {
    if (opt_.target_groups.size() != n) {
      throw InvalidModelError(
          "CubisSolver: target_groups must cover every target");
    }
    double total = 0.0;
    for (double b : opt_.group_budgets) {
      if (!(b >= 0.0)) {
        throw InvalidModelError("CubisSolver: negative group budget");
      }
      total += b;
    }
    if (std::abs(total - ctx.game.resources()) > 1e-9) {
      throw InvalidModelError(
          "CubisSolver: group budgets must sum to the game's resources");
    }
  }
  // The coverage polytope this solve optimizes over; the paper's simplex
  // unless the caller supplied a SolveContext::space or the legacy
  // CubisOptions group fields (now one instance of the grouped family).
  const games::CoverageSpace space = step_space(ctx, opt_);
  DefenderSolution sol;

  double lo = ctx.game.min_defender_penalty();
  double hi = ctx.game.max_defender_reward();
  // Any strategy's worst case is a convex combination of the u_i, hence
  // >= lo; the polytope's uniform seed is the fallback witness (simplex:
  // R/T exactly; grouped: per-group B_g/|g| clamped to the caps).
  std::vector<double> best_x = space.uniform_seed();

  int steps = 0;
  std::int64_t nodes = 0;
  obs::SolveReport report;
  report.solver = name();
  report.targets = n;
  const int sections = std::max(1, opt_.parallel_sections);
  // Per-call scratch: the caller's long-lived workspace when provided
  // (reuse preserves allocation capacity only — every value a solve reads
  // is rebuilt below, so results match a fresh workspace bitwise), else an
  // ephemeral one on this stack.
  SolveWorkspace local_ws;
  SolveWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local_ws;
  // The bounds/utility breakpoint values do not depend on c: sample them
  // once and let every step reuse them.  A transplant seed (cross-solve
  // cache) is consumed exactly once — adopted rows are bitwise-identical
  // to a rebuild, everything else is repaired, and any mismatch rejects
  // into the cold build.
  const std::shared_ptr<const TransplantSeed> seed =
      std::move(ws.transplant_seed);
  {
    obs::TraceSpan tspan("cubis.build_tables");
    bool transplanted = false;
    if (seed != nullptr) {
      ws.transplant_stats.used = true;
      transplanted = transplant_step_tables(ctx, opt_.segments, *seed,
                                            ws.tables, ws.transplant_stats);
      if (!transplanted) ws.transplant_stats.rejected = true;
    }
    if (!transplanted) build_step_tables_into(ctx, opt_.segments, ws.tables);
  }
  // Mark the tables as belonging to THIS job's scenario (donor-harvest
  // gate; the engine zeroes the token before every job).
  ws.tables_token = 1;
  const StepTables& tables = ws.tables;
  // One cross-round reuse slot per multisection lane (never shared across
  // lanes: set_value and the DP scratch mutate in place).  Non-simplex
  // polytopes keep the fresh path — the per-group DP is not flattened and
  // the MILP skeleton's budget rows are never patched.
  const bool use_lanes = opt_.reuse_rounds && space.is_simplex();
  if (use_lanes) {
    ws.ensure_cubis_lanes(static_cast<std::size_t>(sections), tables,
                          opt_.backend == StepBackend::kMilp);
    // Skeleton transplant (kMilp): the dense skeleton's structure depends
    // only on (T, K, R) — all compat-checked — and solve_step_milp_cached
    // patches every value-dependent entry before first use, so adopting
    // the donor's copy is bitwise-safe.  The donor's root basis is never
    // carried (see TransplantDonor), so the first round's relaxation
    // cold-starts exactly like a fresh solve.
    if (seed != nullptr && !ws.transplant_stats.rejected &&
        opt_.backend == StepBackend::kMilp && seed->donor != nullptr &&
        seed->donor->has_skeleton &&
        seed->donor->skeleton_layout.t_count == n &&
        seed->donor->skeleton_layout.k_count == opt_.segments &&
        seed->donor->skeleton_resources == ctx.game.resources() &&
        seed->donor->skeleton_space == space.descriptor()) {
      ws.cubis_lanes[0]->milp = std::make_unique<MilpStepCache>(
          seed->donor->skeleton_model, seed->donor->skeleton_layout,
          seed->donor->skeleton_rows);
    }
    // Token 2: the lanes (and any skeleton lane 0 builds during the
    // rounds below) also belong to this scenario, so the engine may
    // harvest the skeleton as a donor too.
    ws.tables_token = 2;
  }
  // kOptimal until a round fails or the budget trips; becomes the final
  // DefenderSolution status.  A non-optimal verdict never throws away the
  // incumbent: best_x and the certified [lo, hi] bracket always survive.
  SolverStatus final_status = SolverStatus::kOptimal;
  while (hi - lo > opt_.epsilon) {
    obs::TraceSpan round_span("cubis.binary_search_round");
    // Cooperative stop point: the round boundary is the coarsest safe
    // point — lo/hi and best_x are consistent here, so a budget trip
    // degrades to the incumbent plus the bracket.  (The DP step backend
    // is not internally interruptible, so with it a deadline is honored
    // with up to one round of grace.)
    if (ctx.budget != nullptr) {
      if (const auto stop = ctx.budget->exceeded()) {
        final_status = *stop;
        break;
      }
    }
    if (faultinject::should_fail(faultinject::Site::kCubisDeadline)) {
      final_status = SolverStatus::kDeadlineExceeded;
      break;
    }
    // Multisection round: `sections` candidate values split [lo, hi] into
    // sections+1 equal parts; by Proposition 1 feasibility is monotone, so
    // the results bracket the threshold after one concurrent round.
    std::vector<double> cs(sections);
    for (int s = 0; s < sections; ++s) {
      cs[s] = lo + (hi - lo) * static_cast<double>(s + 1) /
                       static_cast<double>(sections + 1);
    }
    std::vector<StepResult> results;
    try {
      if (sections == 1) {
        results.push_back(cubis_step(
            ctx, cs[0], opt_, &tables,
            use_lanes ? ws.cubis_lanes[0].get() : nullptr));
      } else {
        ThreadPool& pool = opt_.pool ? *opt_.pool : ThreadPool::global();
        results = parallel_map(pool, cs.size(), [&](std::size_t s) {
          return cubis_step(ctx, cs[s], opt_, &tables,
                            use_lanes ? ws.cubis_lanes[s].get() : nullptr);
        });
      }
    } catch (const std::bad_alloc&) {
      CUBISG_LOG(LogLevel::kError)
          << "cubis: step allocation failure; returning incumbent";
      final_status = SolverStatus::kNumericalIssue;
      break;
    } catch (const NumericalError& e) {
      CUBISG_LOG(LogLevel::kError)
          << "cubis: numeric failure in step: " << e.what();
      final_status = SolverStatus::kNumericalIssue;
      break;
    }
    steps += sections;
    CubisMetrics::get().binary_search_iters.add(sections);
    // Classify every section before reacting to failures: by Proposition 1
    // the verdicts of the healthy steps stay valid even when a sibling
    // step failed, so the bracket tightens with whatever the round did
    // manage to prove.  Highest feasible candidate raises lo; lowest
    // infeasible lowers hi.
    SolverStatus round_failure = SolverStatus::kOptimal;
    int highest_feasible = -1;
    int lowest_infeasible = sections;
    int feasible_count = 0;
    for (int s = 0; s < sections; ++s) {
      nodes += results[s].milp_nodes;
      if (results[s].status != SolverStatus::kOptimal) {
        CUBISG_LOG(LogLevel::kWarn)
            << "cubis: step at c=" << cs[s] << " failed with "
            << to_string(results[s].status);
        if (round_failure == SolverStatus::kOptimal) {
          round_failure = results[s].status;
        }
        continue;
      }
      const bool feasible = !results[s].x.empty() &&
                            results[s].objective >= -opt_.feasibility_slack;
      CUBISG_LOG(LogLevel::kDebug)
          << "cubis: c=" << cs[s] << " maxG=" << results[s].objective
          << (feasible ? " feasible" : " infeasible");
      if (feasible) {
        highest_feasible = s;
        ++feasible_count;
      } else {
        lowest_infeasible = std::min(lowest_infeasible, s);
      }
    }
    if (highest_feasible >= 0) {
      lo = cs[highest_feasible];
      best_x = results[highest_feasible].x;
      // Certificate evidence from the step that proved this lb.  An
      // early-positive stop leaves the frontier bound at infinity — that
      // is "no proven bound", not evidence, so don't claim any.
      const StepResult& winner = results[highest_feasible];
      sol.certificate.has_milp = winner.from_milp &&
                                 std::isfinite(winner.milp_incumbent) &&
                                 std::isfinite(winner.milp_bound);
      sol.certificate.milp_incumbent = winner.milp_incumbent;
      sol.certificate.milp_bound = winner.milp_bound;
      sol.certificate.milp_nodes = winner.milp_nodes;
    }
    if (lowest_infeasible < sections) {
      hi = cs[lowest_infeasible];
    }
    report.trajectory.push_back(
        {lo, hi, feasible_count, sections - feasible_count});
    if (round_failure != SolverStatus::kOptimal) {
      final_status = round_failure;
      break;
    }
    if (highest_feasible < 0 && lowest_infeasible == sections) {
      break;  // cannot happen (every candidate classified); safety net
    }
  }

  if (opt_.top_up_resources) {
    // Eq. 37 allows sum x < R; saturating the budget usually helps, but is
    // not provably monotone, so keep whichever evaluates better.  With
    // budget groups, slack is redistributed within each group only.
    obs::TraceSpan top_up_span("cubis.top_up");
    std::vector<double> topped = best_x;
    const std::size_t num_groups = space.num_groups();
    std::vector<double> slack(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      slack[g] = space.is_simplex() ? ctx.game.resources() : space.budget(g);
    }
    for (std::size_t i = 0; i < n; ++i) {
      slack[space.group_of(i)] -= topped[i];
    }
    double total_slack = 0.0;
    for (double s : slack) total_slack += std::max(0.0, s);
    if (total_slack > 1e-12) {
      // Spread remaining coverage by defender stake (Rd - Pd) descending.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const auto& pa = ctx.game.target(a);
                  const auto& pb = ctx.game.target(b);
                  return pa.defender_reward - pa.defender_penalty >
                         pb.defender_reward - pb.defender_penalty;
                });
      for (std::size_t idx : order) {
        const std::size_t g = space.group_of(idx);
        // Reachability caps bound the fill; cap(i) is 1 off patrol graphs,
        // so the simplex/grouped arithmetic is unchanged.
        const double add = std::min(space.cap(idx) - topped[idx],
                                    std::max(0.0, slack[g]));
        topped[idx] += add;
        slack[g] -= add;
      }
      const double w_orig =
          worst_case_utility(ctx.game, ctx.bounds, best_x);
      const double w_top = worst_case_utility(ctx.game, ctx.bounds, topped);
      if (w_top >= w_orig) best_x = std::move(topped);
    }
  }

  // Polish is allowed when the ascent's projection matches this solve's
  // polytope: always on the simplex, and on any space announced through
  // SolveContext::space (local_ascent projects via effective_space).  The
  // legacy options-only grouped config is invisible to the gradient, so
  // polish stays off there.
  const bool polish_feasible =
      space.is_simplex() ||
      (ctx.space != nullptr && !ctx.space->is_default());
  if (final_status == SolverStatus::kOptimal && opt_.polish_iterations > 0 &&
      polish_feasible) {
    // (After a budget trip or failure polish is skipped: the caller asked
    // to stop, and top-up already salvaged the cheap improvement.)
    obs::TraceSpan polish_span("cubis.polish");
    CubisMetrics::get().polish_runs.add(1);
    GradientOptions gopt;
    gopt.max_iterations = opt_.polish_iterations;
    auto [polished, w_polished] = local_ascent(ctx, best_x, gopt);
    if (w_polished >= worst_case_utility(ctx.game, ctx.bounds, best_x)) {
      best_x = std::move(polished);
    }
  }

  sol.strategy = std::move(best_x);
  sol.lb = lo;
  sol.ub = hi;
  sol.binary_steps = steps;
  sol.milp_nodes = nodes;
  sol.solver_objective = lo;
  sol.status = final_status;
  sol.telemetry = scope.finish();
  // Bracket + per-round sign evidence for the independent verifier
  // (audit::verify).  Rounds mirror the report trajectory, which records
  // the bracket after each multisection round unconditionally — the base
  // claims (residuals, claimed worst case) are filled by
  // finalize_solution below, after which nothing may change.
  {
    audit::SolutionCertificate& cert = sol.certificate;
    cert.solver = name();
    cert.has_bracket = true;
    cert.bracket_converged = final_status == SolverStatus::kOptimal;
    cert.epsilon = opt_.epsilon;
    cert.segments = static_cast<int>(opt_.segments);
    cert.lb = lo;
    cert.ub = hi;
    cert.rounds.reserve(report.trajectory.size());
    for (const obs::BinarySearchRound& r : report.trajectory) {
      cert.rounds.push_back({r.lo, r.hi, r.feasible, r.infeasible});
    }
  }
  finalize_solution(ctx, sol, timer.seconds());
#if CUBISG_OBS_ENABLED
  // Publish the convergence report (served live at GET /solvez).  The
  // B&B/simplex totals come from the SolveScope delta, so concurrent
  // solves attribute overlapping activity to each other, same caveat as
  // DefenderSolution::telemetry.
  report.status = std::string(to_string(sol.status));
  report.budget_stop = is_budget_stop(sol.status);
  if (ctx.budget != nullptr) {
    report.deadline_seconds = ctx.budget->deadline_seconds();
  }
  report.wall_seconds = sol.wall_seconds;
  report.lb = sol.lb;
  report.ub = sol.ub;
  report.worst_case_utility = sol.worst_case_utility;
  report.binary_steps = steps;
  report.milp_nodes = nodes;
  report.feasibility_checks =
      sol.telemetry.counter("cubis.feasibility_checks_total");
  report.incumbent_updates =
      sol.telemetry.counter("milp.incumbent_updates");
  report.simplex_iters = sol.telemetry.counter("simplex.phase1_iters") +
                         sol.telemetry.counter("simplex.phase2_iters");
  obs::SolveReportBuffer::global().add(std::move(report));
#endif
  return sol;
}

}  // namespace cubisg::core

#include "core/pasaq.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/step_solver.hpp"
#include "core/workspace.hpp"
#include "games/coverage_space.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {

namespace {

/// Point attractiveness F_i(x) used by a PASAQ solve.
class PointF {
 public:
  PointF(const SolveContext& ctx, const PasaqOptions& opt)
      : ctx_(ctx), opt_(opt) {}

  double operator()(std::size_t i, double x) const {
    switch (opt_.source) {
      case PasaqModelSource::kIntervalMidpoint:
        return ctx_.bounds.midpoint(i, x);
      case PasaqModelSource::kCustom:
        return opt_.model->attractiveness(i, x);
    }
    return 0.0;
  }

 private:
  const SolveContext& ctx_;
  const PasaqOptions& opt_;
};

}  // namespace

PasaqSolver::PasaqSolver(PasaqOptions options) : opt_(std::move(options)) {
  if (opt_.segments == 0) {
    throw InvalidModelError("PasaqSolver: segments must be >= 1");
  }
  if (opt_.source == PasaqModelSource::kCustom && !opt_.model) {
    throw InvalidModelError("PasaqSolver: custom source requires a model");
  }
}

double PasaqSolver::believed_utility(const SolveContext& ctx,
                                     std::span<const double> x) const {
  PointF f(ctx, opt_);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < ctx.game.num_targets(); ++i) {
    const double fi = f(i, x[i]);
    num += fi * ctx.game.defender_utility(i, x[i]);
    den += fi;
  }
  return num / den;
}

DefenderSolution PasaqSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  const std::size_t n = ctx.game.num_targets();
  PointF f(ctx, opt_);

  double lo = ctx.game.min_defender_penalty();
  double hi = ctx.game.max_defender_reward();
  // Coverage polytope (simplex unless the context announces otherwise);
  // the simplex instance keeps every step below byte-for-byte legacy.
  const games::CoverageSpace space = effective_space(ctx);
  std::vector<double> best_x = space.uniform_seed();
  int steps = 0;

  // Round-invariant breakpoint tables: F_i(k/K) and Ud_i(k/K) do not
  // depend on the search value c, so sample them once and form each
  // round's objective g_i(k/K) = F * (Ud - c) from the cached products —
  // the same two doubles the fresh per-round functors would multiply, so
  // the breakpoints (and the DP on them) are bitwise-unchanged.
  SolveWorkspace local_ws;
  SolveWorkspace& ws = ctx.workspace != nullptr ? *ctx.workspace : local_ws;
  const std::size_t kp1 = opt_.segments + 1;
  ws.pasaq_f.resize(n * kp1);
  ws.pasaq_ud.resize(n * kp1);
  ws.pasaq_phi.resize(n * kp1);
  const double k_inv = 1.0 / static_cast<double>(opt_.segments);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kp1; ++k) {
      const double x = std::min(1.0, static_cast<double>(k) * k_inv);
      ws.pasaq_f[i * kp1 + k] = f(i, x);
      ws.pasaq_ud[i * kp1 + k] = ctx.game.defender_utility(i, x);
    }
  }
  static obs::Counter& cache_hits =
      obs::Registry::global().counter("piecewise.cache_hits_total");

  while (hi - lo > opt_.epsilon) {
    const double c = 0.5 * (lo + hi);
    for (std::size_t j = 0; j < n * kp1; ++j) {
      ws.pasaq_phi[j] = ws.pasaq_f[j] * (ws.pasaq_ud[j] - c);
    }
    cache_hits.add(static_cast<std::int64_t>(n));
    StepResult step =
        space.is_simplex()
            ? solve_step_dp_flat(ws.pasaq_phi.data(), n, opt_.segments,
                                 ctx.game.resources(), ws.pasaq_scratch)
            : solve_step_dp_flat_space(ws.pasaq_phi.data(), n, opt_.segments,
                                       space, ws.pasaq_scratch);
    ++steps;
    const bool feasible = step.objective >= -opt_.feasibility_slack;
    CUBISG_LOG(LogLevel::kDebug)
        << "pasaq: c=" << c << " max=" << step.objective
        << (feasible ? " feasible" : " infeasible");
    if (feasible) {
      lo = c;
      best_x = step.x;
    } else {
      hi = c;
    }
  }

  if (opt_.top_up_resources && space.is_simplex()) {
    // Saturate the budget; keep whichever the believed model rates higher.
    std::vector<double> topped = best_x;
    double slack = ctx.game.resources();
    for (double xi : topped) slack -= xi;
    if (slack > 1e-12) {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const auto& pa = ctx.game.target(a);
                  const auto& pb = ctx.game.target(b);
                  return pa.defender_reward - pa.defender_penalty >
                         pb.defender_reward - pb.defender_penalty;
                });
      for (std::size_t idx : order) {
        const double add = std::min(1.0 - topped[idx], slack);
        topped[idx] += add;
        slack -= add;
        if (slack <= 1e-12) break;
      }
      if (believed_utility(ctx, topped) >= believed_utility(ctx, best_x)) {
        best_x = std::move(topped);
      }
    }
  } else if (opt_.top_up_resources) {
    // Per-group slack redistribution, bounded by the reachability caps.
    std::vector<double> topped = best_x;
    std::vector<double> slack(space.num_groups());
    for (std::size_t g = 0; g < space.num_groups(); ++g) {
      slack[g] = space.budget(g);
    }
    for (std::size_t i = 0; i < n; ++i) {
      slack[space.group_of(i)] -= topped[i];
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const auto& pa = ctx.game.target(a);
                const auto& pb = ctx.game.target(b);
                return pa.defender_reward - pa.defender_penalty >
                       pb.defender_reward - pb.defender_penalty;
              });
    for (std::size_t idx : order) {
      const std::size_t g = space.group_of(idx);
      const double add = std::min(space.cap(idx) - topped[idx],
                                  std::max(0.0, slack[g]));
      topped[idx] += add;
      slack[g] -= add;
    }
    if (believed_utility(ctx, topped) >= believed_utility(ctx, best_x)) {
      best_x = std::move(topped);
    }
  }

  DefenderSolution sol;
  sol.status = SolverStatus::kOptimal;
  sol.strategy = std::move(best_x);
  sol.lb = lo;
  sol.ub = hi;
  sol.binary_steps = steps;
  sol.solver_objective = lo;  // believed (midpoint-model) utility
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

#include "core/pasaq.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/step_solver.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {

namespace {

/// Point attractiveness F_i(x) used by a PASAQ solve.
class PointF {
 public:
  PointF(const SolveContext& ctx, const PasaqOptions& opt)
      : ctx_(ctx), opt_(opt) {}

  double operator()(std::size_t i, double x) const {
    switch (opt_.source) {
      case PasaqModelSource::kIntervalMidpoint:
        return ctx_.bounds.midpoint(i, x);
      case PasaqModelSource::kCustom:
        return opt_.model->attractiveness(i, x);
    }
    return 0.0;
  }

 private:
  const SolveContext& ctx_;
  const PasaqOptions& opt_;
};

}  // namespace

PasaqSolver::PasaqSolver(PasaqOptions options) : opt_(std::move(options)) {
  if (opt_.segments == 0) {
    throw InvalidModelError("PasaqSolver: segments must be >= 1");
  }
  if (opt_.source == PasaqModelSource::kCustom && !opt_.model) {
    throw InvalidModelError("PasaqSolver: custom source requires a model");
  }
}

double PasaqSolver::believed_utility(const SolveContext& ctx,
                                     std::span<const double> x) const {
  PointF f(ctx, opt_);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < ctx.game.num_targets(); ++i) {
    const double fi = f(i, x[i]);
    num += fi * ctx.game.defender_utility(i, x[i]);
    den += fi;
  }
  return num / den;
}

DefenderSolution PasaqSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  const std::size_t n = ctx.game.num_targets();
  PointF f(ctx, opt_);

  double lo = ctx.game.min_defender_penalty();
  double hi = ctx.game.max_defender_reward();
  std::vector<double> best_x =
      games::uniform_strategy(n, ctx.game.resources());
  int steps = 0;

  while (hi - lo > opt_.epsilon) {
    const double c = 0.5 * (lo + hi);
    std::vector<PiecewiseLinear> g;
    g.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      g.emplace_back(
          [&, i](double x) {
            return f(i, x) * (ctx.game.defender_utility(i, x) - c);
          },
          opt_.segments);
    }
    StepResult step = solve_step_dp(g, ctx.game.resources());
    ++steps;
    const bool feasible = step.objective >= -opt_.feasibility_slack;
    CUBISG_LOG(LogLevel::kDebug)
        << "pasaq: c=" << c << " max=" << step.objective
        << (feasible ? " feasible" : " infeasible");
    if (feasible) {
      lo = c;
      best_x = step.x;
    } else {
      hi = c;
    }
  }

  if (opt_.top_up_resources) {
    // Saturate the budget; keep whichever the believed model rates higher.
    std::vector<double> topped = best_x;
    double slack = ctx.game.resources();
    for (double xi : topped) slack -= xi;
    if (slack > 1e-12) {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const auto& pa = ctx.game.target(a);
                  const auto& pb = ctx.game.target(b);
                  return pa.defender_reward - pa.defender_penalty >
                         pb.defender_reward - pb.defender_penalty;
                });
      for (std::size_t idx : order) {
        const double add = std::min(1.0 - topped[idx], slack);
        topped[idx] += add;
        slack -= add;
        if (slack <= 1e-12) break;
      }
      if (believed_utility(ctx, topped) >= believed_utility(ctx, best_x)) {
        best_x = std::move(topped);
      }
    }
  }

  DefenderSolution sol;
  sol.status = SolverStatus::kOptimal;
  sol.strategy = std::move(best_x);
  sol.lb = lo;
  sol.ub = hi;
  sol.binary_steps = steps;
  sol.solver_objective = lo;  // believed (midpoint-model) utility
  finalize_solution(ctx, sol, timer.seconds());
  return sol;
}

}  // namespace cubisg::core

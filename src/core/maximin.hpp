// Behavior-agnostic maximin baseline.
//
// Ignores the behavioral model entirely and assumes the attacker hits the
// target worst for the defender:
//
//   max_{x in X} min_i Ud_i(x_i)
//
// This is the fully conservative end of the robustness spectrum (the
// paper's discussion of [3] — worst-case over attacker types — degenerates
// to this when intervals are vacuous).  It is an LP:
//   max z  s.t.  z <= Pd_i + (Rd_i - Pd_i) x_i  for all i,  x in X.
#pragma once

#include "core/solvers.hpp"

namespace cubisg::core {

/// The maximin LP baseline.
class MaximinSolver final : public DefenderSolver {
 public:
  std::string name() const override { return "maximin"; }
  DefenderSolution solve(const SolveContext& ctx) const override;
};

}  // namespace cubisg::core

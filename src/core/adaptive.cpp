#include "core/adaptive.hpp"

#include <limits>

#include "common/timer.hpp"
#include "core/gradient.hpp"
#include "core/worst_case.hpp"

namespace cubisg::core {

AdaptiveCubisSolver::AdaptiveCubisSolver(AdaptiveCubisOptions options)
    : opt_(options) {
  if (opt_.initial_segments == 0 ||
      opt_.initial_segments > opt_.max_segments) {
    throw InvalidModelError(
        "AdaptiveCubisSolver: need 0 < initial_segments <= max_segments");
  }
  if (!(opt_.improvement_tol >= 0.0)) {
    throw InvalidModelError(
        "AdaptiveCubisSolver: improvement_tol must be non-negative");
  }
}

DefenderSolution AdaptiveCubisSolver::solve(const SolveContext& ctx) const {
  Timer timer;
  DefenderSolution best;
  best.status = SolverStatus::kNumericalIssue;
  double best_w = -std::numeric_limits<double>::infinity();
  int total_steps = 0;
  std::int64_t total_nodes = 0;
  int dry_doublings = 0;

  for (std::size_t k = opt_.initial_segments; k <= opt_.max_segments;
       k *= 2) {
    CubisOptions copt = opt_.cubis;
    copt.segments = k;
    copt.polish_iterations = 0;  // polish once at the end instead
    DefenderSolution sol = CubisSolver(copt).solve(ctx);
    total_steps += sol.binary_steps;
    total_nodes += sol.milp_nodes;
    if (!sol.ok()) {
      if (!best.ok()) best = sol;  // propagate the failure if nothing works
      continue;
    }
    const double improvement = sol.worst_case_utility - best_w;
    if (sol.worst_case_utility > best_w) {
      best_w = sol.worst_case_utility;
      best = sol;
    }
    // Grid alignment makes the improvement profile non-monotone; require
    // two consecutive dry doublings before declaring convergence.
    if (k > opt_.initial_segments && improvement < opt_.improvement_tol) {
      if (++dry_doublings >= 2) break;
    } else {
      dry_doublings = 0;
    }
  }

  if (best.ok() && opt_.polish_iterations > 0) {
    GradientOptions gopt;
    gopt.max_iterations = opt_.polish_iterations;
    auto [polished, w] = local_ascent(ctx, best.strategy, gopt);
    if (w >= best_w) {
      best.strategy = std::move(polished);
    }
  }

  best.binary_steps = total_steps;
  best.milp_nodes = total_nodes;
  finalize_solution(ctx, best, timer.seconds());
  return best;
}

}  // namespace cubisg::core

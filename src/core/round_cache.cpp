#include "core/round_cache.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>

#include "obs/metrics.hpp"

namespace cubisg::core {

namespace {

obs::Counter& cache_hits_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("piecewise.cache_hits_total");
  return c;
}

obs::Counter& model_patches_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("milp.model_patches_total");
  return c;
}

}  // namespace

lp::Model build_step_milp(const SolveContext& ctx,
                          const std::vector<TargetPls>& pls, double big_m,
                          const CubisOptions& opt, MilpLayout& layout,
                          bool dense, MilpRowIds* rows,
                          const games::CoverageSpace* space) {
  const std::size_t t_count = pls.size();
  const std::size_t k_count = pls.front().f1.segments();
  const double k_inv = 1.0 / static_cast<double>(k_count);

  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  layout.t_count = t_count;
  layout.k_count = k_count;

  double constant = 0.0;
  for (const TargetPls& t : pls) constant += t.f1.value_at_zero();
  layout.one = m.add_col("one", 1.0, 1.0, constant);

  layout.x0 = m.num_cols();
  for (std::size_t i = 0; i < t_count; ++i) {
    for (std::size_t k = 0; k < k_count; ++k) {
      m.add_col("x_" + std::to_string(i) + "_" + std::to_string(k), 0.0, 1.0,
                pls[i].f1.slope(k) * k_inv);
    }
  }
  layout.v0 = m.num_cols();
  for (std::size_t i = 0; i < t_count; ++i) {
    m.add_col("v_" + std::to_string(i), 0.0, big_m, -1.0);
  }
  layout.q0 = m.num_cols();
  for (std::size_t i = 0; i < t_count; ++i) {
    const int q = m.add_col("q_" + std::to_string(i), 0.0, 1.0, 0.0);
    m.set_integer(q);
  }
  layout.h0 = m.num_cols();
  for (std::size_t i = 0; i < t_count; ++i) {
    for (std::size_t k = 0; k + 1 < k_count; ++k) {
      const int h = m.add_col(
          "h_" + std::to_string(i) + "_" + std::to_string(k), 0.0, 1.0, 0.0);
      m.set_integer(h);
    }
  }

  // (37) budget rows, in normalized units: sum x~_{ik} <= R_g * K per
  // budget group (one game-wide group in the paper's setting).
  if (space != nullptr && !space->is_default() && !space->is_simplex()) {
    // Polytope-driven rows: per-group budgets from the coverage space,
    // plus one reachability cap row per capped target.
    for (std::size_t g = 0; g < space->num_groups(); ++g) {
      const int budget =
          m.add_row("budget" + std::to_string(g), lp::Sense::kLe,
                    space->budget(g) * static_cast<double>(k_count));
      for (std::size_t i = 0; i < t_count; ++i) {
        if (space->group_of(i) != g) continue;
        for (std::size_t k = 0; k < k_count; ++k) {
          m.set_coeff(budget, layout.xcol(i, k), 1.0);
        }
      }
    }
    if (space->has_caps()) {
      for (std::size_t i = 0; i < t_count; ++i) {
        if (space->cap(i) >= 1.0) continue;
        const int cap =
            m.add_row("cap" + std::to_string(i), lp::Sense::kLe,
                      space->cap(i) * static_cast<double>(k_count));
        for (std::size_t k = 0; k < k_count; ++k) {
          m.set_coeff(cap, layout.xcol(i, k), 1.0);
        }
      }
    }
  } else {
    const std::size_t num_groups =
        opt.group_budgets.empty() ? 1 : opt.group_budgets.size();
    for (std::size_t g = 0; g < num_groups; ++g) {
      const double r_g = opt.group_budgets.empty() ? ctx.game.resources()
                                                   : opt.group_budgets[g];
      const int budget =
          m.add_row("budget" + std::to_string(g), lp::Sense::kLe,
                    r_g * static_cast<double>(k_count));
      for (std::size_t i = 0; i < t_count; ++i) {
        const std::size_t gi =
            opt.target_groups.empty() ? 0 : opt.target_groups[i];
        if (gi != g) continue;
        for (std::size_t k = 0; k < k_count; ++k) {
          m.set_coeff(budget, layout.xcol(i, k), 1.0);
        }
      }
    }
  }

  for (std::size_t i = 0; i < t_count; ++i) {
    const double d0 = pls[i].f1.value_at_zero() - pls[i].f2.value_at_zero();
    // (35): sum_k (s1-s2) x_ik - v_i <= -d0
    const int r35 = m.add_row("lb_v" + std::to_string(i), lp::Sense::kLe,
                              -d0);
    // (36): v_i - sum_k (s1-s2) x_ik + M q_i <= d0 + M
    const int r36 = m.add_row("ub_v" + std::to_string(i), lp::Sense::kLe,
                              d0 + big_m);
    for (std::size_t k = 0; k < k_count; ++k) {
      const double ds =
          (pls[i].f1.slope(k) - pls[i].f2.slope(k)) * k_inv;
      // Dense mode stores zero coefficients too, so the entry layout is
      // round-invariant and patchable by index; both the simplex standard
      // form and presolve drop explicit zeros, so the solved problem is
      // identical either way.
      if (dense || ds != 0.0) {
        m.set_coeff(r35, layout.xcol(i, k), ds);
        m.set_coeff(r36, layout.xcol(i, k), -ds);
      }
    }
    m.set_coeff(r35, layout.vcol(i), -1.0);
    m.set_coeff(r36, layout.vcol(i), 1.0);
    m.set_coeff(r36, layout.qcol(i), big_m);
    // (34): v_i - M q_i <= 0
    const int r34 = m.add_row("link_vq" + std::to_string(i), lp::Sense::kLe,
                              0.0);
    m.set_coeff(r34, layout.vcol(i), 1.0);
    m.set_coeff(r34, layout.qcol(i), -big_m);
    if (rows != nullptr) {
      rows->r34.push_back(r34);
      rows->r35.push_back(r35);
      rows->r36.push_back(r36);
    }
    // (38)-(39): ordered segment filling, unit coefficients in the
    // normalized units (h_{ik} = 1 iff segment k is full).
    for (std::size_t k = 0; k + 1 < k_count; ++k) {
      const int r38 = m.add_row(
          "fill_lo" + std::to_string(i) + "_" + std::to_string(k),
          lp::Sense::kLe, 0.0);
      m.set_coeff(r38, layout.hcol(i, k), 1.0);
      m.set_coeff(r38, layout.xcol(i, k), -1.0);
      const int r39 = m.add_row(
          "fill_hi" + std::to_string(i) + "_" + std::to_string(k),
          lp::Sense::kLe, 0.0);
      m.set_coeff(r39, layout.xcol(i, k + 1), 1.0);
      m.set_coeff(r39, layout.hcol(i, k), -1.0);
    }
  }
  return m;
}

std::vector<double> milp_point_from_x(const MilpLayout& layout,
                                      const std::vector<TargetPls>& pls,
                                      const std::vector<double>& x,
                                      int num_cols) {
  std::vector<double> full(num_cols, 0.0);
  full[layout.one] = 1.0;
  const std::size_t k_count = layout.k_count;
  const double seg = 1.0 / static_cast<double>(k_count);
  for (std::size_t i = 0; i < layout.t_count; ++i) {
    const std::vector<double> portions = segment_portions(x[i], k_count);
    double fbar1 = pls[i].f1.value_at_zero();
    double fbar2 = pls[i].f2.value_at_zero();
    for (std::size_t k = 0; k < k_count; ++k) {
      // Normalized segment variables: x~ = K * portion in [0, 1].
      full[layout.xcol(i, k)] = portions[k] / seg;
      fbar1 += pls[i].f1.slope(k) * portions[k];
      fbar2 += pls[i].f2.slope(k) * portions[k];
    }
    const double diff = fbar1 - fbar2;
    if (diff > 0.0) {
      full[layout.vcol(i)] = diff;
      full[layout.qcol(i)] = 1.0;
    }
    for (std::size_t k = 0; k + 1 < k_count; ++k) {
      full[layout.hcol(i, k)] = portions[k] >= seg - 1e-12 ? 1.0 : 0.0;
    }
  }
  return full;
}

double step_big_m(const std::vector<TargetPls>& pls) {
  // Dominates |f1~ - f2~| over the grid (the chords stay within the
  // breakpoint range of each segment).  Must stay identical to what the
  // fresh path computes so patched models match it coefficient-for-
  // coefficient.
  double big_m = 1.0;
  for (const TargetPls& t : pls) {
    for (std::size_t k = 0; k <= t.f1.segments(); ++k) {
      big_m = std::max(big_m, std::abs(t.f1.value_at_breakpoint(k) -
                                       t.f2.value_at_breakpoint(k)) + 1.0);
    }
  }
  return big_m;
}

RoundCache::RoundCache(const StepTables& tables, bool build_pls) {
  rebuild(tables, build_pls);
}

void RoundCache::rebuild(const StepTables& tables, bool build_pls) {
  if (tables.segments == 0 || tables.lower.empty()) {
    throw InvalidModelError("RoundCache: empty step tables");
  }
  // Reuse the PiecewiseLinear views only when the shape is unchanged
  // (their rebuild path requires a matching K+1).
  const bool pls_reusable = build_pls && pls_.size() == tables.lower.size() &&
                            !pls_.empty() &&
                            pls_.front().f1.segments() == tables.segments;
  t_ = tables.lower.size();
  kp1_ = tables.segments + 1;
  const std::size_t n = t_ * kp1_;
  l_.resize(n);
  u_.resize(n);
  lud_.resize(n);
  uud_.resize(n);
  f1_.assign(n, 0.0);
  f2_.assign(n, 0.0);
  phi_.assign(n, 0.0);
  for (std::size_t i = 0; i < t_; ++i) {
    for (std::size_t k = 0; k < kp1_; ++k) {
      const std::size_t j = i * kp1_ + k;
      const double lo = tables.lower[i][k];
      const double up = tables.upper[i][k];
      const double ud = tables.utility[i][k];
      l_[j] = lo;
      u_[j] = up;
      // The same products f1_of / f2_of compute, so the axpy below yields
      // the fresh path's breakpoints bit-for-bit.
      lud_[j] = lo * ud;
      uud_[j] = up * ud;
    }
  }
  if (!build_pls) {
    pls_.clear();
    return;
  }
  if (pls_reusable) {
    // Same c=0 seed values as a fresh construction; every round's
    // set_value overwrites them before any read.
    for (std::size_t i = 0; i < t_; ++i) {
      const std::span<const double> s1(lud_.data() + i * kp1_, kp1_);
      const std::span<const double> s2(uud_.data() + i * kp1_, kp1_);
      pls_[i].f1.rebuild_from_values(s1);
      pls_[i].f2.rebuild_from_values(s2);
    }
    return;
  }
  pls_.clear();
  pls_.reserve(t_);
  for (std::size_t i = 0; i < t_; ++i) {
    // Seeded with the c=0 values; every round overwrites them in place.
    std::vector<double> v1(lud_.begin() + static_cast<std::ptrdiff_t>(
                                              i * kp1_),
                           lud_.begin() + static_cast<std::ptrdiff_t>(
                                              (i + 1) * kp1_));
    std::vector<double> v2(uud_.begin() + static_cast<std::ptrdiff_t>(
                                              i * kp1_),
                           uud_.begin() + static_cast<std::ptrdiff_t>(
                                              (i + 1) * kp1_));
    pls_.push_back(TargetPls{PiecewiseLinear(std::move(v1)),
                             PiecewiseLinear(std::move(v2))});
  }
}

void RoundCache::set_value(double c) {
  const std::size_t n = t_ * kp1_;
  for (std::size_t j = 0; j < n; ++j) f1_[j] = lud_[j] - c * l_[j];
  for (std::size_t j = 0; j < n; ++j) f2_[j] = uud_[j] - c * u_[j];
  for (std::size_t j = 0; j < n; ++j) phi_[j] = std::min(f1_[j], f2_[j]);
  if (!pls_.empty()) {
    for (std::size_t i = 0; i < t_; ++i) {
      const std::span<const double> s1(f1_.data() + i * kp1_, kp1_);
      const std::span<const double> s2(f2_.data() + i * kp1_, kp1_);
      pls_[i].f1.rebuild_from_values(s1);  // counts 2*T cache hits
      pls_[i].f2.rebuild_from_values(s2);
    }
    // ... plus the T phi rebuilds done flat above: 3*T per round total,
    // mirroring the 3*T functions the fresh path would have built.
    cache_hits_counter().add(static_cast<std::int64_t>(t_));
  } else {
    cache_hits_counter().add(static_cast<std::int64_t>(3 * t_));
  }
}

MilpStepCache::MilpStepCache(const SolveContext& ctx, const RoundCache& cache,
                             const CubisOptions& opt) {
  if (cache.pls().empty()) {
    throw InvalidModelError("MilpStepCache: cache built without pls");
  }
  model_ = build_step_milp(ctx, cache.pls(), step_big_m(cache.pls()), opt,
                           layout_, /*dense=*/true, &rows_);
}

void MilpStepCache::patch(const RoundCache& cache) {
  const std::vector<TargetPls>& pls = cache.pls();
  const std::size_t k_count = layout_.k_count;
  const double k_inv = 1.0 / static_cast<double>(k_count);
  const double big_m = step_big_m(pls);

  double constant = 0.0;
  for (const TargetPls& t : pls) constant += t.f1.value_at_zero();
  model_.set_col_objective(layout_.one, constant);

  for (std::size_t i = 0; i < layout_.t_count; ++i) {
    for (std::size_t k = 0; k < k_count; ++k) {
      model_.set_col_objective(layout_.xcol(i, k),
                               pls[i].f1.slope(k) * k_inv);
    }
    const double d0 = pls[i].f1.value_at_zero() - pls[i].f2.value_at_zero();
    model_.set_row_rhs(rows_.r35[i], -d0);
    model_.set_row_rhs(rows_.r36[i], d0 + big_m);
    // Dense assembly order: entries 0..K-1 are the x coefficients, then v
    // (and q last on row 36); row 34 is [v, q].
    for (std::size_t k = 0; k < k_count; ++k) {
      const double ds = (pls[i].f1.slope(k) - pls[i].f2.slope(k)) * k_inv;
      model_.set_row_entry_value(rows_.r35[i], k, ds);
      model_.set_row_entry_value(rows_.r36[i], k, -ds);
    }
    model_.set_row_entry_value(rows_.r36[i], k_count + 1, big_m);
    model_.set_row_entry_value(rows_.r34[i], 1, -big_m);
    model_.set_col_bounds(layout_.vcol(i), 0.0, big_m);
  }
  model_patches_counter().add(1);
}

}  // namespace cubisg::core

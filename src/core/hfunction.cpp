#include "core/hfunction.hpp"

#include <algorithm>
#include <stdexcept>

namespace cubisg::core {

double h_value(const PointData& p, std::span<const double> beta) {
  if (beta.size() != p.u.size()) {
    throw std::invalid_argument("h_value: beta size mismatch");
  }
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < p.u.size(); ++i) {
    num += p.L[i] * p.u[i] - (p.U[i] - p.L[i]) * beta[i];
    den += p.L[i];
  }
  return num / den;
}

double g_value(const PointData& p, std::span<const double> beta, double c) {
  if (beta.size() != p.u.size()) {
    throw std::invalid_argument("g_value: beta size mismatch");
  }
  double g = 0.0;
  for (std::size_t i = 0; i < p.u.size(); ++i) {
    g += p.L[i] * (p.u[i] - c) - (p.U[i] - p.L[i]) * beta[i];
  }
  return g;
}

std::vector<double> beta_of(const PointData& p, double c) {
  std::vector<double> beta(p.u.size());
  for (std::size_t i = 0; i < p.u.size(); ++i) {
    beta[i] = std::max(0.0, c - p.u[i]);
  }
  return beta;
}

double g_at(const PointData& p, double c) {
  double g = 0.0;
  for (std::size_t i = 0; i < p.u.size(); ++i) {
    const double beta = std::max(0.0, c - p.u[i]);
    g += p.L[i] * (p.u[i] - c) - (p.U[i] - p.L[i]) * beta;
  }
  return g;
}

// Distributed form (L*u - c*L rather than L*(u - c)): matches the
// RoundCache axpy `table(L*Ud) - c*table(L)` operation-for-operation, so
// the cached and fresh binary-search paths produce bitwise-identical
// breakpoints (mathematically the two forms are the same function).
double f1_of(double L, double u, double c) { return L * u - c * L; }
double f2_of(double U, double u, double c) { return U * u - c * U; }

}  // namespace cubisg::core

#include "obs/http_exporter.hpp"

#include "obs/metrics.hpp"

#if CUBISG_OBS_ENABLED && (defined(__unix__) || defined(__APPLE__))
#define CUBISG_HTTP_EXPORTER 1
#else
#define CUBISG_HTTP_EXPORTER 0
#endif

#if CUBISG_HTTP_EXPORTER

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/build_info.hpp"
#include "obs/audit_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/solve_report.hpp"
#include "obs/status_page.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg::obs {

namespace {

/// `cubisg_build_info{...} 1` — the standard Prometheus idiom for build
/// provenance: a constant gauge whose labels carry the sha/compiler/flag
/// identity of the running binary.  Appended by hand because the registry
/// is label-free by design.
std::string build_info_exposition() {
  std::string out = "# TYPE cubisg_build_info gauge\ncubisg_build_info{";
  out += "version=\"" +
         prometheus_escape_label(buildinfo::kVersion) + "\",";
  out += "git_sha=\"" + prometheus_escape_label(buildinfo::kGitSha) + "\",";
  out += "compiler=\"" +
         prometheus_escape_label(buildinfo::kCompiler) + "\",";
  out += "obs=\"" + prometheus_escape_label(buildinfo::kObsEnabled) + "\",";
  out += "fault_injection=\"" +
         prometheus_escape_label(buildinfo::kFaultInjection) + "\"";
  out += "} 1\n";
  return out;
}

/// Exporter self-metrics (they show up in /metrics like everything else).
struct ExporterMetrics {
  Counter& requests = Registry::global().counter("obs.http_requests_total");
  Counter& rejected = Registry::global().counter("obs.http_rejected_total");
  Histogram& scrape_seconds = Registry::global().histogram(
      "obs.scrape_seconds", Histogram::latency_bounds_seconds());

  static ExporterMetrics& get() {
    static ExporterMetrics m;
    return m;
  }
};

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone or timeout; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const char* status_line,
                   const std::string& content_type,
                   const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status_line;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  send_all(fd, out);
}

void set_socket_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Reads until the end of the request head; false on timeout/overflow.
bool read_request_head(int fd, std::string& head) {
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > 8192) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

/// GET /profilez?seconds=N — on-demand profiling session.  Arms the
/// sampler at the default 99 Hz, sleeps N seconds (default 5, capped at
/// 60) on this handler thread, then returns collapsed stacks.  When a
/// continuous session is already live (--profile-out), returns a
/// snapshot of the accumulated samples immediately instead of stopping
/// it.  Handler-pool note: the sleeping thread occupies one pool slot;
/// the inflight cap already 503s pile-ups.
void handle_profilez(int fd, const std::string& query_string) {
  if (!profiler_available()) {
    send_response(fd, "501 Not Implemented", "text/plain",
                  profiler_last_error() + "\n");
    return;
  }
  int seconds = 5;
  const std::size_t pos = query_string.find("seconds=");
  if (pos != std::string::npos) {
    seconds = std::atoi(query_string.c_str() + pos + 8);
  }
  seconds = std::min(60, std::max(1, seconds));

  if (profiler_running()) {
    send_response(fd, "200 OK", "text/plain", profiler_collapsed_stacks());
    return;
  }
  profiler_clear();  // scope the response to this window
  if (!profiler_start({})) {
    send_response(fd, "503 Service Unavailable", "text/plain",
                  profiler_last_error() + "\n");
    return;
  }
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  profiler_stop();
  send_response(fd, "200 OK", "text/plain", profiler_collapsed_stacks());
}

void handle_connection(int fd) {
  std::string head;
  if (!read_request_head(fd, head)) {
    ::close(fd);
    return;
  }
  // Request line: METHOD SP target SP version.
  const std::size_t m_end = head.find(' ');
  const std::size_t t_end =
      m_end == std::string::npos ? std::string::npos
                                 : head.find(' ', m_end + 1);
  if (t_end == std::string::npos) {
    send_response(fd, "400 Bad Request", "text/plain", "bad request\n");
    ::close(fd);
    return;
  }
  const std::string method = head.substr(0, m_end);
  std::string target = head.substr(m_end + 1, t_end - m_end - 1);
  std::string query_string;
  const std::size_t query = target.find('?');
  if (query != std::string::npos) {
    query_string = target.substr(query + 1);
    target.resize(query);
  }

  ExporterMetrics::get().requests.add(1);
  if (method != "GET") {
    send_response(fd, "405 Method Not Allowed", "text/plain",
                  "only GET is supported\n");
  } else if (target == "/metrics") {
    const auto t0 = std::chrono::steady_clock::now();
    update_process_metrics();  // process_* gauges are scrape-time lazy
    const std::string body = build_info_exposition() +
        to_prometheus_text(Registry::global().snapshot());
    ExporterMetrics::get().scrape_seconds.record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    send_response(fd, "200 OK", kPrometheusContentType, body);
  } else if (target == "/healthz") {
    send_response(fd, "200 OK", "text/plain", "ok\n");
  } else if (target == "/solvez") {
    send_response(fd, "200 OK", "application/json",
                  SolveReportBuffer::global().to_json());
  } else if (target == "/slowz") {
    send_response(fd, "200 OK", "application/json",
                  FlightRecorder::global().to_json());
  } else if (target == "/auditz") {
    send_response(fd, "200 OK", "application/json",
                  AuditLog::global().to_json());
  } else if (target == "/profilez") {
    handle_profilez(fd, query_string);
  } else {
    // Pluggable pages (e.g. the supervisor's /workersz) registered by
    // subsystems above this library in the link graph.
    std::string content_type;
    std::string body;
    if (render_status_page(target, content_type, body)) {
      send_response(fd, "200 OK", content_type.c_str(), body);
    } else {
      std::string hint =
          "unknown path (try /metrics, /healthz, /solvez, /slowz, "
          "/auditz, /profilez?seconds=N";
      for (const std::string& p : status_page_paths()) {
        hint += ", " + p;
      }
      hint += ")\n";
      send_response(fd, "404 Not Found", "text/plain", hint);
    }
  }
  ::close(fd);
}

}  // namespace

bool http_exporter_available() { return true; }

struct HttpExporter::Impl {
  HttpExporterOptions opt;
  int listen_fd = -1;
  int bound_port = 0;
  std::atomic<bool> running{false};
  std::atomic<std::size_t> inflight{0};
  std::unique_ptr<ThreadPool> pool;
  std::thread acceptor;

  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (!running.load(std::memory_order_acquire)) break;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        break;  // listen socket gone; stop() is the only cause
      }
      set_socket_timeouts(fd, opt.io_timeout_ms);
      if (inflight.load(std::memory_order_relaxed) >= opt.max_inflight) {
        ExporterMetrics::get().rejected.add(1);
        send_response(fd, "503 Service Unavailable", "text/plain",
                      "scrape overload, retry later\n");
        ::close(fd);
        continue;
      }
      inflight.fetch_add(1, std::memory_order_relaxed);
      pool->submit([this, fd] {
        handle_connection(fd);
        inflight.fetch_sub(1, std::memory_order_relaxed);
      });
    }
  }
};

HttpExporter::HttpExporter() = default;

HttpExporter::~HttpExporter() { stop(); }

bool HttpExporter::start(const HttpExporterOptions& options) {
  if (impl_) {
    error_ = "exporter already running";
    return false;
  }
  auto impl = std::make_unique<Impl>();
  impl->opt = options;

  impl->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "invalid bind address " + options.bind_address;
    ::close(impl->listen_fd);
    return false;
  }
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(impl->listen_fd, 16) != 0) {
    error_ = std::string("bind/listen on ") + options.bind_address + ":" +
             std::to_string(options.port) + ": " + std::strerror(errno);
    ::close(impl->listen_fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &len) == 0) {
    impl->bound_port = ntohs(addr.sin_port);
  }

  impl->pool = std::make_unique<ThreadPool>(
      std::max<std::size_t>(1, options.handler_threads));
  impl->running.store(true, std::memory_order_release);
  impl->acceptor = std::thread([ptr = impl.get()] { ptr->accept_loop(); });
  impl_ = std::move(impl);
  error_.clear();
  return true;
}

void HttpExporter::stop() {
  if (!impl_) return;
  impl_->running.store(false, std::memory_order_release);
  // shutdown() wakes a blocked accept() (EINVAL) without invalidating the
  // descriptor; close() only after the join so a concurrently reused fd
  // number can never be accepted on.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  ::close(impl_->listen_fd);
  impl_->pool.reset();  // drains in-flight handlers
  impl_.reset();
}

bool HttpExporter::running() const { return impl_ != nullptr; }

int HttpExporter::port() const {
  return impl_ ? impl_->bound_port : 0;
}

}  // namespace cubisg::obs

#else  // !CUBISG_HTTP_EXPORTER: the service is compiled out.

namespace cubisg::obs {

bool http_exporter_available() { return false; }

struct HttpExporter::Impl {};

HttpExporter::HttpExporter() = default;
HttpExporter::~HttpExporter() = default;

bool HttpExporter::start(const HttpExporterOptions&) {
  error_ = "http exporter unavailable (built with CUBISG_OBS=OFF)";
  return false;
}

void HttpExporter::stop() {}
bool HttpExporter::running() const { return false; }
int HttpExporter::port() const { return 0; }

}  // namespace cubisg::obs

#endif  // CUBISG_HTTP_EXPORTER

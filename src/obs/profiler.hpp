// In-process wall-clock sampling profiler (dependency-free).
//
// Each registered thread gets its own POSIX interval timer
// (timer_create(CLOCK_MONOTONIC) delivering SIGPROF via SIGEV_THREAD_ID),
// so every thread is sampled on wall time — a worker blocked in a queue
// pop is sampled just like one spinning in the simplex.  The signal
// handler captures a frame-pointer backtrace (the build compiles with
// -fno-omit-frame-pointer when CUBISG_OBS=ON) and pushes it into a
// lock-free single-producer/single-consumer ring owned by that thread:
// the handler is the only producer (it runs on the sampled thread), the
// collector the only consumer.  No allocation, no locks, no non-reentrant
// calls happen in the handler — the same discipline as SolveBudget's
// signal path, and the two compose: SIGPROF sampling keeps running across
// a SIGINT cancel-all.
//
// Symbolization is offline: collected PCs are resolved with dladdr and
// demangled when the aggregate is exported, never in the handler.  The
// export format is collapsed stacks ("frameA;frameB;frameC count" per
// line), directly consumable by flamegraph.pl or speedscope.
//
// Threads opt in: the main thread registers when the CLI arms
// --profile-out, engine workers and thread-pool workers register via
// ProfiledThreadScope at spawn.  Registration is cheap and independent of
// whether sampling is running; timers are armed per registered thread at
// profiler_start() (and immediately for threads that register while
// sampling is live).
//
// Compiled out with CUBISG_OBS=OFF (and on non-Linux or non-x86-64/
// aarch64 hosts): profiler_available() returns false, every entry point
// is a no-op stub, and none of the sampling machinery is in the binary.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"  // CUBISG_OBS_ENABLED

namespace cubisg::obs {

struct ProfilerOptions {
  int hz = 99;  ///< sampling frequency per thread (clamped to [1, 1000])
};

/// True when the sampler is compiled into this binary and can run on this
/// platform.  False => profiler_start() always fails with an explanation.
bool profiler_available();

/// Arms per-thread timers on every registered thread and starts sampling.
/// Returns false (see profiler_last_error()) if unavailable or already
/// running.  Collected samples accumulate across start/stop cycles until
/// profiler_clear().
bool profiler_start(const ProfilerOptions& opts = {});

/// Disarms all timers and drains outstanding samples into the aggregate.
/// No-op when not running.
void profiler_stop();

bool profiler_running();

/// Explanation of the most recent profiler_start() failure.
std::string profiler_last_error();

/// Registers / unregisters the calling thread for sampling.  Idempotent;
/// unregistration also happens automatically at thread exit.
void profiler_register_this_thread();
void profiler_unregister_this_thread();

/// RAII thread registration for worker loops.
class ProfiledThreadScope {
 public:
  ProfiledThreadScope() {
#if CUBISG_OBS_ENABLED
    profiler_register_this_thread();
#endif
  }
  ~ProfiledThreadScope() {
#if CUBISG_OBS_ENABLED
    profiler_unregister_this_thread();
#endif
  }
  ProfiledThreadScope(const ProfiledThreadScope&) = delete;
  ProfiledThreadScope& operator=(const ProfiledThreadScope&) = delete;
};

/// Samples aggregated so far (drained + still buffered in rings).
std::int64_t profiler_samples_total();

/// Samples dropped because a thread's ring was full (collector too slow).
std::int64_t profiler_samples_dropped();

/// Drains every ring and returns the aggregate as collapsed stacks:
/// one "frame;frame;...;frame count\n" line per unique stack, root first,
/// sorted lexicographically.  Symbolizes via dladdr + demangling; frames
/// with no symbol render as raw "0x..." addresses.
std::string profiler_collapsed_stacks();

/// Writes profiler_collapsed_stacks() to `path`; false on I/O failure.
bool write_profile_collapsed(const std::string& path);

/// Drops the aggregate and resets sample counters (rings stay armed).
void profiler_clear();

}  // namespace cubisg::obs

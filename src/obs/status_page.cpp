#include "obs/status_page.hpp"

#include <algorithm>
#include <map>
#include <mutex>

namespace cubisg::obs {

namespace {

struct PageEntry {
  std::string content_type;
  StatusPageProvider provider;
};

struct PageRegistry {
  std::mutex mutex;
  std::map<std::string, PageEntry> pages;  // guarded by mutex
};

PageRegistry& registry() {
  // Immortal, like the metrics registry: a provider unregistering during
  // static destruction must find the map alive.
  static PageRegistry* r = new PageRegistry();
  return *r;
}

}  // namespace

void register_status_page(const std::string& path,
                          const std::string& content_type,
                          StatusPageProvider provider) {
  if (path.empty() || path[0] != '/' || !provider) return;
  PageRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.pages[path] = PageEntry{content_type, std::move(provider)};
}

void unregister_status_page(const std::string& path) {
  PageRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.pages.erase(path);
}

bool render_status_page(const std::string& path, std::string& content_type,
                        std::string& body) {
  PageRegistry& r = registry();
  // Render under the mutex: unregister_status_page then cannot return
  // while the provider (whose captures it is about to invalidate) runs.
  // Providers are cheap JSON serializers; requests are rare.
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.pages.find(path);
  if (it == r.pages.end()) return false;
  content_type = it->second.content_type;
  body = it->second.provider();
  return true;
}

std::vector<std::string> status_page_paths() {
  PageRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> out;
  out.reserve(r.pages.size());
  for (const auto& [path, entry] : r.pages) out.push_back(path);
  return out;
}

}  // namespace cubisg::obs

// Phase tracing: RAII spans recording nested solver-phase timings.
//
// A TraceSpan marks one phase (binary-search round, P1 feasibility check,
// MILP solve, simplex solve, ...).  Spans nest lexically; each completed
// span appends one event to a per-thread buffer (the only synchronization
// is that buffer's own, uncontended, mutex), so tracing costs ~one clock
// read per span boundary when on and one relaxed load when off.
//
// Collection is OFF by default — hot paths construct spans unconditionally
// and the disabled constructor is a no-op — because long solves with
// per-node spans would otherwise grow the buffers without bound.  Enable
// with set_trace_enabled(true) (the CLI does this for --trace-out), then
// export via trace_to_chrome_json() / write_trace_json() and load the file
// in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // CUBISG_OBS_ENABLED

namespace cubisg::obs {

/// Runtime switch for span collection (default off).
bool trace_enabled();
void set_trace_enabled(bool on);

/// One completed span.  Timestamps are steady-clock nanoseconds relative
/// to the trace epoch (first use in the process).
struct TraceEvent {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  int tid = 0;    ///< dense per-thread id assigned at first span
  int depth = 0;  ///< nesting depth within the thread (0 = top level)
};

namespace detail {
void begin_span(const char* name, std::int64_t& start_ns, int& depth);
void end_span(const char* name, std::int64_t start_ns, int depth);
}  // namespace detail

/// RAII scope: records [construction, destruction) as one trace event.
/// `name` must outlive the span (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
#if CUBISG_OBS_ENABLED
    if (trace_enabled()) {
      name_ = name;
      detail::begin_span(name_, start_ns_, depth_);
    }
#else
    (void)name;
#endif
  }

  ~TraceSpan() {
#if CUBISG_OBS_ENABLED
    if (name_ != nullptr) detail::end_span(name_, start_ns_, depth_);
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if CUBISG_OBS_ENABLED
  const char* name_ = nullptr;  ///< null = inactive (tracing was off)
  std::int64_t start_ns_ = 0;
  int depth_ = 0;
#endif
};

/// All completed events so far, across every thread (started-but-open
/// spans are not included).
std::vector<TraceEvent> collect_trace_events();

/// Drops every completed event (open spans still record on destruction).
void clear_trace();

// ---- export (trace_export.cpp) ----------------------------------------

/// Chrome trace-event JSON ("X" complete events); load via chrome://tracing
/// or https://ui.perfetto.dev.
std::string trace_to_chrome_json();

/// Writes trace_to_chrome_json() to `path`; false on I/O failure.
bool write_trace_json(const std::string& path);

}  // namespace cubisg::obs

// Phase tracing: RAII spans recording nested solver-phase timings.
//
// A TraceSpan marks one phase (binary-search round, P1 feasibility check,
// MILP solve, simplex solve, ...).  Spans nest lexically; each completed
// span appends one event to a per-thread buffer (the only synchronization
// is that buffer's own, uncontended, mutex), so tracing costs ~one clock
// read per span boundary when on and one relaxed load when off.
//
// Collection is OFF by default — hot paths construct spans unconditionally
// and the disabled constructor is a no-op — because long solves with
// per-node spans would otherwise grow the buffers without bound.  Enable
// with set_trace_enabled(true) (the CLI does this for --trace-out), then
// export via trace_to_chrome_json() / write_trace_json() and load the file
// in chrome://tracing or https://ui.perfetto.dev.
//
// Two orthogonal extensions ride on the span machinery:
//
//  * Job tagging.  A thread can carry a current job id (TraceJobScope);
//    every span closed while the scope is active records that id, so a
//    multi-worker engine trace can be filtered to one SolveJob across
//    queue-wait, execute, and nested solver phases.
//
//  * Phase accounting.  Independently of full trace collection, a thread
//    can accumulate per-name span totals into a small thread-local table
//    (begin_phase_accounting / collect_phase_accounting).  The flight
//    recorder uses this to attach a per-phase breakdown to slow solves
//    without paying for whole-process trace buffers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // CUBISG_OBS_ENABLED

namespace cubisg::obs {

/// Runtime switch for span collection (default off).
bool trace_enabled();
void set_trace_enabled(bool on);

/// One completed span.  Timestamps are steady-clock nanoseconds relative
/// to the trace epoch (first use in the process).
struct TraceEvent {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  int tid = 0;    ///< dense per-thread id assigned at first span
  int depth = 0;  ///< nesting depth within the thread (0 = top level)
  std::uint64_t job = 0;  ///< engine job id (0 = not part of a job)
};

/// Nanoseconds since the trace epoch (pins the epoch on first call).
/// Use for manual events recorded via record_trace_event().
std::int64_t trace_now_ns();

/// Records one already-timed event on the calling thread's buffer (no-op
/// when tracing is off).  Used for spans whose start predates the thread
/// that completes them, e.g. engine queue-wait measured from admission on
/// the submitting thread to pickup on the worker.
void record_trace_event(const char* name, std::int64_t start_ns,
                        std::int64_t dur_ns, std::uint64_t job);

// ---- job tagging -------------------------------------------------------

/// Current job id for spans closed on this thread (0 = none).
std::uint64_t current_trace_job();
void set_current_trace_job(std::uint64_t job);

/// RAII: tags every span closed on this thread with `job` for the scope's
/// lifetime, restoring the previous id on destruction.
class TraceJobScope {
 public:
  explicit TraceJobScope(std::uint64_t job) {
#if CUBISG_OBS_ENABLED
    prev_ = current_trace_job();
    set_current_trace_job(job);
#else
    (void)job;
#endif
  }
  ~TraceJobScope() {
#if CUBISG_OBS_ENABLED
    set_current_trace_job(prev_);
#endif
  }
  TraceJobScope(const TraceJobScope&) = delete;
  TraceJobScope& operator=(const TraceJobScope&) = delete;

 private:
#if CUBISG_OBS_ENABLED
  std::uint64_t prev_ = 0;
#endif
};

// ---- phase accounting --------------------------------------------------

/// Total time spent in spans of one name on one thread since the last
/// begin_phase_accounting() call.
struct PhaseTotal {
  std::string name;
  std::int64_t total_ns = 0;
  std::int64_t count = 0;
};

/// Runtime switch for per-thread phase accumulation (default off).  Spans
/// become active when either tracing or accounting is on.
bool phase_accounting_enabled();
void set_phase_accounting_enabled(bool on);

/// Clears the calling thread's phase table (call at job start).
void begin_phase_accounting();

/// Snapshot of the calling thread's phase table since the last begin.
std::vector<PhaseTotal> collect_phase_accounting();

namespace detail {
bool span_capture_enabled();
void begin_span(const char* name, std::int64_t& start_ns, int& depth);
void end_span(const char* name, std::int64_t start_ns, int depth);
}  // namespace detail

/// RAII scope: records [construction, destruction) as one trace event.
/// `name` must outlive the span (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
#if CUBISG_OBS_ENABLED
    if (detail::span_capture_enabled()) {
      name_ = name;
      detail::begin_span(name_, start_ns_, depth_);
    }
#else
    (void)name;
#endif
  }

  ~TraceSpan() {
#if CUBISG_OBS_ENABLED
    if (name_ != nullptr) detail::end_span(name_, start_ns_, depth_);
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#if CUBISG_OBS_ENABLED
  const char* name_ = nullptr;  ///< null = inactive (tracing was off)
  std::int64_t start_ns_ = 0;
  int depth_ = 0;
#endif
};

/// All completed events so far, across every thread (started-but-open
/// spans are not included).
std::vector<TraceEvent> collect_trace_events();

/// Drops every completed event (open spans still record on destruction).
void clear_trace();

// ---- export (trace_export.cpp) ----------------------------------------

/// Chrome trace-event JSON ("X" complete events); load via chrome://tracing
/// or https://ui.perfetto.dev.
std::string trace_to_chrome_json();

/// Writes trace_to_chrome_json() to `path`; false on I/O failure.
bool write_trace_json(const std::string& path);

}  // namespace cubisg::obs

// Minimal blocking HTTP/1.1 server exposing the telemetry layer live:
//
//   GET /metrics  -> Prometheus text exposition of the global registry
//                    (refreshes the process_* self-metrics per scrape)
//   GET /healthz  -> 200 "ok" while the process is alive
//   GET /solvez   -> JSON ring of recent per-solve convergence reports
//   GET /slowz    -> JSON ring of slow-solve flight-recorder entries
//   GET /profilez?seconds=N -> collapsed flamegraph stacks from an
//                    N-second (default 5, max 60) on-demand sampling
//                    session; snapshots a live --profile-out session
//                    without stopping it
//
// Dependency-free (POSIX sockets only).  One acceptor thread accepts
// connections and hands each socket to a small bounded ThreadPool
// (src/parallel); beyond `max_inflight` concurrently served requests the
// acceptor answers 503 inline, so a scrape storm cannot pile threads or
// queue memory onto a solving process.  Every socket carries recv/send
// timeouts, so a stalled client cannot wedge a handler.
//
// With CUBISG_OBS=OFF (or on non-POSIX targets) the server is compiled
// out: http_exporter_available() is false and start() fails with an
// explanatory last_error(), so callers need no #ifs.
#pragma once

#include <memory>
#include <string>

namespace cubisg::obs {

/// True when the server was compiled in (CUBISG_OBS=ON on a POSIX
/// target); when false, start() always fails.
bool http_exporter_available();

struct HttpExporterOptions {
  std::string bind_address = "127.0.0.1";
  int port = 9464;               ///< 0 binds an ephemeral port (see port())
  std::size_t handler_threads = 2;
  std::size_t max_inflight = 32;  ///< beyond this the acceptor answers 503
  int io_timeout_ms = 2000;       ///< per-socket recv/send timeout
};

/// The server.  start()/stop() are not thread-safe against each other;
/// drive them from one owning thread (handlers run on the pool).
class HttpExporter {
 public:
  HttpExporter();
  ~HttpExporter();  ///< stops the server if still running

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Binds, listens and launches the acceptor; false (with last_error()
  /// set) on failure.  Calling start() on a running server fails.
  bool start(const HttpExporterOptions& options = {});

  /// Stops accepting, joins the acceptor and drains in-flight handlers.
  /// Idempotent.
  void stop();

  bool running() const;
  /// The bound port (resolves port 0 requests); 0 when not running.
  int port() const;
  const std::string& last_error() const { return error_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string error_;
};

}  // namespace cubisg::obs

#include "obs/trace.hpp"

#include <chrono>
#include <memory>
#include <mutex>

namespace cubisg::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

/// Events completed by one thread.  The owning thread appends under the
/// buffer's mutex (uncontended unless an export is in flight); exporters
/// lock each buffer briefly while copying.  shared_ptr keeps buffers of
/// exited threads alive until the trace is read.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

TraceState& state() {
  // Immortal for the same reason as the metrics registry: spans can close
  // during static destruction (worker threads exiting at process exit).
  static TraceState* s = new TraceState();
  return *s;
}

std::int64_t epoch_ns() {
  static const std::int64_t epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return epoch;
}

std::int64_t now_rel_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns();
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

thread_local int t_depth = 0;

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  if (on) epoch_ns();  // pin the epoch before the first span
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

void begin_span(const char* /*name*/, std::int64_t& start_ns, int& depth) {
  depth = t_depth++;
  start_ns = now_rel_ns();
}

void end_span(const char* name, std::int64_t start_ns, int depth) {
  const std::int64_t end_ns = now_rel_ns();
  --t_depth;
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(
      {name, start_ns, end_ns - start_ns, buf.tid, depth});
}

}  // namespace detail

std::vector<TraceEvent> collect_trace_events() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->events.clear();
  }
}

}  // namespace cubisg::obs

#include "obs/trace.hpp"

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>

namespace cubisg::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_phase_accounting{false};

/// Events completed by one thread.  The owning thread appends under the
/// buffer's mutex (uncontended unless an export is in flight); exporters
/// lock each buffer briefly while copying.  shared_ptr keeps buffers of
/// exited threads alive until the trace is read.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

TraceState& state() {
  // Immortal for the same reason as the metrics registry: spans can close
  // during static destruction (worker threads exiting at process exit).
  static TraceState* s = new TraceState();
  return *s;
}

std::int64_t epoch_ns() {
  static const std::int64_t epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return epoch;
}

std::int64_t now_rel_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns();
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

thread_local int t_depth = 0;
thread_local std::uint64_t t_job = 0;

// Per-thread phase table: small and fixed so accounting stays allocation-
// free on the solve path.  Names are string literals, so pointer identity
// usually hits before the strcmp fallback (literals may not be merged
// across translation units).
struct PhaseSlot {
  const char* name = nullptr;
  std::int64_t total_ns = 0;
  std::int64_t count = 0;
};
constexpr int kPhaseSlots = 48;
thread_local PhaseSlot t_phases[kPhaseSlots];
thread_local int t_phase_count = 0;

void accumulate_phase(const char* name, std::int64_t dur_ns) {
  for (int i = 0; i < t_phase_count; ++i) {
    if (t_phases[i].name == name ||
        std::strcmp(t_phases[i].name, name) == 0) {
      t_phases[i].total_ns += dur_ns;
      ++t_phases[i].count;
      return;
    }
  }
  if (t_phase_count < kPhaseSlots) {
    t_phases[t_phase_count++] = {name, dur_ns, 1};
  }
  // Table full: drop.  48 slots comfortably covers the solver's span
  // taxonomy; a dropped name only shortens a slow-solve breakdown.
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  if (on) epoch_ns();  // pin the epoch before the first span
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool phase_accounting_enabled() {
  return g_phase_accounting.load(std::memory_order_relaxed);
}

void set_phase_accounting_enabled(bool on) {
  g_phase_accounting.store(on, std::memory_order_relaxed);
}

void begin_phase_accounting() { t_phase_count = 0; }

std::vector<PhaseTotal> collect_phase_accounting() {
  std::vector<PhaseTotal> out;
  out.reserve(static_cast<std::size_t>(t_phase_count));
  for (int i = 0; i < t_phase_count; ++i) {
    out.push_back({t_phases[i].name, t_phases[i].total_ns,
                   t_phases[i].count});
  }
  return out;
}

std::int64_t trace_now_ns() { return now_rel_ns(); }

std::uint64_t current_trace_job() { return t_job; }

void set_current_trace_job(std::uint64_t job) { t_job = job; }

void record_trace_event(const char* name, std::int64_t start_ns,
                        std::int64_t dur_ns, std::uint64_t job) {
#if !CUBISG_OBS_ENABLED
  // Keep OFF builds span-free even if tracing gets toggled on.
  (void)name;
  (void)start_ns;
  (void)dur_ns;
  (void)job;
  return;
#else
  if (!trace_enabled()) return;
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({name, start_ns, dur_ns, buf.tid, 0, job});
#endif
}

namespace detail {

bool span_capture_enabled() {
  return trace_enabled() || phase_accounting_enabled();
}

void begin_span(const char* /*name*/, std::int64_t& start_ns, int& depth) {
  depth = t_depth++;
  start_ns = now_rel_ns();
}

void end_span(const char* name, std::int64_t start_ns, int depth) {
  const std::int64_t end_ns = now_rel_ns();
  --t_depth;
  if (phase_accounting_enabled()) {
    accumulate_phase(name, end_ns - start_ns);
  }
  if (!trace_enabled()) return;
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(
      {name, start_ns, end_ns - start_ns, buf.tid, depth, t_job});
}

}  // namespace detail

std::vector<TraceEvent> collect_trace_events() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    buf->events.clear();
  }
}

}  // namespace cubisg::obs

// Prometheus text exposition (format version 0.0.4) for MetricsSnapshot.
//
// The registry's dotted metric names (`cubis.solves_total`) are mapped to
// the Prometheus name charset ([a-zA-Z_:][a-zA-Z0-9_:]*); counters gain a
// `_total` suffix when they lack one, histograms render as cumulative
// `_bucket{le="..."}` series plus `_sum`/`_count`, and the `+Inf` bucket
// always equals `_count` (computed from the same per-bucket loads, so a
// scrape racing writers is still internally consistent).
//
// Serialization is pure — it reads a MetricsSnapshot taken under the
// registry lock — so concurrent scrapes never observe torn state beyond
// the usual relaxed-counter skew documented in metrics.hpp.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace cubisg::obs {

/// Content-Type an HTTP exporter must send with to_prometheus_text output.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Maps a registry metric name onto the Prometheus name charset: invalid
/// characters (the registry uses dots) become '_', a leading digit gains a
/// '_' prefix, and counters get a `_total` suffix unless already present.
std::string prometheus_metric_name(const std::string& raw,
                                   bool is_counter = false);

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline are backslash-escaped.
std::string prometheus_escape_label(const std::string& value);

/// Renders a full snapshot as text exposition: one `# TYPE` line per
/// family followed by its samples, families in snapshot (name-sorted)
/// order.  When two registry names collapse onto the same exposed name,
/// the first family wins and later ones are skipped with a comment line
/// (duplicate families are invalid exposition).
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

}  // namespace cubisg::obs

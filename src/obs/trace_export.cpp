// Chrome trace-event-format export of the collected spans.
//
// Format reference: the "Trace Event Format" doc (complete events, ph="X",
// timestamps in microseconds).  chrome://tracing and Perfetto both nest
// same-thread events by their [ts, ts+dur) containment, which is exactly
// how TraceSpan scopes nest, so parent/child structure needs no explicit
// linkage.
#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"

namespace cubisg::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }  // control characters dropped; span names are ASCII identifiers
  }
}

void append_us(std::string& out, std::int64_t ns) {
  // Microseconds with nanosecond precision kept as decimals.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string trace_to_chrome_json() {
  std::vector<TraceEvent> events = collect_trace_events();
  // Stable viewing order: by thread, then start time, then outermost first.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"cubisg\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.start_ns);
    out += ",\"dur\":";
    append_us(out, e.dur_ns);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    if (e.job != 0) {
      out += ",\"job\":";
      out += std::to_string(e.job);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = trace_to_chrome_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cubisg::obs

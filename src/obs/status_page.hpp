// Pluggable status pages for the live telemetry server.
//
// Subsystems that live above the HTTP exporter in the link graph (the
// solve engine's process supervisor, for example) can still expose a
// debug endpoint: they register a path ("/workersz") with a provider
// callback here, and the exporter consults this registry for any path it
// does not handle natively.  Providers return the full response body;
// the exporter adds the HTTP framing.
//
// Registration is cheap and rare (one per subsystem lifetime); lookups
// take the same mutex per request, which is negligible next to the
// socket round trip.  Providers must be callable from any handler thread
// and must not block on the registering subsystem's shutdown (register
// in the constructor, unregister in the destructor, and the unregister
// waits for in-flight calls via the registry mutex).
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace cubisg::obs {

/// A status-page body producer.  Returns the response body; the content
/// type is fixed per registration.
using StatusPageProvider = std::function<std::string()>;

/// Registers `provider` for GET `path` (must start with '/').  Replaces
/// any previous provider for the path.
void register_status_page(const std::string& path,
                          const std::string& content_type,
                          StatusPageProvider provider);

/// Removes the provider for `path` (no-op when absent).  Blocks until no
/// handler is mid-call into the provider being removed.
void unregister_status_page(const std::string& path);

/// Invokes the provider for `path`.  Returns false when no provider is
/// registered; otherwise fills `content_type` and `body`.
bool render_status_page(const std::string& path, std::string& content_type,
                        std::string& body);

/// Registered paths, sorted (for the exporter's 404 hint).
std::vector<std::string> status_page_paths();

}  // namespace cubisg::obs

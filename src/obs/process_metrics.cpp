#include "obs/process_metrics.hpp"

#include "obs/metrics.hpp"

#if CUBISG_OBS_ENABLED && (defined(__unix__) || defined(__APPLE__))
#define CUBISG_PROCESS_METRICS 1
#else
#define CUBISG_PROCESS_METRICS 0
#endif

#if CUBISG_PROCESS_METRICS
#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#endif

namespace cubisg::obs {

#if CUBISG_PROCESS_METRICS

namespace {

struct ProcessGauges {
  Gauge& rss_bytes;
  Gauge& vsize_bytes;
  Gauge& cpu_user_seconds;
  Gauge& cpu_system_seconds;
  Gauge& open_fds;
  Gauge& uptime_seconds;

  static ProcessGauges& get() {
    // Raw names use dots like every other cubisg metric; the Prometheus
    // exporter maps them to the conventional process_* family.
    static ProcessGauges g{
        Registry::global().gauge("process.resident_memory_bytes"),
        Registry::global().gauge("process.virtual_memory_bytes"),
        Registry::global().gauge("process.cpu_user_seconds"),
        Registry::global().gauge("process.cpu_system_seconds"),
        Registry::global().gauge("process.open_fds"),
        Registry::global().gauge("process.uptime_seconds"),
    };
    return g;
  }
};

/// /proc/self/statm: size and resident, in pages (Linux; fails quietly
/// elsewhere and the memory gauges keep their last value).
void update_memory(ProcessGauges& g) {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return;
  long size_pages = 0;
  long rss_pages = 0;
  const int got = std::fscanf(f, "%ld %ld", &size_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return;
  const double page = static_cast<double>(sysconf(_SC_PAGESIZE));
  g.vsize_bytes.set(static_cast<double>(size_pages) * page);
  g.rss_bytes.set(static_cast<double>(rss_pages) * page);
}

void update_cpu(ProcessGauges& g) {
  struct rusage ru;
  std::memset(&ru, 0, sizeof ru);
  if (getrusage(RUSAGE_SELF, &ru) != 0) return;
  g.cpu_user_seconds.set(static_cast<double>(ru.ru_utime.tv_sec) +
                         static_cast<double>(ru.ru_utime.tv_usec) * 1e-6);
  g.cpu_system_seconds.set(static_cast<double>(ru.ru_stime.tv_sec) +
                           static_cast<double>(ru.ru_stime.tv_usec) * 1e-6);
}

void update_fds(ProcessGauges& g) {
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) return;
  long count = 0;
  while (const dirent* e = readdir(d)) {
    if (e->d_name[0] != '.') ++count;
  }
  closedir(d);
  // The opendir fd itself is counted; report the steady-state number.
  g.open_fds.set(static_cast<double>(count > 0 ? count - 1 : 0));
}

/// True process uptime from /proc: system uptime minus the process start
/// tick — stateless, so it is correct even on the first scrape.
void update_uptime(ProcessGauges& g) {
  double sys_uptime = 0.0;
  {
    std::FILE* f = std::fopen("/proc/uptime", "r");
    if (f == nullptr) return;
    const int got = std::fscanf(f, "%lf", &sys_uptime);
    std::fclose(f);
    if (got != 1) return;
  }
  std::FILE* f = std::fopen("/proc/self/stat", "r");
  if (f == nullptr) return;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // Field 2 (comm) may contain spaces; fields are reliable only after
  // the closing paren.  starttime is the 20th field after it.
  const char* p = std::strrchr(buf, ')');
  if (p == nullptr) return;
  ++p;
  long long start_ticks = -1;
  int field = 0;
  for (const char* q = p; *q != '\0' && field < 20;) {
    while (*q == ' ') ++q;
    ++field;
    if (field == 20) {
      start_ticks = std::atoll(q);
      break;
    }
    while (*q != '\0' && *q != ' ') ++q;
  }
  if (start_ticks < 0) return;
  const double ticks = static_cast<double>(sysconf(_SC_CLK_TCK));
  if (ticks <= 0) return;
  const double up =
      sys_uptime - static_cast<double>(start_ticks) / ticks;
  if (up >= 0) g.uptime_seconds.set(up);
}

}  // namespace

bool process_metrics_available() { return true; }

void update_process_metrics() {
  ProcessGauges& g = ProcessGauges::get();
  update_memory(g);
  update_cpu(g);
  update_fds(g);
  update_uptime(g);
}

#else  // !CUBISG_PROCESS_METRICS

bool process_metrics_available() { return false; }
void update_process_metrics() {}

#endif  // CUBISG_PROCESS_METRICS

}  // namespace cubisg::obs

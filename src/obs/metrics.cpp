#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace cubisg::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Round-robin thread -> shard assignment; cheaper and better distributed
/// than hashing std::thread::id.
std::atomic<std::size_t> g_next_shard{0};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Formats a double for JSON (no NaN/Inf — clamp to null-safe values).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() {
  thread_local const std::size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

}  // namespace detail

// ---- Counter -----------------------------------------------------------

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const detail::Cell& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (detail::Cell& s : shards_) {
    s.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Histogram ---------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_bounds_seconds();
  std::sort(bounds_.begin(), bounds_.end());
  const std::size_t n = bounds_.size() + 1;
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::int64_t>[]>(n);
    for (std::size_t b = 0; b < n; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<double> Histogram::latency_bounds_seconds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

void Histogram::record(double v) {
#if CUBISG_OBS_ENABLED
  if (!enabled()) return;
  const std::size_t bucket =
      static_cast<std::size_t>(std::upper_bound(bounds_.begin(),
                                                bounds_.end(), v) -
                               bounds_.begin());
  Shard& s = shards_[detail::shard_index()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(s.sum, v);
#else
  (void)v;
#endif
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---- Registry ----------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: stable addresses and deterministic (sorted) snapshot order.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  /// Metric-family hygiene: every registered name maps to exactly one
  /// kind.  Before this map, registering "x" as a counter and again as a
  /// gauge silently created two families that collapsed onto one
  /// exposition name — the serializer dropped whichever sorted second.
  std::map<std::string, const char*> kinds;

  /// Records `name` as `kind`; throws std::logic_error on a conflict.
  /// Call with `mutex` held.
  void check_kind(const std::string& name, const char* kind) {
    auto [it, inserted] = kinds.emplace(name, kind);
    if (!inserted && std::strcmp(it->second, kind) != 0) {
      throw std::logic_error("metric '" + name + "' already registered as " +
                             it->second + ", cannot re-register as " + kind);
    }
  }
};

Registry::Impl& Registry::impl() const {
  // Intentionally immortal: metrics are recorded from static-destruction
  // paths (e.g. the global thread pool draining at exit), so the registry
  // must outlive every other static.
  static Impl* instance = new Impl();
  return *instance;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.check_kind(name, "counter");
  auto& slot = im.counters[name];
  if (!slot) slot.reset(new Counter(name));
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.check_kind(name, "gauge");
  auto& slot = im.gauges[name];
  if (!slot) slot.reset(new Gauge(name));
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.check_kind(name, "histogram");
  auto& slot = im.histograms[name];
  if (!slot) slot.reset(new Histogram(name, std::move(bounds)));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  MetricsSnapshot out;
  out.counters.reserve(im.counters.size());
  for (const auto& [name, c] : im.counters) {
    out.counters.push_back({name, c->value()});
  }
  out.gauges.reserve(im.gauges.size());
  for (const auto& [name, g] : im.gauges) {
    out.gauges.push_back({name, g->value()});
  }
  out.histograms.reserve(im.histograms.size());
  for (const auto& [name, h] : im.histograms) {
    out.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

void Registry::fork_lock() { impl().mutex.lock(); }
void Registry::fork_unlock() { impl().mutex.unlock(); }

// ---- MetricsSnapshot ---------------------------------------------------

std::int64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& baseline) const {
  MetricsSnapshot out = *this;
  for (CounterSnapshot& c : out.counters) {
    c.value = std::max<std::int64_t>(0, c.value - baseline.counter(c.name));
  }
  for (HistogramSnapshot& h : out.histograms) {
    const HistogramSnapshot* base = baseline.histogram(h.name);
    if (base == nullptr || base->counts.size() != h.counts.size()) continue;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      h.counts[b] = std::max<std::int64_t>(0, h.counts[b] - base->counts[b]);
    }
    h.count = std::max<std::int64_t>(0, h.count - base->count);
    h.sum -= base->sum;
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += c.name;
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += g.name;
    out += "\":";
    append_double(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) out += ',';
      append_double(out, h.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ',';
      out += std::to_string(h.counts[b]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    append_double(out, h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

// ---- SolveTelemetry ----------------------------------------------------

std::string SolveTelemetry::to_json() const {
  std::string out = "{\"wall_seconds\":";
  append_double(out, wall_seconds);
  out += ",\"metrics\":";
  out += metrics.to_json();
  out += '}';
  return out;
}

SolveScope::SolveScope()
    : baseline_(Registry::global().snapshot()), start_ns_(now_ns()) {}

SolveTelemetry SolveScope::finish() const {
  SolveTelemetry t;
  t.metrics = Registry::global().snapshot().delta_since(baseline_);
  t.wall_seconds = static_cast<double>(now_ns() - start_ns_) * 1e-9;
  return t;
}

}  // namespace cubisg::obs

#include "obs/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <set>

namespace cubisg::obs {

namespace {

bool valid_name_char(char ch) {
  return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
         (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Sample-value formatting: integral values print without a fraction so
/// counters and bucket counts stay exact and goldens stay stable; the
/// rest use %.9g (matching the JSON exporter's precision).
void append_value(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_value(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

/// Emits the `# TYPE` header; returns false (and a comment) when the
/// exposed name was already used by an earlier family.
bool open_family(std::string& out, std::set<std::string>& seen,
                 const std::string& name, const char* type,
                 const std::string& raw) {
  if (!seen.insert(name).second) {
    out += "# cubisg: skipped \"";
    out += raw;
    out += "\" (duplicate family ";
    out += name;
    out += ")\n";
    return false;
  }
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  return true;
}

}  // namespace

std::string prometheus_metric_name(const std::string& raw, bool is_counter) {
  std::string out;
  out.reserve(raw.size() + 8);
  // Digits survive the mapping unchanged, so the leading-digit guard can
  // look at the raw name and prepend before the copy.
  if (!raw.empty() && raw[0] >= '0' && raw[0] <= '9') out += '_';
  for (char ch : raw) {
    out += valid_name_char(ch) ? ch : '_';
  }
  if (out.empty()) out = "_";
  if (is_counter && !ends_with(out, "_total")) out += "_total";
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::set<std::string> seen;

  for (const CounterSnapshot& c : snapshot.counters) {
    const std::string name = prometheus_metric_name(c.name, true);
    if (!open_family(out, seen, name, "counter", c.name)) continue;
    out += name;
    out += ' ';
    append_value(out, c.value);
    out += '\n';
  }

  for (const GaugeSnapshot& g : snapshot.gauges) {
    const std::string name = prometheus_metric_name(g.name);
    if (!open_family(out, seen, name, "gauge", g.name)) continue;
    out += name;
    out += ' ';
    append_value(out, g.value);
    out += '\n';
  }

  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = prometheus_metric_name(h.name);
    if (!open_family(out, seen, name, "histogram", h.name)) continue;
    // Cumulative buckets from the per-bucket counts; `_count` and the
    // +Inf bucket both use the same running total, so they agree even
    // when h.count was read mid-record (torn vs the bucket array).
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += b < h.counts.size() ? h.counts[b] : 0;
      out += name;
      out += "_bucket{le=\"";
      append_value(out, h.bounds[b]);
      out += "\"} ";
      append_value(out, cumulative);
      out += '\n';
    }
    if (h.counts.size() > h.bounds.size()) {
      cumulative += h.counts[h.bounds.size()];  // overflow bucket
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    append_value(out, cumulative);
    out += '\n';
    out += name;
    out += "_sum ";
    append_value(out, h.sum);
    out += '\n';
    out += name;
    out += "_count ";
    append_value(out, cumulative);
    out += '\n';
  }

  return out;
}

}  // namespace cubisg::obs

// Slow-solve flight recorder: a bounded ring of forensic records for
// solves that blew a latency SLO.
//
// The engine (and the CLI's one-shot solve path) checks every finished
// solve against the armed SLO; offenders get a FlightEntry capturing the
// full SolveReport the solver published, the per-phase span breakdown
// accumulated on the solving thread (trace phase accounting — no full
// trace collection needed), and the job's budget state at completion.
// The ring keeps the most recent kDefaultCapacity offenders, is served
// live at GET /slowz by the HTTP exporter, and is flushed to a file on
// exit when the CLI armed --slow-solve-out.
//
// Arming the recorder also turns on trace phase accounting so the
// breakdown is available; disarming turns it back off.  Everything is
// off-hot-path (one mutex acquisition per *slow* solve), and with
// CUBISG_OBS=OFF the recording internals compile out: armed() is
// constant-false and record() is a no-op, so no flight-recorder state
// exists in the binary.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // CUBISG_OBS_ENABLED
#include "obs/solve_report.hpp"
#include "obs/trace.hpp"  // PhaseTotal

namespace cubisg::obs {

/// One slow solve.  `report` is the SolveReport published on the solving
/// thread (has_report false when the solver does not publish reports).
struct FlightEntry {
  std::int64_t id = 0;       ///< recorder-assigned, monotonic
  std::uint64_t job_id = 0;  ///< engine job id (0 = one-shot CLI solve)
  std::string tag;
  std::size_t worker = 0;
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
  double slo_seconds = 0.0;  ///< the SLO in force when recorded

  bool has_report = false;
  SolveReport report;

  // Budget state at completion.
  double budget_deadline_seconds = 0.0;
  std::int64_t budget_nodes = 0;
  std::int64_t budget_iterations = 0;
  bool budget_cancelled = false;

  std::vector<PhaseTotal> phases;  ///< per-phase totals, solving thread

  std::string to_json() const;
};

/// Thread-safe bounded ring of the most recent slow solves.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Process-wide recorder (immortal, same pattern as SolveReportBuffer).
  static FlightRecorder& global();

  /// Arms the SLO (seconds) and enables trace phase accounting.  A solve
  /// whose wall time meets or exceeds the SLO should be record()ed.
  void arm(double slo_seconds);

  /// Disarms and turns phase accounting back off.  Entries are retained.
  void disarm();

  bool armed() const;
  double slo_seconds() const;

  /// Stores the entry (evicting the oldest when full); returns its id.
  /// No-op returning 0 when the recorder is not armed or observability
  /// is compiled out.
  std::int64_t record(FlightEntry entry);

  /// The retained entries, oldest first.
  std::vector<FlightEntry> recent() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Count of every entry ever recorded (retained or evicted).
  std::int64_t total_recorded() const;
  void clear();

  /// {"armed":b,"slo_seconds":s,"total":N,"capacity":C,"entries":[...]}
  std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<FlightEntry> ring_;  ///< guarded by mutex_
  std::size_t next_ = 0;           ///< guarded; eviction cursor when full
  std::int64_t total_ = 0;         ///< guarded; id source
  // Atomics: armed()/slo_seconds() are polled once per finished solve.
  std::atomic<bool> armed_{false};
  std::atomic<double> slo_seconds_{0.0};
};

}  // namespace cubisg::obs

#include "obs/solve_report.hpp"

#include <cmath>
#include <cstdio>

namespace cubisg::obs {

namespace {

/// Same finite-only JSON number policy as MetricsSnapshot::to_json.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  out += '"';
}

/// Last report published by this thread (copy; see header).
thread_local SolveReport t_last_report;

}  // namespace

SolveReport last_solve_report_on_this_thread() { return t_last_report; }

std::string SolveReport::to_json() const {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"solver\":";
  append_escaped(out, solver);
  out += ",\"status\":";
  append_escaped(out, status);
  out += ",\"budget_stop\":";
  out += budget_stop ? "true" : "false";
  out += ",\"deadline_seconds\":";
  append_double(out, deadline_seconds);
  out += ",\"targets\":";
  out += std::to_string(targets);
  out += ",\"wall_seconds\":";
  append_double(out, wall_seconds);
  out += ",\"lb\":";
  append_double(out, lb);
  out += ",\"ub\":";
  append_double(out, ub);
  out += ",\"gap\":";
  append_double(out, gap());
  out += ",\"worst_case_utility\":";
  append_double(out, worst_case_utility);
  out += ",\"binary_steps\":";
  out += std::to_string(binary_steps);
  out += ",\"feasibility_checks\":";
  out += std::to_string(feasibility_checks);
  out += ",\"milp_nodes\":";
  out += std::to_string(milp_nodes);
  out += ",\"incumbent_updates\":";
  out += std::to_string(incumbent_updates);
  out += ",\"simplex_iters\":";
  out += std::to_string(simplex_iters);
  out += ",\"trajectory\":[";
  for (std::size_t r = 0; r < trajectory.size(); ++r) {
    if (r) out += ',';
    out += "{\"lo\":";
    append_double(out, trajectory[r].lo);
    out += ",\"hi\":";
    append_double(out, trajectory[r].hi);
    out += ",\"gap\":";
    append_double(out, trajectory[r].gap());
    out += ",\"feasible\":";
    out += std::to_string(trajectory[r].feasible);
    out += ",\"infeasible\":";
    out += std::to_string(trajectory[r].infeasible);
    out += '}';
  }
  out += "]}";
  return out;
}

SolveReportBuffer::SolveReportBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

SolveReportBuffer& SolveReportBuffer::global() {
  // Immortal for the same reason as the metrics registry: solves can
  // finish while statics are being destroyed at process exit.
  static SolveReportBuffer* buffer = new SolveReportBuffer();
  return *buffer;
}

std::int64_t SolveReportBuffer::add(SolveReport report) {
  std::lock_guard<std::mutex> lock(mutex_);
  report.id = ++total_;
  const std::int64_t id = report.id;
  t_last_report = report;  // per-thread copy for the flight recorder
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(report));
  } else {
    ring_[next_] = std::move(report);
    next_ = (next_ + 1) % capacity_;
  }
  return id;
}

std::vector<SolveReport> SolveReportBuffer::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SolveReport> out;
  out.reserve(ring_.size());
  // `next_` points at the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t SolveReportBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::int64_t SolveReportBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void SolveReportBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
}

std::string SolveReportBuffer::to_json() const {
  const std::vector<SolveReport> reports = recent();
  std::string out = "{\"total\":";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out += std::to_string(total_);
  }
  out += ",\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i) out += ',';
    out += reports[i].to_json();
  }
  out += "]}";
  return out;
}

}  // namespace cubisg::obs

// Solver metrics: named counters, gauges and fixed-bucket histograms.
//
// Hot solver loops (simplex pivots, DP cells, B&B nodes) must be able to
// count events without serializing on a lock.  Every counter and histogram
// bucket is therefore sharded: writers pick a shard by a per-thread index
// and do ONE relaxed atomic add; readers aggregate across shards when a
// snapshot is taken.  Metric registration (name -> object) goes through a
// mutex, so instrumentation sites cache the returned reference (function-
// local static) and never touch the map again.
//
// Compile-time switch: build with CUBISG_OBS_ENABLED=0 (CMake option
// CUBISG_OBS=OFF) and every recording call inlines to nothing.  Runtime
// switch: obs::set_enabled(false) turns recording into a single relaxed
// load.  Snapshot/JSON APIs exist in both modes so callers need no #ifs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#ifndef CUBISG_OBS_ENABLED
#define CUBISG_OBS_ENABLED 1
#endif

namespace cubisg::obs {

/// Runtime master switch for metric recording (default on).
bool enabled();
void set_enabled(bool on);

namespace detail {

/// Shard count: a power of two so the thread hash is a mask.  16 shards
/// keep false sharing negligible without bloating small registries.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards).
std::size_t shard_index();

/// One cache line per shard so concurrent writers do not false-share.
struct alignas(64) Cell {
  std::atomic<std::int64_t> value{0};
};

/// Lock-free add for doubles (no fetch_add guarantee pre-C++20 on all
/// targets; a CAS loop is portable and uncontended in practice).
inline void atomic_add_double(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
#if CUBISG_OBS_ENABLED
    if (!enabled()) return;
    shards_[detail::shard_index()].value.fetch_add(
        delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  /// Aggregated value (sums shards; racing writers may land just after).
  std::int64_t value() const;
  const std::string& name() const { return name_; }
  void reset();

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  detail::Cell shards_[detail::kShards];
};

/// Last-write-wins instantaneous value (e.g. a queue depth).
class Gauge {
 public:
  void set(double v) {
#if CUBISG_OBS_ENABLED
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(double delta) {
#if CUBISG_OBS_ENABLED
    if (!enabled()) return;
    detail::atomic_add_double(value_, delta);
#else
    (void)delta;
#endif
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending upper edges; one
/// overflow bucket is appended implicitly.  Records are sharded like
/// counters — one relaxed bucket increment plus count/sum upkeep.
class Histogram {
 public:
  void record(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }
  /// Aggregated per-bucket counts (bounds().size() + 1 entries).
  std::vector<std::int64_t> bucket_counts() const;
  std::int64_t count() const;
  double sum() const;
  void reset();

  /// Default bucket edges for latencies in seconds: 1us .. 10s decades.
  static std::vector<double> latency_bounds_seconds();

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);

  struct Shard {
    std::unique_ptr<std::atomic<std::int64_t>[]> counts;
    alignas(64) std::atomic<std::int64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> bounds_;
  Shard shards_[detail::kShards];
};

// ---- snapshots ---------------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::int64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time aggregate of every registered metric.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name (0 when absent).
  std::int64_t counter(const std::string& name) const;
  /// Histogram by name (nullptr when absent).
  const HistogramSnapshot* histogram(const std::string& name) const;

  /// This snapshot minus `baseline`: counters and histogram counts/sums
  /// subtract (clamped at 0 for counts); gauges keep their current value.
  /// Metrics absent from the baseline pass through unchanged.
  MetricsSnapshot delta_since(const MetricsSnapshot& baseline) const;

  std::string to_json() const;
};

/// Name -> metric map.  References returned are stable for the process
/// lifetime; instrumentation sites cache them in function-local statics.
///
/// Each name belongs to exactly one metric kind: re-registering an
/// existing name as a different kind throws std::logic_error instead of
/// silently creating a second family that would collapse onto the same
/// exposition name (and be dropped by the Prometheus serializer).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used on first registration only; empty = latency decades.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;
  /// Zeroes every value; identities (and cached references) stay valid.
  void reset();

  /// Fork support: holds/releases the registration mutex around fork()
  /// so a forked worker child never inherits it locked (recording itself
  /// is lock-free; only name lookup takes the mutex).
  void fork_lock();
  void fork_unlock();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// ---- per-solve telemetry ----------------------------------------------

/// Snapshot of solver activity over one solve: the metric deltas recorded
/// between SolveScope construction and finish().  Concurrent solves share
/// the global registry, so deltas attribute activity from overlapping
/// solves to each other; per-solve isolation is future work.
struct SolveTelemetry {
  MetricsSnapshot metrics;
  double wall_seconds = 0.0;

  std::int64_t counter(const std::string& name) const {
    return metrics.counter(name);
  }
  std::string to_json() const;
};

/// RAII baseline capture for SolveTelemetry.
class SolveScope {
 public:
  SolveScope();
  /// Metric deltas since construction plus elapsed wall time.
  SolveTelemetry finish() const;

 private:
  MetricsSnapshot baseline_;
  std::int64_t start_ns_ = 0;
};

}  // namespace cubisg::obs

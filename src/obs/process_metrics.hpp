// Process self-metrics: RSS, CPU seconds, open fds, uptime.
//
// Registered as gauges under the standard Prometheus `process_*` names
// (after the exporter's dot-to-underscore mapping) and refreshed lazily:
// the HTTP exporter calls update_process_metrics() on every /metrics
// scrape, and the CLI refreshes once before flushing --metrics-out.
// Sources are getrusage(2) plus /proc/self on Linux; on platforms
// without /proc the /proc-derived gauges stay at their last value (0).
#pragma once

namespace cubisg::obs {

/// True when at least the rusage-based metrics can be collected here.
bool process_metrics_available();

/// Refreshes the process.* gauges in the global registry.  Cheap (a few
/// syscalls + /proc reads); call at scrape/flush time, not per solve.
/// No-op when observability is compiled out.
void update_process_metrics();

}  // namespace cubisg::obs

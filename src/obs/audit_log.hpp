// Audit failure log: a bounded ring of shadow-audit / verify failures.
//
// The independent verifier (src/audit) deposits a record here whenever a
// solution fails its audit; the ring keeps the most recent offenders and
// is served live at GET /auditz by the HTTP exporter, plus flushed to a
// file on exit when the CLI armed --audit-out.  Records are plain
// strings/doubles so this stays a leaf of the obs layer — the exporter
// serves it without linking the audit library.
//
// Unlike the slow-solve flight recorder there is no arming step: audits
// only run when explicitly requested (--audit-sample / verify), failures
// are rare and always worth keeping, and recording is one mutex
// acquisition per *failed* audit.  With CUBISG_OBS=OFF record() is a
// no-op, mirroring the rest of the forensic rings.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // CUBISG_OBS_ENABLED

namespace cubisg::obs {

/// One failed audit.
struct AuditRecord {
  std::int64_t id = 0;       ///< log-assigned, monotonic
  std::uint64_t job_id = 0;  ///< engine job id (0 = one-shot CLI verify)
  std::string tag;
  std::string solver;
  std::string worst_code;  ///< most severe audit code name
  std::string detail;      ///< "; "-joined finding details
  int findings = 0;
  double max_residual = 0.0;
  double recomputed_worst_case = 0.0;
  double verify_seconds = 0.0;

  std::string to_json() const;
};

/// Thread-safe bounded ring of the most recent audit failures.
class AuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 32;

  explicit AuditLog(std::size_t capacity = kDefaultCapacity);

  /// Process-wide log (immortal, same pattern as FlightRecorder).
  static AuditLog& global();

  /// Stores the record (evicting the oldest when full); returns its id.
  /// No-op returning 0 when observability is compiled out.
  std::int64_t record(AuditRecord record);

  /// The retained records, oldest first.
  std::vector<AuditRecord> recent() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Count of every failure ever recorded (retained or evicted).
  std::int64_t total_recorded() const;
  void clear();

  /// {"total":N,"capacity":C,"failures":[...]}
  std::string to_json() const;

  /// Writes to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<AuditRecord> ring_;  ///< guarded by mutex_
  std::size_t next_ = 0;           ///< guarded; eviction cursor when full
  std::int64_t total_ = 0;         ///< guarded; id source
};

}  // namespace cubisg::obs

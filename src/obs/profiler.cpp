#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#if CUBISG_OBS_ENABLED && defined(__linux__) && \
    (defined(__x86_64__) || defined(__aarch64__))
#define CUBISG_PROFILER 1
#else
#define CUBISG_PROFILER 0
#endif

#if CUBISG_PROFILER
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdlib>
#endif

namespace cubisg::obs {

#if CUBISG_PROFILER

namespace {

// Linux-only sigevent plumbing: SIGEV_THREAD_ID routes the timer's signal
// to one specific thread instead of the process, which is what makes
// per-thread wall-clock sampling work.  Older glibc headers hide the
// field behind a macro; provide the fallbacks.
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

constexpr std::size_t kMaxFrames = 64;
constexpr std::size_t kSlotWords = kMaxFrames + 1;  // [0] = frame count
constexpr std::size_t kRingSlots = 1024;  // ~520 KiB per thread

/// Per-thread sample ring.  The SIGPROF handler (running on the owning
/// thread) is the only producer; the collector is the only consumer.
/// head/tail count samples monotonically; slot = index % kRingSlots.
struct ThreadProf {
  std::atomic<std::uint64_t> head{0};     ///< samples committed (producer)
  std::atomic<std::uint64_t> tail{0};     ///< samples consumed (consumer)
  std::atomic<std::uint64_t> dropped{0};  ///< ring-full drops
  std::vector<std::uintptr_t> ring;
  std::uintptr_t stack_hi = 0;  ///< top of this thread's stack
  pid_t tid = 0;
  timer_t timer{};
  bool timer_armed = false;
};

struct ProfState {
  std::mutex mutex;  ///< guards registry, start/stop, aggregate
  std::vector<std::shared_ptr<ThreadProf>> threads;
  bool running = false;
  bool handler_installed = false;
  int hz = 99;
  /// Unique raw stacks (leaf-first PCs) -> occurrence count.
  std::map<std::vector<std::uintptr_t>, std::uint64_t> aggregate;
  std::int64_t drained_samples = 0;
  std::string last_error;
};

ProfState& pstate() {
  // Immortal: thread-exit unregistration can run during static
  // destruction (same pattern as the metrics registry).
  static ProfState* s = new ProfState();
  return *s;
}

/// Global sampling gate read by the handler; a timer tick that races a
/// stop() just drops its sample.
std::atomic<bool> g_sampling{false};

/// The handler's view of this thread's ring.  Atomic because the handler
/// interrupts the owning thread mid-instruction; relaxed is enough (the
/// handler runs on the same thread that stores it).
thread_local std::atomic<ThreadProf*> t_prof{nullptr};

void sigprof_handler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  // Async-signal-safe: atomics, raw loads from the already-mapped stack
  // region, and writes into a preallocated ring.  No locks, no malloc.
  ThreadProf* tp = t_prof.load(std::memory_order_relaxed);
  if (tp == nullptr || !g_sampling.load(std::memory_order_relaxed)) return;

  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
  std::uintptr_t sp = 0;
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext);
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#endif

  const std::uint64_t head = tp->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = tp->tail.load(std::memory_order_acquire);
  if (head - tail >= kRingSlots) {
    tp->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uintptr_t* slot = tp->ring.data() + (head % kRingSlots) * kSlotWords;

  // Frame-pointer walk from the interrupted context.  Every dereference
  // is bounds-checked against [sp, stack_hi): the region at and above the
  // interrupted stack pointer is mapped, and the chain only walks upward.
  // Anchoring the lower bound at SP (not at the first fp) matters: code
  // built without frame pointers (libc, libm) uses RBP as a scratch
  // register, and a scratch value below SP can point at the unmapped
  // guard region under the stack — such samples stay leaf-only.
  std::size_t n = 0;
  slot[1 + n++] = pc;
  const std::uintptr_t lo = sp;
  const std::uintptr_t hi = tp->stack_hi;
  while (n < kMaxFrames) {
    if (fp < lo || fp + 2 * sizeof(std::uintptr_t) > hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const std::uintptr_t next =
        reinterpret_cast<const std::uintptr_t*>(fp)[0];
    const std::uintptr_t ret =
        reinterpret_cast<const std::uintptr_t*>(fp)[1];
    if (ret < 0x1000) break;  // not a plausible return address
    slot[1 + n++] = ret;
    if (next <= fp) break;  // chain must strictly ascend
    fp = next;
  }
  slot[0] = static_cast<std::uintptr_t>(n);
  tp->head.store(head + 1, std::memory_order_release);
}

void install_handler_locked(ProfState& s) {
  if (s.handler_installed) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = &sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGPROF, &sa, nullptr);
  s.handler_installed = true;
}

bool arm_thread_locked(ProfState& s, ThreadProf& tp) {
  if (tp.timer_armed) return true;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof sev);
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tp.tid;
  if (timer_create(CLOCK_MONOTONIC, &sev, &tp.timer) != 0) {
    s.last_error = "timer_create failed";
    return false;
  }
  const long period_ns = 1000000000L / s.hz;
  struct itimerspec its;
  std::memset(&its, 0, sizeof its);
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(tp.timer, 0, &its, nullptr) != 0) {
    timer_delete(tp.timer);
    s.last_error = "timer_settime failed";
    return false;
  }
  tp.timer_armed = true;
  return true;
}

void disarm_thread_locked(ThreadProf& tp) {
  if (!tp.timer_armed) return;
  timer_delete(tp.timer);
  tp.timer_armed = false;
}

/// Moves every buffered sample from `tp`'s ring into the aggregate.
void drain_thread_locked(ProfState& s, ThreadProf& tp) {
  const std::uint64_t head = tp.head.load(std::memory_order_acquire);
  std::uint64_t tail = tp.tail.load(std::memory_order_relaxed);
  while (tail < head) {
    const std::uintptr_t* slot =
        tp.ring.data() + (tail % kRingSlots) * kSlotWords;
    const std::size_t n =
        std::min<std::size_t>(static_cast<std::size_t>(slot[0]), kMaxFrames);
    std::vector<std::uintptr_t> key(slot + 1, slot + 1 + n);
    ++s.aggregate[key];
    ++s.drained_samples;
    ++tail;
  }
  tp.tail.store(tail, std::memory_order_release);
}

void drain_all_locked(ProfState& s) {
  for (const auto& tp : s.threads) drain_thread_locked(s, *tp);
}

/// Resolves one PC to a human-readable frame (cached).  Frames beyond the
/// leaf are return addresses, so `adjust` backs them up by one byte to
/// attribute the sample to the call site, not the next statement.
const std::string& symbolize(
    std::uintptr_t pc, bool adjust,
    std::map<std::uintptr_t, std::string>& cache) {
  const std::uintptr_t lookup = adjust ? pc - 1 : pc;
  auto it = cache.find(lookup);
  if (it != cache.end()) return it->second;

  std::string name;
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* dem =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
  } else {
    char buf[2 * sizeof(std::uintptr_t) + 8];
    std::snprintf(buf, sizeof buf, "0x%zx", static_cast<std::size_t>(pc));
    name = buf;
  }
  // ';' is the collapsed-format frame separator; control chars would
  // break line-oriented consumers.
  for (char& c : name) {
    if (c == ';' || static_cast<unsigned char>(c) < 0x20) c = ':';
  }
  return cache.emplace(lookup, std::move(name)).first->second;
}

}  // namespace

bool profiler_available() { return true; }

bool profiler_start(const ProfilerOptions& opts) {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.running) {
    s.last_error = "profiler already running";
    return false;
  }
  s.hz = std::min(1000, std::max(1, opts.hz));
  install_handler_locked(s);
  g_sampling.store(true, std::memory_order_relaxed);
  bool any_failed = false;
  for (const auto& tp : s.threads) {
    if (!arm_thread_locked(s, *tp)) any_failed = true;
  }
  (void)any_failed;  // partial coverage still profiles; error is recorded
  s.running = true;
  return true;
}

void profiler_stop() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.running) return;
  g_sampling.store(false, std::memory_order_relaxed);
  for (const auto& tp : s.threads) disarm_thread_locked(*tp);
  drain_all_locked(s);
  s.running = false;
}

bool profiler_running() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.running;
}

std::string profiler_last_error() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.last_error;
}

void profiler_register_this_thread() {
  if (t_prof.load(std::memory_order_relaxed) != nullptr) return;
  auto tp = std::make_shared<ThreadProf>();
  tp->ring.assign(kRingSlots * kSlotWords, 0);
  tp->tid = static_cast<pid_t>(::syscall(SYS_gettid));

  // Stack top for the handler's bounds check.  pthread_getattr_np works
  // for the main thread too (glibc reads /proc/self/maps).
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    std::size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      tp->stack_hi =
          reinterpret_cast<std::uintptr_t>(stack_addr) + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
  if (tp->stack_hi == 0) {
    // No bounds => never dereference: the walk yields leaf-only samples.
    tp->stack_hi = reinterpret_cast<std::uintptr_t>(&attr);
  }

  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.threads.push_back(tp);
  t_prof.store(tp.get(), std::memory_order_relaxed);
  if (s.running) arm_thread_locked(s, *tp);
}

void profiler_unregister_this_thread() {
  ThreadProf* raw = t_prof.load(std::memory_order_relaxed);
  if (raw == nullptr) return;
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Disarm before clearing t_prof: a pending SIGPROF delivered after
  // timer_delete sees a null t_prof and returns immediately.
  for (auto it = s.threads.begin(); it != s.threads.end(); ++it) {
    if (it->get() == raw) {
      disarm_thread_locked(**it);
      t_prof.store(nullptr, std::memory_order_relaxed);
      drain_thread_locked(s, **it);
      s.threads.erase(it);
      break;
    }
  }
}

std::int64_t profiler_samples_total() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::int64_t total = s.drained_samples;
  for (const auto& tp : s.threads) {
    total += static_cast<std::int64_t>(
        tp->head.load(std::memory_order_acquire) -
        tp->tail.load(std::memory_order_relaxed));
  }
  return total;
}

std::int64_t profiler_samples_dropped() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::int64_t total = 0;
  for (const auto& tp : s.threads) {
    total +=
        static_cast<std::int64_t>(tp->dropped.load(std::memory_order_relaxed));
  }
  return total;
}

std::string profiler_collapsed_stacks() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  drain_all_locked(s);

  // Symbolize and merge: distinct raw stacks can collapse to the same
  // symbolized line (e.g. different PCs inside one function).
  std::map<std::uintptr_t, std::string> cache;
  std::map<std::string, std::uint64_t> lines;
  for (const auto& [stack, count] : s.aggregate) {
    std::string line;
    // Raw stacks are leaf-first; collapsed format wants root-first.
    for (std::size_t i = stack.size(); i-- > 0;) {
      if (!line.empty()) line += ';';
      line += symbolize(stack[i], /*adjust=*/i != 0, cache);
    }
    if (line.empty()) continue;
    lines[line] += count;
  }

  std::string out;
  char buf[32];
  for (const auto& [line, count] : lines) {
    out += line;
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

void profiler_clear() {
  ProfState& s = pstate();
  std::lock_guard<std::mutex> lock(s.mutex);
  drain_all_locked(s);  // consume buffered samples so they don't reappear
  s.aggregate.clear();
  s.drained_samples = 0;
  for (const auto& tp : s.threads) {
    tp->dropped.store(0, std::memory_order_relaxed);
  }
}

#else  // !CUBISG_PROFILER — stubs only; no sampling machinery is built.

bool profiler_available() { return false; }

bool profiler_start(const ProfilerOptions& /*opts*/) { return false; }

void profiler_stop() {}

bool profiler_running() { return false; }

std::string profiler_last_error() {
  return "profiler compiled out (CUBISG_OBS=OFF or unsupported platform)";
}

void profiler_register_this_thread() {}
void profiler_unregister_this_thread() {}

std::int64_t profiler_samples_total() { return 0; }
std::int64_t profiler_samples_dropped() { return 0; }

std::string profiler_collapsed_stacks() { return std::string(); }

void profiler_clear() {}

#endif  // CUBISG_PROFILER

bool write_profile_collapsed(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = profiler_collapsed_stacks();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cubisg::obs

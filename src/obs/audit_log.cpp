#include "obs/audit_log.hpp"

#include <cmath>
#include <cstdio>

namespace cubisg::obs {

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  out += '"';
}

}  // namespace

std::string AuditRecord::to_json() const {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"job_id\":";
  out += std::to_string(job_id);
  out += ",\"tag\":";
  append_escaped(out, tag);
  out += ",\"solver\":";
  append_escaped(out, solver);
  out += ",\"worst_code\":";
  append_escaped(out, worst_code);
  out += ",\"findings\":";
  out += std::to_string(findings);
  out += ",\"detail\":";
  append_escaped(out, detail);
  out += ",\"max_residual\":";
  append_double(out, max_residual);
  out += ",\"recomputed_worst_case\":";
  append_double(out, recomputed_worst_case);
  out += ",\"verify_seconds\":";
  append_double(out, verify_seconds);
  out += '}';
  return out;
}

AuditLog::AuditLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

AuditLog& AuditLog::global() {
  // Immortal: shadow audits can finish during static destruction.
  static AuditLog* log = new AuditLog();
  return *log;
}

#if CUBISG_OBS_ENABLED

std::int64_t AuditLog::record(AuditRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.id = ++total_;
  const std::int64_t id = record.id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
  return id;
}

#else  // !CUBISG_OBS_ENABLED — recording compiles out entirely.

std::int64_t AuditLog::record(AuditRecord /*record*/) { return 0; }

#endif  // CUBISG_OBS_ENABLED

std::vector<AuditRecord> AuditLog::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  // `next_` points at the oldest record once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::int64_t AuditLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void AuditLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
}

std::string AuditLog::to_json() const {
  const std::vector<AuditRecord> records = recent();
  std::string out = "{\"total\":";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out += std::to_string(total_);
  }
  out += ",\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"failures\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i) out += ',';
    out += records[i].to_json();
  }
  out += "]}";
  return out;
}

bool AuditLog::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cubisg::obs

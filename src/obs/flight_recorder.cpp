#include "obs/flight_recorder.hpp"

#include <cmath>
#include <cstdio>

namespace cubisg::obs {

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  out += '"';
}

}  // namespace

std::string FlightEntry::to_json() const {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"job_id\":";
  out += std::to_string(job_id);
  out += ",\"tag\":";
  append_escaped(out, tag);
  out += ",\"worker\":";
  out += std::to_string(worker);
  out += ",\"queue_seconds\":";
  append_double(out, queue_seconds);
  out += ",\"solve_seconds\":";
  append_double(out, solve_seconds);
  out += ",\"slo_seconds\":";
  append_double(out, slo_seconds);
  out += ",\"budget\":{\"deadline_seconds\":";
  append_double(out, budget_deadline_seconds);
  out += ",\"nodes_charged\":";
  out += std::to_string(budget_nodes);
  out += ",\"iterations_charged\":";
  out += std::to_string(budget_iterations);
  out += ",\"cancel_requested\":";
  out += budget_cancelled ? "true" : "false";
  out += "},\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":";
    append_escaped(out, phases[i].name);
    out += ",\"total_seconds\":";
    append_double(out, static_cast<double>(phases[i].total_ns) * 1e-9);
    out += ",\"count\":";
    out += std::to_string(phases[i].count);
    out += '}';
  }
  out += "],\"report\":";
  if (has_report) {
    out += report.to_json();
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

FlightRecorder& FlightRecorder::global() {
  // Immortal: slow solves can finish during static destruction.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

#if CUBISG_OBS_ENABLED

void FlightRecorder::arm(double slo_seconds) {
  slo_seconds_.store(slo_seconds, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
  set_phase_accounting_enabled(true);
}

void FlightRecorder::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  set_phase_accounting_enabled(false);
}

bool FlightRecorder::armed() const {
  return armed_.load(std::memory_order_relaxed);
}

double FlightRecorder::slo_seconds() const {
  return slo_seconds_.load(std::memory_order_relaxed);
}

std::int64_t FlightRecorder::record(FlightEntry entry) {
  if (!armed()) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  entry.id = ++total_;
  const std::int64_t id = entry.id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % capacity_;
  }
  return id;
}

#else  // !CUBISG_OBS_ENABLED — recording compiles out entirely.

void FlightRecorder::arm(double /*slo_seconds*/) {}
void FlightRecorder::disarm() {}
bool FlightRecorder::armed() const { return false; }
double FlightRecorder::slo_seconds() const { return 0.0; }
std::int64_t FlightRecorder::record(FlightEntry /*entry*/) { return 0; }

#endif  // CUBISG_OBS_ENABLED

std::vector<FlightEntry> FlightRecorder::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightEntry> out;
  out.reserve(ring_.size());
  // `next_` points at the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::int64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEntry> entries = recent();
  std::string out = "{\"armed\":";
  out += armed() ? "true" : "false";
  out += ",\"slo_seconds\":";
  append_double(out, slo_seconds());
  out += ",\"total\":";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out += std::to_string(total_);
  }
  out += ",\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) out += ',';
    out += entries[i].to_json();
  }
  out += "]}";
  return out;
}

bool FlightRecorder::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cubisg::obs

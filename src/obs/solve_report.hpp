// Per-solve convergence reports: a bounded ring of structured records.
//
// Each CUBIS solve publishes one SolveReport — the binary-search
// trajectory over the defender-utility threshold c (bracket and P1
// feasibility outcomes per multisection round) plus the B&B/simplex
// totals attributed by the solve's SolveScope delta.  The global buffer
// keeps the most recent `capacity` reports; the HTTP exporter serves
// them as JSON at GET /solvez so a live solve's convergence is visible
// mid-run without waiting for the process to exit.
//
// Recording is once per solve (one mutex acquisition), far off any hot
// path, so it stays active even when metric recording is disabled at
// runtime; building with CUBISG_OBS=OFF compiles the feeding call sites
// out along with the rest of the telemetry layer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cubisg::obs {

/// One multisection round of the binary search over c.
struct BinarySearchRound {
  double lo = 0.0;      ///< bracket lower bound after the round
  double hi = 0.0;      ///< bracket upper bound after the round
  int feasible = 0;     ///< candidate thresholds proven P1-feasible
  int infeasible = 0;   ///< candidate thresholds proven P1-infeasible

  double gap() const { return hi - lo; }
};

/// Structured record of one defender solve.
struct SolveReport {
  std::int64_t id = 0;  ///< monotonically increasing, assigned on add()
  std::string solver;
  std::string status;
  /// True when the solve was cut short by its SolveBudget (deadline,
  /// cancellation or node/iteration cap) and the coverage below is the
  /// best incumbent rather than the converged optimum.
  bool budget_stop = false;
  /// Wall-clock budget the caller armed (0 = none).
  double deadline_seconds = 0.0;
  std::size_t targets = 0;
  double wall_seconds = 0.0;
  double lb = 0.0;  ///< final bracket on c
  double ub = 0.0;
  double worst_case_utility = 0.0;
  int binary_steps = 0;
  std::int64_t feasibility_checks = 0;
  std::int64_t milp_nodes = 0;
  std::int64_t incumbent_updates = 0;
  std::int64_t simplex_iters = 0;
  std::vector<BinarySearchRound> trajectory;

  double gap() const { return ub - lb; }
  std::string to_json() const;
};

/// The most recent report published from the calling thread (id == 0
/// when the thread has never published).  Solvers publish on the thread
/// that ran the solve, and engine workers run one job at a time, so right
/// after a solve this is that job's report — no ring scan, no race with
/// other workers.  The flight recorder uses this to attach the full
/// report to a slow-solve entry.
SolveReport last_solve_report_on_this_thread();

/// Thread-safe bounded ring buffer of the most recent reports.
class SolveReportBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit SolveReportBuffer(std::size_t capacity = kDefaultCapacity);

  /// Process-wide buffer the solvers publish into.  Intentionally
  /// immortal (like the metrics registry) so late publishes during
  /// static destruction stay safe.
  static SolveReportBuffer& global();

  /// Stores the report (evicting the oldest when full); returns its id.
  std::int64_t add(SolveReport report);

  /// The retained reports, oldest first.
  std::vector<SolveReport> recent() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Count of every report ever added (retained or evicted).
  std::int64_t total_recorded() const;
  void clear();

  /// {"total": N, "capacity": C, "reports": [...oldest first...]}
  std::string to_json() const;

  /// Fork support: holds/releases the ring mutex around fork() so a
  /// forked worker child (which publishes its own solve reports) never
  /// inherits it locked.
  void fork_lock() { mutex_.lock(); }
  void fork_unlock() { mutex_.unlock(); }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SolveReport> ring_;  ///< guarded by mutex_
  std::size_t next_ = 0;           ///< guarded; eviction cursor when full
  std::int64_t total_ = 0;         ///< guarded; id source
};

}  // namespace cubisg::obs

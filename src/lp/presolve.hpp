// LP presolve: shrink a model before the simplex sees it.
//
// Reductions applied to a fixpoint:
//  * fixed columns (lo == hi) are substituted into their rows;
//  * empty columns are fixed at their objective-preferred bound;
//  * singleton rows become bounds on their single column;
//  * empty rows are checked and dropped;
//  * inverted/incompatible bounds are detected as infeasibility.
//
// Branch-and-bound is the main customer: every branching decision fixes a
// binary, so deep nodes shrink substantially.  The transform records how
// to map a reduced solution back to the original column space (primal
// postsolve; dual postsolve is intentionally out of scope — node LPs only
// need objective + primal values).
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::lp {

/// Outcome of a presolve pass.
struct PresolveResult {
  /// The reduced model (meaningful unless `infeasible` or `unbounded`).
  Model reduced;
  /// For each original column: index in `reduced`, or -1 if eliminated.
  std::vector<int> col_map;
  /// Value of each eliminated column (valid where col_map[j] == -1).
  std::vector<double> fixed_value;
  bool infeasible = false;
  bool unbounded = false;
  int removed_cols = 0;
  int removed_rows = 0;
};

/// Runs the reductions on `model`.
PresolveResult presolve(const Model& model);

/// Expands a reduced-model solution back to original column order.
std::vector<double> postsolve(const PresolveResult& pre,
                              const std::vector<double>& reduced_x);

/// Convenience: presolve, solve, postsolve.  Returns primal values and
/// objective in the original space; `duals`/`reduced_costs`/`positions`
/// refer to the REDUCED model and are cleared to avoid misuse.
LpSolution solve_lp_presolved(const Model& model,
                              const SimplexOptions& options = {});

}  // namespace cubisg::lp

#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace cubisg::lp {

namespace {

constexpr double kTol = 1e-9;

/// Working copy of the model with elimination marks.
struct Work {
  // Column state.
  std::vector<double> lo, hi, obj;
  std::vector<bool> col_alive;
  std::vector<double> fixed_value;
  std::vector<bool> integer;
  // Row state: sense/rhs mutable (rhs shifts as columns are substituted).
  std::vector<Sense> sense;
  std::vector<double> rhs;
  std::vector<bool> row_alive;
  // Entries per row (alive columns only are meaningful).
  std::vector<std::vector<RowEntry>> rows;

  bool infeasible = false;
  bool unbounded = false;
};

/// Substitutes a fixed column into every row.
void fix_column(Work& w, int j, double value) {
  w.col_alive[j] = false;
  w.fixed_value[j] = value;
  if (value == 0.0) return;
  for (std::size_t r = 0; r < w.rows.size(); ++r) {
    if (!w.row_alive[r]) continue;
    for (const RowEntry& e : w.rows[r]) {
      if (e.col == j) w.rhs[r] -= e.value * value;
    }
  }
}

/// One sweep of reductions; returns true if anything changed.
bool sweep(Work& w) {
  bool changed = false;
  const int ncols = static_cast<int>(w.lo.size());
  const int nrows = static_cast<int>(w.rows.size());

  // Column reductions.
  for (int j = 0; j < ncols && !w.infeasible; ++j) {
    if (!w.col_alive[j]) continue;
    if (w.lo[j] > w.hi[j] + kTol) {
      w.infeasible = true;
      return true;
    }
    if (std::abs(w.hi[j] - w.lo[j]) <= kTol && std::isfinite(w.lo[j])) {
      fix_column(w, j, 0.5 * (w.lo[j] + w.hi[j]));
      changed = true;
    }
    // (Empty columns are handled once in the finalize step: they need the
    // objective sense and cannot trigger further row reductions.)
  }

  // Row reductions.
  for (int r = 0; r < nrows && !w.infeasible; ++r) {
    if (!w.row_alive[r]) continue;
    int live_entries = 0;
    const RowEntry* single = nullptr;
    for (const RowEntry& e : w.rows[r]) {
      if (e.value != 0.0 && w.col_alive[e.col]) {
        ++live_entries;
        single = &e;
      }
    }
    if (live_entries == 0) {
      // 0 (sense) rhs must hold.
      const double v = w.rhs[r];
      const bool ok = w.sense[r] == Sense::kLe   ? 0.0 <= v + kTol
                      : w.sense[r] == Sense::kGe ? 0.0 >= v - kTol
                                                 : std::abs(v) <= kTol;
      if (!ok) {
        w.infeasible = true;
        return true;
      }
      w.row_alive[r] = false;
      changed = true;
      continue;
    }
    if (live_entries == 1) {
      // a * x (sense) rhs  ->  bound on x.
      const int j = single->col;
      const double a = single->value;
      const double v = w.rhs[r] / a;
      switch (w.sense[r]) {
        case Sense::kLe:
          if (a > 0.0) {
            w.hi[j] = std::min(w.hi[j], v);
          } else {
            w.lo[j] = std::max(w.lo[j], v);
          }
          break;
        case Sense::kGe:
          if (a > 0.0) {
            w.lo[j] = std::max(w.lo[j], v);
          } else {
            w.hi[j] = std::min(w.hi[j], v);
          }
          break;
        case Sense::kEq:
          w.lo[j] = std::max(w.lo[j], v);
          w.hi[j] = std::min(w.hi[j], v);
          break;
      }
      if (w.lo[j] > w.hi[j] + kTol) {
        w.infeasible = true;
        return true;
      }
      w.row_alive[r] = false;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

PresolveResult presolve(const Model& model) {
  model.validate();
  const int ncols = model.num_cols();
  const int nrows = model.num_rows();

  Work w;
  w.lo.resize(ncols);
  w.hi.resize(ncols);
  w.obj.resize(ncols);
  w.col_alive.assign(ncols, true);
  w.fixed_value.assign(ncols, 0.0);
  w.integer.resize(ncols);
  for (int j = 0; j < ncols; ++j) {
    w.lo[j] = model.col_lower(j);
    w.hi[j] = model.col_upper(j);
    w.obj[j] = model.col_objective(j);
    w.integer[j] = model.col_is_integer(j);
  }
  w.sense.resize(nrows);
  w.rhs.resize(nrows);
  w.row_alive.assign(nrows, true);
  w.rows.resize(nrows);
  for (int r = 0; r < nrows; ++r) {
    w.sense[r] = model.row_sense(r);
    w.rhs[r] = model.row_rhs(r);
    w.rows[r] = model.row_entries(r);
  }

  while (sweep(w) && !w.infeasible) {
  }

  PresolveResult out;
  out.col_map.assign(ncols, -1);
  out.fixed_value = w.fixed_value;
  if (w.infeasible) {
    out.infeasible = true;
    out.removed_cols = ncols;
    out.removed_rows = nrows;
    return out;
  }

  const bool maximize = model.objective_sense() == Objective::kMaximize;
  // Handle surviving empty columns now that the sense is at hand.
  for (int j = 0; j < ncols; ++j) {
    if (!w.col_alive[j]) continue;
    bool appears = false;
    for (int r = 0; r < nrows && !appears; ++r) {
      if (!w.row_alive[r]) continue;
      for (const RowEntry& e : w.rows[r]) {
        if (e.col == j && e.value != 0.0 && w.col_alive[e.col]) {
          appears = true;
          break;
        }
      }
    }
    if (appears) continue;
    const bool wants_high = maximize ? w.obj[j] > 0.0 : w.obj[j] < 0.0;
    double v;
    if (w.obj[j] == 0.0) {
      v = std::isfinite(w.lo[j]) ? w.lo[j]
          : std::isfinite(w.hi[j]) ? w.hi[j]
                                   : 0.0;
    } else if (wants_high) {
      if (!std::isfinite(w.hi[j])) {
        out.unbounded = true;
        return out;
      }
      v = w.hi[j];
    } else {
      if (!std::isfinite(w.lo[j])) {
        out.unbounded = true;
        return out;
      }
      v = w.lo[j];
    }
    w.col_alive[j] = false;
    w.fixed_value[j] = v;
    out.fixed_value[j] = v;
  }

  // Build the reduced model.
  out.reduced.set_objective_sense(model.objective_sense());
  for (int j = 0; j < ncols; ++j) {
    if (!w.col_alive[j]) {
      ++out.removed_cols;
      continue;
    }
    out.col_map[j] =
        out.reduced.add_col(model.col_name(j), w.lo[j], w.hi[j], w.obj[j]);
    if (w.integer[j]) out.reduced.set_integer(out.col_map[j]);
  }
  for (int r = 0; r < nrows; ++r) {
    if (!w.row_alive[r]) {
      ++out.removed_rows;
      continue;
    }
    const int rr = out.reduced.add_row(model.row_name(r), w.sense[r],
                                       w.rhs[r]);
    for (const RowEntry& e : w.rows[r]) {
      if (e.value != 0.0 && w.col_alive[e.col]) {
        out.reduced.set_coeff(rr, out.col_map[e.col], e.value);
      }
    }
  }
  out.fixed_value = w.fixed_value;
  return out;
}

std::vector<double> postsolve(const PresolveResult& pre,
                              const std::vector<double>& reduced_x) {
  std::vector<double> x(pre.col_map.size());
  for (std::size_t j = 0; j < pre.col_map.size(); ++j) {
    x[j] = pre.col_map[j] >= 0 ? reduced_x[pre.col_map[j]]
                               : pre.fixed_value[j];
  }
  return x;
}

LpSolution solve_lp_presolved(const Model& model,
                              const SimplexOptions& options) {
  PresolveResult pre = presolve(model);
  LpSolution out;
  if (pre.infeasible) {
    out.status = SolverStatus::kInfeasible;
    return out;
  }
  if (pre.unbounded) {
    out.status = SolverStatus::kUnbounded;
    return out;
  }
  if (pre.reduced.num_cols() == 0) {
    // Everything was eliminated: the solution is fully determined.
    out.status = SolverStatus::kOptimal;
    out.x = postsolve(pre, {});
    out.objective = model.objective_value(out.x);
    // Feasibility of the eliminated system was verified during presolve.
    return out;
  }
  SimplexOptions reduced_opts = options;
  reduced_opts.warm_positions = nullptr;  // spaces differ after reduction
  LpSolution sol = solve_lp(pre.reduced, reduced_opts);
  out.status = sol.status;
  out.iterations = sol.iterations;
  if (sol.status == SolverStatus::kOptimal ||
      sol.status == SolverStatus::kIterLimit) {
    out.x = postsolve(pre, sol.x);
    out.objective = model.objective_value(out.x);
  }
  return out;
}

}  // namespace cubisg::lp

#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/errors.hpp"

namespace cubisg::lp {

int Model::add_col(std::string name, double lo, double hi, double obj) {
  if (std::isnan(lo) || std::isnan(hi) || !std::isfinite(obj)) {
    throw InvalidModelError("add_col: non-finite objective or NaN bound");
  }
  if (lo > hi) {
    throw InvalidModelError("add_col: lower bound exceeds upper bound for '" +
                            name + "'");
  }
  cols_.push_back(Col{std::move(name), lo, hi, obj});
  return static_cast<int>(cols_.size()) - 1;
}

int Model::add_row(std::string name, Sense sense, double rhs) {
  if (!std::isfinite(rhs)) {
    throw InvalidModelError("add_row: non-finite rhs for '" + name + "'");
  }
  rows_.push_back(Row{std::move(name), sense, rhs, {}});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::set_coeff(int row, int col, double value) {
  if (row < 0 || row >= num_rows() || col < 0 || col >= num_cols()) {
    throw std::out_of_range("set_coeff: index out of range");
  }
  if (!std::isfinite(value)) {
    throw InvalidModelError("set_coeff: non-finite coefficient");
  }
  auto& entries = rows_[row].entries;
  auto it = std::find_if(entries.begin(), entries.end(),
                         [col](const RowEntry& e) { return e.col == col; });
  if (it != entries.end()) {
    it->value = value;
  } else {
    entries.push_back(RowEntry{col, value});
  }
}

void Model::set_integer(int col, bool is_integer) {
  if (col < 0 || col >= num_cols()) {
    throw std::out_of_range("set_integer: column out of range");
  }
  cols_[col].integer = is_integer;
}

void Model::set_col_bounds(int col, double lo, double hi) {
  if (col < 0 || col >= num_cols()) {
    throw std::out_of_range("set_col_bounds: column out of range");
  }
  if (std::isnan(lo) || std::isnan(hi) || lo > hi) {
    throw InvalidModelError("set_col_bounds: invalid bounds");
  }
  cols_[col].lo = lo;
  cols_[col].hi = hi;
}

void Model::set_col_objective(int col, double obj) {
  if (col < 0 || col >= num_cols()) {
    throw std::out_of_range("set_col_objective: column out of range");
  }
  if (!std::isfinite(obj)) {
    throw InvalidModelError("set_col_objective: non-finite coefficient");
  }
  cols_[col].obj = obj;
}

void Model::set_row_rhs(int row, double rhs) {
  if (row < 0 || row >= num_rows()) {
    throw std::out_of_range("set_row_rhs: row out of range");
  }
  if (!std::isfinite(rhs)) {
    throw InvalidModelError("set_row_rhs: non-finite rhs");
  }
  rows_[row].rhs = rhs;
}

void Model::set_row_entry_value(int row, std::size_t entry, double value) {
  if (row < 0 || row >= num_rows() ||
      entry >= rows_[row].entries.size()) {
    throw std::out_of_range("set_row_entry_value: index out of range");
  }
  if (!std::isfinite(value)) {
    throw InvalidModelError("set_row_entry_value: non-finite coefficient");
  }
  rows_[row].entries[entry].value = value;
}

bool Model::has_integers() const {
  return std::any_of(cols_.begin(), cols_.end(),
                     [](const Col& c) { return c.integer; });
}

double Model::objective_value(const std::vector<double>& x) const {
  double v = 0.0;
  for (std::size_t j = 0; j < cols_.size(); ++j) {
    v += cols_[j].obj * x[j];
  }
  return v;
}

double Model::row_activity(int row, const std::vector<double>& x) const {
  double v = 0.0;
  for (const RowEntry& e : rows_[row].entries) {
    v += e.value * x[e.col];
  }
  return v;
}

double Model::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (int j = 0; j < num_cols(); ++j) {
    worst = std::max(worst, cols_[j].lo - x[j]);
    worst = std::max(worst, x[j] - cols_[j].hi);
  }
  for (int r = 0; r < num_rows(); ++r) {
    const double a = row_activity(r, x);
    switch (rows_[r].sense) {
      case Sense::kLe: worst = std::max(worst, a - rows_[r].rhs); break;
      case Sense::kGe: worst = std::max(worst, rows_[r].rhs - a); break;
      case Sense::kEq: worst = std::max(worst, std::abs(a - rows_[r].rhs));
        break;
    }
  }
  return worst;
}

std::string Model::to_lp_format() const {
  std::ostringstream os;
  os.precision(17);
  os << (obj_sense_ == Objective::kMaximize ? "Maximize" : "Minimize")
     << "\n obj:";
  for (int j = 0; j < num_cols(); ++j) {
    if (cols_[j].obj != 0.0) {
      os << (cols_[j].obj >= 0 ? " + " : " - ") << std::abs(cols_[j].obj)
         << ' ' << cols_[j].name;
    }
  }
  os << "\nSubject To\n";
  for (int r = 0; r < num_rows(); ++r) {
    os << ' ' << rows_[r].name << ':';
    for (const RowEntry& e : rows_[r].entries) {
      os << (e.value >= 0 ? " + " : " - ") << std::abs(e.value) << ' '
         << cols_[e.col].name;
    }
    switch (rows_[r].sense) {
      case Sense::kLe: os << " <= "; break;
      case Sense::kGe: os << " >= "; break;
      case Sense::kEq: os << " = "; break;
    }
    os << rows_[r].rhs << '\n';
  }
  os << "Bounds\n";
  for (const Col& c : cols_) {
    os << ' ' << c.lo << " <= " << c.name << " <= " << c.hi << '\n';
  }
  bool any_int = false;
  for (const Col& c : cols_) any_int = any_int || c.integer;
  if (any_int) {
    os << "General\n";
    for (const Col& c : cols_) {
      if (c.integer) os << ' ' << c.name;
    }
    os << '\n';
  }
  os << "End\n";
  return os.str();
}

void Model::validate() const {
  for (const Col& c : cols_) {
    if (c.lo > c.hi) {
      throw InvalidModelError("validate: inverted bounds on '" + c.name + "'");
    }
  }
  for (const Row& r : rows_) {
    for (const RowEntry& e : r.entries) {
      if (e.col < 0 || e.col >= num_cols()) {
        throw InvalidModelError("validate: bad column index in '" + r.name +
                                "'");
      }
    }
  }
}

}  // namespace cubisg::lp

// Plain-text save/load of lp::Model.
//
// A simple line-oriented format with full double precision (hex floats), so
// a model can be captured from a failing solve and replayed bit-exactly in
// a standalone reproducer or test.
#pragma once

#include <iosfwd>
#include <string>

#include "lp/model.hpp"

namespace cubisg::lp {

/// Writes `model` to `os` in the cubisg model format.
void write_model(std::ostream& os, const Model& model);

/// Convenience: write to a file; returns false on I/O failure.
bool save_model(const std::string& path, const Model& model);

/// Reads a model previously written by write_model.  Throws
/// InvalidModelError on malformed input.
Model read_model(std::istream& is);

/// Convenience: read from a file.  Throws on I/O or parse failure.
Model load_model(const std::string& path);

}  // namespace cubisg::lp

#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cubisg::lp {

namespace {

constexpr double kInfD = std::numeric_limits<double>::infinity();

/// Registry handles, resolved once.  The pivot loop only touches solver-
/// local plain integers; totals are flushed here once per solve.
struct SimplexMetrics {
  obs::Counter& solves = obs::Registry::global().counter(
      "simplex.solves_total");
  obs::Counter& pivots = obs::Registry::global().counter(
      "simplex.pivots_total");
  obs::Counter& phase1_iters = obs::Registry::global().counter(
      "simplex.phase1_iters");
  obs::Counter& phase2_iters = obs::Registry::global().counter(
      "simplex.phase2_iters");
  obs::Counter& degenerate = obs::Registry::global().counter(
      "simplex.degenerate_steps");
  obs::Counter& bound_flips = obs::Registry::global().counter(
      "simplex.bound_flips");
  obs::Counter& refactorizations = obs::Registry::global().counter(
      "simplex.refactorizations");
  obs::Counter& soft_restarts = obs::Registry::global().counter(
      "simplex.soft_restarts");
  obs::Counter& warm_starts = obs::Registry::global().counter(
      "simplex.warm_starts_total");
  obs::Counter& warm_fallbacks = obs::Registry::global().counter(
      "simplex.warm_start_fallbacks_total");
  obs::Counter& numeric_retries = obs::Registry::global().counter(
      "solve.numeric_retries_total");

  static SimplexMetrics& get() {
    static SimplexMetrics m;
    return m;
  }
};

enum class VarStatus : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kFreeNonbasic,  // free variable parked at 0
};

/// Internal minimization problem: min c^T x, A x = b, lo <= x <= hi.
/// Columns 0..n_user-1 are the model's, then one slack per row, then one
/// artificial per row (appended by the solver).
class SimplexSolver {
 public:
  SimplexSolver(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {
    obj_sign_ = model.objective_sense() == Objective::kMaximize ? -1.0 : 1.0;
    build_standard_form();
    if (opt_.max_iters < 0) {
      opt_.max_iters = 2000 + 200 * static_cast<std::int64_t>(m_ + n_);
    }
  }

  LpSolution run() {
    // Flush the locally-accumulated perf counters exactly once, on every
    // exit path out of the solve.
    struct CounterFlush {
      SimplexSolver& s;
      ~CounterFlush() { s.flush_counters(); }
    } flush{*this};

    LpSolution out;
    out.x.assign(n_user_, 0.0);
    out.duals.assign(m_, 0.0);
    out.reduced_costs.assign(n_user_, 0.0);

    init_nonbasic_positions();

    // Warm start: adopt a hinted basis from a related solve when it is
    // square, factorizable and primal feasible — phase 1 is skipped.  A
    // rejected hint either cold-starts or (factorizable but infeasible)
    // leaves the repaired near-feasible point for a short phase 1.
    bool warm = false;
    if (opt_.warm_positions != nullptr && !opt_.warm_positions->empty()) {
      if (faultinject::should_fail(faultinject::Site::kWarmStartReject)) {
        init_nonbasic_positions();  // injected: hint treated as invalid
        ++warm_fallbacks_;
      } else if (try_warm_start()) {
        warm = true;
        ++warm_starts_;
      } else {
        ++warm_fallbacks_;
      }
    }

    // Degenerate pivot chains can, very rarely, walk the factorization
    // into an (effectively) singular basis.  Recovery is a soft restart:
    // keep every variable's current nonbasic position (the progress made
    // so far), park basic variables at their nearest bound, rebuild the
    // artificial basis and redo phase 1 from there.
    constexpr int kMaxRestarts = 3;
    SolverStatus p2 = SolverStatus::kNumericalIssue;
    for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
      if (!warm) {
        if (attempt > 0) {
          CUBISG_LOG(LogLevel::kInfo)
              << "simplex: soft restart " << attempt
              << " after numeric issue";
          ++restarts_;
          park_all_at_bounds();
        }
        reset_artificial_basis();

        // Phase 1: minimize the sum of artificials.
        std::vector<double> phase1_cost(n_, 0.0);
        for (int j = art_begin_; j < n_; ++j) phase1_cost[j] = 1.0;
        SolverStatus p1 = run_phase(phase1_cost, /*phase1=*/true);
        if (is_budget_stop(p1)) {
          // Deadline/cancel/iteration cap mid-phase-1: there is no primal
          // feasible iterate yet, so only the status is meaningful.
          out.status = p1;
          out.iterations = iterations_;
          return out;
        }
        if (p1 != SolverStatus::kOptimal) {
          // kUnbounded cannot legitimately happen in phase 1 (objective is
          // bounded below by zero): treat as numeric trouble and restart.
          continue;
        }
        double art_sum = 0.0;
        for (int j = art_begin_; j < n_; ++j) art_sum += x_[j];
        if (art_sum > opt_.feas_tol * (1.0 + bnorm_) * 10.0) {
          out.status = SolverStatus::kInfeasible;
          out.iterations = iterations_;
          return out;
        }
        // Pin artificials to zero for phase 2.
        for (int j = art_begin_; j < n_; ++j) {
          lo_[j] = 0.0;
          hi_[j] = 0.0;
          x_[j] = 0.0;
          if (status_[j] != VarStatus::kBasic) {
            status_[j] = VarStatus::kAtLower;
          }
        }
      }
      warm = false;  // any retry after this point cold-starts

      // Phase 2: the real objective.
      p2 = run_phase(c_, /*phase1=*/false);
      out.iterations = iterations_;
      if (p2 == SolverStatus::kNumericalIssue) continue;

      // Extract primal values in the user's column order.
      for (int j = 0; j < n_user_; ++j) out.x[j] = x_[j];
      const double violation = model_.max_violation(out.x);
      if (p2 == SolverStatus::kOptimal && violation > 1e-6) {
        CUBISG_LOG(LogLevel::kWarn)
            << "simplex: optimal basis violates model by " << violation;
        p2 = SolverStatus::kNumericalIssue;
        continue;
      }
      out.objective = model_.objective_value(out.x);
      // Undo the row scaling: the scaled problem is (SA) x = Sb, so the
      // original dual is y = S y'.
      for (int r = 0; r < m_; ++r) {
        out.duals[r] = obj_sign_ * y_[r] * row_scale_[r];
      }
      for (int j = 0; j < n_user_; ++j) {
        out.reduced_costs[j] = obj_sign_ * d_[j];
      }
      out.positions.resize(n_user_ + m_);
      for (int j = 0; j < n_user_ + m_; ++j) {
        switch (status_[j]) {
          case VarStatus::kBasic:
            out.positions[j] = VarPosition::kBasic;
            break;
          case VarStatus::kAtLower:
            out.positions[j] = VarPosition::kAtLower;
            break;
          case VarStatus::kAtUpper:
            out.positions[j] = VarPosition::kAtUpper;
            break;
          case VarStatus::kFreeNonbasic:
            out.positions[j] = VarPosition::kFree;
            break;
        }
      }
      out.status = p2;
      return out;
    }
    out.status = SolverStatus::kNumericalIssue;
    out.iterations = iterations_;
    return out;
  }

 private:
  // ---- standard-form construction -------------------------------------

  void build_standard_form() {
    model_.validate();
    n_user_ = model_.num_cols();
    m_ = model_.num_rows();
    const int n_slack = m_;
    n_ = n_user_ + n_slack;  // artificials appended later
    art_begin_ = n_;

    cols_.assign(n_, {});
    c_.assign(n_, 0.0);
    lo_.assign(n_, 0.0);
    hi_.assign(n_, 0.0);
    b_.assign(m_, 0.0);

    for (int j = 0; j < n_user_; ++j) {
      c_[j] = obj_sign_ * model_.col_objective(j);
      lo_[j] = model_.col_lower(j);
      hi_[j] = model_.col_upper(j);
    }
    // Row equilibration: scale each row to unit max magnitude (powers of
    // two, so the scaling itself is exact).  The CUBIS MILPs mix big-M
    // coefficients (~1e2) with attractiveness slopes (~1e-4) in one matrix;
    // without scaling, degenerate pivots on such rows can produce
    // numerically singular bases.
    row_scale_.assign(m_, 1.0);
    for (int r = 0; r < m_; ++r) {
      double maxabs = 0.0;
      for (const RowEntry& e : model_.row_entries(r)) {
        maxabs = std::max(maxabs, std::abs(e.value));
      }
      if (maxabs > 0.0) {
        row_scale_[r] = std::exp2(-std::round(std::log2(maxabs)));
      }
    }
    for (int r = 0; r < m_; ++r) {
      const double s_r = row_scale_[r];
      b_[r] = s_r * model_.row_rhs(r);
      for (const RowEntry& e : model_.row_entries(r)) {
        if (e.value != 0.0) cols_[e.col].push_back({r, s_r * e.value});
      }
      const int s = n_user_ + r;
      cols_[s].push_back({r, s_r});
      switch (model_.row_sense(r)) {
        case Sense::kLe:
          lo_[s] = 0.0;
          hi_[s] = kInfD;
          break;
        case Sense::kGe:
          lo_[s] = -kInfD;
          hi_[s] = 0.0;
          break;
        case Sense::kEq:
          lo_[s] = 0.0;
          hi_[s] = 0.0;
          break;
      }
    }
    bnorm_ = 0.0;
    for (double v : b_) bnorm_ = std::max(bnorm_, std::abs(v));
  }

  void init_nonbasic_positions() {
    status_.assign(n_, VarStatus::kAtLower);
    x_.assign(n_, 0.0);
    for (int j = 0; j < n_; ++j) {
      if (std::isfinite(lo_[j])) {
        status_[j] = VarStatus::kAtLower;
        x_[j] = lo_[j];
      } else if (std::isfinite(hi_[j])) {
        status_[j] = VarStatus::kAtUpper;
        x_[j] = hi_[j];
      } else {
        status_[j] = VarStatus::kFreeNonbasic;
        x_[j] = 0.0;
      }
    }
  }

  /// Attempts to adopt the hinted basis: positions for user columns and
  /// slacks, with exactly m_ basic entries forming a nonsingular, primal
  /// feasible basis under the CURRENT bounds.  Returns false (leaving the
  /// solver in its cold-start state) on any mismatch.
  bool try_warm_start() {
    const std::vector<VarPosition>& hint = *opt_.warm_positions;
    if (static_cast<int>(hint.size()) != n_user_ + m_) return false;
    // Any failure below must leave the solver in a clean cold-start state.
    auto bail = [this]() {
      init_nonbasic_positions();
      return false;
    };

    std::vector<int> hinted_basic;
    hinted_basic.reserve(m_);
    for (int j = 0; j < n_user_ + m_; ++j) {
      switch (hint[j]) {
        case VarPosition::kBasic:
          hinted_basic.push_back(j);
          break;
        case VarPosition::kAtLower:
          if (!std::isfinite(lo_[j])) return bail();
          status_[j] = VarStatus::kAtLower;
          x_[j] = lo_[j];
          break;
        case VarPosition::kAtUpper:
          if (!std::isfinite(hi_[j])) return bail();
          status_[j] = VarStatus::kAtUpper;
          x_[j] = hi_[j];
          break;
        case VarPosition::kFree:
          status_[j] = VarStatus::kFreeNonbasic;
          x_[j] = 0.0;
          break;
      }
    }
    if (static_cast<int>(hinted_basic.size()) != m_) return bail();

    // Factor the hinted basis and check primal feasibility.
    basic_ = hinted_basic;
    for (int j : basic_) status_[j] = VarStatus::kBasic;
    Matrix bmat(m_, m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      for (const auto& [r, v] : cols_[basic_[i]]) bmat(r, i) = v;
    }
    LuFactorization lu(bmat);
    if (lu.is_singular()) return bail();
    std::vector<double> rhs = b_;
    for (int j = 0; j < n_; ++j) {
      if (status_[j] == VarStatus::kBasic || x_[j] == 0.0) continue;
      for (const auto& [r, v] : cols_[j]) rhs[r] -= v * x_[j];
    }
    const std::vector<double> xb = lu.solve(rhs);
    const double tol = 1e-7 * (1.0 + bnorm_);
    bool feasible = true;
    for (int i = 0; i < m_; ++i) {
      const int bj = basic_[i];
      if (xb[i] < lo_[bj] - tol || xb[i] > hi_[bj] + tol) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      // Repair instead of a full reset: the hint's nonbasic positions are
      // kept and the hinted basics are parked at the bound nearest their
      // solved values, so phase 1 restarts from the small residual of a
      // near-feasible point (typically a handful of pivots) rather than
      // from scratch.  Bound patches between rounds are the usual cause.
      for (int i = 0; i < m_; ++i) {
        const int bj = basic_[i];
        x_[bj] = std::clamp(xb[i], lo_[bj], hi_[bj]);
      }
      park_all_at_bounds();
      return false;
    }
    for (int i = 0; i < m_; ++i) x_[basic_[i]] = xb[i];
    return true;
  }

  /// Parks every non-artificial variable at its nearest finite bound (free
  /// variables at 0) so a fresh artificial basis can be formed.  Used by
  /// the soft-restart path; most variables keep the bound they already sit
  /// at, preserving the progress of earlier iterations.
  void park_all_at_bounds() {
    for (int j = 0; j < art_begin_; ++j) {
      const bool has_lo = std::isfinite(lo_[j]);
      const bool has_hi = std::isfinite(hi_[j]);
      if (has_lo && has_hi) {
        const bool nearer_hi = std::abs(x_[j] - hi_[j]) <
                               std::abs(x_[j] - lo_[j]);
        status_[j] = nearer_hi ? VarStatus::kAtUpper : VarStatus::kAtLower;
        x_[j] = nearer_hi ? hi_[j] : lo_[j];
      } else if (has_lo) {
        status_[j] = VarStatus::kAtLower;
        x_[j] = lo_[j];
      } else if (has_hi) {
        status_[j] = VarStatus::kAtUpper;
        x_[j] = hi_[j];
      } else {
        status_[j] = VarStatus::kFreeNonbasic;
        x_[j] = 0.0;
      }
    }
  }

  /// (Re)creates one signed artificial per row so the basis is the
  /// (diagonal, nonsingular) artificial identity for the current nonbasic
  /// positions.  Idempotent: columns are allocated once and reset after.
  void reset_artificial_basis() {
    if (n_ == art_begin_) {
      for (int r = 0; r < m_; ++r) {
        cols_.push_back({{r, 1.0}});
        c_.push_back(0.0);
        lo_.push_back(0.0);
        hi_.push_back(kInfD);
        status_.push_back(VarStatus::kBasic);
        x_.push_back(0.0);
        ++n_;
      }
    }
    // Residual with every original column at its nonbasic position.
    std::vector<double> resid = b_;
    for (int j = 0; j < art_begin_; ++j) {
      if (x_[j] == 0.0) continue;
      for (const auto& [r, v] : cols_[j]) resid[r] -= v * x_[j];
    }
    basic_.assign(m_, -1);
    for (int r = 0; r < m_; ++r) {
      const int a = art_begin_ + r;
      cols_[a] = {{r, resid[r] >= 0.0 ? 1.0 : -1.0}};
      lo_[a] = 0.0;
      hi_[a] = kInfD;
      status_[a] = VarStatus::kBasic;
      x_[a] = std::abs(resid[r]);
      basic_[r] = a;
    }
  }

  // ---- simplex machinery ----------------------------------------------

  /// Runs one phase to optimality with cost vector `cost`, attributing
  /// its iterations to the phase-1 or phase-2 perf counter.
  SolverStatus run_phase(const std::vector<double>& cost, bool phase1) {
    const std::int64_t before = iterations_;
    const SolverStatus st = run_phase_impl(cost);
    (phase1 ? p1_iters_ : p2_iters_) += iterations_ - before;
    return st;
  }

  /// Returns kOptimal, kUnbounded, kIterLimit, kDeadlineExceeded,
  /// kCancelled or kNumericalIssue.
  SolverStatus run_phase_impl(const std::vector<double>& cost) {
    std::int64_t degen_streak = 0;
    bool bland = opt_.force_bland;
    // Product-form-of-inverse: the basis is factorized only every
    // kRefactorInterval pivots; in between, solves go through the LU of
    // the reference basis plus one eta transform per pivot, and the basic
    // values x_B are updated incrementally (O(m) per pivot instead of the
    // O(m^3) refactorization).
    bool need_factor = true;
    for (;;) {
      // Cooperative stop point: the pivot boundary is the finest-grained
      // safe point in the solver — every invariant (basis, positions,
      // iterate) is consistent here, so a budget trip unwinds cleanly
      // with the current iterate.
      if (opt_.budget != nullptr) {
        if (const auto stop = opt_.budget->exceeded()) return *stop;
      }
      if (faultinject::should_fail(faultinject::Site::kSimplexDeadline)) {
        return SolverStatus::kDeadlineExceeded;
      }
      if (iterations_ >= opt_.max_iters) return SolverStatus::kIterLimit;
      ++iterations_;
      if (opt_.budget != nullptr) opt_.budget->charge_iterations(1);

      if (need_factor || etas_.size() >= opt_.refactor_interval) {
        if (!refactorize()) return SolverStatus::kNumericalIssue;
        need_factor = false;
      }

      // Duals y = B^{-T} c_B and reduced costs for the CURRENT basis.
      {
        std::vector<double> cb(m_);
        for (int i = 0; i < m_; ++i) cb[i] = cost[basic_[i]];
        y_ = btran(std::move(cb));
        d_.assign(n_, 0.0);
        for (int j = 0; j < n_; ++j) {
          if (status_[j] == VarStatus::kBasic) continue;
          double dj = cost[j];
          for (const auto& [r, v] : cols_[j]) dj -= y_[r] * v;
          d_[j] = dj;
        }
      }

      // Entering variable.
      int enter = -1;
      double enter_dir = 0.0;
      double best_score = opt_.opt_tol;
      for (int j = 0; j < n_; ++j) {
        if (status_[j] == VarStatus::kBasic) continue;
        if (hi_[j] - lo_[j] <= 0.0) continue;  // fixed: cannot move
        const double dj = d_[j];
        double dir = 0.0;
        if (status_[j] == VarStatus::kAtLower && dj < -opt_.opt_tol) {
          dir = 1.0;
        } else if (status_[j] == VarStatus::kAtUpper && dj > opt_.opt_tol) {
          dir = -1.0;
        } else if (status_[j] == VarStatus::kFreeNonbasic &&
                   std::abs(dj) > opt_.opt_tol) {
          dir = dj < 0.0 ? 1.0 : -1.0;
        } else {
          continue;
        }
        if (bland) {
          enter = j;
          enter_dir = dir;
          break;  // smallest index
        }
        if (std::abs(dj) > best_score) {
          best_score = std::abs(dj);
          enter = j;
          enter_dir = dir;
        }
      }
      if (enter < 0) return SolverStatus::kOptimal;

      // Direction through the basis: B w = A_enter (FTRAN).
      std::vector<double> a_col(m_, 0.0);
      for (const auto& [r, v] : cols_[enter]) a_col[r] = v;
      std::vector<double> w = ftran(a_col);
      {
        // Validate the direction: an ill-conditioned basis can return a w
        // whose pivot entries are pure noise, and pivoting on noise is how
        // a basis turns singular.  ||B w - A_enter|| flags that upfront.
        std::vector<double> bw(m_, 0.0);
        for (int i = 0; i < m_; ++i) {
          if (w[i] == 0.0) continue;
          for (const auto& [r, v] : cols_[basic_[i]]) bw[r] += v * w[i];
        }
        double resid = 0.0, a_norm = 0.0;
        for (int r = 0; r < m_; ++r) {
          resid = std::max(resid, std::abs(bw[r] - a_col[r]));
          a_norm = std::max(a_norm, std::abs(a_col[r]));
        }
        if (resid > 1e-7 * (1.0 + a_norm)) {
          CUBISG_LOG(LogLevel::kWarn)
              << "simplex: direction residual " << resid;
          return SolverStatus::kNumericalIssue;
        }
      }

      // Ratio test (two passes, Harris-style).  Moving x_enter by t*step
      // changes x_B by -t*step*w.  Pass 1 finds the tightest limit; pass 2
      // picks, among rows whose limit ties within a tolerance, the one with
      // the largest |pivot| — this keeps the next basis well conditioned.
      // Pivot eligibility is relative to |w|: entries below the noise
      // floor of the direction solve must not become pivots, or the next
      // basis is (numerically) singular.
      double w_inf = 0.0;
      for (double wi : w) w_inf = std::max(w_inf, std::abs(wi));
      const double kPivotEligible = 1e-9 * (1.0 + w_inf);
      const double span = hi_[enter] - lo_[enter];
      double min_limit = std::isfinite(span) ? span : kInfD;  // bound flip
      for (int i = 0; i < m_; ++i) {
        const int bj = basic_[i];
        const double delta = -enter_dir * w[i];  // d x_B[i] / d step
        double limit = kInfD;
        if (delta < -kPivotEligible) {
          if (std::isfinite(lo_[bj])) limit = (x_[bj] - lo_[bj]) / (-delta);
        } else if (delta > kPivotEligible) {
          if (std::isfinite(hi_[bj])) limit = (hi_[bj] - x_[bj]) / delta;
        } else {
          continue;
        }
        if (limit < min_limit) min_limit = std::max(0.0, limit);
      }

      double step = min_limit;
      int leave_row = -1;
      bool leave_to_upper = false;
      double best_pivot = 0.0;
      const double tie_tol = 1e-9 * (1.0 + std::abs(min_limit));
      for (int i = 0; i < m_; ++i) {
        const int bj = basic_[i];
        const double delta = -enter_dir * w[i];
        double limit = kInfD;
        bool to_upper = false;
        if (delta < -kPivotEligible) {
          if (std::isfinite(lo_[bj])) limit = (x_[bj] - lo_[bj]) / (-delta);
        } else if (delta > kPivotEligible) {
          if (std::isfinite(hi_[bj])) {
            limit = (hi_[bj] - x_[bj]) / delta;
            to_upper = true;
          }
        } else {
          continue;
        }
        if (limit > min_limit + tie_tol) continue;
        const bool better =
            bland ? (leave_row < 0 || bj < basic_[leave_row])
                  : (std::abs(delta) > best_pivot);
        if (better) {
          best_pivot = std::abs(delta);
          leave_row = i;
          leave_to_upper = to_upper;
          step = std::max(0.0, std::min(step, limit));
        }
      }

      if (!std::isfinite(step)) {
        // No blocking bound anywhere: the phase objective is unbounded.
        return SolverStatus::kUnbounded;
      }

      if (step < 1e-11) {
        ++degenerate_;
        ++degen_streak;
        if (degen_streak > 4 * static_cast<std::int64_t>(m_) + 64) {
          bland = true;  // anti-cycling from now on
        }
      } else {
        degen_streak = 0;
      }

      if (leave_row < 0) {
        // Bound flip of the entering variable: no basis change, but the
        // basic values shift by -t*step*w.
        ++bound_flips_;
        for (int i = 0; i < m_; ++i) {
          x_[basic_[i]] -= enter_dir * step * w[i];
        }
        x_[enter] = enter_dir > 0.0 ? hi_[enter] : lo_[enter];
        status_[enter] =
            enter_dir > 0.0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        continue;
      }

      // Pivot: `enter` becomes basic, the blocking basic leaves to a bound.
      const int leave = basic_[leave_row];
      dbg_enter_ = enter;
      dbg_leave_ = leave;
      dbg_step_ = step;
      if (std::getenv("CUBISG_DEBUG_SINGULAR")) {
        dbg_trace_.push_back("it=" + std::to_string(iterations_) +
                             " enter=" + std::to_string(enter) +
                             " leave=" + std::to_string(leave) +
                             " row=" + std::to_string(leave_row) +
                             " step=" + std::to_string(step) +
                             " pivot=" + std::to_string(w[leave_row]) +
                             " winf=" + std::to_string(w_inf) +
                             " elig=" + std::to_string(kPivotEligible));
        if (dbg_trace_.size() > 8) dbg_trace_.erase(dbg_trace_.begin());
      }
      for (int i = 0; i < m_; ++i) {
        if (i == leave_row) continue;
        x_[basic_[i]] -= enter_dir * step * w[i];
      }
      x_[enter] += enter_dir * step;
      x_[leave] = leave_to_upper ? hi_[leave] : lo_[leave];
      status_[leave] =
          leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      status_[enter] = VarStatus::kBasic;
      basic_[leave_row] = enter;
      ++pivots_;
      etas_.push_back({leave_row, w});
      if (leave >= art_begin_) {
        // An artificial that leaves the basis is never allowed back.
        lo_[leave] = 0.0;
        hi_[leave] = 0.0;
        x_[leave] = 0.0;
        status_[leave] = VarStatus::kAtLower;
      }
    }
  }

  /// Rebuilds the basis factorization from scratch, recomputes the basic
  /// primal values exactly, and clears the eta file.
  bool refactorize() {
    ++refactorizations_;
    Matrix bmat(m_, m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      for (const auto& [r, v] : cols_[basic_[i]]) {
        bmat(r, i) = v;
      }
    }
    lu_.emplace(bmat);
    if (lu_->is_singular()) {
      CUBISG_LOG(LogLevel::kWarn) << "simplex: singular basis";
      if (const char* path = std::getenv("CUBISG_DUMP_BASIS")) {
        if (FILE* f = std::fopen(path, "w")) {
          std::fprintf(f, "%d\n", m_);
          for (int i = 0; i < m_; ++i) std::fprintf(f, "%d ", basic_[i]);
          std::fprintf(f, "\n");
          for (int r = 0; r < m_; ++r) {
            for (int cc = 0; cc < m_; ++cc) {
              std::fprintf(f, "%.17g ", bmat(r, cc));
            }
            std::fprintf(f, "\n");
          }
          std::fclose(f);
        }
      }
      if (std::getenv("CUBISG_DEBUG_SINGULAR")) {
        std::string cols_desc;
        std::vector<int> sorted = basic_;
        std::sort(sorted.begin(), sorted.end());
        for (int i = 0; i + 1 < m_; ++i) {
          if (sorted[i] == sorted[i + 1]) {
            cols_desc += " DUP:" + std::to_string(sorted[i]);
          }
        }
        CUBISG_LOG(LogLevel::kWarn)
            << "simplex: iter=" << iterations_ << " m=" << m_
            << " dup_check=[" << cols_desc << "] last_enter=" << dbg_enter_
            << " last_leave=" << dbg_leave_ << " last_step=" << dbg_step_;
        for (const std::string& t : dbg_trace_) {
          CUBISG_LOG(LogLevel::kWarn) << "  trace " << t;
        }
      }
      return false;
    }

    // x_B = B^{-1} (b - N x_N)
    std::vector<double> rhs = b_;
    for (int j = 0; j < n_; ++j) {
      if (status_[j] == VarStatus::kBasic || x_[j] == 0.0) continue;
      for (const auto& [r, v] : cols_[j]) rhs[r] -= v * x_[j];
    }
    std::vector<double> xb = lu_->solve(rhs);
    // Guard against an ill-conditioned basis producing an unusable solve:
    // the refined residual must be tiny relative to the right-hand side.
    {
      double rhs_norm = 0.0;
      for (double v : rhs) rhs_norm = std::max(rhs_norm, std::abs(v));
      std::vector<double> check(m_, 0.0);
      for (int i = 0; i < m_; ++i) {
        for (const auto& [r, v] : cols_[basic_[i]]) check[r] += v * xb[i];
      }
      double resid = 0.0;
      for (int r = 0; r < m_; ++r) {
        resid = std::max(resid, std::abs(check[r] - rhs[r]));
      }
      if (resid > 1e-6 * (1.0 + rhs_norm)) {
        CUBISG_LOG(LogLevel::kWarn)
            << "simplex: basis solve residual " << resid;
        return false;
      }
    }
    for (int i = 0; i < m_; ++i) x_[basic_[i]] = xb[i];
    etas_.clear();
    return true;
  }

  /// FTRAN: solves B v = rhs through the reference LU plus the eta file.
  std::vector<double> ftran(std::vector<double> v) const {
    v = lu_->solve(v);
    for (const Eta& e : etas_) {
      const double pivot_val = v[e.row] / e.w[e.row];
      for (int i = 0; i < m_; ++i) {
        if (i != e.row) v[i] -= e.w[i] * pivot_val;
      }
      v[e.row] = pivot_val;
    }
    return v;
  }

  /// BTRAN: solves B^T v = rhs (eta transposes in reverse, then LU^T).
  std::vector<double> btran(std::vector<double> v) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double dot_excl = 0.0;
      for (int i = 0; i < m_; ++i) {
        if (i != it->row) dot_excl += it->w[i] * v[i];
      }
      v[it->row] = (v[it->row] - dot_excl) / it->w[it->row];
    }
    return lu_->solve_transposed(v);
  }

  const Model& model_;
  SimplexOptions opt_;
  double obj_sign_ = 1.0;

  int n_user_ = 0;  ///< model columns
  int m_ = 0;       ///< rows
  int n_ = 0;       ///< all internal columns (user + slack + artificial)
  int art_begin_ = 0;
  double bnorm_ = 0.0;

  std::vector<std::vector<std::pair<int, double>>> cols_;
  std::vector<double> c_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<double> b_;
  std::vector<double> row_scale_;  ///< power-of-two row equilibration

  std::vector<VarStatus> status_;
  std::vector<int> basic_;
  std::vector<double> x_;
  std::vector<double> y_;  ///< duals of the last refactorization
  std::vector<double> d_;  ///< reduced costs of the last refactorization
  std::optional<LuFactorization> lu_;
  struct Eta {
    int row;
    std::vector<double> w;  ///< pivot-time direction (column of E)
  };
  std::vector<Eta> etas_;  ///< updates since the last refactorization
  std::int64_t iterations_ = 0;

  // Perf-counter accumulators (plain ints in the hot loop; flushed to the
  // sharded registry counters once per solve by CounterFlush).
  std::int64_t pivots_ = 0;
  std::int64_t degenerate_ = 0;
  std::int64_t bound_flips_ = 0;
  std::int64_t p1_iters_ = 0;
  std::int64_t p2_iters_ = 0;
  std::int64_t refactorizations_ = 0;
  std::int64_t restarts_ = 0;
  std::int64_t warm_starts_ = 0;
  std::int64_t warm_fallbacks_ = 0;

 public:
  void flush_counters() {
    SimplexMetrics& m = SimplexMetrics::get();
    if (pivots_ != 0) m.pivots.add(pivots_);
    if (degenerate_ != 0) m.degenerate.add(degenerate_);
    if (bound_flips_ != 0) m.bound_flips.add(bound_flips_);
    if (p1_iters_ != 0) m.phase1_iters.add(p1_iters_);
    if (p2_iters_ != 0) m.phase2_iters.add(p2_iters_);
    if (refactorizations_ != 0) {
      m.refactorizations.add(refactorizations_);
    }
    if (restarts_ != 0) m.soft_restarts.add(restarts_);
    if (warm_starts_ != 0) m.warm_starts.add(warm_starts_);
    if (warm_fallbacks_ != 0) m.warm_fallbacks.add(warm_fallbacks_);
    pivots_ = degenerate_ = bound_flips_ = 0;
    p1_iters_ = p2_iters_ = refactorizations_ = restarts_ = 0;
    warm_starts_ = warm_fallbacks_ = 0;
  }

 private:
  int dbg_enter_ = -1;
  int dbg_leave_ = -1;
  double dbg_step_ = 0.0;
  std::vector<std::string> dbg_trace_;
};

/// Copy of `model` with every finite, non-fixed column bound relaxed
/// outward by a deterministic per-column jitter of magnitude ~`scale`.
/// Breaks the degenerate ties that can drive pivoting into a singular
/// basis; the caller clamps the result back into the original bounds and
/// re-verifies it against the original model before trusting it.
Model perturbed_copy(const Model& model, double scale) {
  Model m = model;
  for (int j = 0; j < m.num_cols(); ++j) {
    double lo = m.col_lower(j);
    double hi = m.col_upper(j);
    if (lo >= hi) continue;  // fixed columns keep their exact value
    // Knuth-hash jitter in [0.5, 1.5): column-dependent so no two bounds
    // move by the same amount, deterministic so reruns reproduce.
    const double jitter =
        0.5 + static_cast<double>(
                  (static_cast<std::uint32_t>(j) * 2654435761u) & 1023u) /
                  1024.0;
    const double d = scale * jitter;
    if (std::isfinite(lo)) lo -= d * (1.0 + std::abs(lo));
    if (std::isfinite(hi)) hi += d * (1.0 + std::abs(hi));
    m.set_col_bounds(j, lo, hi);
  }
  return m;
}

}  // namespace

LpSolution solve_lp(const Model& model, const SimplexOptions& options) {
  obs::TraceSpan span("simplex.solve");
  SimplexMetrics::get().solves.add(1);
  LpSolution sol = SimplexSolver(model, options).run();
  if (sol.status != SolverStatus::kNumericalIssue || options.force_bland) {
    return sol;
  }

  // Numeric-failure recovery ladder.  Each rung is strictly more cautious
  // (and slower) than the last; the first non-kNumericalIssue verdict
  // wins.  Every rung counts toward solve.numeric_retries_total.
  std::int64_t spent = sol.iterations;
  SimplexOptions base = options;
  base.force_bland = true;        // maximally cycle-robust pivoting
  base.refactor_interval = 1;     // fresh LU every pivot
  base.warm_positions = nullptr;  // the hinted basis may be the problem

  // Rung 1: same model, Bland's rule + refactorize-every-pivot.
  {
    SimplexMetrics::get().numeric_retries.add(1);
    LpSolution again = SimplexSolver(model, base).run();
    spent += again.iterations;
    if (again.status != SolverStatus::kNumericalIssue) {
      again.iterations = spent;
      return again;
    }
  }

  // Rungs 2-3: relax the column bounds outward to break degenerate ties,
  // solve conservatively, then clamp the iterate back into the original
  // bounds.  Accepted only if the clamped point still satisfies the
  // ORIGINAL model; infeasibility of the relaxation proves infeasibility
  // of the original (the feasible set only grew).  Rung 3 widens the
  // perturbation and tightens the pivot-eligibility tolerance.
  for (int rung = 2; rung <= 3; ++rung) {
    SimplexMetrics::get().numeric_retries.add(1);
    SimplexOptions opts = base;
    double scale = 1e-7;
    if (rung == 3) {
      scale = 1e-5;
      opts.opt_tol = std::max(opts.opt_tol * 100.0, 1e-7);
    }
    LpSolution again = SimplexSolver(perturbed_copy(model, scale), opts).run();
    spent += again.iterations;
    if (again.status == SolverStatus::kNumericalIssue) continue;
    if (again.status == SolverStatus::kOptimal) {
      for (int j = 0; j < model.num_cols(); ++j) {
        again.x[j] =
            std::clamp(again.x[j], model.col_lower(j), model.col_upper(j));
      }
      if (model.max_violation(again.x) > 1e-6) continue;  // unusable rung
      again.objective = model.objective_value(again.x);
    }
    again.iterations = spent;
    return again;
  }
  sol.iterations = spent;
  return sol;  // ladder exhausted: kNumericalIssue stands
}

}  // namespace cubisg::lp

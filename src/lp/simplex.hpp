// Two-phase bounded-variable primal simplex.
//
// Standard form used internally: minimize c^T x subject to A x = b with
// per-variable bounds l <= x <= u (either side may be infinite).  User rows
// are converted by appending one slack per row; phase 1 appends signed
// artificial columns and minimizes their sum.  The basis is refactorized
// (dense LU) every iteration — basis matrices in this library are small
// (tens of rows), so simplicity and numerical robustness win over update
// formulas.  Dantzig pricing with an automatic switch to Bland's rule under
// degeneracy guarantees termination.
#pragma once

#include <cstdint>
#include <vector>

#include "common/budget.hpp"
#include "common/errors.hpp"
#include "common/tolerances.hpp"
#include "lp/model.hpp"

namespace cubisg::lp {

/// Where a column sits in a (final or hinted) basis configuration.
/// Covers the model's own columns followed by one slack per row.
enum class VarPosition : std::uint8_t {
  kAtLower,
  kAtUpper,
  kBasic,
  kFree,  ///< free nonbasic, parked at 0
};

/// A reusable basis handle: holds the final `positions` of one solve so a
/// later solve of a patched (same-shape) model can start from them via
/// SimplexOptions::warm_positions.  Empty until first populated; owners
/// (e.g. the CUBIS MilpStepCache) keep one handle alive across binary-
/// search rounds.
struct WarmStart {
  std::vector<VarPosition> positions;
  bool empty() const { return positions.empty(); }
};

/// Options controlling a simplex solve.
struct SimplexOptions {
  double feas_tol = Tol::kFeas;   ///< bound/row feasibility tolerance
  double opt_tol = 1e-9;          ///< reduced-cost optimality tolerance
  std::int64_t max_iters = -1;    ///< -1 = automatic (scales with size)
  /// Use Bland's rule from the first iteration (slow but maximally
  /// cycle/degeneracy robust).  solve_lp retries with this automatically
  /// when the default pricing runs into numerical trouble.
  bool force_bland = false;
  /// Pivots between basis refactorizations (the eta-file length).  Smaller
  /// = more numerically conservative; larger = faster on well-behaved
  /// models.  1 reproduces the refactorize-every-iteration behavior.
  std::size_t refactor_interval = 64;
  /// Optional warm start: the positions (num_cols + num_rows entries —
  /// columns then slacks) from a previous solve of a nearby model, e.g.
  /// the parent node in branch and bound.  If the hinted basis is square,
  /// factorizable and primal feasible under the current bounds, phase 1 is
  /// skipped entirely; otherwise the solver silently cold-starts.
  const std::vector<VarPosition>* warm_positions = nullptr;
  /// Optional shared budget/cancellation token.  The pivot loop polls it
  /// and returns kDeadlineExceeded / kCancelled / kIterLimit with the
  /// current iterate when it trips; null = unbounded (no per-pivot cost).
  const SolveBudget* budget = nullptr;
};

/// Result of an LP solve.
struct LpSolution {
  SolverStatus status = SolverStatus::kNumericalIssue;
  /// Objective value in the model's own sense (only when kOptimal or a
  /// limit status with a feasible iterate).
  double objective = 0.0;
  /// Primal values for the model's columns.
  std::vector<double> x;
  /// Shadow prices per row: d objective / d rhs, in the model's own sense.
  std::vector<double> duals;
  /// Reduced costs per column (internal minimization sense converted back).
  std::vector<double> reduced_costs;
  /// Final basis configuration (num_cols + num_rows entries — columns then
  /// slacks); feed to SimplexOptions::warm_positions of a related solve.
  std::vector<VarPosition> positions;
  std::int64_t iterations = 0;

  bool optimal() const { return status == SolverStatus::kOptimal; }
};

/// Solves `model` as a pure LP (integrality marks are ignored).
LpSolution solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace cubisg::lp

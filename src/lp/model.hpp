// Linear / mixed-integer model builder.
//
// One builder serves both the LP solver (which ignores integrality marks)
// and the MILP branch-and-bound (which reads them).  Columns carry bounds
// and an objective coefficient; rows carry a sense and a right-hand side;
// the constraint matrix is stored sparsely per row and mirrored per column
// on demand.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace cubisg::lp {

/// Row sense for a linear constraint.
enum class Sense { kLe, kGe, kEq };

/// Optimization direction.
enum class Objective { kMinimize, kMaximize };

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// A sparse (column, coefficient) entry of a row.
struct RowEntry {
  int col;
  double value;
};

/// Linear (or mixed-integer) optimization model.
class Model {
 public:
  /// Adds a column with bounds [lo, hi] and objective coefficient `obj`.
  /// Returns its index.  `lo` may be -inf and `hi` +inf.
  int add_col(std::string name, double lo, double hi, double obj);

  /// Adds an empty row `sense rhs`; fill coefficients with set_coeff.
  int add_row(std::string name, Sense sense, double rhs);

  /// Sets (or overwrites) the coefficient of `col` in `row`.
  void set_coeff(int row, int col, double value);

  /// Marks a column integral (binary when its bounds are [0,1]).
  void set_integer(int col, bool is_integer = true);

  void set_objective_sense(Objective sense) { obj_sense_ = sense; }
  Objective objective_sense() const { return obj_sense_; }

  /// Overwrites a column's bounds (used by branch-and-bound).
  void set_col_bounds(int col, double lo, double hi);

  /// Overwrites a column's objective coefficient (round-to-round model
  /// patching of a cached constraint skeleton).
  void set_col_objective(int col, double obj);

  /// Overwrites a row's right-hand side (model patching).
  void set_row_rhs(int row, double rhs);

  /// Overwrites the value of the `entry`-th coefficient of `row` in
  /// insertion order — O(1), unlike set_coeff's per-call column scan.
  /// The entry's column is unchanged; callers patching a cached skeleton
  /// rely on its deterministic assembly order.
  void set_row_entry_value(int row, std::size_t entry, double value);

  int num_cols() const { return static_cast<int>(cols_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const std::string& col_name(int col) const { return cols_[col].name; }
  const std::string& row_name(int row) const { return rows_[row].name; }
  double col_lower(int col) const { return cols_[col].lo; }
  double col_upper(int col) const { return cols_[col].hi; }
  double col_objective(int col) const { return cols_[col].obj; }
  bool col_is_integer(int col) const { return cols_[col].integer; }
  Sense row_sense(int row) const { return rows_[row].sense; }
  double row_rhs(int row) const { return rows_[row].rhs; }
  const std::vector<RowEntry>& row_entries(int row) const {
    return rows_[row].entries;
  }

  /// True when any column is marked integral.
  bool has_integers() const;

  /// Evaluates the objective (in the model's own sense) at `x`.
  double objective_value(const std::vector<double>& x) const;

  /// Evaluates row activity a_r^T x.
  double row_activity(int row, const std::vector<double>& x) const;

  /// Max violation of rows and bounds at `x` (0 when feasible).
  double max_violation(const std::vector<double>& x) const;

  /// Throws InvalidModelError when bounds are inverted, coefficients are
  /// non-finite, or an index is out of range.
  void validate() const;

  /// Serializes the model in CPLEX LP format (for debugging and for
  /// interoperability with external solvers).
  std::string to_lp_format() const;

 private:
  struct Col {
    std::string name;
    double lo;
    double hi;
    double obj;
    bool integer = false;
  };
  struct Row {
    std::string name;
    Sense sense;
    double rhs;
    std::vector<RowEntry> entries;
  };

  std::vector<Col> cols_;
  std::vector<Row> rows_;
  Objective obj_sense_ = Objective::kMinimize;
};

}  // namespace cubisg::lp

#include "lp/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/errors.hpp"
#include "common/fault_inject.hpp"

namespace cubisg::lp {

namespace {

std::string fmt_double(double v) {
  if (v == kInf) return "inf";
  if (v == -kInf) return "-inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);  // hex float: lossless
  return buf;
}

double parse_double(const std::string& s) {
  if (s == "inf") return kInf;
  if (s == "-inf") return -kInf;
  return std::strtod(s.c_str(), nullptr);
}

}  // namespace

void write_model(std::ostream& os, const Model& model) {
  os << "cubisg-model 1\n";
  os << "sense "
     << (model.objective_sense() == Objective::kMaximize ? "max" : "min")
     << '\n';
  os << "cols " << model.num_cols() << '\n';
  for (int j = 0; j < model.num_cols(); ++j) {
    os << model.col_name(j) << ' ' << fmt_double(model.col_lower(j)) << ' '
       << fmt_double(model.col_upper(j)) << ' '
       << fmt_double(model.col_objective(j)) << ' '
       << (model.col_is_integer(j) ? 1 : 0) << '\n';
  }
  os << "rows " << model.num_rows() << '\n';
  for (int r = 0; r < model.num_rows(); ++r) {
    const char* sense = model.row_sense(r) == Sense::kLe   ? "<="
                        : model.row_sense(r) == Sense::kGe ? ">="
                                                           : "=";
    os << model.row_name(r) << ' ' << sense << ' '
       << fmt_double(model.row_rhs(r)) << ' '
       << model.row_entries(r).size();
    for (const RowEntry& e : model.row_entries(r)) {
      os << ' ' << e.col << ':' << fmt_double(e.value);
    }
    os << '\n';
  }
}

bool save_model(const std::string& path, const Model& model) {
  std::ofstream f(path);
  if (!f) return false;
  write_model(f, model);
  return static_cast<bool>(f);
}

Model read_model(std::istream& is) {
  auto fail = [](const std::string& why) -> Model {
    throw InvalidModelError("read_model: " + why);
  };
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "cubisg-model" || version != 1) {
    return fail("bad header");
  }
  Model m;
  std::string key, val;
  if (!(is >> key >> val) || key != "sense") return fail("missing sense");
  m.set_objective_sense(val == "max" ? Objective::kMaximize
                                     : Objective::kMinimize);
  int ncols = 0;
  if (!(is >> key >> ncols) || key != "cols") return fail("missing cols");
  for (int j = 0; j < ncols; ++j) {
    std::string name, lo, hi, obj;
    int integer = 0;
    if (!(is >> name >> lo >> hi >> obj >> integer)) return fail("bad col");
    const int col =
        m.add_col(name, parse_double(lo), parse_double(hi), parse_double(obj));
    if (integer) m.set_integer(col);
  }
  int nrows = 0;
  if (!(is >> key >> nrows) || key != "rows") return fail("missing rows");
  for (int r = 0; r < nrows; ++r) {
    std::string name, sense, rhs;
    std::size_t entries = 0;
    if (!(is >> name >> sense >> rhs >> entries)) return fail("bad row");
    const Sense s = sense == "<=" ? Sense::kLe
                    : sense == ">=" ? Sense::kGe
                                    : Sense::kEq;
    const int row = m.add_row(name, s, parse_double(rhs));
    for (std::size_t e = 0; e < entries; ++e) {
      std::string entry;
      if (!(is >> entry)) return fail("bad entry");
      const std::size_t colon = entry.find(':');
      if (colon == std::string::npos) return fail("bad entry format");
      m.set_coeff(row, std::stoi(entry.substr(0, colon)),
                  parse_double(entry.substr(colon + 1)));
    }
  }
  return m;
}

Model load_model(const std::string& path) {
  if (faultinject::should_fail(faultinject::Site::kModelIo)) {
    // Injected IO failure: same typed error a vanished/unreadable file
    // produces, so callers exercise their real recovery path.
    throw InvalidModelError("load_model: injected IO failure for " + path);
  }
  std::ifstream f(path);
  if (!f) throw InvalidModelError("load_model: cannot open " + path);
  return read_model(f);
}

}  // namespace cubisg::lp

#include "learning/data_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/errors.hpp"

namespace cubisg::learning {

namespace {
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}
}  // namespace

void write_attack_data(std::ostream& os,
                       const std::vector<AttackObservation>& data) {
  os << "cubisg-attacks 1\n";
  const std::size_t t = data.empty() ? 0 : data.front().coverage.size();
  os << "records " << data.size() << " targets " << t << '\n';
  for (const AttackObservation& obs : data) {
    for (double xi : obs.coverage) os << fmt(xi) << ' ';
    os << obs.target << '\n';
  }
}

std::vector<AttackObservation> read_attack_data(std::istream& is) {
  auto fail = [](const std::string& why) -> std::vector<AttackObservation> {
    throw InvalidModelError("read_attack_data: " + why);
  };
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "cubisg-attacks" || version != 1) {
    return fail("bad header");
  }
  std::string key;
  std::size_t records = 0, targets = 0;
  if (!(is >> key >> records) || key != "records") return fail("records");
  if (!(is >> key >> targets) || key != "targets") return fail("targets");
  std::vector<AttackObservation> data(records);
  for (std::size_t r = 0; r < records; ++r) {
    data[r].coverage.resize(targets);
    for (std::size_t i = 0; i < targets; ++i) {
      std::string v;
      if (!(is >> v)) return fail("truncated record " + std::to_string(r));
      data[r].coverage[i] = std::strtod(v.c_str(), nullptr);
    }
    if (!(is >> data[r].target) || data[r].target >= targets) {
      return fail("bad target in record " + std::to_string(r));
    }
  }
  return data;
}

bool save_attack_data(const std::string& path,
                      const std::vector<AttackObservation>& data) {
  std::ofstream f(path);
  if (!f) return false;
  write_attack_data(f, data);
  return static_cast<bool>(f);
}

std::vector<AttackObservation> load_attack_data(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw InvalidModelError("load_attack_data: cannot open " + path);
  return read_attack_data(f);
}

}  // namespace cubisg::learning

#include "learning/suqr_mle.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/errors.hpp"
#include "common/math_util.hpp"
#include "games/strategy_space.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "parallel/parallel_for.hpp"

namespace cubisg::learning {

namespace {

/// Per-target features (x_i, Ra_i, Pa_i) for one observation.
struct Features {
  double x, ra, pa;
  double score(const behavior::SuqrWeights& w) const {
    return w.w1 * x + w.w2 * ra + w.w3 * pa;
  }
};

/// Log-likelihood, gradient and (negated) Hessian at w over `data`.
struct LlEval {
  double ll = 0.0;
  double grad[3] = {0.0, 0.0, 0.0};
  double neg_hess[3][3] = {{0.0}};
};

LlEval evaluate(const games::SecurityGame& game,
                std::span<const AttackObservation> data,
                const behavior::SuqrWeights& w, double ridge) {
  const std::size_t n = game.num_targets();
  LlEval out;
  std::vector<double> scores(n);
  std::vector<double> probs(n);
  for (const AttackObservation& obs : data) {
    // Scores and softmax probabilities.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& p = game.target(i);
      scores[i] = w.w1 * obs.coverage[i] + w.w2 * p.attacker_reward +
                  w.w3 * p.attacker_penalty;
    }
    const double lse = log_sum_exp(scores);
    for (std::size_t i = 0; i < n; ++i) {
      probs[i] = std::exp(scores[i] - lse);
    }
    out.ll += scores[obs.target] - lse;

    // Feature expectations under the model: grad = f(target) - E[f].
    double ef[3] = {0.0, 0.0, 0.0};
    double eff[3][3] = {{0.0}};
    for (std::size_t i = 0; i < n; ++i) {
      const auto& p = game.target(i);
      const double f[3] = {obs.coverage[i], p.attacker_reward,
                           p.attacker_penalty};
      for (int a = 0; a < 3; ++a) {
        ef[a] += probs[i] * f[a];
        for (int b = 0; b < 3; ++b) eff[a][b] += probs[i] * f[a] * f[b];
      }
    }
    const auto& pt = game.target(obs.target);
    const double ft[3] = {obs.coverage[obs.target], pt.attacker_reward,
                          pt.attacker_penalty};
    for (int a = 0; a < 3; ++a) {
      out.grad[a] += ft[a] - ef[a];
      // -Hessian of the log-likelihood = covariance of features.
      for (int b = 0; b < 3; ++b) {
        out.neg_hess[a][b] += eff[a][b] - ef[a] * ef[b];
      }
    }
  }
  // Ridge term: -ridge/2 * ||w||^2.
  const double wv[3] = {w.w1, w.w2, w.w3};
  for (int a = 0; a < 3; ++a) {
    out.ll -= 0.5 * ridge * wv[a] * wv[a];
    out.grad[a] -= ridge * wv[a];
    out.neg_hess[a][a] += ridge;
  }
  return out;
}

behavior::SuqrWeights step(const behavior::SuqrWeights& w,
                           const double d[3], double t) {
  return {w.w1 + t * d[0], w.w2 + t * d[1], w.w3 + t * d[2]};
}

}  // namespace

SuqrMleResult fit_suqr(const games::SecurityGame& game,
                       std::span<const AttackObservation> data,
                       const SuqrMleOptions& options) {
  if (data.empty()) {
    throw InvalidModelError("fit_suqr: no observations");
  }
  const std::size_t n = game.num_targets();
  for (const AttackObservation& obs : data) {
    if (obs.coverage.size() != n || obs.target >= n) {
      throw InvalidModelError("fit_suqr: observation shape mismatch");
    }
  }

  SuqrMleResult out;
  behavior::SuqrWeights w = options.init;
  LlEval cur = evaluate(game, data, w, options.ridge);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    out.iterations = iter + 1;
    const double gnorm = std::sqrt(cur.grad[0] * cur.grad[0] +
                                   cur.grad[1] * cur.grad[1] +
                                   cur.grad[2] * cur.grad[2]);
    if (gnorm < options.tol * (1.0 + std::abs(cur.ll))) {
      out.converged = true;
      break;
    }
    // Newton direction: solve (-H) d = grad.
    Matrix h(3, 3);
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) h(a, b) = cur.neg_hess[a][b];
    }
    double d[3];
    LuFactorization lu(h);
    if (!lu.is_singular()) {
      const auto sol = lu.solve(std::vector<double>{
          cur.grad[0], cur.grad[1], cur.grad[2]});
      d[0] = sol[0];
      d[1] = sol[1];
      d[2] = sol[2];
    } else {
      d[0] = cur.grad[0];  // gradient fallback
      d[1] = cur.grad[1];
      d[2] = cur.grad[2];
    }
    // Backtracking line search on the concave objective.
    double t = 1.0;
    bool improved = false;
    for (int bt = 0; bt < 40; ++bt) {
      behavior::SuqrWeights trial = step(w, d, t);
      LlEval te = evaluate(game, data, trial, options.ridge);
      if (te.ll > cur.ll) {
        w = trial;
        cur = te;
        improved = true;
        break;
      }
      t *= 0.5;
    }
    if (!improved) {
      out.converged = true;  // at numeric resolution of the line search
      break;
    }
  }
  out.weights = w;
  out.log_likelihood = cur.ll;
  return out;
}

behavior::SuqrWeightIntervals bootstrap_weight_intervals(
    const games::SecurityGame& game,
    std::span<const AttackObservation> data,
    const SuqrMleOptions& mle_options, const BootstrapOptions& options) {
  if (options.resamples < 2) {
    throw InvalidModelError("bootstrap: need at least 2 resamples");
  }
  if (!(options.confidence > 0.0) || options.confidence >= 1.0) {
    throw InvalidModelError("bootstrap: confidence must be in (0, 1)");
  }

  // Derive an independent RNG stream per resample (deterministic given the
  // seed, order-independent across the pool's threads).
  Rng root(options.seed);
  std::vector<std::uint64_t> seeds(options.resamples);
  for (auto& s : seeds) s = root();

  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::global();
  std::vector<behavior::SuqrWeights> fits = parallel_map(
      pool, static_cast<std::size_t>(options.resamples),
      [&](std::size_t r) {
        Rng rng(seeds[r]);
        std::vector<AttackObservation> sample(data.size());
        for (auto& obs : sample) {
          obs = data[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(data.size()) - 1))];
        }
        return fit_suqr(game, sample, mle_options).weights;
      });

  // Percentile interval per weight.
  const double alpha = 0.5 * (1.0 - options.confidence);
  auto percentile_interval = [&](auto getter) {
    std::vector<double> v(fits.size());
    for (std::size_t i = 0; i < fits.size(); ++i) v[i] = getter(fits[i]);
    std::sort(v.begin(), v.end());
    const auto at = [&](double q) {
      const double pos = q * static_cast<double>(v.size() - 1);
      const std::size_t i0 = static_cast<std::size_t>(pos);
      const std::size_t i1 = std::min(i0 + 1, v.size() - 1);
      const double frac = pos - static_cast<double>(i0);
      return v[i0] * (1.0 - frac) + v[i1] * frac;
    };
    return std::pair<double, double>{at(alpha), at(1.0 - alpha)};
  };

  auto [w1_lo, w1_hi] = percentile_interval(
      [](const behavior::SuqrWeights& w) { return w.w1; });
  auto [w2_lo, w2_hi] = percentile_interval(
      [](const behavior::SuqrWeights& w) { return w.w2; });
  auto [w3_lo, w3_hi] = percentile_interval(
      [](const behavior::SuqrWeights& w) { return w.w3; });

  // Enforce the model's sign structure: w1 strictly negative, w2/w3
  // non-negative (SuqrIntervalBounds validates these).
  constexpr double kEps = 1e-6;
  w1_hi = std::min(w1_hi, -kEps);
  w1_lo = std::min(w1_lo, w1_hi - kEps);
  w2_lo = std::max(w2_lo, 0.0);
  w2_hi = std::max(w2_hi, w2_lo);
  w3_lo = std::max(w3_lo, 0.0);
  w3_hi = std::max(w3_hi, w3_lo);

  behavior::SuqrWeightIntervals out;
  out.w1 = Interval(w1_lo, w1_hi);
  out.w2 = Interval(w2_lo, w2_hi);
  out.w3 = Interval(w3_lo, w3_hi);
  return out;
}

std::vector<AttackObservation> simulate_attack_data(
    const games::SecurityGame& game, const behavior::SuqrWeights& truth,
    std::size_t count, Rng& rng) {
  const std::size_t n = game.num_targets();
  behavior::SuqrModel model(truth, game);
  std::vector<AttackObservation> data;
  data.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    // A fresh random feasible coverage per observation (the defender
    // varies patrols day to day, which is what identifies w1).
    std::vector<double> raw(n);
    for (auto& v : raw) v = rng.uniform(0.0, 1.0);
    std::vector<double> x =
        games::project_to_simplex_box(raw, game.resources());
    std::vector<double> q = behavior::attack_probabilities(model, x);
    double u = rng.uniform();
    std::size_t target = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (u < q[i]) {
        target = i;
        break;
      }
      u -= q[i];
    }
    data.push_back({std::move(x), target});
  }
  return data;
}

}  // namespace cubisg::learning

// Maximum-likelihood estimation of SUQR weights from attack data.
//
// This closes the loop the paper motivates but leaves offstage: the
// uncertainty intervals "could be specified based on the available data
// for learning" (Section III).  Given observations — which target was
// attacked under which defender coverage — the SUQR choice model (Eq. 3-4)
// is a conditional-logit likelihood over the weights w = (w1, w2, w3):
//
//   log L(w) = sum_obs [ s_w(target) - log sum_j exp(s_w(j)) ],
//   s_w(i) = w1 x_i + w2 Ra_i + w3 Pa_i
//
// which is concave in w; a damped Newton iteration (3x3 Hessian) converges
// in a handful of steps.  bootstrap_weight_intervals then resamples the
// data to percentile confidence boxes — exactly the SuqrWeightIntervals
// CUBIS consumes, with width shrinking as data accumulates (the paper's
// data-scarcity story, quantified in bench_learning).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "behavior/bounds.hpp"
#include "behavior/suqr.hpp"
#include "common/rng.hpp"
#include "games/security_game.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg::learning {

/// One observed attack: the coverage in force and the target chosen.
struct AttackObservation {
  std::vector<double> coverage;
  std::size_t target = 0;
};

/// Options for the MLE fit.
struct SuqrMleOptions {
  int max_iterations = 100;
  double tol = 1e-10;       ///< gradient-norm convergence threshold
  double ridge = 1e-6;      ///< L2 regularization (keeps Hessian regular)
  behavior::SuqrWeights init{-1.0, 0.1, 0.1};  ///< starting point
};

/// MLE fit result.
struct SuqrMleResult {
  behavior::SuqrWeights weights;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Fits SUQR weights to `data` by damped Newton on the concave
/// log-likelihood.  Throws InvalidModelError on empty/inconsistent data.
/// Note: the fitted w1 is clamped below 0 only at interval-construction
/// time; the raw MLE may sit at a small positive value on tiny samples.
SuqrMleResult fit_suqr(const games::SecurityGame& game,
                       std::span<const AttackObservation> data,
                       const SuqrMleOptions& options = {});

/// Options for bootstrap interval construction.
struct BootstrapOptions {
  int resamples = 100;        ///< bootstrap refits
  double confidence = 0.90;   ///< central interval mass per weight
  std::uint64_t seed = 0xB007;
  ThreadPool* pool = nullptr;  ///< null = global pool
};

/// Percentile-bootstrap confidence boxes on the SUQR weights, in the form
/// CUBIS consumes.  The w1 interval is clipped strictly below zero and the
/// w2/w3 intervals at zero (the model's sign constraints).
behavior::SuqrWeightIntervals bootstrap_weight_intervals(
    const games::SecurityGame& game,
    std::span<const AttackObservation> data,
    const SuqrMleOptions& mle_options = {},
    const BootstrapOptions& options = {});

/// Synthesizes `count` observations from a ground-truth SUQR attacker:
/// each observation draws a random feasible coverage (seeded), computes the
/// quantal response, and samples the attacked target.  The generator for
/// test/bench data.
std::vector<AttackObservation> simulate_attack_data(
    const games::SecurityGame& game, const behavior::SuqrWeights& truth,
    std::size_t count, Rng& rng);

}  // namespace cubisg::learning

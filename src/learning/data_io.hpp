// Attack-record persistence: a line-oriented text format for observation
// datasets so field data can flow into fit_suqr / bootstrap intervals
// (and synthetic seasons can be saved for reproducible experiments).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "learning/suqr_mle.hpp"

namespace cubisg::learning {

/// Writes observations:
///   cubisg-attacks 1
///   records N targets T
///   x_1 ... x_T target        (one line per record, hex floats)
void write_attack_data(std::ostream& os,
                       const std::vector<AttackObservation>& data);

/// Reads a dataset written by write_attack_data.  Throws
/// InvalidModelError on malformed input.
std::vector<AttackObservation> read_attack_data(std::istream& is);

/// File convenience wrappers.
bool save_attack_data(const std::string& path,
                      const std::vector<AttackObservation>& data);
std::vector<AttackObservation> load_attack_data(const std::string& path);

}  // namespace cubisg::learning

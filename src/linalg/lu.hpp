// LU factorization with partial pivoting.
//
// Used by the simplex solver for basis solves (B y = b and B^T y = c).  The
// basis matrices in this library are small and dense, so a full refactor per
// simplex iteration-batch is cheap and numerically safer than product-form
// updates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace cubisg {

/// PA = LU factorization of a square matrix with row partial pivoting.
class LuFactorization {
 public:
  /// Factors `a`; does not throw on singularity — check is_singular().
  /// The original matrix is retained so that solve()/solve_transposed()
  /// can apply one step of iterative refinement, which keeps solutions
  /// accurate even for ill-conditioned bases (the simplex produces chains
  /// of small pivots on ordered-segment models).
  explicit LuFactorization(const Matrix& a);

  bool is_singular() const { return singular_; }
  std::size_t dim() const { return n_; }

  /// Solves A x = b.  Requires !is_singular().
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A^T x = b.  Requires !is_singular().
  std::vector<double> solve_transposed(std::span<const double> b) const;

  /// Determinant sign-magnitude estimate (product of U diagonal, with
  /// permutation sign); used only for diagnostics.
  double determinant() const;

  /// Reciprocal condition estimate from diag(U); cheap singularity gauge.
  double rcond_estimate() const;

 private:
  std::vector<double> solve_once(std::span<const double> b) const;
  std::vector<double> solve_transposed_once(std::span<const double> b) const;

  std::size_t n_ = 0;
  Matrix a_;                   // original matrix (for refinement residuals)
  Matrix lu_;                  // packed L (unit diag, below) and U (above)
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  bool singular_ = false;
};

}  // namespace cubisg

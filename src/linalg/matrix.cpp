#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace cubisg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply size");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::multiply_transposed(
    std::span<const double> x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("Matrix::multiply_transposed size");
  }
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = data_.data() + r * cols_;
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> subtract(std::span<const double> a,
                             std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("subtract: size");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace cubisg

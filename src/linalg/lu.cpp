#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/errors.hpp"
#include "common/fault_inject.hpp"

namespace cubisg {

namespace {
// Near-machine-zero relative threshold.  Genuinely ill-conditioned but
// invertible bases (chains of small pivots) must factor; the refinement
// step in solve() recovers the accuracy.
constexpr double kPivotTol = 1e-14;
}  // namespace

LuFactorization::LuFactorization(const Matrix& a)
    : n_(a.rows()), a_(a), lu_(a), perm_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization requires a square matrix");
  }
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  if (faultinject::should_fail(faultinject::Site::kLuFactorize)) {
    singular_ = true;  // injected: exercises the simplex recovery ladder
    return;
  }

  const double scale_tol = kPivotTol * (1.0 + a.max_abs());

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest |entry| in column k at/below the diagonal.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < scale_tol) {
      singular_ = true;
      return;
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(lu_(piv, c), lu_(k, c));
      }
      std::swap(perm_[piv], perm_[k]);
      perm_sign_ = -perm_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double m = lu_(r, k) / pivot;
      lu_(r, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_(r, c) -= m * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve_once(
    std::span<const double> b) const {
  std::vector<double> x(n_);
  // Forward: L y = P b (L has unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward: U x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

std::vector<double> LuFactorization::solve(std::span<const double> b) const {
  if (singular_) throw NumericalError("LuFactorization::solve on singular");
  if (b.size() != n_) throw std::invalid_argument("LU solve: size mismatch");
  std::vector<double> x = solve_once(b);
  // One step of iterative refinement: r = b - A x, x += A^{-1} r.
  std::vector<double> ax = a_.multiply(x);
  std::vector<double> r(n_);
  for (std::size_t i = 0; i < n_; ++i) r[i] = b[i] - ax[i];
  std::vector<double> dx = solve_once(r);
  for (std::size_t i = 0; i < n_; ++i) x[i] += dx[i];
  return x;
}

std::vector<double> LuFactorization::solve_transposed_once(
    std::span<const double> b) const {
  // A^T x = b  with PA = LU  =>  A^T = U^T L^T P, solve U^T y = b,
  // L^T z = y, then x = P^T z.
  std::vector<double> y(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
    y[i] = acc / lu_(i, i);
  }
  std::vector<double> z(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(j, ii) * z[j];
    z[ii] = acc;
  }
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[perm_[i]] = z[i];
  return x;
}

std::vector<double> LuFactorization::solve_transposed(
    std::span<const double> b) const {
  if (singular_) {
    throw NumericalError("LuFactorization::solve_transposed on singular");
  }
  if (b.size() != n_) throw std::invalid_argument("LU solveT: size mismatch");
  std::vector<double> x = solve_transposed_once(b);
  std::vector<double> atx = a_.multiply_transposed(x);
  std::vector<double> r(n_);
  for (std::size_t i = 0; i < n_; ++i) r[i] = b[i] - atx[i];
  std::vector<double> dx = solve_transposed_once(r);
  for (std::size_t i = 0; i < n_; ++i) x[i] += dx[i];
  return x;
}

double LuFactorization::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

double LuFactorization::rcond_estimate() const {
  if (singular_ || n_ == 0) return 0.0;
  double dmin = std::numeric_limits<double>::infinity();
  double dmax = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    const double d = std::abs(lu_(i, i));
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  return dmax == 0.0 ? 0.0 : dmin / dmax;
}

}  // namespace cubisg

// Dense row-major matrix and basic vector kernels.
//
// Sized for the LPs this library produces (hundreds of rows/columns); the
// simplex solver re-factorizes a dense basis, so an LU with partial
// pivoting (lu.hpp) is the only factorization needed.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace cubisg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construction from nested initializer lists (row major); all rows must
  /// have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws std::out_of_range).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> data() const { return data_; }

  /// y = A * x  (x.size() == cols()).
  std::vector<double> multiply(std::span<const double> x) const;

  /// y = A^T * x  (x.size() == rows()).
  std::vector<double> multiply_transposed(std::span<const double> x) const;

  Matrix transposed() const;

  /// Max-abs entry; 0 for empty matrices.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
double norm2(std::span<const double> v);

/// Infinity norm.
double norm_inf(std::span<const double> v);

/// a - b elementwise (sizes must match).
std::vector<double> subtract(std::span<const double> a,
                             std::span<const double> b);

}  // namespace cubisg

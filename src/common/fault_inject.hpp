// Deterministic fault injection for the solver resilience layer.
//
// Tests (and operators reproducing incidents) can force the failure modes
// the resilience layer exists to absorb — a singular LU factorization, a
// deadline expiring inside a chosen phase, an allocation or I/O failure —
// at exact, reproducible points.  Each instrumented call site polls
// should_fail(site); arming a site makes that poll return true for a
// bounded number of triggers (optionally after skipping the first few),
// so a test can fail "the third factorization" and assert the retry
// ladder recovered.
//
// Cost when idle: one relaxed atomic load of a global armed mask (zero in
// the common case), so the hooks stay compiled into release builds by
// default; configure with CUBISG_FAULT_INJECTION=OFF to hard compile the
// entire mechanism out (should_fail becomes a constant false).
//
// The armed path takes a mutex — fault injection is a test harness, not a
// hot path, and the mutex keeps skip/count bookkeeping exact under
// concurrent solves.
#pragma once

#include <cstdint>
#include <string>

#ifndef CUBISG_FAULT_INJECTION_ENABLED
#define CUBISG_FAULT_INJECTION_ENABLED 1
#endif

namespace cubisg::faultinject {

/// Instrumented failure points, one per degradation path.
enum class Site : int {
  kLuFactorize = 0,      ///< LU factorization reports a singular basis
  kSimplexDeadline,      ///< simplex pivot checkpoint reports deadline
  kMilpDeadline,         ///< B&B node checkpoint reports deadline
  kCubisDeadline,        ///< binary-search round checkpoint, ditto
  kCubisStepInfeasible,  ///< P1 feasibility step reports kInfeasible
  kStepAlloc,            ///< MILP assembly throws std::bad_alloc
  kModelIo,              ///< model/scenario file open fails
  kPoolSubmit,           ///< ThreadPool::submit throws PoolShutdownError
  kWarmStartReject,      ///< simplex treats a hinted basis as invalid
  kAuditCorruptSolution,     ///< finalize corrupts one strategy coordinate
  kAuditCorruptCertificate,  ///< finalize inverts the certified bracket
  kWorkerAbort,          ///< isolated worker process abort()s mid-job
  kWorkerHang,           ///< isolated worker wedges past its deadline
  kJournalTornWrite,     ///< batch journal record is half-written, no fsync
  kTransplantReject,     ///< cross-solve transplant ladder rejects the seed
  kCount,                ///< sentinel, keep last
};

/// Stable site name ("lu-factorize", ...) for logs and CUBISG_FAULT_INJECT.
const char* site_name(Site site);

/// True when the hooks are compiled in (CUBISG_FAULT_INJECTION=ON).
constexpr bool compiled_in() { return CUBISG_FAULT_INJECTION_ENABLED != 0; }

/// Arms `site` to fire `fire_count` times (-1 = until disarmed) after
/// ignoring its first `skip` triggers.  With `period` P > 0 the site
/// instead fires every Pth poll after the skip window (poll P, 2P, ...),
/// so chaos tests can crash "1 in N jobs" deterministically; fire_count
/// still caps the total fires.  Re-arming replaces the previous
/// configuration.  No-op when compiled out.
void arm(Site site, int fire_count = 1, int skip = 0, int period = 0);

void disarm(Site site);
void disarm_all();

/// Times `site` has actually fired since it was last armed.
std::int64_t fire_count(Site site);

/// The per-call-site poll.  False when compiled out, nothing is armed,
/// the site is not armed, or its skip/fire window is over.
bool should_fail(Site site);

/// Arms sites from the CUBISG_FAULT_INJECT environment variable —
/// a comma list of `name[:fire_count[:skip[:period]]]`, e.g.
/// "lu-factorize:2,cubis-deadline:1:3" or "worker-abort:-1:0:8" (every
/// 8th poll).  Unknown names are ignored with a warning on stderr (a typo
/// must not silently disable a fault test).
void arm_from_env();

/// Fork support: the armed-state mutex must not be held across fork() (a
/// forked child would inherit it locked).  The process-isolation layer
/// locks every known global mutex before forking and unlocks on both
/// sides; see engine/process_pool.cpp.
void fork_lock();
void fork_unlock();

}  // namespace cubisg::faultinject

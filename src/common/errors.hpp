// Error taxonomy for the cubisg library.
//
// Construction/validation failures throw (they are programming or input
// errors the caller must fix); solver outcomes are reported through status
// enums embedded in result structs (an infeasible LP is data, not a bug).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace cubisg {

/// Thrown when user-supplied model data is malformed (NaN payoff, empty
/// interval, negative resource count, ...).
class InvalidModelError : public std::invalid_argument {
 public:
  explicit InvalidModelError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown when a numeric routine detects an internal inconsistency that
/// indicates a bug (singular basis that should be regular, ...).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Outcome of an LP/MILP/NLP solve.  `kOptimal` is the only status whose
/// solution vectors are meaningful; everything else is a certificate about
/// the instance or a resource-limit report.
enum class SolverStatus {
  kOptimal,         ///< proven optimal (within tolerances)
  kInfeasible,      ///< proven primal infeasible
  kUnbounded,       ///< proven unbounded
  kIterLimit,       ///< stopped at iteration/node limit; best-known returned
  kTimeLimit,       ///< stopped at wall-clock limit; best-known returned
  kEarlyPositive,   ///< MILP sign-query: a solution with objective >= target
                    ///< was found, search stopped early (used by CUBIS)
  kEarlyNegative,   ///< MILP sign-query: proven that no solution reaches the
                    ///< target objective, search stopped early
  kNumericalIssue,  ///< solve aborted due to numeric trouble
  kDeadlineExceeded,  ///< a shared SolveBudget deadline expired; best
                      ///< incumbent and certified bracket returned
  kCancelled,         ///< external cancellation (SIGINT, watchdog) honored
                      ///< at a safe point; best incumbent returned
};

/// Human-readable name for a SolverStatus (stable, for logs and tests).
constexpr std::string_view to_string(SolverStatus s) {
  switch (s) {
    case SolverStatus::kOptimal: return "optimal";
    case SolverStatus::kInfeasible: return "infeasible";
    case SolverStatus::kUnbounded: return "unbounded";
    case SolverStatus::kIterLimit: return "iteration-limit";
    case SolverStatus::kTimeLimit: return "time-limit";
    case SolverStatus::kEarlyPositive: return "early-positive";
    case SolverStatus::kEarlyNegative: return "early-negative";
    case SolverStatus::kNumericalIssue: return "numerical-issue";
    case SolverStatus::kDeadlineExceeded: return "deadline-exceeded";
    case SolverStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// True for the statuses produced by a tripped SolveBudget or an internal
/// resource limit: the solve stopped early at a safe point and the result
/// carries the best incumbent found so far (when any exists) rather than a
/// proven answer.
constexpr bool is_budget_stop(SolverStatus s) {
  return s == SolverStatus::kDeadlineExceeded ||
         s == SolverStatus::kCancelled || s == SolverStatus::kIterLimit ||
         s == SolverStatus::kTimeLimit;
}

}  // namespace cubisg

#include "common/fault_inject.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cubisg::faultinject {

namespace {

constexpr int kSiteCount = static_cast<int>(Site::kCount);

const char* const kSiteNames[kSiteCount] = {
    "lu-factorize",     "simplex-deadline", "milp-deadline",
    "cubis-deadline",   "step-infeasible",  "step-alloc",
    "model-io",         "pool-submit",      "warm-start-reject",
    "audit-corrupt-solution",
    "audit-corrupt-certificate",
    "worker-abort",     "worker-hang",      "journal-torn-write",
    "transplant-reject",
};

struct SiteState {
  bool armed = false;
  int skip = 0;
  int remaining = 0;  // -1 = unlimited
  int period = 0;     // 0 = fire on every post-skip poll
  std::int64_t polls = 0;  // post-skip polls (periodic mode bookkeeping)
  std::int64_t fired = 0;
};

/// Bit i set <=> site i armed.  The idle fast path is one relaxed load.
std::atomic<std::uint32_t> g_armed_mask{0};

std::mutex g_mutex;
SiteState g_sites[kSiteCount];

}  // namespace

const char* site_name(Site site) {
  const int i = static_cast<int>(site);
  return (i >= 0 && i < kSiteCount) ? kSiteNames[i] : "unknown";
}

void arm(Site site, int fire_count, int skip, int period) {
#if CUBISG_FAULT_INJECTION_ENABLED
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kSiteCount || fire_count == 0) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sites[i] = SiteState{true, skip < 0 ? 0 : skip,
                         fire_count < 0 ? -1 : fire_count,
                         period < 0 ? 0 : period, 0, 0};
  g_armed_mask.fetch_or(1u << i, std::memory_order_relaxed);
#else
  (void)site;
  (void)fire_count;
  (void)skip;
  (void)period;
#endif
}

void disarm(Site site) {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kSiteCount) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sites[i].armed = false;
  g_armed_mask.fetch_and(~(1u << i), std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (SiteState& s : g_sites) s.armed = false;
  g_armed_mask.store(0, std::memory_order_relaxed);
}

std::int64_t fire_count(Site site) {
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kSiteCount) return 0;
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_sites[i].fired;
}

bool should_fail(Site site) {
#if CUBISG_FAULT_INJECTION_ENABLED
  const int i = static_cast<int>(site);
  if (i < 0 || i >= kSiteCount) return false;
  if ((g_armed_mask.load(std::memory_order_relaxed) & (1u << i)) == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  SiteState& s = g_sites[i];
  if (!s.armed) return false;  // disarmed between the mask load and here
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  if (s.remaining == 0) return false;
  ++s.polls;
  if (s.period > 0 && (s.polls % s.period) != 0) return false;
  if (s.remaining > 0) --s.remaining;
  ++s.fired;
  return true;
#else
  (void)site;
  return false;
#endif
}

void arm_from_env() {
#if CUBISG_FAULT_INJECTION_ENABLED
  const char* spec = std::getenv("CUBISG_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return;
  // Comma-split `name[:fire_count[:skip[:period]]]` entries.
  std::string entry;
  for (const char* p = spec;; ++p) {
    if (*p != ',' && *p != '\0') {
      entry.push_back(*p);
      continue;
    }
    if (!entry.empty()) {
      std::string name = entry;
      int count = 1;
      int skip = 0;
      int period = 0;
      if (const std::size_t c1 = entry.find(':'); c1 != std::string::npos) {
        name = entry.substr(0, c1);
        count = std::atoi(entry.c_str() + c1 + 1);
        if (const std::size_t c2 = entry.find(':', c1 + 1);
            c2 != std::string::npos) {
          skip = std::atoi(entry.c_str() + c2 + 1);
          if (const std::size_t c3 = entry.find(':', c2 + 1);
              c3 != std::string::npos) {
            period = std::atoi(entry.c_str() + c3 + 1);
          }
        }
      }
      bool matched = false;
      for (int i = 0; i < kSiteCount; ++i) {
        if (name == kSiteNames[i]) {
          arm(static_cast<Site>(i), count, skip, period);
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::fprintf(stderr,
                     "warning: CUBISG_FAULT_INJECT: unknown site '%s'\n",
                     name.c_str());
      }
      entry.clear();
    }
    if (*p == '\0') break;
  }
#endif
}

void fork_lock() { g_mutex.lock(); }
void fork_unlock() { g_mutex.unlock(); }

}  // namespace cubisg::faultinject

#include "common/math_util.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cubisg {

double log_sum_exp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(m)) return m;  // all -inf, or a +/-inf dominates
  double s = 0.0;
  for (double v : values) s += std::exp(v - m);
  return m + std::log(s);
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace requires n >= 2");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid drift on the final point
  return out;
}

double stable_sum(std::span<const double> values) {
  double sum = 0.0;
  double comp = 0.0;  // running compensation for lost low-order bits
  for (double v : values) {
    const double t = sum + v;
    if (std::abs(sum) >= std::abs(v)) {
      comp += (sum - t) + v;
    } else {
      comp += (v - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

double stable_dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("stable_dot: size mismatch");
  }
  double sum = 0.0;
  double comp = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double v = a[i] * b[i];
    const double t = sum + v;
    if (std::abs(sum) >= std::abs(v)) {
      comp += (sum - t) + v;
    } else {
      comp += (v - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

bool all_finite(std::span<const double> values) {
  return std::all_of(values.begin(), values.end(),
                     [](double v) { return std::isfinite(v); });
}

}  // namespace cubisg

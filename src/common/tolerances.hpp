// Central numeric tolerances for all cubisg solvers.
//
// Every solver in the library pulls its tolerances from here (or from a
// per-call options struct that defaults to these values) so that there is a
// single place to reason about numeric robustness.
#pragma once

namespace cubisg {

/// Library-wide default numeric tolerances.
struct Tol {
  /// Primal/dual feasibility tolerance for LP/MILP solves.
  static constexpr double kFeas = 1e-9;
  /// Integrality tolerance: |v - round(v)| below this counts as integral.
  static constexpr double kInt = 1e-6;
  /// Default binary-search convergence threshold (the paper's epsilon).
  static constexpr double kBinarySearchEps = 1e-3;
  /// Generic comparison tolerance for "equal enough" doubles in algorithms.
  static constexpr double kEq = 1e-9;
  /// Looser tolerance for cross-checking independently computed quantities.
  static constexpr double kCrossCheck = 1e-7;
};

}  // namespace cubisg

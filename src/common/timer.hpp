// Wall-clock stopwatch used for solver statistics and time limits.
#pragma once

#include <chrono>

namespace cubisg {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cubisg

// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (game generators, multi-start
// solvers, attacker simulation, property-test sweeps) draw from an explicit
// Rng so that every experiment is reproducible from a printed 64-bit seed.
// The generator is xoshiro256++ seeded via SplitMix64, which is both fast
// and statistically strong for simulation workloads.  `split()` derives an
// independent stream, which is how parallel tasks get private generators
// (Core Guidelines CP.2/CP.31: no shared mutable RNG state across threads).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace cubisg {

/// SplitMix64 step; used for seeding and stream splitting.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with explicit seeding and stream splitting.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xC0FFEEULL) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high-quality bits -> double mantissa.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Modulo bias is negligible for the spans used in this library
    // (span << 2^64), and determinism matters more than perfection here.
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derives an independent generator; the parent stream advances once.
  Rng split() {
    std::uint64_t child_seed = (*this)() ^ 0xA5A5A5A55A5A5A5AULL;
    return Rng(child_seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace cubisg

// Closed-interval arithmetic.
//
// Intervals model the paper's behavioral uncertainty: payoff entries and
// SUQR weights are known only up to [lo, hi] ranges, and the attractiveness
// bounds L_i(x) <= F_i(x) <= U_i(x) are computed by propagating those ranges
// through the SUQR expression.  Arithmetic here is exact box arithmetic
// (min/max over endpoint combinations); widening from rounding is irrelevant
// at the magnitudes used in security games.
#pragma once

#include <algorithm>
#include <cmath>
#include <iosfwd>

#include "common/errors.hpp"

namespace cubisg {

/// A closed real interval [lo, hi] with lo <= hi.
class Interval {
 public:
  /// Degenerate zero interval.
  constexpr Interval() : lo_(0.0), hi_(0.0) {}

  /// Degenerate point interval [v, v].
  constexpr explicit Interval(double v) : lo_(v), hi_(v) {}

  /// Interval [lo, hi]; throws InvalidModelError if lo > hi or not finite.
  Interval(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!std::isfinite(lo) || !std::isfinite(hi)) {
      throw InvalidModelError("Interval endpoints must be finite");
    }
    if (lo > hi) {
      throw InvalidModelError("Interval requires lo <= hi");
    }
  }

  constexpr double lo() const { return lo_; }
  constexpr double hi() const { return hi_; }
  constexpr double width() const { return hi_ - lo_; }
  constexpr double mid() const { return 0.5 * (lo_ + hi_); }
  constexpr bool is_point() const { return lo_ == hi_; }
  constexpr bool contains(double v) const { return lo_ <= v && v <= hi_; }
  constexpr bool contains(const Interval& o) const {
    return lo_ <= o.lo_ && o.hi_ <= hi_;
  }

  /// Symmetric widening by delta on both sides (delta >= 0).
  Interval widened(double delta) const {
    return Interval(lo_ - delta, hi_ + delta);
  }

  /// Scales the interval width by `factor` around its midpoint.
  Interval scaled_about_mid(double factor) const {
    const double m = mid();
    const double h = 0.5 * width() * factor;
    return Interval(m - h, m + h);
  }

  friend Interval operator+(const Interval& a, const Interval& b) {
    return Interval(a.lo_ + b.lo_, a.hi_ + b.hi_);
  }
  friend Interval operator-(const Interval& a, const Interval& b) {
    return Interval(a.lo_ - b.hi_, a.hi_ - b.lo_);
  }
  friend Interval operator*(const Interval& a, const Interval& b) {
    const double p1 = a.lo_ * b.lo_;
    const double p2 = a.lo_ * b.hi_;
    const double p3 = a.hi_ * b.lo_;
    const double p4 = a.hi_ * b.hi_;
    return Interval(std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4}));
  }
  friend Interval operator*(double s, const Interval& a) {
    return Interval(s) * a;
  }

  /// Monotone image under exp.
  friend Interval exp(const Interval& a) {
    return Interval(std::exp(a.lo_), std::exp(a.hi_));
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  double lo_;
  double hi_;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace cubisg

#include "common/interval.hpp"

#include <ostream>

namespace cubisg {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << '[' << iv.lo() << ", " << iv.hi() << ']';
}

}  // namespace cubisg

// Minimal leveled logger.
//
// Solvers log convergence traces at kDebug and summary lines at kInfo; the
// default level is kWarn so library users see nothing unless they opt in.
// The sink is a single global function guarded by a mutex (log volume in
// this library is low; contention is not a concern).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace cubisg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_detail {
void emit(LogLevel level, const std::string& message);
bool enabled(LogLevel level);
/// Fork support: holds/releases the sink mutex around fork() so a forked
/// child never inherits it locked (see engine/process_pool.cpp).
void fork_lock();
void fork_unlock();
}  // namespace log_detail

/// Sets the minimum level that is emitted (default kWarn).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the sink (default writes to stderr).  Pass nullptr to restore
/// the default sink.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

/// Streams a log record if `level` is enabled; usage:
///   CUBISG_LOG(LogLevel::kInfo) << "lb=" << lb << " ub=" << ub;
#define CUBISG_LOG(level)                                  \
  if (!::cubisg::log_detail::enabled(level)) {             \
  } else                                                   \
    ::cubisg::log_detail::Record(level)

namespace log_detail {
class Record {
 public:
  explicit Record(LogLevel level) : level_(level) {}
  ~Record() { emit(level_, stream_.str()); }
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;

  template <typename T>
  Record& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace cubisg

// Small numeric helpers shared across solvers.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace cubisg {

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
inline bool approx_equal(double a, double b, double atol = 1e-9,
                         double rtol = 1e-9) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

/// Numerically stable log(sum_i exp(v_i)).  Returns -inf for empty input.
double log_sum_exp(std::span<const double> values);

/// n evenly spaced points from lo to hi inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Sum via Neumaier compensation; used where cancellation matters
/// (fractional objectives with mixed-sign terms).
double stable_sum(std::span<const double> values);

/// Dot product with compensated accumulation.
double stable_dot(std::span<const double> a, std::span<const double> b);

/// Clamps v into [lo, hi].
inline double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// True when every element of `values` is finite.
bool all_finite(std::span<const double> values);

}  // namespace cubisg

// Shared solve budget / cooperative cancellation token.
//
// A SolveBudget bounds one logical solve (or one serve-loop request): a
// wall-clock deadline, a branch-and-bound node cap, a simplex iteration
// cap, and an external cancel flag (SIGINT handler, serve-mode watchdog).
// One instance is threaded cooperatively through every layer of the
// pipeline — CubisSolver's binary search, milp::BranchAndBound's node
// loop and lp::Simplex's pivot loop — each of which polls exceeded() at
// its own safe points and unwinds with partial results instead of
// throwing or running on.
//
// The trip is sticky: the first layer that observes an exceeded budget
// latches the reason, and every later poll (in any thread) reports that
// same status, so a multisection round's workers all unwind with one
// consistent verdict.  All members are atomics; polling is wait-free and
// request_cancel() is safe to call from a signal handler or any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

#include "common/errors.hpp"

namespace cubisg {

class SolveBudget {
 public:
  SolveBudget() = default;

  SolveBudget(const SolveBudget&) = delete;
  SolveBudget& operator=(const SolveBudget&) = delete;

  /// Arms a wall-clock deadline `seconds` from now (<= 0 trips at once).
  void set_deadline_after(double seconds) {
    const std::int64_t ns = static_cast<std::int64_t>(seconds * 1e9);
    deadline_total_ns_.store(ns, std::memory_order_relaxed);
    deadline_ns_.store(now_ns() + ns, std::memory_order_relaxed);
  }

  /// The armed wall-clock budget in seconds (0 when no deadline is set);
  /// for reporting, not enforcement.
  double deadline_seconds() const {
    return static_cast<double>(
               deadline_total_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  /// Caps the total branch-and-bound nodes charged against this budget.
  void set_node_limit(std::int64_t max_nodes) {
    node_limit_.store(max_nodes, std::memory_order_relaxed);
  }

  /// Caps the total simplex iterations charged against this budget.
  void set_iteration_limit(std::int64_t max_iters) {
    iter_limit_.store(max_iters, std::memory_order_relaxed);
  }

  /// External cancellation; async-signal-safe (one relaxed atomic store).
  void request_cancel() {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Charging is const: solvers hold `const SolveBudget*` (they may spend
  // the budget, never reconfigure it), and the spend counters — like the
  // trip latch — are mutable bookkeeping.
  void charge_nodes(std::int64_t n) const {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }
  void charge_iterations(std::int64_t n) const {
    iters_.fetch_add(n, std::memory_order_relaxed);
  }

  std::int64_t nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  std::int64_t iterations_charged() const {
    return iters_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoLimit;
  }

  /// Seconds until the deadline (negative once past; +inf when unarmed).
  double remaining_seconds() const {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoLimit) return std::numeric_limits<double>::infinity();
    return static_cast<double>(d - now_ns()) * 1e-9;
  }

  /// The budget checkpoint: nullopt while within budget, otherwise the
  /// sticky stop status.  Cancellation wins over the deadline, which wins
  /// over the node/iteration caps (checked in that order on first trip).
  std::optional<SolverStatus> exceeded() const {
    const int latched = tripped_.load(std::memory_order_relaxed);
    if (latched != 0) return static_cast<SolverStatus>(latched - 1);
    if (cancelled_.load(std::memory_order_relaxed)) {
      return trip(SolverStatus::kCancelled);
    }
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoLimit && now_ns() >= d) {
      return trip(SolverStatus::kDeadlineExceeded);
    }
    const std::int64_t nl = node_limit_.load(std::memory_order_relaxed);
    if (nl != kNoLimit && nodes_.load(std::memory_order_relaxed) >= nl) {
      return trip(SolverStatus::kIterLimit);
    }
    const std::int64_t il = iter_limit_.load(std::memory_order_relaxed);
    if (il != kNoLimit && iters_.load(std::memory_order_relaxed) >= il) {
      return trip(SolverStatus::kIterLimit);
    }
    return std::nullopt;
  }

  bool ok() const { return !exceeded().has_value(); }

  /// Re-arms a tripped/cancelled budget for reuse (serve loop: one budget
  /// object, one reset per request).  Not safe concurrently with a solve.
  void reset() {
    tripped_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(kNoLimit, std::memory_order_relaxed);
    deadline_total_ns_.store(0, std::memory_order_relaxed);
    node_limit_.store(kNoLimit, std::memory_order_relaxed);
    iter_limit_.store(kNoLimit, std::memory_order_relaxed);
    nodes_.store(0, std::memory_order_relaxed);
    iters_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::int64_t kNoLimit =
      std::numeric_limits<std::int64_t>::max();

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  SolverStatus trip(SolverStatus why) const {
    int expected = 0;
    tripped_.compare_exchange_strong(expected, static_cast<int>(why) + 1,
                                     std::memory_order_relaxed);
    // Lost the race: another thread latched first; report its reason.
    const int latched = tripped_.load(std::memory_order_relaxed);
    return static_cast<SolverStatus>(latched - 1);
  }

  std::atomic<std::int64_t> deadline_ns_{kNoLimit};
  std::atomic<std::int64_t> deadline_total_ns_{0};
  std::atomic<std::int64_t> node_limit_{kNoLimit};
  std::atomic<std::int64_t> iter_limit_{kNoLimit};
  mutable std::atomic<std::int64_t> nodes_{0};
  mutable std::atomic<std::int64_t> iters_{0};
  std::atomic<bool> cancelled_{false};
  /// 0 = not tripped; otherwise static_cast<int>(status) + 1.
  mutable std::atomic<int> tripped_{0};
};

}  // namespace cubisg

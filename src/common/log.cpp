#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace cubisg {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
std::function<void(LogLevel, const std::string&)> g_sink;  // guarded

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace log_detail {

bool enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[cubisg:" << level_name(level) << "] " << message << '\n';
}

}  // namespace log_detail

}  // namespace cubisg

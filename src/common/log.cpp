#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "obs/metrics.hpp"

namespace cubisg {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
std::function<void(LogLevel, const std::string&)> g_sink;  // guarded

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

obs::Counter& lines_counter(LogLevel level) {
  // One counter per level, cached after the first emit at that level.
  static obs::Counter& debug =
      obs::Registry::global().counter("log.lines_total.debug");
  static obs::Counter& info =
      obs::Registry::global().counter("log.lines_total.info");
  static obs::Counter& warn =
      obs::Registry::global().counter("log.lines_total.warn");
  static obs::Counter& error =
      obs::Registry::global().counter("log.lines_total.error");
  switch (level) {
    case LogLevel::kDebug: return debug;
    case LogLevel::kInfo: return info;
    case LogLevel::kWarn: return warn;
    default: return error;
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace log_detail {

bool enabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_level.load(std::memory_order_relaxed);
}

void emit(LogLevel level, const std::string& message) {
  lines_counter(level).add(1);
  // Copy the sink under the mutex, invoke the copy outside it: a
  // set_log_sink from another thread (e.g. a thread-pool worker swapping
  // sinks mid-solve) can then neither race the invocation nor destroy the
  // std::function while it runs.  Log volume is low; the copy is cheap.
  std::function<void(LogLevel, const std::string&)> sink;
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  // Single formatted write so concurrent default-sink emits stay whole.
  std::string line = "[cubisg:";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::cerr << line;
}

void fork_lock() { g_sink_mutex.lock(); }
void fork_unlock() { g_sink_mutex.unlock(); }

}  // namespace log_detail

}  // namespace cubisg

// Fixed-size task-based thread pool.
//
// Design follows the C++ Core Guidelines concurrency rules: callers think in
// tasks, not threads (CP.4); worker threads are created once and reused
// (CP.41); waiting is always on a condition with a predicate (CP.42); joins
// are RAII via std::jthread (CP.25/CP.23); tasks receive their inputs by
// value (CP.31) and return results through futures, so there is no shared
// mutable state beyond the queue itself (CP.2/CP.3).
//
// Telemetry: the pool exports a `threadpool.queue_depth` gauge (tasks
// waiting) and a `threadpool.task_latency` histogram (submit-to-completion
// seconds) through the obs metrics registry.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/fault_inject.hpp"

namespace cubisg {

/// Thrown by ThreadPool::submit when the pool is already draining.  A
/// distinct type so callers (parallel_for) can fall back to inline
/// execution instead of conflating it with task failures.
class PoolShutdownError : public std::runtime_error {
 public:
  PoolShutdownError() : std::runtime_error("ThreadPool::submit after shutdown") {}
};

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a callable; returns a future for its result.  The callable is
  /// moved into the pool; capture inputs by value.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ ||
          faultinject::should_fail(faultinject::Site::kPoolSubmit)) {
        throw PoolShutdownError();
      }
      queue_.push_back({[task]() { (*task)(); },
                        std::chrono::steady_clock::now()});
      note_queue_depth_locked();
    }
    cv_.notify_one();
    return result;
  }

  std::size_t num_threads() const { return workers_.size(); }

  /// True once the destructor has begun draining: submit() would throw.
  /// Advisory only — a racing shutdown can still begin after this returns
  /// false, so callers must also handle PoolShutdownError from submit().
  bool draining() {
    std::lock_guard<std::mutex> lock(mutex_);
    return stopping_;
  }

  /// A process-wide default pool, lazily constructed with one worker per
  /// hardware thread.  Solvers use this unless handed an explicit pool.
  static ThreadPool& global();

  /// Fork support for the process-isolated engine workers.  The pool's
  /// threads do not survive fork(), so a child that inherited a live
  /// global pool would submit tasks nobody runs.  fork_prepare() locks
  /// the global pool's mutex (if the pool was ever constructed) so the
  /// child cannot inherit it mid-operation; fork_parent() unlocks it;
  /// fork_child() marks the inherited pool stopping and unlocks, so
  /// parallel_for falls back to inline execution in the child.
  static void fork_prepare();
  static void fork_parent();
  static void fork_child();

 private:
  /// A queued task plus its submit time (for the latency histogram).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  /// Publishes queue_.size() to the queue-depth gauge; caller holds mutex_.
  void note_queue_depth_locked() const;
  /// Records submit-to-completion latency for one finished task.
  static void note_task_done(std::chrono::steady_clock::time_point enqueued);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;  // guarded by mutex_
  bool stopping_ = false;   // guarded by mutex_
  std::vector<std::jthread> workers_;
};

}  // namespace cubisg

// Data-parallel helpers layered on ThreadPool.
//
// `parallel_for` partitions an index range into contiguous blocks, one task
// per block; `parallel_map` collects per-index results into a vector.  Both
// rethrow the first task exception on the calling thread.  With a single
// hardware thread these degrade gracefully to near-sequential execution.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace cubisg {

/// Invokes body(i) for i in [begin, end) using `pool`.
/// `grain` is the minimum block size per task (>= 1).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t grain = 1) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.num_threads();
  std::size_t block = (n + workers - 1) / workers;
  if (block < grain) block = grain;

  std::vector<std::future<void>> futures;
  futures.reserve((n + block - 1) / block);
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Convenience overload using the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

/// Maps fn over [0, n) and returns the results in index order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, const Fn& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Convenience overload using the global pool.
template <typename Fn>
auto parallel_map(std::size_t n, const Fn& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  return parallel_map(ThreadPool::global(), n, fn);
}

}  // namespace cubisg

// Data-parallel helpers layered on ThreadPool.
//
// `parallel_for` partitions an index range into contiguous blocks, one task
// per block; `parallel_map` collects per-index results into a vector.  Both
// rethrow the first task exception on the calling thread.  With a single
// hardware thread these degrade gracefully to near-sequential execution.
//
// Robustness: when the pool is already draining (process shutdown racing a
// final solve), submission falls back to executing the remaining blocks
// inline on the calling thread instead of surfacing a PoolShutdownError —
// the work still completes, just without parallelism.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace cubisg {

/// Invokes body(i) for i in [begin, end) using `pool`.
/// `grain` is the minimum block size per task (>= 1).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body, std::size_t grain = 1) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.num_threads();
  std::size_t block = (n + workers - 1) / workers;
  if (block < grain) block = grain;

  // Shutdown fallback: run everything inline.  The advisory draining()
  // check catches the common case cheaply; the PoolShutdownError catch
  // below closes the check-then-submit race.
  if (pool.draining()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve((n + block - 1) / block);
  std::size_t lo = begin;
  for (; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    try {
      futures.push_back(pool.submit([lo, hi, &body] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      }));
    } catch (const PoolShutdownError&) {
      break;  // pool began draining mid-loop; finish [lo, end) inline
    }
  }
  std::exception_ptr first_error;
  // Blocks that never made it into the pool run on the calling thread,
  // before the waits: the already-submitted futures make progress in the
  // workers meanwhile (shutdown drains the queue before joining).
  try {
    for (std::size_t i = lo; i < end; ++i) body(i);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Convenience overload using the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

/// Maps fn over [0, n) and returns the results in index order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, const Fn& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Convenience overload using the global pool.
template <typename Fn>
auto parallel_map(std::size_t n, const Fn& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  return parallel_map(ThreadPool::global(), n, fn);
}

}  // namespace cubisg

#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace cubisg {

namespace {

/// The global pool instance once constructed (nullptr before first use).
/// The fork hooks need to reach it without triggering construction — a
/// forked child must neutralize an *inherited* pool, never create one.
std::atomic<ThreadPool*> g_global_pool{nullptr};

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("threadpool.queue_depth");
  return g;
}

obs::Histogram& task_latency_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "threadpool.task_latency",
      obs::Histogram::latency_bounds_seconds());
  return h;
}

obs::Counter& tasks_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("threadpool.tasks_total");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::note_queue_depth_locked() const {
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
}

void ThreadPool::note_task_done(
    std::chrono::steady_clock::time_point enqueued) {
  tasks_counter().add(1);
  task_latency_histogram().record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    enqueued)
          .count());
}

void ThreadPool::worker_loop() {
  // Pool workers run solver phases (multisection lanes, MILP search), so
  // they opt into wall-clock profiling like the engine's workers.
  obs::ProfiledThreadScope profiled;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ must be true here; exit once all work is done.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      note_queue_depth_locked();
    }
    task.fn();  // packaged_task captures exceptions into its future
    note_task_done(task.enqueued);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  g_global_pool.store(&pool, std::memory_order_release);
  return pool;
}

void ThreadPool::fork_prepare() {
  if (ThreadPool* p = g_global_pool.load(std::memory_order_acquire)) {
    p->mutex_.lock();
  }
}

void ThreadPool::fork_parent() {
  if (ThreadPool* p = g_global_pool.load(std::memory_order_acquire)) {
    p->mutex_.unlock();
  }
}

void ThreadPool::fork_child() {
  if (ThreadPool* p = g_global_pool.load(std::memory_order_acquire)) {
    // The workers died with the fork; draining mode makes submit() throw
    // PoolShutdownError, which parallel_for absorbs by running inline.
    p->stopping_ = true;
    p->mutex_.unlock();
  }
}

}  // namespace cubisg

#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace cubisg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ must be true here; exit once all work is done.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into its future
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace cubisg

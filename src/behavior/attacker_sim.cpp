#include "behavior/attacker_sim.hpp"

#include <algorithm>
#include <limits>

#include "common/errors.hpp"

namespace cubisg::behavior {

SampledSuqrPopulation::SampledSuqrPopulation(
    const SuqrWeightIntervals& weights,
    std::span<const games::IntervalPayoffs> payoffs, std::size_t num_types,
    Rng& rng) {
  if (num_types == 0) {
    throw InvalidModelError("SampledSuqrPopulation: num_types must be >= 1");
  }
  types_.reserve(num_types);
  for (std::size_t t = 0; t < num_types; ++t) {
    SuqrWeights w;
    w.w1 = rng.uniform(weights.w1.lo(), weights.w1.hi());
    w.w2 = rng.uniform(weights.w2.lo(), weights.w2.hi());
    w.w3 = rng.uniform(weights.w3.lo(), weights.w3.hi());
    std::vector<double> rewards(payoffs.size());
    std::vector<double> penalties(payoffs.size());
    for (std::size_t i = 0; i < payoffs.size(); ++i) {
      rewards[i] = rng.uniform(payoffs[i].attacker_reward.lo(),
                               payoffs[i].attacker_reward.hi());
      penalties[i] = rng.uniform(payoffs[i].attacker_penalty.lo(),
                                 payoffs[i].attacker_penalty.hi());
    }
    types_.emplace_back(w, std::move(rewards), std::move(penalties));
  }
}

double SampledSuqrPopulation::mean_defender_utility(
    const games::SecurityGame& game, std::span<const double> x) const {
  double sum = 0.0;
  for (const SuqrModel& t : types_) {
    sum += defender_expected_utility(game, t, x);
  }
  return sum / static_cast<double>(types_.size());
}

double SampledSuqrPopulation::min_defender_utility(
    const games::SecurityGame& game, std::span<const double> x) const {
  double worst = std::numeric_limits<double>::infinity();
  for (const SuqrModel& t : types_) {
    worst = std::min(worst, defender_expected_utility(game, t, x));
  }
  return worst;
}

double SampledSuqrPopulation::simulate_attacks(
    const games::SecurityGame& game, std::span<const double> x,
    std::size_t num_attacks, Rng& rng) const {
  if (num_attacks == 0) return 0.0;
  double total = 0.0;
  for (std::size_t a = 0; a < num_attacks; ++a) {
    const std::size_t t =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(
                                                        types_.size()) - 1));
    const std::vector<double> q = attack_probabilities(types_[t], x);
    // Sample the attacked target from q.
    double u = rng.uniform();
    std::size_t target = q.size() - 1;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (u < q[i]) {
        target = i;
        break;
      }
      u -= q[i];
    }
    // The defender's realized utility is Rd with probability x_target
    // (attack intercepted), Pd otherwise.
    const games::TargetPayoffs& p = game.target(target);
    total += rng.uniform() < x[target] ? p.defender_reward
                                       : p.defender_penalty;
  }
  return total / static_cast<double>(num_attacks);
}

}  // namespace cubisg::behavior

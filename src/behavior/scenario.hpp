// Scenario = a complete problem instance: the uncertain game plus the SUQR
// weight boxes and interval semantics.  Serializable to a line-oriented
// text format so instances can be saved, shared and replayed (used by the
// cubisg CLI and by failure reproducers).
#pragma once

#include <iosfwd>
#include <string>

#include "behavior/bounds.hpp"
#include "games/coverage_space.hpp"
#include "games/generators.hpp"

namespace cubisg::behavior {

/// A self-contained robust-SSG instance.
struct Scenario {
  games::UncertainGame game;
  SuqrWeightIntervals weights;
  IntervalMode mode = IntervalMode::kExactBox;
  /// Coverage polytope the defender optimizes over.  Default-constructed
  /// (or an explicit simplex) = the paper's Σx_i = R setting, serialized
  /// as nothing so legacy scenario files round-trip byte-identically;
  /// non-simplex spaces write one `coverage <descriptor>` line.
  games::CoverageSpace coverage{};

  /// Bounds object for this scenario (construct once, reuse).
  SuqrIntervalBounds make_bounds() const {
    return SuqrIntervalBounds(weights, game.attacker_intervals, mode);
  }
};

/// Writes a scenario in the cubisg scenario format (text, lossless).
void write_scenario(std::ostream& os, const Scenario& scenario);

/// Reads a scenario written by write_scenario.  Throws InvalidModelError
/// on malformed input.
Scenario read_scenario(std::istream& is);

/// File convenience wrappers.
bool save_scenario(const std::string& path, const Scenario& scenario);
Scenario load_scenario(const std::string& path);

}  // namespace cubisg::behavior

#include "behavior/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/errors.hpp"

namespace cubisg::behavior {

SuqrIntervalBounds::SuqrIntervalBounds(
    SuqrWeightIntervals weights, std::vector<games::IntervalPayoffs> payoffs,
    IntervalMode mode)
    : weights_(weights), payoffs_(std::move(payoffs)), mode_(mode) {
  if (!(weights_.w1.hi() < 0.0)) {
    throw InvalidModelError(
        "SuqrIntervalBounds: w1 interval must be strictly negative");
  }
  if (weights_.w2.lo() < 0.0 || weights_.w3.lo() < 0.0) {
    throw InvalidModelError(
        "SuqrIntervalBounds: w2 and w3 intervals must be non-negative");
  }
  if (payoffs_.empty()) {
    throw InvalidModelError("SuqrIntervalBounds: no targets");
  }
  static_exponent_.reserve(payoffs_.size());
  for (std::size_t i = 0; i < payoffs_.size(); ++i) {
    const games::IntervalPayoffs& p = payoffs_[i];
    if (p.attacker_reward.lo() <= 0.0) {
      throw InvalidModelError(
          "SuqrIntervalBounds: attacker reward interval must be positive "
          "at target " + std::to_string(i));
    }
    if (p.attacker_penalty.hi() >= 0.0) {
      throw InvalidModelError(
          "SuqrIntervalBounds: attacker penalty interval must be negative "
          "at target " + std::to_string(i));
    }
    switch (mode_) {
      case IntervalMode::kExactBox:
        static_exponent_.push_back(weights_.w2 * p.attacker_reward +
                                   weights_.w3 * p.attacker_penalty);
        break;
      case IntervalMode::kPaperCorners: {
        // The paper's Section III arithmetic: all-lower endpoints for L and
        // all-upper for U; guard the ordering since the corner products are
        // not always the box extrema (see DESIGN.md §2).
        const double lo_corner = weights_.w2.lo() * p.attacker_reward.lo() +
                                 weights_.w3.lo() * p.attacker_penalty.lo();
        const double hi_corner = weights_.w2.hi() * p.attacker_reward.hi() +
                                 weights_.w3.hi() * p.attacker_penalty.hi();
        static_exponent_.push_back(Interval(std::min(lo_corner, hi_corner),
                                            std::max(lo_corner, hi_corner)));
        break;
      }
    }
  }
}

double SuqrIntervalBounds::log_lower(std::size_t i, double x) const {
  // x >= 0, w1 < 0: the exponent's minimum over w1 uses w1.lo.
  return weights_.w1.lo() * x + static_exponent_[i].lo();
}

double SuqrIntervalBounds::log_upper(std::size_t i, double x) const {
  return weights_.w1.hi() * x + static_exponent_[i].hi();
}

double SuqrIntervalBounds::lower(std::size_t i, double x) const {
  return std::exp(log_lower(i, x));
}

double SuqrIntervalBounds::upper(std::size_t i, double x) const {
  return std::exp(log_upper(i, x));
}

SuqrModel SuqrIntervalBounds::midpoint_model() const {
  SuqrWeights w{weights_.w1.mid(), weights_.w2.mid(), weights_.w3.mid()};
  std::vector<double> rewards(payoffs_.size());
  std::vector<double> penalties(payoffs_.size());
  for (std::size_t i = 0; i < payoffs_.size(); ++i) {
    rewards[i] = payoffs_[i].attacker_reward.mid();
    penalties[i] = payoffs_[i].attacker_penalty.mid();
  }
  return SuqrModel(w, std::move(rewards), std::move(penalties));
}

QrLambdaBounds::QrLambdaBounds(Interval lambda,
                               std::vector<games::IntervalPayoffs> payoffs)
    : lambda_(lambda), payoffs_(std::move(payoffs)) {
  if (!(lambda_.lo() > 0.0)) {
    throw InvalidModelError(
        "QrLambdaBounds: lambda interval must be strictly positive");
  }
  if (payoffs_.empty()) throw InvalidModelError("QrLambdaBounds: no targets");
  for (std::size_t i = 0; i < payoffs_.size(); ++i) {
    if (payoffs_[i].attacker_reward.lo() <= 0.0 ||
        payoffs_[i].attacker_penalty.hi() >= 0.0) {
      throw InvalidModelError(
          "QrLambdaBounds: reward intervals must be positive and penalty "
          "intervals negative at target " + std::to_string(i));
    }
  }
}

Interval QrLambdaBounds::attacker_utility_interval(std::size_t i,
                                                   double x) const {
  // Ua = x*Pa + (1-x)*Ra, monotone in each payoff: interval arithmetic
  // with non-negative coefficients is exact.
  const games::IntervalPayoffs& p = payoffs_[i];
  return x * p.attacker_penalty + (1.0 - x) * p.attacker_reward;
}

double QrLambdaBounds::lower(std::size_t i, double x) const {
  const Interval ua = attacker_utility_interval(i, x);
  // min over lambda in [lo,hi] of lambda * ua.lo(): depends on the sign.
  const double exponent = ua.lo() >= 0.0 ? lambda_.lo() * ua.lo()
                                         : lambda_.hi() * ua.lo();
  return std::exp(exponent);
}

double QrLambdaBounds::upper(std::size_t i, double x) const {
  const Interval ua = attacker_utility_interval(i, x);
  const double exponent = ua.hi() >= 0.0 ? lambda_.hi() * ua.hi()
                                         : lambda_.lo() * ua.hi();
  return std::exp(exponent);
}

PointBounds::PointBounds(std::shared_ptr<const AttractivenessModel> model)
    : model_(std::move(model)) {
  if (!model_) throw InvalidModelError("PointBounds: null model");
}

EnsembleBounds::EnsembleBounds(
    std::vector<std::shared_ptr<const AttractivenessModel>> models)
    : models_(std::move(models)) {
  if (models_.empty()) {
    throw InvalidModelError("EnsembleBounds: empty model set");
  }
  for (const auto& m : models_) {
    if (!m) throw InvalidModelError("EnsembleBounds: null model");
    if (m->num_targets() != models_.front()->num_targets()) {
      throw InvalidModelError("EnsembleBounds: target-count mismatch");
    }
  }
}

double EnsembleBounds::lower(std::size_t i, double x) const {
  double lo = models_.front()->attractiveness(i, x);
  for (std::size_t t = 1; t < models_.size(); ++t) {
    lo = std::min(lo, models_[t]->attractiveness(i, x));
  }
  return lo;
}

double EnsembleBounds::upper(std::size_t i, double x) const {
  double hi = models_.front()->attractiveness(i, x);
  for (std::size_t t = 1; t < models_.size(); ++t) {
    hi = std::max(hi, models_[t]->attractiveness(i, x));
  }
  return hi;
}

ScaledBounds::ScaledBounds(std::shared_ptr<const AttractivenessBounds> base,
                           double factor)
    : base_(std::move(base)), factor_(factor) {
  if (!base_) throw InvalidModelError("ScaledBounds: null base");
  if (!(factor >= 0.0) || factor > 1.0) {
    throw InvalidModelError("ScaledBounds: factor must lie in [0, 1]");
  }
}

double ScaledBounds::lower(std::size_t i, double x) const {
  const double l = base_->lower(i, x);
  const double u = base_->upper(i, x);
  // Interpolate in log space so both endpoints stay positive: the width
  // parameter scales log(U/L).
  const double logm = 0.5 * (std::log(l) + std::log(u));
  const double half = 0.5 * factor_ * (std::log(u) - std::log(l));
  return std::exp(logm - half);
}

double ScaledBounds::upper(std::size_t i, double x) const {
  const double l = base_->lower(i, x);
  const double u = base_->upper(i, x);
  const double logm = 0.5 * (std::log(l) + std::log(u));
  const double half = 0.5 * factor_ * (std::log(u) - std::log(l));
  return std::exp(logm + half);
}

}  // namespace cubisg::behavior

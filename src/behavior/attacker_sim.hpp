// Sampled attacker population for realized-utility evaluation.
//
// The paper evaluates strategies against the *worst case* of uncertainty;
// robustness papers in this line additionally report utility against
// attackers whose SUQR parameters are drawn from the uncertainty box.  This
// simulator provides that: N attacker types sampled uniformly from the
// weight/payoff boxes, each responding with its own quantal response.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "behavior/bounds.hpp"
#include "behavior/suqr.hpp"
#include "games/generators.hpp"
#include "games/security_game.hpp"

namespace cubisg::behavior {

/// A population of SUQR attacker types sampled from parameter boxes.
class SampledSuqrPopulation {
 public:
  /// Draws `num_types` attacker parameter vectors uniformly from the boxes.
  SampledSuqrPopulation(const SuqrWeightIntervals& weights,
                        std::span<const games::IntervalPayoffs> payoffs,
                        std::size_t num_types, Rng& rng);

  std::size_t num_types() const { return types_.size(); }
  const SuqrModel& type(std::size_t t) const { return types_[t]; }

  /// Mean defender expected utility over the population when the defender
  /// plays x (each type responds with its own quantal response).
  double mean_defender_utility(const games::SecurityGame& game,
                               std::span<const double> x) const;

  /// Minimum defender expected utility over the sampled types (an
  /// empirical, optimistic estimate of the true worst case).
  double min_defender_utility(const games::SecurityGame& game,
                              std::span<const double> x) const;

  /// Simulates `num_attacks` attacks: for each, a type is drawn uniformly,
  /// then a target from its quantal response; returns the empirical mean
  /// defender utility.  Monte-Carlo counterpart of mean_defender_utility.
  double simulate_attacks(const games::SecurityGame& game,
                          std::span<const double> x, std::size_t num_attacks,
                          Rng& rng) const;

 private:
  std::vector<SuqrModel> types_;
};

}  // namespace cubisg::behavior

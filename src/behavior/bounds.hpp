// Attractiveness uncertainty bounds L_i(x) <= F_i(x) <= U_i(x) (Section III).
//
// The paper's uncertainty game model replaces the exact attractiveness
// F_i(x_i) with a known interval I(x_i) = [L_i(x_i), U_i(x_i)], both
// endpoints positive and monotonically decreasing in x_i.  This header
// defines the abstract bounds interface the CUBIS core consumes, plus the
// SUQR instantiation where the intervals stem from boxes on the weights
// (w1, w2, w3) and on the attacker payoffs (Ra_i, Pa_i).
//
// Two interval semantics are provided (see DESIGN.md §2):
//  * kPaperCorners replicates the paper's Section III arithmetic, plugging
//    all lower endpoints into the exponent for L and all upper endpoints
//    for U (with a min/max guard so L <= U always holds);
//  * kExactBox computes the true min/max of the SUQR exponent over the
//    5-dimensional parameter box, which is exact because the exponent is
//    monotone in each parameter separately.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/interval.hpp"
#include "games/generators.hpp"
#include "behavior/suqr.hpp"

namespace cubisg::behavior {

/// Per-target lower/upper attractiveness bound functions.
class AttractivenessBounds {
 public:
  virtual ~AttractivenessBounds() = default;
  virtual std::size_t num_targets() const = 0;
  /// L_i(x): positive, decreasing in x on [0, 1].
  virtual double lower(std::size_t i, double x) const = 0;
  /// U_i(x): positive, decreasing in x on [0, 1], with L_i(x) <= U_i(x).
  virtual double upper(std::size_t i, double x) const = 0;

  /// Interval [L_i(x), U_i(x)].
  Interval interval(std::size_t i, double x) const {
    return Interval(lower(i, x), upper(i, x));
  }
  /// Midpoint attractiveness (the non-robust baseline's model).
  double midpoint(std::size_t i, double x) const {
    return 0.5 * (lower(i, x) + upper(i, x));
  }
};

/// Interval semantics for SUQR-derived bounds.
enum class IntervalMode {
  kPaperCorners,  ///< plug low/high endpoints (paper Section III example)
  kExactBox,      ///< true min/max over the parameter box
};

/// Box uncertainty on the SUQR weights.
struct SuqrWeightIntervals {
  Interval w1{-6.0, -2.0};  ///< coverage weight; must stay negative
  Interval w2{0.5, 1.0};    ///< reward weight; must stay non-negative
  Interval w3{0.4, 0.9};    ///< penalty weight; must stay non-negative
};

/// SUQR attractiveness bounds from weight and payoff boxes.
class SuqrIntervalBounds final : public AttractivenessBounds {
 public:
  /// Requires w1.hi < 0, w2.lo >= 0, w3.lo >= 0, positive reward intervals
  /// and negative penalty intervals.
  SuqrIntervalBounds(SuqrWeightIntervals weights,
                     std::vector<games::IntervalPayoffs> payoffs,
                     IntervalMode mode = IntervalMode::kExactBox);

  std::size_t num_targets() const override { return payoffs_.size(); }
  double lower(std::size_t i, double x) const override;
  double upper(std::size_t i, double x) const override;

  /// log L_i(x) (exponent lower bound); exposed for overflow-free tests.
  double log_lower(std::size_t i, double x) const;
  /// log U_i(x).
  double log_upper(std::size_t i, double x) const;

  const SuqrWeightIntervals& weights() const { return weights_; }
  IntervalMode mode() const { return mode_; }

  /// The SUQR model at the box midpoints (weights and payoffs), used by
  /// parameter-midpoint baselines and the attacker simulator.
  SuqrModel midpoint_model() const;

 private:
  SuqrWeightIntervals weights_;
  std::vector<games::IntervalPayoffs> payoffs_;
  IntervalMode mode_;
  /// Precomputed exponent interval of w2*Ra_i + w3*Pa_i per target.
  std::vector<Interval> static_exponent_;
};

/// Degenerate bounds L = U = F for a known point model; lets every robust
/// routine run on certainty as a special case (and is how tests check that
/// zero width recovers the non-robust solution).
class PointBounds final : public AttractivenessBounds {
 public:
  explicit PointBounds(std::shared_ptr<const AttractivenessModel> model);

  std::size_t num_targets() const override { return model_->num_targets(); }
  double lower(std::size_t i, double x) const override {
    return model_->attractiveness(i, x);
  }
  double upper(std::size_t i, double x) const override {
    return model_->attractiveness(i, x);
  }

 private:
  std::shared_ptr<const AttractivenessModel> model_;
};

/// Quantal-response attractiveness bounds: F_i(x) = exp(lambda * Ua_i(x))
/// with the rationality parameter lambda known only up to an interval
/// [lo, hi] (0 < lo <= hi) and the attacker payoffs up to the usual boxes.
/// Eq. 4 of the paper is the general model; this is its classical-QR
/// instantiation, showing the uncertainty-interval machinery is not tied
/// to SUQR.
///
/// Exactness: Ua(x) = x*Pa + (1-x)*Ra is monotone in Pa and Ra separately,
/// so the box extremes of Ua are attained at payoff corners; lambda > 0
/// then maps [Ua_lo, Ua_hi] monotonically, with the sign of Ua deciding
/// which lambda endpoint minimizes/maximizes lambda*Ua.
class QrLambdaBounds final : public AttractivenessBounds {
 public:
  /// Requires 0 < lambda.lo(); positive reward and negative penalty
  /// intervals per target.
  QrLambdaBounds(Interval lambda,
                 std::vector<games::IntervalPayoffs> payoffs);

  std::size_t num_targets() const override { return payoffs_.size(); }
  double lower(std::size_t i, double x) const override;
  double upper(std::size_t i, double x) const override;

  /// Attacker-utility interval at coverage x (exposed for tests).
  Interval attacker_utility_interval(std::size_t i, double x) const;

 private:
  Interval lambda_;
  std::vector<games::IntervalPayoffs> payoffs_;
};

/// Envelope of a finite candidate-model set: L_i(x) = min_t F_t(i, x),
/// U_i(x) = max_t F_t(i, x).  Bridges the related-work view (a set of
/// plausible attacker models, e.g. bootstrap refits or expert proposals)
/// and the paper's interval view: CUBIS on these bounds certifies a floor
/// against every model in the set (and, conservatively, against the whole
/// interval relaxation of it).
class EnsembleBounds final : public AttractivenessBounds {
 public:
  /// Requires a non-empty set of models over the same targets.
  explicit EnsembleBounds(
      std::vector<std::shared_ptr<const AttractivenessModel>> models);

  std::size_t num_targets() const override {
    return models_.front()->num_targets();
  }
  double lower(std::size_t i, double x) const override;
  double upper(std::size_t i, double x) const override;

  std::size_t num_models() const { return models_.size(); }

 private:
  std::vector<std::shared_ptr<const AttractivenessModel>> models_;
};

/// Bounds wrapper that scales the (multiplicative) interval width by a
/// factor in [0, 1]: 0 collapses to the geometric midpoint, 1 reproduces
/// the wrapped bounds.  Used by the uncertainty-level sweeps.
class ScaledBounds final : public AttractivenessBounds {
 public:
  ScaledBounds(std::shared_ptr<const AttractivenessBounds> base,
               double factor);

  std::size_t num_targets() const override { return base_->num_targets(); }
  double lower(std::size_t i, double x) const override;
  double upper(std::size_t i, double x) const override;

 private:
  std::shared_ptr<const AttractivenessBounds> base_;
  double factor_;
};

}  // namespace cubisg::behavior

#include "behavior/suqr.hpp"

#include <cmath>
#include <string>

#include "common/errors.hpp"
#include "common/math_util.hpp"

namespace cubisg::behavior {

double AttractivenessModel::log_attractiveness(std::size_t i,
                                               double x) const {
  return std::log(attractiveness(i, x));
}

std::vector<double> attack_probabilities(const AttractivenessModel& model,
                                         std::span<const double> x) {
  const std::size_t n = model.num_targets();
  if (x.size() != n) {
    throw InvalidModelError("attack_probabilities: strategy size mismatch");
  }
  std::vector<double> logf(n);
  for (std::size_t i = 0; i < n; ++i) {
    logf[i] = model.log_attractiveness(i, x[i]);
  }
  const double lse = log_sum_exp(logf);
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = std::exp(logf[i] - lse);
  return q;
}

double defender_expected_utility(const games::SecurityGame& game,
                                 const AttractivenessModel& model,
                                 std::span<const double> x) {
  const std::vector<double> q = attack_probabilities(model, x);
  double eu = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    eu += q[i] * game.defender_utility(i, x[i]);
  }
  return eu;
}

SuqrModel::SuqrModel(SuqrWeights weights,
                     std::vector<double> attacker_rewards,
                     std::vector<double> attacker_penalties)
    : weights_(weights),
      rewards_(std::move(attacker_rewards)),
      penalties_(std::move(attacker_penalties)) {
  if (!(weights_.w1 < 0.0)) {
    throw InvalidModelError("SuqrModel: w1 must be negative (coverage deters)");
  }
  if (rewards_.size() != penalties_.size() || rewards_.empty()) {
    throw InvalidModelError("SuqrModel: payoff vectors empty or mismatched");
  }
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    if (!std::isfinite(rewards_[i]) || !std::isfinite(penalties_[i])) {
      throw InvalidModelError("SuqrModel: non-finite payoff at target " +
                              std::to_string(i));
    }
  }
}

namespace {
std::vector<double> game_rewards(const games::SecurityGame& game) {
  std::vector<double> r(game.num_targets());
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = game.target(i).attacker_reward;
  }
  return r;
}
std::vector<double> game_penalties(const games::SecurityGame& game) {
  std::vector<double> p(game.num_targets());
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = game.target(i).attacker_penalty;
  }
  return p;
}
}  // namespace

SuqrModel::SuqrModel(SuqrWeights weights, const games::SecurityGame& game)
    : SuqrModel(weights, game_rewards(game), game_penalties(game)) {}

double SuqrModel::attractiveness(std::size_t i, double x) const {
  return std::exp(log_attractiveness(i, x));
}

double SuqrModel::log_attractiveness(std::size_t i, double x) const {
  return weights_.w1 * x + weights_.w2 * rewards_[i] +
         weights_.w3 * penalties_[i];
}

QuantalResponseModel::QuantalResponseModel(double lambda,
                                           const games::SecurityGame& game)
    : lambda_(lambda), game_(&game) {
  if (!(lambda > 0.0)) {
    throw InvalidModelError("QuantalResponseModel: lambda must be positive");
  }
}

double QuantalResponseModel::attractiveness(std::size_t i, double x) const {
  return std::exp(log_attractiveness(i, x));
}

double QuantalResponseModel::log_attractiveness(std::size_t i,
                                                double x) const {
  return lambda_ * game_->attacker_utility(i, x);
}

}  // namespace cubisg::behavior

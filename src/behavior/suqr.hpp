// Quantal-response style behavioral models (Section II of the paper).
//
// The general discrete-choice model predicts attack probabilities
//   q_i(x) = F_i(x_i) / sum_j F_j(x_j)                       (Eq. 4)
// where F_i: [0,1] -> R+ is positive and monotonically decreasing in the
// coverage x_i.  SUQR instantiates F_i(x) = exp(w1 x + w2 Ra_i + w3 Pa_i)
// (Eq. 3) with w1 < 0, w2 >= 0, w3 >= 0.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "games/security_game.hpp"

namespace cubisg::behavior {

/// Point behavioral model: a known attractiveness function per target.
class AttractivenessModel {
 public:
  virtual ~AttractivenessModel() = default;
  virtual std::size_t num_targets() const = 0;
  /// F_i(x): positive, decreasing in x over [0, 1].
  virtual double attractiveness(std::size_t i, double x) const = 0;
  /// log F_i(x); default implementation takes log of attractiveness but
  /// models with exponential form override it for stability.
  virtual double log_attractiveness(std::size_t i, double x) const;
};

/// Attack probability distribution q(x) of Eq. 4, computed in log space.
std::vector<double> attack_probabilities(const AttractivenessModel& model,
                                         std::span<const double> x);

/// Defender expected utility sum_i q_i(x) Ud_i(x_i) under a point model.
double defender_expected_utility(const games::SecurityGame& game,
                                 const AttractivenessModel& model,
                                 std::span<const double> x);

/// SUQR weights (w1: coverage, w2: attacker reward, w3: attacker penalty).
struct SuqrWeights {
  double w1 = -4.0;
  double w2 = 0.75;
  double w3 = 0.65;
};

/// The SUQR model of Eq. 3 for a fixed weight vector and point payoffs.
class SuqrModel final : public AttractivenessModel {
 public:
  /// Requires w1 < 0 and per-target finite payoffs.
  SuqrModel(SuqrWeights weights, std::vector<double> attacker_rewards,
            std::vector<double> attacker_penalties);

  /// Convenience: payoffs taken from the game's (point) attacker payoffs.
  SuqrModel(SuqrWeights weights, const games::SecurityGame& game);

  std::size_t num_targets() const override { return rewards_.size(); }
  double attractiveness(std::size_t i, double x) const override;
  double log_attractiveness(std::size_t i, double x) const override;

  const SuqrWeights& weights() const { return weights_; }

 private:
  SuqrWeights weights_;
  std::vector<double> rewards_;
  std::vector<double> penalties_;
};

/// Classic quantal response on the attacker's true expected utility:
/// F_i(x) = exp(lambda * Ua_i(x)).  Included as the QR special case the
/// paper's Eq. 4 generalizes.
class QuantalResponseModel final : public AttractivenessModel {
 public:
  /// Requires lambda > 0 (rationality increases with lambda).
  QuantalResponseModel(double lambda, const games::SecurityGame& game);

  std::size_t num_targets() const override { return game_->num_targets(); }
  double attractiveness(std::size_t i, double x) const override;
  double log_attractiveness(std::size_t i, double x) const override;

 private:
  double lambda_;
  const games::SecurityGame* game_;  ///< non-owning; caller keeps it alive
};

}  // namespace cubisg::behavior

#include "behavior/scenario.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/errors.hpp"

namespace cubisg::behavior {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);  // hex float: lossless
  return buf;
}

double parse(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

}  // namespace

void write_scenario(std::ostream& os, const Scenario& scenario) {
  const games::SecurityGame& g = scenario.game.game;
  os << "cubisg-scenario 1\n";
  os << "targets " << g.num_targets() << " resources "
     << fmt(g.resources()) << '\n';
  os << "mode "
     << (scenario.mode == IntervalMode::kPaperCorners ? "paper-corners"
                                                      : "exact-box")
     << '\n';
  os << "weights " << fmt(scenario.weights.w1.lo()) << ' '
     << fmt(scenario.weights.w1.hi()) << ' '
     << fmt(scenario.weights.w2.lo()) << ' '
     << fmt(scenario.weights.w2.hi()) << ' '
     << fmt(scenario.weights.w3.lo()) << ' '
     << fmt(scenario.weights.w3.hi()) << '\n';
  if (!scenario.coverage.is_default() && !scenario.coverage.is_simplex()) {
    // Single whitespace-free token (see CoverageSpace::descriptor), so the
    // line-oriented reader can treat it like any other keyed field.
    os << "coverage " << scenario.coverage.descriptor() << '\n';
  }
  for (std::size_t i = 0; i < g.num_targets(); ++i) {
    const games::TargetPayoffs& p = g.target(i);
    const games::IntervalPayoffs& iv = scenario.game.attacker_intervals[i];
    os << "target " << fmt(p.attacker_reward) << ' '
       << fmt(p.attacker_penalty) << ' ' << fmt(p.defender_reward) << ' '
       << fmt(p.defender_penalty) << ' ' << fmt(iv.attacker_reward.lo())
       << ' ' << fmt(iv.attacker_reward.hi()) << ' '
       << fmt(iv.attacker_penalty.lo()) << ' '
       << fmt(iv.attacker_penalty.hi()) << '\n';
  }
}

Scenario read_scenario(std::istream& is) {
  auto fail = [](const std::string& why) -> Scenario {
    throw InvalidModelError("read_scenario: " + why);
  };
  std::string tag;
  int version = 0;
  if (!(is >> tag >> version) || tag != "cubisg-scenario" || version != 1) {
    return fail("bad header");
  }
  std::string key;
  std::size_t targets = 0;
  std::string resources;
  if (!(is >> key >> targets) || key != "targets") return fail("targets");
  if (!(is >> key >> resources) || key != "resources") {
    return fail("resources");
  }
  std::string mode_name;
  if (!(is >> key >> mode_name) || key != "mode") return fail("mode");
  const IntervalMode mode = mode_name == "paper-corners"
                                ? IntervalMode::kPaperCorners
                                : IntervalMode::kExactBox;
  std::string w[6];
  if (!(is >> key >> w[0] >> w[1] >> w[2] >> w[3] >> w[4] >> w[5]) ||
      key != "weights") {
    return fail("weights");
  }
  SuqrWeightIntervals weights;
  weights.w1 = Interval(parse(w[0]), parse(w[1]));
  weights.w2 = Interval(parse(w[2]), parse(w[3]));
  weights.w3 = Interval(parse(w[4]), parse(w[5]));

  // Optional `coverage <descriptor>` line (format addition; absent in
  // legacy files, which jump straight to the target rows).
  games::CoverageSpace coverage;
  bool key_pending = false;
  if (is >> key) {
    if (key == "coverage") {
      std::string desc;
      if (!(is >> desc)) return fail("coverage");
      auto parsed = games::CoverageSpace::from_descriptor(desc);
      if (!parsed) return fail("coverage descriptor");
      if (!parsed->is_default() && parsed->num_targets() != targets) {
        return fail("coverage target count");
      }
      coverage = *parsed;
    } else {
      key_pending = true;
    }
  }

  std::vector<games::TargetPayoffs> payoffs;
  std::vector<games::IntervalPayoffs> intervals;
  for (std::size_t i = 0; i < targets; ++i) {
    std::string f[8];
    if (!key_pending && !(is >> key)) {
      return fail("target row " + std::to_string(i));
    }
    key_pending = false;
    if (!(is >> f[0] >> f[1] >> f[2] >> f[3] >> f[4] >> f[5] >> f[6] >>
          f[7]) ||
        key != "target") {
      return fail("target row " + std::to_string(i));
    }
    payoffs.push_back({parse(f[0]), parse(f[1]), parse(f[2]), parse(f[3])});
    intervals.push_back({Interval(parse(f[4]), parse(f[5])),
                         Interval(parse(f[6]), parse(f[7]))});
  }
  Scenario s{games::UncertainGame{
                 games::SecurityGame(std::move(payoffs), parse(resources)),
                 std::move(intervals)},
             weights, mode, coverage};
  return s;
}

bool save_scenario(const std::string& path, const Scenario& scenario) {
  std::ofstream f(path);
  if (!f) return false;
  write_scenario(f, scenario);
  return static_cast<bool>(f);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw InvalidModelError("load_scenario: cannot open " + path);
  return read_scenario(f);
}

}  // namespace cubisg::behavior

// Cross-solve memoization: a sharded LRU of canonical solutions keyed by
// scenario fingerprint (core/fingerprint.hpp), with warm-start transplant
// donors for near misses.
//
// Two service levels, selected by CacheMode:
//
//   kExact       an exact fingerprint hit returns the cached canonical
//                solution without solving; the engine re-stamps the job
//                id and leaves telemetry empty (the same fields the batch
//                journal's solution digest zeroes), so a hit is bitwise-
//                identical to a cold solve under that digest.
//   kTransplant  exact hits as above; on a miss the nearest same-compat
//                neighbor (fingerprint_distance) donates its breakpoint
//                tables and MILP skeleton as a TransplantSeed.  The
//                solver's adopt/repair/reject ladder (core/cubis.cpp)
//                guarantees the seeded solve stays bitwise-identical to
//                a cold solve; the cache only makes it cheaper.
//
// Concurrency: each shard has its own mutex; lookups copy the solution
// out under the lock and donors are immutable shared_ptrs, so concurrent
// mixed hit/miss load is race-free (the TSan-labeled differential tests
// pin this).  Capacity is per-cache and split across shards; eviction is
// per-shard LRU.
//
// Observability: cache.{hits,misses,transplants,transplant_rejects,
// evictions}_total counters, a cache.entries gauge, and a /cachez JSON
// status page (registered while a cache exists, like /workersz).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/solvers.hpp"
#include "core/workspace.hpp"

namespace cubisg::engine {

enum class CacheMode {
  kOff,        ///< no cache (the engine skips fingerprinting entirely)
  kExact,      ///< exact-hit returns only
  kTransplant, ///< exact hits + nearest-neighbor warm-start transplant
};

const char* to_string(CacheMode mode);
/// Parses "off" | "exact" | "transplant" (the --cache flag); false on
/// anything else.
bool parse_cache_mode(const std::string& text, CacheMode& out);

/// Local (per-cache) counter snapshot; the registry counters are global
/// totals across every cache in the process.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t transplants = 0;
  std::int64_t transplant_rejects = 0;
  std::int64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  std::size_t shards = 0;
};

class SolveCache {
 public:
  /// `capacity` is the total entry budget (min 1), split across `shards`
  /// (0 = auto: capacity/8 shards, clamped to [1, 8], so small caches
  /// stay single-sharded instead of thrashing 1-entry shards).
  /// Registers /cachez.
  SolveCache(CacheMode mode, std::size_t capacity, std::size_t shards = 0);
  ~SolveCache();

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  CacheMode mode() const { return mode_; }

  /// Exact hit: copies the canonical solution into `out` (id 0, wall 0,
  /// telemetry empty — the caller re-stamps) and refreshes LRU.  A miss
  /// (or a digest collision with different fingerprint content) counts
  /// cache.misses_total and returns false.
  bool lookup_exact(const core::Fingerprint& fp,
                    core::DefenderSolution& out);

  /// Nearest same-compat donor for a transplant (kTransplant mode), or
  /// null when no cached entry is compatible.  Does not touch LRU order
  /// or the hit/miss counters — the preceding lookup_exact already
  /// counted this job's miss.
  std::shared_ptr<const core::TransplantDonor> nearest(
      const core::Fingerprint& fp) const;

  /// Inserts (or refreshes) the entry for `fp`.  The solution is
  /// canonicalized (wall zeroed, telemetry cleared) before storage;
  /// `donor` may be null (exact-only entries still serve hits).
  void insert(const core::Fingerprint& fp,
              const core::DefenderSolution& solution,
              std::shared_ptr<const core::TransplantDonor> donor);

  /// Counter feeds for transplant outcomes observed by the engine after
  /// a seeded solve returns.
  void count_transplant();
  void count_transplant_reject();

  CacheStats stats() const;
  /// The /cachez body (also callable directly in tests).
  std::string status_json() const;

 private:
  struct Entry {
    core::Fingerprint fp;
    core::DefenderSolution solution;
    std::shared_ptr<const core::TransplantDonor> donor;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  };

  Shard& shard_for(std::uint64_t digest) {
    return *shards_[digest % shards_.size()];
  }
  const Shard& shard_for(std::uint64_t digest) const {
    return *shards_[digest % shards_.size()];
  }
  std::size_t shard_capacity(std::size_t shard_index) const;
  void publish_entries_gauge();

  CacheMode mode_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> transplants_{0};
  std::atomic<std::int64_t> transplant_rejects_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::size_t> entries_{0};
};

/// Builds the per-job transplant seed from a donor: adopt flags by
/// bitwise per-target block comparison against the job's fingerprint.
/// Returns null when nothing is adoptable (a seed that repairs every
/// target saves no work over the cold build).
std::shared_ptr<const core::TransplantSeed> make_transplant_seed(
    std::shared_ptr<const core::TransplantDonor> donor,
    const core::Fingerprint& fp);

}  // namespace cubisg::engine

#include "engine/solve_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/status_page.hpp"

namespace cubisg::engine {

namespace {

/// Registry handles for the cache, resolved once.  These are process-
/// global monotonic totals (summed across every SolveCache instance);
/// per-cache numbers live in CacheStats.
struct CacheMetrics {
  obs::Counter& hits =
      obs::Registry::global().counter("cache.hits_total");
  obs::Counter& misses =
      obs::Registry::global().counter("cache.misses_total");
  obs::Counter& transplants =
      obs::Registry::global().counter("cache.transplants_total");
  obs::Counter& transplant_rejects =
      obs::Registry::global().counter("cache.transplant_rejects_total");
  obs::Counter& evictions =
      obs::Registry::global().counter("cache.evictions_total");
  obs::Gauge& entries = obs::Registry::global().gauge("cache.entries");

  static CacheMetrics& get() {
    static CacheMetrics m;
    return m;
  }
};

}  // namespace

const char* to_string(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kExact:
      return "exact";
    case CacheMode::kTransplant:
      return "transplant";
  }
  return "off";
}

bool parse_cache_mode(const std::string& text, CacheMode& out) {
  if (text == "off") {
    out = CacheMode::kOff;
  } else if (text == "exact") {
    out = CacheMode::kExact;
  } else if (text == "transplant") {
    out = CacheMode::kTransplant;
  } else {
    return false;
  }
  return true;
}

SolveCache::SolveCache(CacheMode mode, std::size_t capacity,
                       std::size_t shards)
    : mode_(mode), capacity_(std::max<std::size_t>(1, capacity)) {
  // Auto shard count scales with capacity: lock spread only pays off
  // once shards hold a real working set each — a small cache split into
  // 1-entry shards would evict digest-colliding entries that the budget
  // has plenty of room for (conflict misses with a half-empty cache).
  std::size_t count = shards != 0 ? shards : std::max<std::size_t>(
      1, std::min<std::size_t>(8, capacity_ / 8));
  count = std::clamp<std::size_t>(count, 1, capacity_);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  CacheMetrics::get();  // resolve eagerly, mirroring EngineMetrics
  obs::register_status_page("/cachez", "application/json",
                            [this] { return status_json(); });
}

SolveCache::~SolveCache() { obs::unregister_status_page("/cachez"); }

std::size_t SolveCache::shard_capacity(std::size_t shard_index) const {
  // Distribute the budget as evenly as possible; every shard gets >= 1
  // because the shard count is clamped to the capacity.
  const std::size_t n = shards_.size();
  return capacity_ / n + (shard_index < capacity_ % n ? 1 : 0);
}

void SolveCache::publish_entries_gauge() {
  CacheMetrics::get().entries.set(
      static_cast<double>(entries_.load(std::memory_order_relaxed)));
}

bool SolveCache::lookup_exact(const core::Fingerprint& fp,
                              core::DefenderSolution& out) {
  Shard& shard = shard_for(fp.digest);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp.digest);
    // Full-fingerprint compare guards against 64-bit digest collisions:
    // a colliding entry is treated as a miss, never served or evicted.
    if (it != shard.index.end() && it->second->fp == fp) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out = shard.lru.front().solution;
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::get().hits.add(1);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().misses.add(1);
  return false;
}

std::shared_ptr<const core::TransplantDonor> SolveCache::nearest(
    const core::Fingerprint& fp) const {
  std::shared_ptr<const core::TransplantDonor> best;
  double best_distance = std::numeric_limits<double>::infinity();
  std::uint64_t best_digest = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) {
      if (entry.donor == nullptr) continue;
      const double d = fingerprint_distance(fp, entry.fp);
      if (d == std::numeric_limits<double>::infinity()) continue;
      // Ties break on the digest so the choice is deterministic under
      // any shard iteration order.
      if (d < best_distance ||
          (d == best_distance && entry.fp.digest < best_digest)) {
        best_distance = d;
        best_digest = entry.fp.digest;
        best = entry.donor;
      }
    }
  }
  return best;
}

void SolveCache::insert(const core::Fingerprint& fp,
                        const core::DefenderSolution& solution,
                        std::shared_ptr<const core::TransplantDonor> donor) {
  Entry entry;
  entry.fp = fp;
  entry.solution = solution;
  // Canonical form: everything run-specific zeroed, matching the batch
  // journal's solution digest, so a future hit is re-stamped cleanly.
  entry.solution.wall_seconds = 0.0;
  entry.solution.telemetry = {};
  entry.donor = std::move(donor);

  const std::size_t shard_index = fp.digest % shards_.size();
  Shard& shard = *shards_[shard_index];
  std::size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(fp.digest);
    if (it != shard.index.end()) {
      // Refresh in place (same scenario re-solved, or a collision — the
      // newer entry wins either way).
      *it->second = std::move(entry);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(std::move(entry));
      shard.index.emplace(fp.digest, shard.lru.begin());
      entries_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t cap = shard_capacity(shard_index);
      while (shard.lru.size() > cap) {
        shard.index.erase(shard.lru.back().fp.digest);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    entries_.fetch_sub(evicted, std::memory_order_relaxed);
    evictions_.fetch_add(static_cast<std::int64_t>(evicted),
                         std::memory_order_relaxed);
    CacheMetrics::get().evictions.add(static_cast<std::int64_t>(evicted));
  }
  publish_entries_gauge();
}

void SolveCache::count_transplant() {
  transplants_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().transplants.add(1);
}

void SolveCache::count_transplant_reject() {
  transplant_rejects_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::get().transplant_rejects.add(1);
}

CacheStats SolveCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.transplants = transplants_.load(std::memory_order_relaxed);
  s.transplant_rejects =
      transplant_rejects_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.capacity = capacity_;
  s.shards = shards_.size();
  return s;
}

std::string SolveCache::status_json() const {
  const CacheStats s = stats();
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"mode\":\"%s\",\"capacity\":%zu,\"shards\":%zu,\"entries\":%zu,"
      "\"hits\":%lld,\"misses\":%lld,\"transplants\":%lld,"
      "\"transplant_rejects\":%lld,\"evictions\":%lld}\n",
      to_string(mode_), s.capacity, s.shards, s.entries,
      static_cast<long long>(s.hits), static_cast<long long>(s.misses),
      static_cast<long long>(s.transplants),
      static_cast<long long>(s.transplant_rejects),
      static_cast<long long>(s.evictions));
  return buf;
}

std::shared_ptr<const core::TransplantSeed> make_transplant_seed(
    std::shared_ptr<const core::TransplantDonor> donor,
    const core::Fingerprint& fp) {
  if (donor == nullptr) return nullptr;
  const std::size_t n = fp.num_targets();
  if (donor->blocks.size() != fp.blocks.size()) return nullptr;
  auto seed = std::make_shared<core::TransplantSeed>();
  seed->adopt.assign(n, 0);
  std::size_t adoptable = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool same = true;
    for (std::size_t j = 0; j < core::kFingerprintBlockDoubles; ++j) {
      const std::size_t idx = i * core::kFingerprintBlockDoubles + j;
      std::uint64_t a;
      std::uint64_t b;
      std::memcpy(&a, &fp.blocks[idx], sizeof a);
      std::memcpy(&b, &donor->blocks[idx], sizeof b);
      if (a != b) {
        same = false;
        break;
      }
    }
    if (same) {
      seed->adopt[i] = 1;
      ++adoptable;
    }
  }
  if (adoptable == 0) return nullptr;
  seed->donor = std::move(donor);
  return seed;
}

}  // namespace cubisg::engine

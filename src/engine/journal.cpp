#include "engine/journal.hpp"

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_inject.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define CUBISG_JOURNAL_FSYNC 1
#else
#define CUBISG_JOURNAL_FSYNC 0
#endif

namespace cubisg::engine {

namespace {

constexpr char kHeader[] = "cubisg-journal 2";
constexpr char kHeaderV1[] = "cubisg-journal 1";

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::uint32_t fnv1a32(const std::string& s) {
  std::uint32_t h = 2166136261u;
  for (unsigned char c : s) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::string hex8(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool BatchJournal::open(const std::string& path, std::string& error) {
  close();
  // "a+" so a fresh open can tell whether the file already has content
  // (ftell after a seek-to-end) without a second stat.
  file_ = std::fopen(path.c_str(), "a+");
  if (file_ == nullptr) {
    error = "cannot open journal '" + path + "' for append";
    return false;
  }
  std::fseek(file_, 0, SEEK_END);
  if (std::ftell(file_) == 0) {
    std::fprintf(file_, "%s\n", kHeader);
    std::fflush(file_);
  } else {
    // A crash can leave a torn final record with no newline.  Terminate
    // it now so the first record this run appends starts on a fresh
    // line instead of gluing onto (and corrupting) the torn one.
    std::fseek(file_, -1, SEEK_END);
    if (std::fgetc(file_) != '\n') std::fputc('\n', file_);
    std::fseek(file_, 0, SEEK_END);
  }
  return true;
}

bool BatchJournal::record(const std::string& tag, std::uint64_t digest,
                          const std::string& status, std::int64_t cache_hits,
                          std::int64_t cache_transplants) {
  if (file_ == nullptr) return false;
  const std::string counts = std::to_string(cache_hits) + " " +
                             std::to_string(cache_transplants);
  const std::string payload =
      hex16(digest) + " " + status + " " + counts + " " + tag;
  const std::string line = "done " + hex16(digest) + " " + status + " " +
                           counts + " " + hex8(fnv1a32(payload)) + " " + tag +
                           "\n";
  if (faultinject::should_fail(faultinject::Site::kJournalTornWrite)) {
    // Simulated power cut mid-append: half the record reaches the file,
    // no newline, no fsync.  load() must shrug this off.
    const std::size_t half = line.size() / 2;
    std::fwrite(line.data(), 1, half, file_);
    std::fflush(file_);
    return true;
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  if (std::fflush(file_) != 0) return false;
#if CUBISG_JOURNAL_FSYNC
  ::fsync(::fileno(file_));
#endif
  return true;
}

void BatchJournal::close() {
  if (file_ != nullptr) {
    std::fflush(file_);
#if CUBISG_JOURNAL_FSYNC
    ::fsync(::fileno(file_));
#endif
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool BatchJournal::load(const std::string& path,
                        std::vector<JournalEntry>& out, std::string& error,
                        std::size_t* malformed) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot read journal '" + path + "'";
    return false;
  }
  std::size_t bad = 0;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      if (line == kHeader || line == kHeaderV1) continue;
      // Headerless/foreign file: fall through and try the line as a
      // record; it will count as malformed if it is not one.
    }
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string word, digest_hex, status;
    if (!(ls >> word >> digest_hex >> status) || word != "done" ||
        digest_hex.size() != 16) {
      ++bad;
      continue;
    }
    std::uint64_t digest = 0;
    if (std::sscanf(digest_hex.c_str(), "%" SCNx64, &digest) != 1) {
      ++bad;
      continue;
    }
    // Per-line version disambiguation: a v2 record has
    // "<hits> <transplants> <crc> <tag...>" left, a v1 record
    // "<crc> <tag...>".  Whichever layout's CRC verifies wins; a tag
    // that *looks* like the other version's fields cannot be confused
    // because the CRC covers the exact field split.
    std::string rest;
    std::getline(ls, rest);
    if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
    JournalEntry entry;
    entry.status = status;
    entry.digest = digest;
    bool parsed = false;
    {
      // v2 attempt.
      std::istringstream rs(rest);
      std::string hits, transplants, crc_hex;
      if (rs >> hits >> transplants >> crc_hex && all_digits(hits) &&
          all_digits(transplants) && crc_hex.size() == 8) {
        std::string tag;
        std::getline(rs, tag);
        if (!tag.empty() && tag[0] == ' ') tag.erase(0, 1);
        std::uint32_t crc = 0;
        if (std::sscanf(crc_hex.c_str(), "%x", &crc) == 1 &&
            fnv1a32(digest_hex + " " + status + " " + hits + " " +
                    transplants + " " + tag) == crc) {
          entry.tag = tag;
          entry.cache_hits = std::strtoll(hits.c_str(), nullptr, 10);
          entry.cache_transplants =
              std::strtoll(transplants.c_str(), nullptr, 10);
          parsed = true;
        }
      }
    }
    if (!parsed) {
      // v1 attempt.
      std::istringstream rs(rest);
      std::string crc_hex;
      if (rs >> crc_hex && crc_hex.size() == 8) {
        std::string tag;
        std::getline(rs, tag);
        if (!tag.empty() && tag[0] == ' ') tag.erase(0, 1);
        std::uint32_t crc = 0;
        if (std::sscanf(crc_hex.c_str(), "%x", &crc) == 1 &&
            fnv1a32(digest_hex + " " + status + " " + tag) == crc) {
          entry.tag = tag;
          parsed = true;
        }
      }
    }
    if (!parsed) {
      ++bad;
      continue;
    }
    // Later records for a tag win (a resumed run re-records its jobs).
    bool replaced = false;
    for (JournalEntry& e : out) {
      if (e.tag == entry.tag) {
        e = entry;
        replaced = true;
        break;
      }
    }
    if (!replaced) out.push_back(std::move(entry));
  }
  if (malformed != nullptr) *malformed = bad;
  return true;
}

}  // namespace cubisg::engine

// Concurrent solve engine: a bounded MPMC job queue feeding a fixed pool
// of worker threads, each pinning one long-lived SolveWorkspace that is
// reused across jobs (allocation capacity survives between solves, values
// never do — see core/workspace.hpp, so results are identical to fresh
// one-shot solves).
//
// Lifecycle and semantics:
//  * The solver is shared, immutable configuration: one DefenderSolver
//    instance serves every worker concurrently (solve() is const).
//  * Admission is non-blocking with backpressure: try_submit() rejects
//    with std::nullopt when the queue is full, mirroring the HTTP
//    exporter's 503 overload behavior; submit() blocks for space instead.
//  * Every job gets a typed JobOutcome through a std::future: kCompleted
//    carries the DefenderSolution (including budget-stop statuses — the
//    solver returning is completion), kFailed carries the escaped
//    exception's message, kCancelled marks jobs drained after cancel_all()
//    without ever starting.
//  * cancel_all() is async-signal-safe (relaxed atomic stores only): it
//    latches the cancelled flag and trips every worker's per-job
//    SolveBudget, so in-flight solves unwind at their next safe point and
//    queued jobs drain as kCancelled.  Workers poll the queue with a
//    bounded 50 ms wait, so no condition-variable notify is needed from a
//    signal handler.
//
// Metrics (obs registry / Prometheus endpoint):
//   engine.queue_depth                 gauge, jobs waiting for a worker
//   engine.jobs_accepted_total         admitted by try_submit/submit
//   engine.jobs_rejected_total         bounced on a full queue
//   engine.jobs_completed_total        solver returned a solution
//   engine.jobs_failed_total           solve escaped with an exception
//   engine.jobs_cancelled_total        drained without starting
//   engine.solve_latency               histogram of solve wall seconds
//   engine.queue_wait_seconds          histogram, admission -> pickup
//   engine.slow_solves_total           solves over the flight-recorder SLO
//   engine.jobs_retried_total          transient-failure re-attempts
//   engine.jobs_quarantined_total      jobs that kept crashing workers
//   engine.worker_crashes_total        worker processes that died mid-job
//   engine.worker_restarts_total       worker processes respawned
//   engine.workers_alive               gauge, live worker processes
//
// Isolation: by default jobs run on the worker thread (kThread).  With
// EngineOptions::isolation = kProcess, each worker thread instead drives
// a forked child process (engine/process_pool.hpp) through a supervisor
// (engine/supervisor.hpp) that detects crashes, respawns with capped
// exponential backoff, SIGKILLs wedged children past deadline + grace,
// and quarantines jobs that crash their worker repeatedly.  Process-mode
// jobs must carry SolveJob::scenario (the child re-reads the model from
// its lossless text form); jobs without one fall back to in-process
// execution.  Clean process-mode solves are bitwise-identical to thread
// mode except for wall_seconds and telemetry attribution.
//
// Per-job tracing: when span collection is on, every job's id is carried
// into the trace — the worker emits an "engine.queue_wait" span covering
// admission -> pickup and an "engine.execute" span around the solve, and
// every nested solver span (cubis.*, milp.*, lp.*) closed during the job
// is tagged with the id (TraceJobScope), so a merged multi-worker Chrome
// trace can be filtered to one job across its whole lifetime.  Slow jobs
// (wall time >= the armed FlightRecorder SLO) additionally deposit a
// forensic FlightEntry — SolveReport, per-phase totals, budget state —
// into obs::FlightRecorder::global() (served at GET /slowz).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/budget.hpp"
#include "common/timer.hpp"
#include "core/solvers.hpp"
#include "engine/solve_cache.hpp"
#include "games/security_game.hpp"

namespace cubisg::behavior {
struct Scenario;
}  // namespace cubisg::behavior

namespace cubisg::engine {

struct SolveJob;
struct JobOutcome;
class Supervisor;
struct CacheSeedFrame;
struct CacheDonorFrame;

/// Where jobs execute.
enum class IsolationMode {
  kThread,   ///< on the worker thread itself (default)
  kProcess,  ///< in a forked, crash-contained worker child process
};

/// Retry behavior for failed jobs.  Transient failures — numeric-issue
/// solve statuses, escaped non-deterministic exceptions, fault-injected
/// failures, worker crashes — are worth re-attempting; deterministic
/// ones (infeasible model, malformed input) fail identically every time
/// and are never retried.
struct RetryPolicy {
  /// Solve attempts per job for transient failures.  1 = no retry
  /// (default), matching the historical fail-fast behavior.
  int max_attempts = 1;
  /// Worker crashes a single job may absorb before it is quarantined
  /// (process isolation only; counted separately from max_attempts).
  /// 0 = the first crash fails the job with kWorkerCrashed.
  int max_crashes = 2;
  /// Backoff between attempts/respawns: initial * 2^n, capped, jittered
  /// deterministically (+/-25%) so respawning workers do not stampede.
  double backoff_initial_ms = 50.0;
  double backoff_max_ms = 2000.0;
};

/// Engine sizing.  All knobs are fixed at construction.
struct EngineOptions {
  std::size_t workers = 1;         ///< worker threads (min 1)
  std::size_t queue_capacity = 64; ///< jobs waiting beyond the workers
  /// Applied to jobs that do not set their own (0 = unbudgeted).
  double default_deadline_seconds = 0.0;
  std::int64_t default_max_nodes = 0;
  /// Job execution isolation.  kProcess silently degrades to kThread
  /// (with one warning log) when process_isolation_available() is false.
  IsolationMode isolation = IsolationMode::kThread;
  RetryPolicy retry;
  /// Process mode: a worker child silent for this long mid-job is
  /// presumed wedged at the protocol layer and SIGKILLed (children
  /// heartbeat every ~200 ms while solving).
  double heartbeat_timeout_seconds = 5.0;
  /// Process mode: how far past a job's cooperative deadline (or a
  /// cancel request) a child may run before SIGKILL.
  double kill_grace_seconds = 1.0;
  /// Invoked on the worker thread after a job's final outcome is built
  /// (any status except jobs drained as kCancelled without starting) —
  /// once per job, after retries — before the future is fulfilled.
  /// serve/batch wire the shadow auditor's observe() here.  Must be
  /// cheap; exceptions are swallowed — the engine stays audit-free,
  /// observers are advisory.  Null = disabled.
  std::function<void(const SolveJob&, const JobOutcome&)> on_outcome;
  /// Cross-solve memoization (engine/solve_cache.hpp).  Only jobs that
  /// carry a SolveJob::scenario participate — the scenario is the
  /// fingerprint source.  solver_config must be the canonical config
  /// string of the engine's solver (core::canonical_solver_config); it
  /// is folded into every fingerprint so caches never serve results
  /// across differently-configured solvers.
  struct CacheOptions {
    CacheMode mode = CacheMode::kOff;
    std::size_t entries = 256;  ///< total LRU capacity (--cache-entries)
    std::size_t shards = 0;     ///< 0 = auto
    std::string solver_config;
  } cache;
};

/// One solve request.  shared_ptr ownership keeps the problem alive for
/// the duration of the job regardless of what the submitter does next
/// (aliasing constructors let a single Scenario own both pointees).
struct SolveJob {
  std::shared_ptr<const games::SecurityGame> game;
  std::shared_ptr<const behavior::AttractivenessBounds> bounds;
  /// Required for process isolation: the child reconstructs the problem
  /// from the scenario's lossless text form.  Jobs without one run
  /// in-process even under IsolationMode::kProcess.
  std::shared_ptr<const behavior::Scenario> scenario;
  double deadline_seconds = 0.0;  ///< 0 = engine default
  std::int64_t max_nodes = 0;     ///< 0 = engine default
  std::string tag;                ///< caller label (e.g. scenario path)
};

enum class JobStatus {
  kCompleted,  ///< the solver returned (solution.status may be a budget stop)
  kFailed,     ///< the solve escaped with an exception
  kCancelled,  ///< drained after cancel_all() without starting
  /// Process isolation: the worker child died mid-job (crash, SIGKILL
  /// after a wedge) and the crash-retry budget was exhausted or zero.
  kWorkerCrashed,
  /// Process isolation: this job crashed its worker more than
  /// RetryPolicy::max_crashes times — poison input, set aside so the
  /// rest of the batch can finish.
  kQuarantined,
};

/// Typed per-job result delivered through the submit future.
struct JobOutcome {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kFailed;
  core::DefenderSolution solution;  ///< valid when kCompleted
  std::string error;                ///< exception text when kFailed
  std::string tag;
  double queue_seconds = 0.0;  ///< admission -> worker pickup
  double solve_seconds = 0.0;  ///< worker pickup -> outcome
  std::size_t worker = 0;      ///< index of the worker that ran the job
  int attempts = 1;            ///< solve attempts consumed (retries + 1)
  int crashes = 0;             ///< worker crashes this job absorbed
  /// kFailed only: the failure class the retry policy saw.  Transient
  /// failures exhaust RetryPolicy::max_attempts first; deterministic
  /// ones fail on the first attempt.
  bool transient = false;
  /// Served from the solve cache without running a solve.  The id, tag,
  /// worker and queue_seconds above are THIS job's (re-stamped), never
  /// the original producer's.
  bool cache_hit = false;
  /// The solve ran seeded by a cached donor's tables (and the seed was
  /// not rejected).  The solution is still bitwise-identical to a cold
  /// solve — this only records that the warm start was consumed.
  bool cache_transplant = false;
};

/// The engine.  Construction starts the workers; destruction (or
/// shutdown()) drains the queue and joins them.
class SolveEngine {
 public:
  SolveEngine(std::shared_ptr<const core::DefenderSolver> solver,
              EngineOptions options = {});
  ~SolveEngine();

  SolveEngine(const SolveEngine&) = delete;
  SolveEngine& operator=(const SolveEngine&) = delete;

  /// Non-blocking admission: nullopt (and one engine.jobs_rejected_total)
  /// when the queue is at capacity or the engine is shutting down.
  std::optional<std::future<JobOutcome>> try_submit(SolveJob job);

  /// Blocking admission: waits for queue space.  Throws std::runtime_error
  /// if the engine shuts down while waiting.
  std::future<JobOutcome> submit(SolveJob job);

  /// Cancels every in-flight and queued job.  Async-signal-safe: relaxed
  /// atomic stores only (the worker array is fixed at construction).
  /// Queued jobs drain as kCancelled; running solves unwind with a
  /// kCancelled solution status.  The engine accepts no new work after.
  void cancel_all() noexcept;

  /// Drains the queue, joins the workers.  Idempotent.
  void shutdown();

  std::size_t queue_depth() const;
  std::size_t num_workers() const { return workers_.size(); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when jobs run in forked worker processes (isolation was
  /// requested *and* available; false after a degrade to threads).
  bool process_mode() const { return supervisor_ != nullptr; }

  /// The cross-solve cache, or null when EngineOptions::cache.mode is
  /// kOff.  Exposed for /cachez-style introspection and tests; safe to
  /// read concurrently with running jobs.
  SolveCache* cache() const { return cache_.get(); }

  /// Stable per-worker budget storage (valid for the engine's lifetime).
  /// Exposed so a signal handler can reach every in-flight job's budget
  /// through a pre-registered table instead of a single active-solve slot.
  SolveBudget& worker_budget(std::size_t i) { return workers_[i]->budget; }

 private:
  struct Item {
    SolveJob job;
    std::promise<JobOutcome> promise;
    std::uint64_t id = 0;
    Timer queued;  ///< started at admission
    /// Trace-epoch timestamp of admission (-1 when tracing was off): the
    /// worker that picks the job up emits the queue-wait span from it.
    std::int64_t trace_enqueue_ns = -1;
  };

  struct Worker {
    SolveBudget budget;
    std::thread thread;
  };

  void run_worker(std::size_t index);
  JobOutcome execute(Item& item, std::size_t index,
                     core::SolveWorkspace& workspace, SolveBudget& budget,
                     const std::shared_ptr<const core::TransplantSeed>& seed);
  JobOutcome execute_process(Item& item, std::size_t index,
                             SolveBudget& budget,
                             const CacheSeedFrame* cache_seed,
                             CacheDonorFrame* cache_donor);
  /// True when `outcome` is worth another attempt under the retry policy.
  bool retryable(const JobOutcome& outcome) const;
  /// Sleeps the capped, jittered backoff before attempt `attempt` + 1;
  /// returns early (false) if the engine is cancelled or stopping.
  bool backoff_before_retry(int attempt);
  std::future<JobOutcome> enqueue_locked(SolveJob&& job);

  std::shared_ptr<const core::DefenderSolver> solver_;
  EngineOptions opt_;
  /// Non-null iff process isolation is active (see process_mode()).
  std::unique_ptr<Supervisor> supervisor_;
  /// Non-null iff cache.mode != kOff.
  std::unique_ptr<SolveCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue became non-empty / stop
  std::condition_variable space_cv_;  ///< queue gained capacity
  std::deque<Item> queue_;
  bool stop_ = false;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> cancelled_{false};

  /// Fixed at construction (never resized): cancel_all() walks it from a
  /// signal handler.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace cubisg::engine

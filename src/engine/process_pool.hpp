// Process-isolated solve workers: fork + socketpair + a length-prefixed
// binary protocol.
//
// Each worker is a forked child of the serving process.  The child never
// execs — it inherits the (immutable, const-shared) DefenderSolver by
// copy-on-write and runs a small frame loop: receive a job (scenario
// text + budget), solve it on a detached solve thread while the main
// child thread streams heartbeats and watches for cancel frames, then
// send back the full DefenderSolution — strategy, bracket, certificate
// and telemetry counters — or a typed error.  The parent end is driven
// by engine/supervisor.hpp, which owns crash detection (EOF + waitpid),
// heartbeat timeouts, SIGKILL hard deadlines, respawn backoff and
// poison-job quarantine.
//
// Wire format: every frame is a 1-byte type + 4-byte little-endian
// payload length + payload.  Numeric fields are raw little-endian bytes
// (doubles as their 8-byte IEEE-754 representation), so a solution
// round-trips bitwise — the differential tests require process-mode
// results to be byte-identical to in-process solves.  The scenario
// itself rides as write_scenario() text, which is lossless (%a hex
// floats).
//
// Fork safety: the serving process is heavily threaded (engine workers,
// HTTP exporter, shadow auditor), so fork() is wrapped in a lock-all /
// fork / unlock-both-sides guard over every known global mutex (log
// sink, fault-injection table, metrics registry, solve-report ring,
// global thread pool) — see spawn_worker().  In the child the inherited
// global thread pool is poisoned so parallel_for degrades to inline
// execution, tracing is disabled, and exit is always _exit() (no static
// destructors, no atexit flushes that belong to the parent).
//
// Availability: POSIX + CUBISG_OBS=ON builds only.  Elsewhere
// process_isolation_available() is false and the engine degrades to
// thread isolation with a warning; the pure encode/decode helpers stay
// compiled everywhere so the wire tests run on every platform.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cubis.hpp"  // StepTables (cache seed/donor frames)
#include "core/solvers.hpp"
#include "obs/metrics.hpp"  // CUBISG_OBS_ENABLED

#if (defined(__unix__) || defined(__APPLE__)) && CUBISG_OBS_ENABLED
#define CUBISG_PROCESS_ISOLATION 1
#else
#define CUBISG_PROCESS_ISOLATION 0
#endif

namespace cubisg::engine {

/// True when fork-based worker isolation is compiled in (POSIX target,
/// observability layer on).  When false the engine silently has only
/// thread isolation and EngineOptions::isolation degrades with a warning.
bool process_isolation_available();

// ---- wire format (pure; compiled on every platform) --------------------

enum class FrameType : std::uint8_t {
  kJob = 1,        ///< parent -> child: one solve request
  kResult = 2,     ///< child -> parent: DefenderSolution (any status)
  kError = 3,      ///< child -> parent: the solve escaped with an exception
  kHeartbeat = 4,  ///< child -> parent: liveness while solving
  kCancel = 5,     ///< parent -> child: trip the in-flight job's budget
  /// Cross-solve cache (engine/solve_cache.hpp).  Both sides skip frame
  /// types they do not know, so a peer without cache support degrades
  /// gracefully: an old child ignores the seed and never sends a donor
  /// (the parent's bounded donor read times out), and an old parent
  /// leaves an unread donor in the socket to be skipped by the next
  /// job's await loop.
  kCacheSeed = 6,   ///< parent -> child: transplant seed for the next job
  kCacheDonor = 7,  ///< child -> parent: harvested donor after a result
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;
};

/// One solve request as sent to the child.
struct JobFrame {
  std::uint64_t id = 0;
  double deadline_seconds = 0.0;  ///< 0 = unbudgeted
  std::int64_t max_nodes = 0;     ///< 0 = uncapped
  bool chaos_abort = false;  ///< fault injection: abort() before solving
  bool chaos_hang = false;   ///< fault injection: wedge the solve thread
  /// Parent runs a transplant-mode cache: after the result/error the
  /// child should send a kCacheDonor frame (rides the chaos byte, bit 4,
  /// so old children ignore it harmlessly).
  bool want_donor = false;
  std::string scenario_text;  ///< behavior::write_scenario output
};

/// A finished solve as sent back by the child.  Everything bitwise-
/// comparable round-trips exactly; telemetry carries counters only
/// (gauges/histograms are process-local state, not per-job deltas).
struct ResultFrame {
  std::uint64_t id = 0;
  core::DefenderSolution solution;
};

/// An escaped exception, classified for the retry policy.
struct ErrorFrame {
  std::uint64_t id = 0;
  /// False for deterministic failures (malformed model) that would fail
  /// identically on retry; true for everything else.
  bool retryable = true;
  std::string message;
};

/// Transplant seed for the job with the same id, sent immediately before
/// its kJob frame.  Only the breakpoint tables and adopt flags travel —
/// the MILP skeleton is a same-process optimization (shipping the dense
/// model would dwarf the solve it saves), so process-mode transplants
/// seed tables only.
struct CacheSeedFrame {
  std::uint64_t id = 0;
  core::StepTables tables;
  std::vector<std::uint8_t> adopt;  ///< one flag per target
};

/// Transplant outcome + harvested donor tables, sent by the child after
/// the job's kResult/kError frame when JobFrame::want_donor was set.
struct CacheDonorFrame {
  std::uint64_t id = 0;
  bool used = false;      ///< TransplantStats::used
  bool rejected = false;  ///< TransplantStats::rejected
  std::uint32_t adopted = 0;
  std::uint32_t repaired = 0;
  bool has_tables = false;  ///< tables below are this job's (token set)
  core::StepTables tables;
};

std::string encode_job(const JobFrame& job);
bool decode_job(const std::string& payload, JobFrame& out);
std::string encode_result(const ResultFrame& result);
bool decode_result(const std::string& payload, ResultFrame& out);
std::string encode_error(const ErrorFrame& error);
bool decode_error(const std::string& payload, ErrorFrame& out);
std::string encode_cache_seed(const CacheSeedFrame& seed);
bool decode_cache_seed(const std::string& payload, CacheSeedFrame& out);
std::string encode_cache_donor(const CacheDonorFrame& donor);
bool decode_cache_donor(const std::string& payload, CacheDonorFrame& out);

// ---- process + socket layer (POSIX only; stubs elsewhere) --------------

/// Frame I/O results.  kTimeout only from read_frame with a bounded wait.
enum class ReadStatus { kFrame, kTimeout, kEof, kError };

/// Writes one frame; false when the peer is gone (EPIPE/EOF) or on any
/// other socket error.
bool write_frame(int fd, FrameType type, const std::string& payload);

/// Reads one frame, waiting up to timeout_ms for the header (-1 = block
/// forever, 0 = only if input is already pending).
ReadStatus read_frame(int fd, int timeout_ms, Frame& out);

/// A live worker child as seen from the parent.
struct WorkerProcess {
  long pid = -1;
  int fd = -1;  ///< parent end of the socketpair
  bool valid() const { return pid > 0 && fd >= 0; }
};

/// Forks one worker child running the frame loop against `solver`.
/// `sibling_fds` are parent-end descriptors of other live workers; the
/// child closes them so a sibling's EOF-based death detection never
/// leaks through this process.  On failure returns an invalid handle
/// with `error` set.  Wraps fork() in the global-mutex fork guard.
WorkerProcess spawn_worker(
    std::shared_ptr<const core::DefenderSolver> solver,
    const std::vector<int>& sibling_fds, std::string& error);

/// SIGKILLs (if alive) and reaps the child, closes the fd.  Idempotent.
void destroy_worker(WorkerProcess& worker);

/// Reaps an already-dead (or dying) child without signalling it first:
/// waits up to `grace_ms` for a natural exit, then SIGKILLs.  Returns a
/// short human-readable exit description ("killed by signal 6 (core
/// dumped)", "exited with status 3", ...).
std::string reap_worker(WorkerProcess& worker, int grace_ms);

}  // namespace cubisg::engine

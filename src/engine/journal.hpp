// Append-only batch journal: crash-safe progress tracking for `cubisg
// batch`, enabling `--resume` to skip work a previous (killed,
// interrupted, OOMed) run already finished.
//
// Format — text, one record per line, append-only, fsynced per record:
//
//   cubisg-journal 2                                  <- header
//   done <digest> <status> <hits> <transplants> <crc> <tag...>
//
// where <digest> is the 16-hex-digit FNV-1a 64 of the job's canonical
// solution bytes (engine::encode_result with the job id, wall clocks
// and telemetry zeroed, so the digest is stable across runs),
// <status> is ok/failed/crashed/quarantined,
// <hits>/<transplants> are 0/1 cache involvement flags for the job
// (served from the cross-solve cache / solved from a transplant seed),
// <crc> is the 8-hex-digit FNV-1a 32 of
// "<digest> <status> <hits> <transplants> <tag>", and <tag> — last,
// because it may contain spaces — is the job tag (the scenario path in
// batch mode).
//
// Version tolerance: load() accepts v1 lines
// (`done <digest> <status> <crc> <tag...>`, crc over
// "<digest> <status> <tag>") interleaved with v2 lines regardless of
// the header, disambiguating per line by which layout's CRC verifies —
// so resuming a v1 journal with a v2 binary (which appends v2 records
// to the same file) round-trips every record.
//
// Durability and tolerance: each record is fflush+fsynced before the
// submit loop moves on, so after kill -9 the journal holds every
// completed job except possibly a torn final line (a write cut mid-
// record by the crash).  load() is forgiving by construction: any line
// that does not parse or fails its CRC is counted and skipped, never
// fatal — a torn tail costs re-solving at most one job.  The
// journal-torn-write fault site (common/fault_inject.hpp) simulates
// exactly that tear for tests.
//
// Resume semantics (the CLI's policy, not enforced here): only "ok"
// records are skipped on resume; failed/crashed/quarantined jobs are
// recorded for the post-mortem but re-attempted, and cancelled jobs are
// never journaled at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace cubisg::engine {

/// FNV-1a 64-bit over raw bytes (the digest primitive for the journal
/// and the resume differential tests).
std::uint64_t fnv1a64(const void* data, std::size_t len);

struct JournalEntry {
  std::string tag;
  std::string status;  ///< ok | failed | crashed | quarantined
  std::uint64_t digest = 0;
  /// Cache involvement (v2 records; v1 loads as 0/0): the job was
  /// served from the cross-solve cache / solved from a transplant seed.
  std::int64_t cache_hits = 0;
  std::int64_t cache_transplants = 0;
};

class BatchJournal {
 public:
  BatchJournal() = default;
  ~BatchJournal() { close(); }

  BatchJournal(const BatchJournal&) = delete;
  BatchJournal& operator=(const BatchJournal&) = delete;

  /// Opens (appending) or creates `path`, writing the header when the
  /// file is new/empty.  False + `error` on I/O failure.
  bool open(const std::string& path, std::string& error);

  /// Appends one record (v2 layout) and makes it durable (fflush +
  /// fsync).  Under the journal-torn-write fault site, writes half the
  /// record and skips the fsync instead — simulating a crash mid-append.
  bool record(const std::string& tag, std::uint64_t digest,
              const std::string& status, std::int64_t cache_hits = 0,
              std::int64_t cache_transplants = 0);

  void close();
  bool is_open() const { return file_ != nullptr; }

  /// Tolerant read of a whole journal: malformed/torn lines increment
  /// `*malformed` (if given) and are skipped.  Later records for the
  /// same tag win.  False + `error` only when the file cannot be read
  /// at all.
  static bool load(const std::string& path, std::vector<JournalEntry>& out,
                   std::string& error, std::size_t* malformed = nullptr);

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace cubisg::engine

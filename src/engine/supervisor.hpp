// Worker-process supervisor: the parent-side state machine for
// crash-contained solving (see engine/process_pool.hpp for the child
// side and the wire protocol).
//
// One Supervisor owns one slot per engine worker thread.  Each slot
// holds at most one forked child; the owning worker thread drives its
// slot exclusively through run_job(), so per-slot state needs no lock —
// only spawning (fork + the sibling-fd list) and the /workersz renderer
// serialize on a supervisor-wide mutex.
//
// Per-job state machine, as run by run_job():
//
//   spawn (if slot empty; exponential backoff + deterministic jitter
//          after consecutive crash-respawns)
//     -> send job frame
//     -> await: heartbeats refresh the liveness clock
//               result/error frame  -> done (worker stays up, reused)
//               EOF / socket error  -> worker crashed
//               heartbeat silence past heartbeat_timeout  -> SIGKILL
//               deadline + kill grace exceeded            -> SIGKILL
//               cancel requested -> cancel frame; SIGKILL after grace
//                                   if the child will not unwind
//
// A crash (including a SIGKILLed wedge) increments the job's crash
// count: within RetryPolicy::max_crashes the job is retried on a fresh
// child after backoff; beyond it the job is quarantined (kQuarantined)
// so one poison input cannot sink the batch — unless max_crashes is 0,
// where the first crash simply fails the job (kWorkerCrashed).
//
// Metrics: engine.worker_crashes_total, engine.worker_restarts_total,
// engine.jobs_retried_total (shared with the engine's transient-failure
// retries), engine.jobs_quarantined_total, engine.workers_alive gauge.
// Live state is served as JSON at GET /workersz via the status-page
// registry (obs/status_page.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "engine/engine.hpp"

namespace cubisg::engine {

class Supervisor {
 public:
  struct Options {
    std::size_t workers = 1;
    RetryPolicy retry;
    double heartbeat_timeout_seconds = 5.0;
    double kill_grace_seconds = 1.0;
    std::shared_ptr<const core::DefenderSolver> solver;
  };

  /// Spawns the initial worker children eagerly (fork before the engine's
  /// own worker threads exist keeps the fork guard's job small) and
  /// registers /workersz.  A failed initial spawn leaves the slot empty;
  /// run_job() retries lazily.
  explicit Supervisor(Options options);
  /// Closes every child's socket (idle children _exit on EOF), reaps
  /// with a short grace, SIGKILLs stragglers, unregisters /workersz.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Runs `job` (must carry job.scenario) on slot `index`'s child.
  /// Blocking; must be called only from the engine worker thread that
  /// owns slot `index`.  `deadline_seconds`/`max_nodes` are the
  /// engine-resolved effective budget (0 = none); `parent_budget`
  /// mirrors external cancellation (the CLI signal table) and
  /// `engine_cancelled` the engine-wide cancel latch.  Returns a final
  /// outcome: kCompleted / kFailed (worker alive and reused),
  /// kCancelled, kWorkerCrashed or kQuarantined.  Does not apply the
  /// engine's transient-failure retry policy — only crash retries.
  ///
  /// Cross-solve cache plumbing (both optional): `cache_seed` is sent
  /// as a kCacheSeed frame before every kJob send (re-sent per crash
  /// retry — a respawned child has no memory of it); a non-null
  /// `cache_donor` sets JobFrame::want_donor and performs one bounded
  /// read for the child's kCacheDonor frame after the result.  Either
  /// side lacking cache support degrades to a plain solve.
  JobOutcome run_job(std::size_t index, const SolveJob& job,
                     std::uint64_t id, double deadline_seconds,
                     std::int64_t max_nodes, const SolveBudget& parent_budget,
                     const std::atomic<bool>& engine_cancelled,
                     const CacheSeedFrame* cache_seed = nullptr,
                     CacheDonorFrame* cache_donor = nullptr);

  /// The /workersz JSON body (also callable directly in tests).
  std::string status_json() const;

  std::size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot;
  enum class Await;  // result of one send-and-wait round

  bool ensure_worker(Slot& slot);
  Await await_result(Slot& slot, std::uint64_t id, double deadline_seconds,
                     const SolveBudget& parent_budget,
                     const std::atomic<bool>& engine_cancelled,
                     JobOutcome& out);
  /// One bounded read (~1 s) for the post-result kCacheDonor frame; a
  /// timeout or mismatch leaves `out` untouched (graceful degradation
  /// when the child predates the cache protocol).
  void read_cache_donor(Slot& slot, std::uint64_t id, CacheDonorFrame& out);
  /// Reaps (grace, then SIGKILL) the slot's child and records the exit
  /// description; updates the alive gauge.
  void clear_slot(Slot& slot, int grace_ms);
  void update_alive_gauge();
  /// Interruptible exponential-backoff sleep before respawn attempt
  /// `consecutive_crashes`; false when interrupted by cancellation.
  bool backoff(std::size_t index, int consecutive_crashes,
               const SolveBudget& parent_budget,
               const std::atomic<bool>& engine_cancelled);

  Options opt_;
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Serializes fork (the sibling-fd snapshot must be stable across it)
  /// and guards each slot's last_exit/last_error strings for /workersz.
  mutable std::mutex spawn_mutex_;
};

}  // namespace cubisg::engine

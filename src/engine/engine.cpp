#include "engine/engine.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "behavior/scenario.hpp"
#include "common/errors.hpp"
#include "common/log.hpp"
#include "core/workspace.hpp"
#include "engine/process_pool.hpp"
#include "engine/supervisor.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/solve_report.hpp"
#include "obs/trace.hpp"

namespace cubisg::engine {

namespace {

using namespace std::chrono_literals;

/// Registry handles for the engine, resolved once.
struct EngineMetrics {
  obs::Gauge& queue_depth =
      obs::Registry::global().gauge("engine.queue_depth");
  obs::Counter& accepted =
      obs::Registry::global().counter("engine.jobs_accepted_total");
  obs::Counter& rejected =
      obs::Registry::global().counter("engine.jobs_rejected_total");
  obs::Counter& completed =
      obs::Registry::global().counter("engine.jobs_completed_total");
  obs::Counter& failed =
      obs::Registry::global().counter("engine.jobs_failed_total");
  obs::Counter& cancelled =
      obs::Registry::global().counter("engine.jobs_cancelled_total");
  obs::Histogram& solve_latency =
      obs::Registry::global().histogram("engine.solve_latency");
  obs::Histogram& queue_wait =
      obs::Registry::global().histogram("engine.queue_wait_seconds");
  obs::Counter& slow_solves =
      obs::Registry::global().counter("engine.slow_solves_total");
  obs::Counter& retried =
      obs::Registry::global().counter("engine.jobs_retried_total");
  obs::Counter& quarantined =
      obs::Registry::global().counter("engine.jobs_quarantined_total");

  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};

/// Workers poll with a bounded wait instead of an unbounded one so a
/// signal-handler cancel_all() (which cannot notify a condition variable)
/// is observed within one poll period.
constexpr auto kPollPeriod = 50ms;

}  // namespace

SolveEngine::SolveEngine(std::shared_ptr<const core::DefenderSolver> solver,
                         EngineOptions options)
    : solver_(std::move(solver)), opt_(options) {
  if (solver_ == nullptr) {
    throw InvalidModelError("SolveEngine: null solver");
  }
  if (opt_.workers == 0) opt_.workers = 1;
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
  if (opt_.retry.max_attempts < 1) opt_.retry.max_attempts = 1;
  if (opt_.retry.max_crashes < 0) opt_.retry.max_crashes = 0;
  EngineMetrics::get();  // resolve before any signal handler runs
  if (opt_.isolation == IsolationMode::kProcess) {
    if (!process_isolation_available()) {
      CUBISG_LOG(LogLevel::kWarn)
          << "engine: process isolation unavailable on this build/platform; "
             "falling back to threads";
      opt_.isolation = IsolationMode::kThread;
    } else {
      // Fork the worker children before this process grows its own
      // worker threads: the fork guard has less to protect and the
      // children inherit the smallest possible thread/lock footprint.
      Supervisor::Options sup;
      sup.workers = opt_.workers;
      sup.retry = opt_.retry;
      sup.heartbeat_timeout_seconds = opt_.heartbeat_timeout_seconds;
      sup.kill_grace_seconds = opt_.kill_grace_seconds;
      sup.solver = solver_;
      supervisor_ = std::make_unique<Supervisor>(std::move(sup));
    }
  }
  if (opt_.cache.mode != CacheMode::kOff) {
    cache_ = std::make_unique<SolveCache>(opt_.cache.mode, opt_.cache.entries,
                                          opt_.cache.shards);
  }
  workers_.reserve(opt_.workers);
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // The worker array is complete (cancel_all may walk it) before any
  // thread starts.
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { run_worker(i); });
  }
}

SolveEngine::~SolveEngine() { shutdown(); }

std::future<JobOutcome> SolveEngine::enqueue_locked(SolveJob&& job) {
  Item item;
  item.job = std::move(job);
  item.id = next_id_++;
  if (obs::trace_enabled()) item.trace_enqueue_ns = obs::trace_now_ns();
  std::future<JobOutcome> future = item.promise.get_future();
  queue_.push_back(std::move(item));
  EngineMetrics::get().accepted.add(1);
  EngineMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
  return future;
}

std::optional<std::future<JobOutcome>> SolveEngine::try_submit(SolveJob job) {
  std::future<JobOutcome> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || cancelled() || queue_.size() >= opt_.queue_capacity) {
      EngineMetrics::get().rejected.add(1);
      return std::nullopt;
    }
    future = enqueue_locked(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

std::future<JobOutcome> SolveEngine::submit(SolveJob job) {
  std::future<JobOutcome> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Bounded waits for the same reason as the workers: a signal-handler
    // cancel cannot notify, and the submitter must still unblock.
    while (!stop_ && !cancelled() && queue_.size() >= opt_.queue_capacity) {
      space_cv_.wait_for(lock, kPollPeriod);
    }
    if (stop_ || cancelled()) {
      EngineMetrics::get().rejected.add(1);
      throw std::runtime_error(
          "SolveEngine: submit after shutdown/cancel");
    }
    future = enqueue_locked(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

void SolveEngine::cancel_all() noexcept {
  // Async-signal-safe: relaxed stores into pre-allocated storage only.
  cancelled_.store(true, std::memory_order_relaxed);
  for (const auto& w : workers_) w->budget.request_cancel();
}

void SolveEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::size_t SolveEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void SolveEngine::run_worker(std::size_t index) {
  // One long-lived workspace per worker, reused across every job this
  // worker runs (the capacity-only reuse contract keeps results identical
  // to fresh solves).
  core::SolveWorkspace workspace;
  SolveBudget& budget = workers_[index]->budget;
  // Opt this worker into wall-clock sampling for the profiler's lifetime
  // (no-op unless/until profiling starts).
  obs::ProfiledThreadScope profiled;
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (queue_.empty() && !stop_) {
        work_cv_.wait_for(lock, kPollPeriod);
      }
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      item = std::move(queue_.front());
      queue_.pop_front();
      EngineMetrics::get().queue_depth.set(
          static_cast<double>(queue_.size()));
    }
    space_cv_.notify_one();

    // Queue-wait bookkeeping happens once per job, ahead of the attempt
    // loop, so retries never double-record the admission -> pickup wait.
    const double queue_seconds = item.queued.seconds();
    EngineMetrics::get().queue_wait.record(queue_seconds);
    if (item.trace_enqueue_ns >= 0) {
      obs::record_trace_event("engine.queue_wait", item.trace_enqueue_ns,
                              obs::trace_now_ns() - item.trace_enqueue_ns,
                              item.id);
    }
    if (cancelled()) {
      // Drain without starting: satisfy the promise, skip the solve (and
      // the on_outcome hook — the job never ran).
      JobOutcome outcome;
      outcome.id = item.id;
      outcome.tag = item.job.tag;
      outcome.worker = index;
      outcome.queue_seconds = queue_seconds;
      outcome.status = JobStatus::kCancelled;
      EngineMetrics::get().cancelled.add(1);
      item.promise.set_value(std::move(outcome));
      continue;
    }

    // Cross-solve cache: one fingerprint per scenario-carrying job.  An
    // exact hit skips the solve entirely; the outcome is re-stamped with
    // THIS job's id/tag/worker, so a cached result never resurfaces
    // under a stale identity (the --resume regression test pins this).
    std::optional<core::Fingerprint> fp;
    std::shared_ptr<const core::TransplantSeed> seed;
    if (cache_ != nullptr && item.job.scenario != nullptr) {
      fp = core::fingerprint_scenario(*item.job.scenario,
                                      opt_.cache.solver_config);
      core::DefenderSolution hit;
      if (cache_->lookup_exact(*fp, hit)) {
        JobOutcome outcome;
        outcome.id = item.id;
        outcome.tag = item.job.tag;
        outcome.worker = index;
        outcome.queue_seconds = queue_seconds;
        outcome.status = JobStatus::kCompleted;
        outcome.solution = std::move(hit);
        outcome.cache_hit = true;
        EngineMetrics::get().completed.add(1);
        if (opt_.on_outcome) {
          try {
            opt_.on_outcome(item.job, outcome);
          } catch (...) {
          }
        }
        item.promise.set_value(std::move(outcome));
        continue;
      }
      if (cache_->mode() == CacheMode::kTransplant) {
        seed = make_transplant_seed(cache_->nearest(*fp), *fp);
      }
    }

    // Process-mode cache plumbing: the seed crosses the wire ahead of
    // the job; a donor frame (stats + harvested tables) comes back after
    // the result.  Thread mode uses the workspace fields directly.
    const bool process_job =
        supervisor_ != nullptr && item.job.scenario != nullptr;
    CacheSeedFrame seed_frame;
    const CacheSeedFrame* seed_frame_ptr = nullptr;
    CacheDonorFrame donor_frame;
    CacheDonorFrame* donor_frame_ptr = nullptr;
    if (process_job && fp.has_value() &&
        cache_->mode() == CacheMode::kTransplant) {
      if (seed != nullptr) {
        seed_frame.id = item.id;
        seed_frame.tables = seed->donor->tables;
        seed_frame.adopt = seed->adopt;
        seed_frame_ptr = &seed_frame;
      }
      donor_frame_ptr = &donor_frame;
    }

    // Attempt loop: transient failures (numeric trouble, escaped
    // non-deterministic exceptions, fault-injected faults) re-solve up
    // to retry.max_attempts with capped backoff.  Worker-crash retries
    // happen one level down, inside Supervisor::run_job.
    JobOutcome outcome;
    for (int attempt = 1;; ++attempt) {
      outcome = process_job
                    ? execute_process(item, index, budget, seed_frame_ptr,
                                      donor_frame_ptr)
                    : execute(item, index, workspace, budget, seed);
      outcome.attempts = attempt;
      outcome.queue_seconds = queue_seconds;
      if (attempt >= opt_.retry.max_attempts || !retryable(outcome) ||
          cancelled()) {
        break;
      }
      EngineMetrics::get().retried.add(1);
      CUBISG_LOG(LogLevel::kWarn)
          << "engine: job " << item.id << " transient failure (attempt "
          << attempt << "/" << opt_.retry.max_attempts << "): "
          << (outcome.error.empty() ? "numeric issue" : outcome.error)
          << "; retrying";
      if (!backoff_before_retry(attempt)) break;
    }

    // Cache bookkeeping after the final attempt: transplant counters,
    // donor harvest, insert.  Only clean optimal completions are cached
    // (budget stops and numeric trouble are run-specific, not reusable).
    if (cache_ != nullptr && fp.has_value()) {
      bool transplant_used = false;
      bool transplant_rejected = false;
      std::shared_ptr<core::TransplantDonor> harvested;
      const bool optimal = outcome.status == JobStatus::kCompleted &&
                           outcome.solution.status == SolverStatus::kOptimal;
      if (process_job) {
        transplant_used = donor_frame.used && !donor_frame.rejected;
        transplant_rejected = donor_frame.rejected;
        if (optimal && donor_frame.has_tables) {
          harvested = std::make_shared<core::TransplantDonor>();
          harvested->tables = std::move(donor_frame.tables);
        }
      } else {
        const core::TransplantStats& st = workspace.transplant_stats;
        transplant_used = seed != nullptr && st.used && !st.rejected;
        transplant_rejected = seed != nullptr && st.rejected;
        if (optimal && cache_->mode() == CacheMode::kTransplant &&
            workspace.tables_token != 0) {
          harvested = std::make_shared<core::TransplantDonor>();
          harvested->tables = workspace.tables;
          // The MILP skeleton is only trustworthy when the lanes were
          // rebuilt by this very solve (token 2) — see SolveWorkspace.
          if (workspace.tables_token == 2 &&
              !workspace.cubis_lanes.empty() &&
              workspace.cubis_lanes[0]->milp != nullptr) {
            const core::MilpStepCache& sk = *workspace.cubis_lanes[0]->milp;
            harvested->has_skeleton = true;
            harvested->skeleton_resources = item.job.game->resources();
            // Donor-compatibility: consumers adopt the skeleton only when
            // their own polytope descriptor matches (lanes are currently
            // simplex-only, but the gate is descriptor-driven).
            harvested->skeleton_space =
                item.job.scenario != nullptr &&
                        !item.job.scenario->coverage.is_default()
                    ? item.job.scenario->coverage.descriptor()
                    : std::string("simplex");
            harvested->skeleton_model = sk.model();
            harvested->skeleton_layout = sk.layout();
            harvested->skeleton_rows = sk.rows();
          }
        }
      }
      if (transplant_used) {
        cache_->count_transplant();
        outcome.cache_transplant = true;
      }
      if (transplant_rejected) cache_->count_transplant_reject();
      if (optimal) {
        if (harvested != nullptr) {
          harvested->blocks = fp->blocks;
          harvested->compat = fp->compat;
        }
        cache_->insert(*fp, outcome.solution, std::move(harvested));
      }
      workspace.transplant_seed.reset();
    }

    // Terminal counting happens once per job, after retries, so the
    // completed/failed totals match job counts exactly as before.
    switch (outcome.status) {
      case JobStatus::kCompleted:
        EngineMetrics::get().completed.add(1);
        break;
      case JobStatus::kCancelled:
        EngineMetrics::get().cancelled.add(1);
        break;
      case JobStatus::kQuarantined:
        // engine.jobs_quarantined_total is bumped by the supervisor at
        // the quarantine decision; not double-counted here.
        break;
      case JobStatus::kFailed:
      case JobStatus::kWorkerCrashed:
        EngineMetrics::get().failed.add(1);
        break;
    }
    if (opt_.on_outcome) {
      try {
        opt_.on_outcome(item.job, outcome);
      } catch (...) {
        // Observers are advisory: a throwing hook must not fail the job.
      }
    }
    item.promise.set_value(std::move(outcome));
  }
}

bool SolveEngine::retryable(const JobOutcome& outcome) const {
  if (outcome.status == JobStatus::kFailed) return outcome.transient;
  if (outcome.status == JobStatus::kCompleted) {
    // A solver that *returned* kNumericalIssue hit non-deterministic
    // numeric trouble past its internal retry ladder; a fresh attempt
    // (fresh workspace state, fresh perturbations) can succeed.
    return outcome.solution.status == SolverStatus::kNumericalIssue;
  }
  return false;  // cancelled / crashed / quarantined are final
}

bool SolveEngine::backoff_before_retry(int attempt) {
  double ms = opt_.retry.backoff_initial_ms;
  for (int i = 1; i < attempt; ++i) ms *= 2.0;
  if (ms > opt_.retry.backoff_max_ms) ms = opt_.retry.backoff_max_ms;
  Timer timer;
  while (timer.millis() < ms) {
    if (cancelled()) return false;
    std::this_thread::sleep_for(5ms);
  }
  return true;
}

JobOutcome SolveEngine::execute_process(Item& item, std::size_t index,
                                        SolveBudget& budget,
                                        const CacheSeedFrame* cache_seed,
                                        CacheDonorFrame* cache_donor) {
  // The parent-side budget is a cancellation mirror only: the child
  // enforces the deadline/node caps cooperatively on its own budget, and
  // the supervisor adds the non-cooperative SIGKILL backstop.
  budget.reset();
  if (cancelled()) budget.request_cancel();
  const double deadline = item.job.deadline_seconds > 0.0
                              ? item.job.deadline_seconds
                              : opt_.default_deadline_seconds;
  const std::int64_t max_nodes =
      item.job.max_nodes > 0 ? item.job.max_nodes : opt_.default_max_nodes;
#if CUBISG_OBS_ENABLED
  obs::TraceJobScope job_scope(item.id);
#endif
  obs::TraceSpan span("engine.execute");
  JobOutcome out =
      supervisor_->run_job(index, item.job, item.id, deadline, max_nodes,
                           budget, cancelled_, cache_seed, cache_donor);
  if (out.status == JobStatus::kCompleted) {
    EngineMetrics::get().solve_latency.record(out.solve_seconds);
  } else if (!out.error.empty()) {
    CUBISG_LOG(LogLevel::kError)
        << "engine: job " << out.id << " failed: " << out.error;
  }
  return out;
}

JobOutcome SolveEngine::execute(
    Item& item, std::size_t index, core::SolveWorkspace& workspace,
    SolveBudget& budget,
    const std::shared_ptr<const core::TransplantSeed>& seed) {
  JobOutcome out;
  out.id = item.id;
  out.tag = item.job.tag;  // copied, not moved: retries reuse the item
  out.worker = index;
  out.queue_seconds = item.queued.seconds();

  budget.reset();
  const double deadline = item.job.deadline_seconds > 0.0
                              ? item.job.deadline_seconds
                              : opt_.default_deadline_seconds;
  if (deadline > 0.0) budget.set_deadline_after(deadline);
  const std::int64_t max_nodes =
      item.job.max_nodes > 0 ? item.job.max_nodes : opt_.default_max_nodes;
  if (max_nodes > 0) budget.set_node_limit(max_nodes);
  // Close the reset race: a cancel_all between reset() and here must
  // still trip this job's budget.
  if (cancelled()) budget.request_cancel();

  // Cross-solve transplant: install this attempt's seed and zero the
  // stats/token so a reused workspace can never leak a previous job's
  // transplant state into this job's accounting or donor harvest.
  workspace.transplant_seed = seed;
  workspace.transplant_stats = {};
  workspace.tables_token = 0;

#if CUBISG_OBS_ENABLED
  // Everything the solver records during this job — nested spans, the
  // published SolveReport — is attributable to this job id.
  obs::TraceJobScope job_scope(item.id);
  obs::begin_phase_accounting();
  const std::int64_t report_before =
      obs::last_solve_report_on_this_thread().id;
#endif

  Timer solve_timer;
  {
    obs::TraceSpan span("engine.execute");
    try {
      core::SolveContext ctx{*item.job.game, *item.job.bounds, &budget,
                             &workspace};
      // Coverage polytope: jobs built from a scenario announce its space
      // (null = the paper's simplex, the legacy bitwise path).  The
      // scenario shared_ptr outlives the solve, so the pointer is stable.
      if (item.job.scenario != nullptr &&
          !item.job.scenario->coverage.is_default()) {
        ctx.space = &item.job.scenario->coverage;
      }
      out.solution = solver_->solve(ctx);
      out.status = JobStatus::kCompleted;
      out.solve_seconds = solve_timer.seconds();
      EngineMetrics::get().solve_latency.record(out.solve_seconds);
    } catch (const InvalidModelError& e) {
      // Deterministic: the same model fails the same way on any retry.
      out.status = JobStatus::kFailed;
      out.transient = false;
      out.error = e.what();
      out.solve_seconds = solve_timer.seconds();
      CUBISG_LOG(LogLevel::kError)
          << "engine: job " << out.id << " failed: " << out.error;
    } catch (const std::exception& e) {
      out.status = JobStatus::kFailed;
      out.transient = true;
      out.error = e.what();
      out.solve_seconds = solve_timer.seconds();
      CUBISG_LOG(LogLevel::kError)
          << "engine: job " << out.id << " failed: " << out.error;
    }
  }

#if CUBISG_OBS_ENABLED
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  if (recorder.armed() && out.solve_seconds >= recorder.slo_seconds()) {
    EngineMetrics::get().slow_solves.add(1);
    obs::FlightEntry entry;
    entry.job_id = out.id;
    entry.tag = out.tag;
    entry.worker = index;
    entry.queue_seconds = out.queue_seconds;
    entry.solve_seconds = out.solve_seconds;
    entry.slo_seconds = recorder.slo_seconds();
    entry.budget_deadline_seconds = budget.deadline_seconds();
    entry.budget_nodes = budget.nodes_charged();
    entry.budget_iterations = budget.iterations_charged();
    entry.budget_cancelled = budget.cancel_requested();
    entry.phases = obs::collect_phase_accounting();
    obs::SolveReport report = obs::last_solve_report_on_this_thread();
    if (report.id != report_before) {
      entry.has_report = true;
      entry.report = std::move(report);
    }
    recorder.record(std::move(entry));
  }
#endif
  return out;
}

}  // namespace cubisg::engine

#include "engine/supervisor.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <thread>

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "behavior/scenario.hpp"
#include "engine/process_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/status_page.hpp"

namespace cubisg::engine {

namespace {

/// Cached registry handles (same pattern as EngineMetrics in engine.cpp;
/// names shared with the engine resolve to the same counters).
struct SupervisorMetrics {
  obs::Counter& worker_crashes =
      obs::Registry::global().counter("engine.worker_crashes_total");
  obs::Counter& worker_restarts =
      obs::Registry::global().counter("engine.worker_restarts_total");
  obs::Counter& jobs_retried =
      obs::Registry::global().counter("engine.jobs_retried_total");
  obs::Counter& jobs_quarantined =
      obs::Registry::global().counter("engine.jobs_quarantined_total");
  obs::Gauge& workers_alive =
      obs::Registry::global().gauge("engine.workers_alive");

  static SupervisorMetrics& get() {
    static SupervisorMetrics m;
    return m;
  }
};

/// Socket poll granularity while awaiting a child: bounds cancel/kill
/// latency without burning CPU (heartbeats arrive every ~200 ms).
constexpr int kAwaitPollMs = 20;

const char* state_name(int s) {
  switch (s) {
    case 0: return "idle";
    case 1: return "solving";
    case 2: return "backoff";
    default: return "down";
  }
}

}  // namespace

struct Supervisor::Slot {
  std::atomic<long> pid{-1};
  std::atomic<int> fd{-1};
  std::atomic<int> state{3};  // see state_name(); starts "down"
  std::atomic<std::int64_t> spawns{0};
  std::atomic<std::int64_t> restarts{0};
  std::atomic<std::int64_t> crashes{0};
  std::atomic<std::int64_t> jobs_completed{0};
  int consecutive_crashes = 0;  // owning worker thread only
  // Guarded by spawn_mutex_ (written by the owner, read by /workersz):
  std::string last_exit;
  std::string last_error;
};

enum class Supervisor::Await {
  kDone,        ///< outcome filled; worker still healthy
  kCrashed,     ///< worker died (or was SIGKILLed as wedged) mid-job
  kCancelKill,  ///< SIGKILLed because it ignored a cancel past the grace
};

Supervisor::Supervisor(Options options) : opt_(std::move(options)) {
  if (opt_.workers == 0) opt_.workers = 1;
  slots_.reserve(opt_.workers);
  for (std::size_t i = 0; i < opt_.workers; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  for (auto& slot : slots_) ensure_worker(*slot);
  obs::register_status_page("/workersz", "application/json",
                            [this] { return status_json(); });
}

Supervisor::~Supervisor() {
  // Unregister first: render_status_page holds the page-registry mutex
  // through provider calls, so after this no handler can be inside
  // status_json() while the slots die.
  obs::unregister_status_page("/workersz");
  for (auto& slot : slots_) {
    // Closing the socket first lets an idle child _exit(0) on EOF
    // within the grace instead of eating a SIGKILL.
    clear_slot(*slot, /*grace_ms=*/500);
  }
}

bool Supervisor::ensure_worker(Slot& slot) {
  if (slot.pid.load(std::memory_order_relaxed) > 0 &&
      slot.fd.load(std::memory_order_relaxed) >= 0) {
    return true;
  }
  std::lock_guard<std::mutex> lock(spawn_mutex_);
  std::vector<int> siblings;
  siblings.reserve(slots_.size());
  for (const auto& other : slots_) {
    const int fd = other->fd.load(std::memory_order_relaxed);
    if (fd >= 0) siblings.push_back(fd);
  }
  std::string error;
  WorkerProcess worker = spawn_worker(opt_.solver, siblings, error);
  if (!worker.valid()) {
    slot.last_error = error;
    slot.state.store(3, std::memory_order_relaxed);
    CUBISG_LOG(LogLevel::kWarn) << "worker spawn failed: " << error;
    return false;
  }
  if (slot.spawns.fetch_add(1, std::memory_order_relaxed) > 0) {
    slot.restarts.fetch_add(1, std::memory_order_relaxed);
    SupervisorMetrics::get().worker_restarts.add(1);
  }
  slot.pid.store(worker.pid, std::memory_order_relaxed);
  slot.fd.store(worker.fd, std::memory_order_relaxed);
  slot.state.store(0, std::memory_order_relaxed);
  update_alive_gauge();
  return true;
}

void Supervisor::clear_slot(Slot& slot, int grace_ms) {
  std::lock_guard<std::mutex> lock(spawn_mutex_);
  WorkerProcess worker;
  worker.pid = slot.pid.load(std::memory_order_relaxed);
  worker.fd = slot.fd.load(std::memory_order_relaxed);
  slot.pid.store(-1, std::memory_order_relaxed);
  slot.fd.store(-1, std::memory_order_relaxed);
  slot.state.store(3, std::memory_order_relaxed);
  if (worker.pid > 0 || worker.fd >= 0) {
    slot.last_exit = reap_worker(worker, grace_ms);
  }
  update_alive_gauge();
}

void Supervisor::update_alive_gauge() {
  double alive = 0;
  for (const auto& slot : slots_) {
    if (slot->pid.load(std::memory_order_relaxed) > 0) alive += 1;
  }
  SupervisorMetrics::get().workers_alive.set(alive);
}

bool Supervisor::backoff(std::size_t index, int consecutive_crashes,
                         const SolveBudget& parent_budget,
                         const std::atomic<bool>& engine_cancelled) {
  const RetryPolicy& retry = opt_.retry;
  double ms = retry.backoff_initial_ms;
  for (int i = 1; i < consecutive_crashes; ++i) ms *= 2.0;
  if (ms > retry.backoff_max_ms) ms = retry.backoff_max_ms;
  // Deterministic jitter in [0.75, 1.25): respawning workers must not
  // stampede the machine in lockstep, but test runs must reproduce.
  const std::uint64_t h = (index + 1) * 2654435761ull +
                          static_cast<std::uint64_t>(consecutive_crashes) *
                              40503ull;
  ms *= 0.75 + 0.5 * static_cast<double>(h % 1000) / 1000.0;
  Timer t;
  while (t.millis() < ms) {
    if (engine_cancelled.load(std::memory_order_relaxed) ||
        parent_budget.cancel_requested()) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

Supervisor::Await Supervisor::await_result(
    Slot& slot, std::uint64_t id, double deadline_seconds,
    const SolveBudget& parent_budget,
    const std::atomic<bool>& engine_cancelled, JobOutcome& out) {
  const int fd = slot.fd.load(std::memory_order_relaxed);
  Timer elapsed;
  auto last_heartbeat = std::chrono::steady_clock::now();
  bool cancel_sent = false;
  double kill_after_cancel_at = 0.0;
  for (;;) {
    Frame frame;
    const ReadStatus rs = read_frame(fd, kAwaitPollMs, frame);
    if (rs == ReadStatus::kEof || rs == ReadStatus::kError) {
      return Await::kCrashed;
    }
    if (rs == ReadStatus::kFrame) {
      switch (frame.type) {
        case FrameType::kHeartbeat:
          last_heartbeat = std::chrono::steady_clock::now();
          continue;
        case FrameType::kResult: {
          ResultFrame result;
          if (!decode_result(frame.payload, result) || result.id != id) {
            // Protocol corruption: the channel can no longer be trusted.
            return Await::kCrashed;
          }
          out.status = JobStatus::kCompleted;
          out.solution = std::move(result.solution);
          slot.jobs_completed.fetch_add(1, std::memory_order_relaxed);
          return Await::kDone;
        }
        case FrameType::kError: {
          ErrorFrame error;
          if (!decode_error(frame.payload, error) || error.id != id) {
            return Await::kCrashed;
          }
          out.status = JobStatus::kFailed;
          out.error = error.message;
          out.transient = error.retryable;
          return Await::kDone;
        }
        default:
          continue;  // unknown frame type: skip
      }
    }
    // Timeout tick: liveness and cancellation checks.
    const double now_s = elapsed.seconds();
    if (!cancel_sent && (engine_cancelled.load(std::memory_order_relaxed) ||
                         parent_budget.cancel_requested())) {
      write_frame(fd, FrameType::kCancel, std::string());
      cancel_sent = true;
      kill_after_cancel_at = now_s + opt_.kill_grace_seconds;
    }
    if (cancel_sent && now_s >= kill_after_cancel_at) {
      return Await::kCancelKill;
    }
    if (deadline_seconds > 0 &&
        now_s >= deadline_seconds + opt_.kill_grace_seconds) {
      // Cooperative deadline ignored: the child should have unwound with
      // kDeadlineExceeded by now.  Treat the wedge as a crash.
      return Await::kCrashed;
    }
    const double silent =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_heartbeat)
            .count();
    if (silent > opt_.heartbeat_timeout_seconds) {
      return Await::kCrashed;
    }
  }
}

void Supervisor::read_cache_donor(Slot& slot, std::uint64_t id,
                                  CacheDonorFrame& out) {
  const int fd = slot.fd.load(std::memory_order_relaxed);
  // The child writes the donor frame right after the result, so it is
  // normally already buffered; the bound only matters when the child
  // does not speak the cache protocol at all.
  for (int polls = 0; polls < 5; ++polls) {
    Frame frame;
    const ReadStatus rs = read_frame(fd, 200, frame);
    if (rs == ReadStatus::kTimeout) continue;
    if (rs != ReadStatus::kFrame) return;  // EOF/error: next job handles it
    if (frame.type == FrameType::kHeartbeat) continue;
    if (frame.type != FrameType::kCacheDonor) return;  // unexpected: drop
    CacheDonorFrame donor;
    if (decode_cache_donor(frame.payload, donor) && donor.id == id) {
      out = std::move(donor);
    }
    return;
  }
}

JobOutcome Supervisor::run_job(std::size_t index, const SolveJob& job,
                               std::uint64_t id, double deadline_seconds,
                               std::int64_t max_nodes,
                               const SolveBudget& parent_budget,
                               const std::atomic<bool>& engine_cancelled,
                               const CacheSeedFrame* cache_seed,
                               CacheDonorFrame* cache_donor) {
  JobOutcome out;
  out.id = id;
  out.tag = job.tag;
  out.worker = index;
  Slot& slot = *slots_[index];

  JobFrame frame;
  frame.id = id;
  frame.deadline_seconds = deadline_seconds;
  frame.max_nodes = max_nodes;
  frame.want_donor = cache_donor != nullptr;
  {
    std::ostringstream os;
    behavior::write_scenario(os, *job.scenario);
    frame.scenario_text = os.str();
  }
  const std::string seed_payload =
      cache_seed != nullptr ? encode_cache_seed(*cache_seed) : std::string();

  Timer solve_timer;
  for (;;) {
    if (!ensure_worker(slot)) {
      if (engine_cancelled.load(std::memory_order_relaxed) ||
          parent_budget.cancel_requested()) {
        out.status = JobStatus::kCancelled;
        out.error = "cancelled before a worker could be spawned";
      } else {
        out.status = JobStatus::kFailed;
        out.transient = true;
        std::lock_guard<std::mutex> lock(spawn_mutex_);
        out.error = "worker spawn failed: " + slot.last_error;
      }
      break;
    }
    // Chaos flags are polled in the parent so the shared fault table
    // counts every attempt exactly once; the child just obeys the bits.
    frame.chaos_abort = faultinject::should_fail(faultinject::Site::kWorkerAbort);
    frame.chaos_hang = faultinject::should_fail(faultinject::Site::kWorkerHang);

    slot.state.store(1, std::memory_order_relaxed);
    Await result = Await::kCrashed;  // a failed send == the child is gone
    const int fd = slot.fd.load(std::memory_order_relaxed);
    // The seed rides ahead of the job on the same stream (re-sent on
    // every crash retry); a child that predates the cache protocol just
    // skips the unknown frame type.
    const bool seed_ok =
        cache_seed == nullptr ||
        write_frame(fd, FrameType::kCacheSeed, seed_payload);
    if (seed_ok && write_frame(fd, FrameType::kJob, encode_job(frame))) {
      result = await_result(slot, id, deadline_seconds, parent_budget,
                            engine_cancelled, out);
    }
    if (result == Await::kDone) {
      if (cache_donor != nullptr) {
        read_cache_donor(slot, id, *cache_donor);
      }
      slot.consecutive_crashes = 0;
      slot.state.store(0, std::memory_order_relaxed);
      break;
    }
    if (result == Await::kCancelKill) {
      clear_slot(slot, /*grace_ms=*/0);
      out.status = JobStatus::kCancelled;
      out.error = "worker ignored cancel past the grace period (SIGKILL)";
      break;
    }
    // Crash: reap, classify, and decide between retry and giving up.
    clear_slot(slot, /*grace_ms=*/500);
    ++out.crashes;
    ++slot.consecutive_crashes;
    slot.crashes.fetch_add(1, std::memory_order_relaxed);
    SupervisorMetrics::get().worker_crashes.add(1);
    std::string exit_desc;
    {
      std::lock_guard<std::mutex> lock(spawn_mutex_);
      exit_desc = slot.last_exit;
    }
    CUBISG_LOG(LogLevel::kWarn)
        << "worker " << index << " died mid-job " << id << " (" << exit_desc
        << "), crash " << out.crashes << "/" << opt_.retry.max_crashes
        << " for this job";
    if (engine_cancelled.load(std::memory_order_relaxed) ||
        parent_budget.cancel_requested()) {
      out.status = JobStatus::kWorkerCrashed;
      out.error = "worker " + exit_desc + "; cancellation pending";
      break;
    }
    if (out.crashes > opt_.retry.max_crashes) {
      if (opt_.retry.max_crashes > 0) {
        out.status = JobStatus::kQuarantined;
        out.error = "quarantined after " + std::to_string(out.crashes) +
                    " worker crashes (last: " + exit_desc + ")";
        SupervisorMetrics::get().jobs_quarantined.add(1);
        CUBISG_LOG(LogLevel::kError)
            << "job " << id << (job.tag.empty() ? "" : " [" + job.tag + "]")
            << " quarantined: " << out.error;
      } else {
        out.status = JobStatus::kWorkerCrashed;
        out.error = "worker " + exit_desc;
      }
      break;
    }
    SupervisorMetrics::get().jobs_retried.add(1);
    slot.state.store(2, std::memory_order_relaxed);
    if (!backoff(index, slot.consecutive_crashes, parent_budget,
                 engine_cancelled)) {
      out.status = JobStatus::kWorkerCrashed;
      out.error = "worker " + exit_desc + "; cancelled during respawn backoff";
      break;
    }
  }
  out.solve_seconds = solve_timer.seconds();
  return out;
}

std::string Supervisor::status_json() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(spawn_mutex_);
  std::size_t alive = 0;
  os << "{\"workers\":[";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = *slots_[i];
    const long pid = slot.pid.load(std::memory_order_relaxed);
    if (pid > 0) ++alive;
    if (i > 0) os << ",";
    os << "{\"slot\":" << i << ",\"pid\":" << pid << ",\"state\":\""
       << state_name(slot.state.load(std::memory_order_relaxed))
       << "\",\"spawns\":" << slot.spawns.load(std::memory_order_relaxed)
       << ",\"restarts\":" << slot.restarts.load(std::memory_order_relaxed)
       << ",\"crashes\":" << slot.crashes.load(std::memory_order_relaxed)
       << ",\"jobs_completed\":"
       << slot.jobs_completed.load(std::memory_order_relaxed)
       << ",\"last_exit\":\"" << slot.last_exit << "\"}";
  }
  os << "],\"alive\":" << alive << ",\"slots\":" << slots_.size() << "}";
  return os.str();
}

}  // namespace cubisg::engine

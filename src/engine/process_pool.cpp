#include "engine/process_pool.hpp"

#include <cstring>

#include "common/errors.hpp"

namespace cubisg::engine {

bool process_isolation_available() { return CUBISG_PROCESS_ISOLATION != 0; }

// ---- wire format -------------------------------------------------------

namespace {

// Little-endian raw-byte serialization.  Doubles travel as their 8-byte
// IEEE-754 image so a solution decodes bitwise-equal to what the child
// computed — the differential tests compare with memcmp, not tolerance.

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(buf) {}
  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int32_t i32() { return scalar<std::int32_t>(); }
  std::int64_t i64() { return scalar<std::int64_t>(); }
  double f64() { return scalar<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string s = buf_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == buf_.size(); }

 private:
  template <typename T>
  T scalar() {
    T v{};
    const char* p = take(sizeof(T));
    if (p != nullptr) std::memcpy(&v, p, sizeof(T));
    return v;
  }
  const char* take(std::size_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return nullptr;
    }
    const char* p = buf_.data() + pos_;
    pos_ += n;
    return p;
  }
  const std::string& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void write_certificate(ByteWriter& w, const audit::SolutionCertificate& c) {
  w.u8(c.present ? 1 : 0);
  w.str(c.solver);
  w.u64(static_cast<std::uint64_t>(c.targets));
  w.f64(c.resources);
  w.str(c.coverage);
  w.u8(c.has_bracket ? 1 : 0);
  w.u8(c.bracket_converged ? 1 : 0);
  w.f64(c.epsilon);
  w.i32(c.segments);
  w.f64(c.lb);
  w.f64(c.ub);
  w.u32(static_cast<std::uint32_t>(c.rounds.size()));
  for (const audit::CertificateRound& r : c.rounds) {
    w.f64(r.lo);
    w.f64(r.hi);
    w.i32(r.feasible);
    w.i32(r.infeasible);
  }
  w.u8(c.has_milp ? 1 : 0);
  w.f64(c.milp_incumbent);
  w.f64(c.milp_bound);
  w.i64(c.milp_nodes);
  w.f64(c.claimed_worst_case);
  w.f64(c.budget_residual);
  w.f64(c.box_residual);
}

bool read_certificate(ByteReader& r, audit::SolutionCertificate& c) {
  c.present = r.u8() != 0;
  c.solver = r.str();
  c.targets = static_cast<std::size_t>(r.u64());
  c.resources = r.f64();
  c.coverage = r.str();
  c.has_bracket = r.u8() != 0;
  c.bracket_converged = r.u8() != 0;
  c.epsilon = r.f64();
  c.segments = r.i32();
  c.lb = r.f64();
  c.ub = r.f64();
  const std::uint32_t rounds = r.u32();
  if (!r.ok() || rounds > (1u << 24)) return false;
  c.rounds.resize(rounds);
  for (audit::CertificateRound& round : c.rounds) {
    round.lo = r.f64();
    round.hi = r.f64();
    round.feasible = r.i32();
    round.infeasible = r.i32();
  }
  c.has_milp = r.u8() != 0;
  c.milp_incumbent = r.f64();
  c.milp_bound = r.f64();
  c.milp_nodes = r.i64();
  c.claimed_worst_case = r.f64();
  c.budget_residual = r.f64();
  c.box_residual = r.f64();
  return r.ok();
}

// Breakpoint tables ride as raw doubles: transplanted rows must land in
// the child bitwise-equal to the parent's cached copy, or adoption would
// not reproduce the cold build.
void write_tables(ByteWriter& w, const core::StepTables& t) {
  w.u64(static_cast<std::uint64_t>(t.segments));
  w.u32(static_cast<std::uint32_t>(t.lower.size()));
  for (const auto* rows : {&t.lower, &t.upper, &t.utility}) {
    for (const std::vector<double>& row : *rows) {
      w.u32(static_cast<std::uint32_t>(row.size()));
      for (double v : row) w.f64(v);
    }
  }
}

bool read_tables(ByteReader& r, core::StepTables& t) {
  t.segments = static_cast<std::size_t>(r.u64());
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 24)) return false;
  for (auto* rows : {&t.lower, &t.upper, &t.utility}) {
    rows->resize(n);
    for (std::vector<double>& row : *rows) {
      const std::uint32_t k = r.u32();
      if (!r.ok() || k > (1u << 24)) return false;
      row.resize(k);
      for (double& v : row) v = r.f64();
    }
  }
  return r.ok();
}

}  // namespace

std::string encode_cache_seed(const CacheSeedFrame& seed) {
  ByteWriter w;
  w.u64(seed.id);
  write_tables(w, seed.tables);
  w.u32(static_cast<std::uint32_t>(seed.adopt.size()));
  for (std::uint8_t a : seed.adopt) w.u8(a);
  return w.take();
}

bool decode_cache_seed(const std::string& payload, CacheSeedFrame& out) {
  ByteReader r(payload);
  out.id = r.u64();
  if (!read_tables(r, out.tables)) return false;
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 24)) return false;
  out.adopt.resize(n);
  for (std::uint8_t& a : out.adopt) a = r.u8();
  return r.at_end();
}

std::string encode_cache_donor(const CacheDonorFrame& donor) {
  ByteWriter w;
  w.u64(donor.id);
  w.u8(static_cast<std::uint8_t>((donor.used ? 1 : 0) |
                                 (donor.rejected ? 2 : 0) |
                                 (donor.has_tables ? 4 : 0)));
  w.u32(donor.adopted);
  w.u32(donor.repaired);
  if (donor.has_tables) write_tables(w, donor.tables);
  return w.take();
}

bool decode_cache_donor(const std::string& payload, CacheDonorFrame& out) {
  ByteReader r(payload);
  out.id = r.u64();
  const std::uint8_t flags = r.u8();
  out.used = (flags & 1) != 0;
  out.rejected = (flags & 2) != 0;
  out.has_tables = (flags & 4) != 0;
  out.adopted = r.u32();
  out.repaired = r.u32();
  if (out.has_tables && !read_tables(r, out.tables)) return false;
  return r.at_end();
}

std::string encode_job(const JobFrame& job) {
  ByteWriter w;
  w.u64(job.id);
  w.f64(job.deadline_seconds);
  w.i64(job.max_nodes);
  w.u8(static_cast<std::uint8_t>((job.chaos_abort ? 1 : 0) |
                                 (job.chaos_hang ? 2 : 0) |
                                 (job.want_donor ? 4 : 0)));
  w.str(job.scenario_text);
  return w.take();
}

bool decode_job(const std::string& payload, JobFrame& out) {
  ByteReader r(payload);
  out.id = r.u64();
  out.deadline_seconds = r.f64();
  out.max_nodes = r.i64();
  const std::uint8_t chaos = r.u8();
  out.chaos_abort = (chaos & 1) != 0;
  out.chaos_hang = (chaos & 2) != 0;
  out.want_donor = (chaos & 4) != 0;
  out.scenario_text = r.str();
  return r.at_end();
}

std::string encode_result(const ResultFrame& result) {
  const core::DefenderSolution& s = result.solution;
  ByteWriter w;
  w.u64(result.id);
  w.u8(static_cast<std::uint8_t>(s.status));
  w.u32(static_cast<std::uint32_t>(s.strategy.size()));
  for (double x : s.strategy) w.f64(x);
  w.f64(s.worst_case_utility);
  w.f64(s.solver_objective);
  w.f64(s.lb);
  w.f64(s.ub);
  w.i32(s.binary_steps);
  w.i64(s.milp_nodes);
  w.f64(s.wall_seconds);
  write_certificate(w, s.certificate);
  // Telemetry: per-solve counter deltas plus the wall clock.  Gauges and
  // histograms describe process-wide state, not this job, so they stay
  // in the child.
  w.f64(s.telemetry.wall_seconds);
  w.u32(static_cast<std::uint32_t>(s.telemetry.metrics.counters.size()));
  for (const obs::CounterSnapshot& c : s.telemetry.metrics.counters) {
    w.str(c.name);
    w.i64(c.value);
  }
  return w.take();
}

bool decode_result(const std::string& payload, ResultFrame& out) {
  ByteReader r(payload);
  out.id = r.u64();
  core::DefenderSolution& s = out.solution;
  s = core::DefenderSolution{};
  s.status = static_cast<SolverStatus>(r.u8());
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 26)) return false;
  s.strategy.resize(n);
  for (double& x : s.strategy) x = r.f64();
  s.worst_case_utility = r.f64();
  s.solver_objective = r.f64();
  s.lb = r.f64();
  s.ub = r.f64();
  s.binary_steps = r.i32();
  s.milp_nodes = r.i64();
  s.wall_seconds = r.f64();
  if (!read_certificate(r, s.certificate)) return false;
  s.telemetry.wall_seconds = r.f64();
  const std::uint32_t counters = r.u32();
  if (!r.ok() || counters > (1u << 20)) return false;
  s.telemetry.metrics.counters.resize(counters);
  for (obs::CounterSnapshot& c : s.telemetry.metrics.counters) {
    c.name = r.str();
    c.value = r.i64();
  }
  return r.at_end();
}

std::string encode_error(const ErrorFrame& error) {
  ByteWriter w;
  w.u64(error.id);
  w.u8(error.retryable ? 1 : 0);
  w.str(error.message);
  return w.take();
}

bool decode_error(const std::string& payload, ErrorFrame& out) {
  ByteReader r(payload);
  out.id = r.u64();
  out.retryable = r.u8() != 0;
  out.message = r.str();
  return r.at_end();
}

}  // namespace cubisg::engine

// ---- process + socket layer --------------------------------------------

#if CUBISG_PROCESS_ISOLATION

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <sstream>
#include <thread>

#include "behavior/scenario.hpp"
#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "core/workspace.hpp"
#include "obs/solve_report.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace cubisg::engine {

namespace {

constexpr std::size_t kMaxPayload = 256u << 20;  // 256 MB sanity cap
constexpr auto kHeartbeatInterval = std::chrono::milliseconds(200);

bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking exact-count read.  1 = ok, 0 = clean EOF at a frame
/// boundary, -1 = error or EOF mid-frame.
int recv_all(int fd, char* data, std::size_t len) {
  bool first = true;
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n == 0) return first ? 0 : -1;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    first = false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, FrameType type, const std::string& payload) {
  if (fd < 0 || payload.size() > kMaxPayload) return false;
  std::string buf;
  buf.reserve(5 + payload.size());
  buf.push_back(static_cast<char>(type));
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof len);
  buf.append(payload);
  return send_all(fd, buf.data(), buf.size());
}

ReadStatus read_frame(int fd, int timeout_ms, Frame& out) {
  if (fd < 0) return ReadStatus::kError;
  // The timeout covers waiting for the frame to *start*; once the header
  // byte is on the wire the rest follows within a syscall or two (frames
  // are written with one send), so the body reads block.
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (rc == 0) return ReadStatus::kTimeout;
    break;
  }
  char header[5];
  const int rc = recv_all(fd, header, sizeof header);
  if (rc == 0) return ReadStatus::kEof;
  if (rc < 0) return ReadStatus::kError;
  out.type = static_cast<FrameType>(header[0]);
  std::uint32_t len = 0;
  std::memcpy(&len, header + 1, sizeof len);
  if (len > kMaxPayload) return ReadStatus::kError;
  out.payload.resize(len);
  if (len > 0 && recv_all(fd, out.payload.data(), len) != 1) {
    return ReadStatus::kError;
  }
  return ReadStatus::kFrame;
}

// ---- child side --------------------------------------------------------

namespace {

/// Runs one job on a dedicated solve thread while this (the child's
/// socket-owning) thread streams heartbeats and watches for cancel
/// frames.  Returns false when the parent is unreachable.  `seed` (may
/// be null) is the parent cache's transplant offer for this job; with
/// job.want_donor set, a kCacheDonor frame follows the result/error.
bool serve_one_job(int fd, const core::DefenderSolver& solver,
                   const JobFrame& job, const CacheSeedFrame* seed) {
  SolveBudget budget;
  if (job.deadline_seconds > 0) budget.set_deadline_after(job.deadline_seconds);
  if (job.max_nodes > 0) budget.set_node_limit(job.max_nodes);

  ResultFrame result;
  result.id = job.id;
  ErrorFrame error;
  error.id = job.id;
  std::atomic<bool> failed{false};
  // Per-job workspace (fresh, so the token/stat zeroing the engine does
  // for its thread-mode workspaces holds by construction here): carries
  // the transplant seed in and the stats + harvested tables out.
  core::SolveWorkspace ws;
  if (seed != nullptr) {
    auto donor = std::make_shared<core::TransplantDonor>();
    donor->tables = seed->tables;
    auto transplant = std::make_shared<core::TransplantSeed>();
    transplant->donor = std::move(donor);
    transplant->adopt = seed->adopt;
    ws.transplant_seed = std::move(transplant);
  }
  std::promise<void> done_promise;
  std::future<void> done = done_promise.get_future();
  std::thread solve_thread([&] {
    try {
      if (job.chaos_hang) {
        // Simulated non-cooperative wedge: ignores the budget forever.
        // Heartbeats keep flowing, so only the supervisor's hard
        // deadline + grace SIGKILL path can end this job.
        for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
      }
      std::istringstream in(job.scenario_text);
      const behavior::Scenario scenario = behavior::read_scenario(in);
      const auto bounds = scenario.make_bounds();
      core::SolveContext ctx{scenario.game.game, bounds, &budget, &ws};
      // Coverage polytope from the scenario's optional `coverage` line;
      // default = simplex, matching the in-process engine path.
      if (!scenario.coverage.is_default()) ctx.space = &scenario.coverage;
      result.solution = solver.solve(ctx);
    } catch (const InvalidModelError& e) {
      failed = true;
      error.retryable = false;  // same model fails the same way again
      error.message = e.what();
    } catch (const std::exception& e) {
      failed = true;
      error.retryable = true;
      error.message = e.what();
    } catch (...) {
      failed = true;
      error.retryable = true;
      error.message = "unknown solver exception";
    }
    done_promise.set_value();
  });

  bool parent_gone = false;
  auto last_heartbeat = std::chrono::steady_clock::now();
  for (;;) {
    // wait_for is the pacer, not added latency: set_value wakes it.
    if (done.wait_for(std::chrono::milliseconds(2)) ==
        std::future_status::ready) {
      break;
    }
    if (parent_gone) continue;  // cancel sent; just wait for the unwind
    const auto now = std::chrono::steady_clock::now();
    if (now - last_heartbeat >= kHeartbeatInterval) {
      if (!write_frame(fd, FrameType::kHeartbeat, std::string())) {
        parent_gone = true;
        budget.request_cancel();
        continue;
      }
      last_heartbeat = now;
    }
    Frame in;
    const ReadStatus rs = read_frame(fd, 0, in);
    if (rs == ReadStatus::kEof || rs == ReadStatus::kError) {
      parent_gone = true;
      budget.request_cancel();
    } else if (rs == ReadStatus::kFrame && in.type == FrameType::kCancel) {
      budget.request_cancel();
    }
  }
  solve_thread.join();
  if (parent_gone) return false;
  bool sent = failed.load()
                  ? write_frame(fd, FrameType::kError, encode_error(error))
                  : write_frame(fd, FrameType::kResult, encode_result(result));
  if (sent && job.want_donor) {
    // Transplant bookkeeping + donor harvest for the parent cache.  The
    // tables travel only when the solve marked them as its own (the
    // token gate — a non-CUBIS solver never sets it).
    CacheDonorFrame donor;
    donor.id = job.id;
    donor.used = ws.transplant_stats.used;
    donor.rejected = ws.transplant_stats.rejected;
    donor.adopted = ws.transplant_stats.adopted;
    donor.repaired = ws.transplant_stats.repaired;
    if (!failed.load() && ws.tables_token != 0) {
      donor.has_tables = true;
      donor.tables = std::move(ws.tables);
    }
    sent = write_frame(fd, FrameType::kCacheDonor, encode_cache_donor(donor));
  }
  return sent;
}

[[noreturn]] void worker_child_main(int fd,
                                    const core::DefenderSolver& solver) {
  // Cancellation reaches the child as a frame, never a signal: SIGINT on
  // the foreground process group must not tear down workers before the
  // parent has drained them, and a dead parent shows up as EOF/EPIPE.
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGTERM, SIG_IGN);
  std::signal(SIGPIPE, SIG_IGN);
  // The parent's trace/phase buffers were duplicated by fork but their
  // flush path (and output file) belongs to the parent; recording here
  // would interleave garbage, so turn both off at the atomics.
  obs::set_trace_enabled(false);
  obs::set_phase_accounting_enabled(false);
  // At most one pending transplant seed: the parent sends it immediately
  // before the kJob frame it belongs to (matched by id, so a seed left
  // behind by a cancelled send can never warm the wrong job).
  CacheSeedFrame pending_seed;
  bool has_seed = false;
  for (;;) {
    Frame frame;
    const ReadStatus rs = read_frame(fd, -1, frame);
    if (rs != ReadStatus::kFrame) _exit(0);  // parent closed our end
    if (frame.type == FrameType::kCancel) continue;  // stale: job already done
    if (frame.type == FrameType::kCacheSeed) {
      has_seed = decode_cache_seed(frame.payload, pending_seed);
      continue;
    }
    if (frame.type != FrameType::kJob) continue;
    JobFrame job;
    if (!decode_job(frame.payload, job)) _exit(3);
    if (job.chaos_abort) std::abort();  // fault site: crash mid-job
    const CacheSeedFrame* seed =
        has_seed && pending_seed.id == job.id ? &pending_seed : nullptr;
    has_seed = false;
    if (!serve_one_job(fd, solver, job, seed)) _exit(0);
  }
}

std::string describe_exit(int status) {
  char buf[96];
  if (WIFSIGNALED(status)) {
    std::snprintf(buf, sizeof buf, "killed by signal %d%s", WTERMSIG(status),
                  WCOREDUMP(status) ? " (core dumped)" : "");
  } else if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof buf, "exited with status %d",
                  WEXITSTATUS(status));
  } else {
    std::snprintf(buf, sizeof buf, "wait status 0x%x", status);
  }
  return buf;
}

}  // namespace

// ---- parent side -------------------------------------------------------

WorkerProcess spawn_worker(std::shared_ptr<const core::DefenderSolver> solver,
                           const std::vector<int>& sibling_fds,
                           std::string& error) {
  WorkerProcess worker;
  if (!solver) {
    error = "spawn_worker: null solver";
    return worker;
  }
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    error = std::string("socketpair: ") + std::strerror(errno);
    return worker;
  }
  // Fork guard: take every global mutex the child could conceivably need
  // (logging, fault-injection table, metrics-name registration, the
  // solve-report ring, the global thread pool) in a fixed order, fork,
  // then release on both sides.  Without this a mutex held by some other
  // parent thread at fork() is locked forever in the child.
  log_detail::fork_lock();
  faultinject::fork_lock();
  ThreadPool::fork_prepare();
  obs::Registry::global().fork_lock();
  obs::SolveReportBuffer::global().fork_lock();
  const pid_t pid = ::fork();
  if (pid == 0) {
    obs::SolveReportBuffer::global().fork_unlock();
    obs::Registry::global().fork_unlock();
    ThreadPool::fork_child();  // inherited pool: degrade to inline execution
    faultinject::fork_unlock();
    log_detail::fork_unlock();
    ::close(sv[0]);
    // Parent ends of sibling workers: holding them open would keep a
    // sibling's socket alive past the parent's death (breaking the
    // orphan-detection EOF) and leak a descriptor per generation.
    for (int fd : sibling_fds) {
      if (fd >= 0 && fd != sv[1]) ::close(fd);
    }
    worker_child_main(sv[1], *solver);
  }
  obs::SolveReportBuffer::global().fork_unlock();
  obs::Registry::global().fork_unlock();
  ThreadPool::fork_parent();
  faultinject::fork_unlock();
  log_detail::fork_unlock();
  if (pid < 0) {
    error = std::string("fork: ") + std::strerror(errno);
    ::close(sv[0]);
    ::close(sv[1]);
    return worker;
  }
  ::close(sv[1]);
  worker.pid = pid;
  worker.fd = sv[0];
  return worker;
}

void destroy_worker(WorkerProcess& worker) {
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid > 0) {
    ::kill(static_cast<pid_t>(worker.pid), SIGKILL);
    int status = 0;
    while (::waitpid(static_cast<pid_t>(worker.pid), &status, 0) < 0 &&
           errno == EINTR) {
    }
    worker.pid = -1;
  }
}

std::string reap_worker(WorkerProcess& worker, int grace_ms) {
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid <= 0) return "not running";
  const pid_t pid = static_cast<pid_t>(worker.pid);
  int status = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms < 0 ? 0 : grace_ms);
  for (;;) {
    const pid_t rc = ::waitpid(pid, &status, WNOHANG);
    if (rc == pid) {
      worker.pid = -1;
      return describe_exit(status);
    }
    if (rc < 0 && errno != EINTR) {
      worker.pid = -1;
      return std::string("waitpid: ") + std::strerror(errno);
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  worker.pid = -1;
  return describe_exit(status);
}

}  // namespace cubisg::engine

#else  // !CUBISG_PROCESS_ISOLATION

namespace cubisg::engine {

WorkerProcess spawn_worker(std::shared_ptr<const core::DefenderSolver>,
                           const std::vector<int>&, std::string& error) {
  error = "process isolation not compiled in on this platform/build";
  return WorkerProcess{};
}

bool write_frame(int, FrameType, const std::string&) { return false; }

ReadStatus read_frame(int, int, Frame&) { return ReadStatus::kError; }

void destroy_worker(WorkerProcess& worker) {
  worker.pid = -1;
  worker.fd = -1;
}

std::string reap_worker(WorkerProcess& worker, int) {
  worker.pid = -1;
  worker.fd = -1;
  return "not running";
}

}  // namespace cubisg::engine

#endif  // CUBISG_PROCESS_ISOLATION

#include "audit/shadow.hpp"

#include <utility>

#include "common/log.hpp"
#include "obs/metrics.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cubisg::audit {

namespace {

/// Best effort: demote the audit worker below every solve thread.  The
/// shadow audit is advisory — losing the scheduling fight is fine, so
/// failures (unprivileged containers, non-Linux) are ignored.
void demote_current_thread() {
#if defined(__linux__)
  sched_param param{};
  (void)pthread_setschedparam(pthread_self(), SCHED_IDLE, &param);
#endif
}

}  // namespace

ShadowAuditor::ShadowAuditor() : ShadowAuditor(Options{}) {}

ShadowAuditor::ShadowAuditor(Options options) : options_(options) {}

ShadowAuditor::~ShadowAuditor() { stop(); }

void ShadowAuditor::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void ShadowAuditor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void ShadowAuditor::observe(
    std::shared_ptr<const games::SecurityGame> game,
    std::shared_ptr<const behavior::AttractivenessBounds> bounds,
    const core::DefenderSolution& solution, std::uint64_t job_id,
    std::string tag) {
  const std::uint64_t seen =
      observed_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t every =
      options_.sample_every == 0 ? 1 : options_.sample_every;
  if (seen % every != 0) return;
  if (game == nullptr || bounds == nullptr) return;

  Sample sample;
  sample.game = std::move(game);
  sample.bounds = std::move(bounds);
  sample.solution = solution;  // deliberate copy: audit runs later
  sample.job_id = job_id;
  sample.tag = std::move(tag);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ || stopping_) return;
    if (queue_.size() >= options_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("audit.dropped_total").add(1);
      return;
    }
    queue_.push_back(std::move(sample));
  }
  cv_.notify_one();
}

void ShadowAuditor::worker_loop() {
  demote_current_thread();
  for (;;) {
    Sample sample;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      sample = std::move(queue_.front());
      queue_.pop_front();
    }
    AuditResult result;
    try {
      result = verify(*sample.game, *sample.bounds, sample.solution,
                      options_.audit);
    } catch (const std::exception& e) {
      // The verifier is meant to absorb bad data; an escape is itself an
      // audit failure worth recording.
      result.findings.push_back({AuditCode::kMalformedCertificate,
                                 std::string("verifier threw: ") + e.what(),
                                 0.0});
    }
    audited_.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok()) {
      failures_.fetch_add(1, std::memory_order_relaxed);
      CUBISG_LOG(LogLevel::kError)
          << "shadow audit failure (job " << sample.job_id << ", "
          << sample.solution.certificate.solver
          << "): " << audit_code_name(result.worst());
    }
    record_outcome(result, sample.solution.certificate.solver, sample.job_id,
                   sample.tag);
  }
}

}  // namespace cubisg::audit

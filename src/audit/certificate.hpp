// Solution certificates: the solver's own evidence for why its answer
// should be believed, attached to every DefenderSolution.
//
// A certificate is deliberately plain data with no pointers into solver
// state: the final binary-search bracket [lb, ub], the per-round sign
// evidence of the P1 feasibility oracle, the MILP incumbent/bound pair
// from the highest feasible step, and the feasibility residuals the
// solver measured on the strategy it returned.  audit::verify()
// (src/audit/verify.hpp) re-derives each claim from the SecurityGame +
// AttractivenessBounds alone and compares — the two sides share nothing
// but this struct, so the verifier can later referee parallel-B&B or
// cache-transplant answers against cold solves.
//
// Header-only on purpose: core/solvers.hpp embeds a certificate in
// DefenderSolution without linking the audit library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cubisg::audit {

/// One binary-search round: the bracket *after* the round's update plus
/// the sign evidence that drove it (how many multisection cut points had
/// a feasible step, i.e. max G >= -slack, and how many did not).
struct CertificateRound {
  double lo = 0.0;
  double hi = 0.0;
  int feasible = 0;    ///< cut points whose step proved sign(max G) >= 0
  int infeasible = 0;  ///< cut points whose step proved sign(max G) < 0
};

/// Evidence attached to a DefenderSolution.  `present` is false when the
/// solution predates finalize_solution (default-constructed solutions);
/// `has_bracket`/`has_milp` gate the solver-family-specific sections so
/// baselines without a binary search still carry the base evidence
/// (shape, claimed worst case, feasibility residuals).
struct SolutionCertificate {
  bool present = false;

  // Provenance: model shape at solve time, for malformed-cert detection
  // when a certificate is replayed against the wrong model.
  std::string solver;       ///< DefenderSolver::name(); may be empty
  std::size_t targets = 0;  ///< game.num_targets() at solve time
  double resources = 0.0;   ///< game.resources() at solve time
  /// Canonical games::CoverageSpace::descriptor() of the polytope the
  /// solve ran on; empty = the paper's simplex.  Self-contained: the
  /// verifier re-derives the feasibility residuals from this string, so
  /// a certificate audits correctly without the original space object.
  std::string coverage;

  // Binary-search evidence (CUBIS families).  The bracket claims
  // W(x) >= lb and, when the solve ran to optimality, ub - lb <= epsilon
  // so the strategy is O(epsilon + 1/K)-optimal (Theorem 1).
  bool has_bracket = false;
  bool bracket_converged = false;  ///< solver reached ub - lb <= epsilon
  double epsilon = 0.0;            ///< threshold the bracket claims to meet
  int segments = 0;                ///< K, the piecewise linearization width
  double lb = 0.0;                 ///< highest value proven feasible
  double ub = 0.0;                 ///< lowest value proven infeasible
  std::vector<CertificateRound> rounds;  ///< oldest first, nested brackets

  // MILP evidence from the step that proved the final lb (kMilp backend
  // only): the branch-and-bound incumbent and its proven bound.  For the
  // maximization step, incumbent <= bound must hold.
  bool has_milp = false;
  double milp_incumbent = 0.0;
  double milp_bound = 0.0;
  std::int64_t milp_nodes = 0;

  // Feasibility evidence measured on the final strategy by the solver
  // itself (the verifier recomputes both from scratch).
  double claimed_worst_case = 0.0;  ///< W(x) via the canonical evaluator
  /// max over budget groups of max(0, sum_g x_i - B_g); the simplex has a
  /// single group with B = R.
  double budget_residual = 0.0;
  /// max_i max(-x_i, x_i - cap_i, 0); the simplex has unit caps.
  double box_residual = 0.0;
};

}  // namespace cubisg::audit

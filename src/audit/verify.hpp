// Independent solution verifier: re-derives every certificate claim from
// the model alone and reports typed findings.
//
// verify() shares no state with any solver — it reads the SecurityGame,
// the AttractivenessBounds, the returned strategy and the certificate,
// and recomputes feasibility plus the worst-case robust utility over
// interval corners via the canonical closed-form evaluator in
// core/worst_case.  Feasibility is re-derived from the certificate's own
// coverage descriptor (games::CoverageSpace) when one is present: group
// budget rows and per-target caps for the non-simplex families, the
// legacy box + sum x_i <= R check otherwise (slack is legal per Eq. 37).
// A descriptor that fails to parse or disagrees with the model is a
// kMalformedCertificate finding.  Bracket
// and MILP evidence are checked for internal consistency and against the
// recomputed value.  This is the audit primitive the shadow auditor
// (audit/shadow.hpp), the `verify` CLI subcommand, and future
// differential harnesses (parallel B&B, cache transplant) all share.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/certificate.hpp"
#include "behavior/bounds.hpp"
#include "core/solvers.hpp"
#include "games/security_game.hpp"

namespace cubisg::audit {

/// Typed audit verdicts, ordered by severity (higher = worse).  The CLI
/// maps these onto exit codes: any kMalformedCertificate finding exits 6,
/// any other finding exits 5.
enum class AuditCode : int {
  kOk = 0,
  kMilpInconsistent,      ///< B&B incumbent exceeds its proven bound
  kBracketViolated,       ///< W(x) < lb, or converged bracket wider than eps
  kWorstCaseMismatch,     ///< recomputed W(x) disagrees with the claim
  kInfeasibleStrategy,    ///< box or budget violation beyond tolerance
  kMalformedCertificate,  ///< certificate self-inconsistent or wrong model
};

/// Stable name ("ok", "malformed-certificate", ...) for logs and JSON.
const char* audit_code_name(AuditCode code);

/// One failed check.  `residual` is the magnitude of the violation (0 for
/// structural findings with no natural magnitude).
struct AuditFinding {
  AuditCode code = AuditCode::kOk;
  std::string detail;
  double residual = 0.0;
};

struct AuditOptions {
  /// Box/budget slack: solvers round through K-segment grids and LP
  /// pivots, so exact feasibility is not expected.
  double feasibility_tol = 1e-6;
  /// Recomputed-vs-claimed worst case.  The claim comes from the same
  /// closed-form evaluator, so disagreement means the strategy or the
  /// certificate changed after finalize_solution.
  double value_tol = 1e-6;
  /// Bracket checks: W(x) >= lb - tol and incumbent <= bound + tol.
  double bracket_tol = 1e-6;
  /// The K-segment linearization lets lb overstate W(x) by O(1/K); the
  /// allowance is factor * payoff_scale / K (matches the convergence
  /// tests' generous estimate of the Theorem 1 constant).
  double linearization_slack_factor = 10.0;
};

/// Verifier outcome: empty findings = the solution checks out.
struct AuditResult {
  std::vector<AuditFinding> findings;
  double recomputed_worst_case = 0.0;
  /// Largest residual observed across every check, including checks that
  /// passed — a health margin even when ok().
  double max_residual = 0.0;
  double verify_seconds = 0.0;

  bool ok() const { return findings.empty(); }
  /// kOk when clean, else the most severe finding's code.
  AuditCode worst() const;
  std::string to_json() const;
};

/// Re-derives everything from the model and checks it against `solution`
/// and `certificate`.  Never throws on bad data — malformed input becomes
/// a kMalformedCertificate / kInfeasibleStrategy finding.
AuditResult verify(const games::SecurityGame& game,
                   const behavior::AttractivenessBounds& bounds,
                   const core::DefenderSolution& solution,
                   const SolutionCertificate& certificate,
                   const AuditOptions& options = {});

/// Convenience overload using the certificate embedded in the solution.
AuditResult verify(const games::SecurityGame& game,
                   const behavior::AttractivenessBounds& bounds,
                   const core::DefenderSolution& solution,
                   const AuditOptions& options = {});

/// Publishes a verify outcome: bumps audit.checks_total /
/// audit.failures_total, keeps the audit.max_residual high-water gauge
/// and the audit.verify_seconds histogram, and on failure deposits a
/// record into obs::AuditLog::global() (served at GET /auditz).  Returns
/// the AuditLog record id (0 when ok or observability is compiled out).
std::int64_t record_outcome(const AuditResult& result,
                            const std::string& solver, std::uint64_t job_id,
                            const std::string& tag);

}  // namespace cubisg::audit

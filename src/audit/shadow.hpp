// Shadow auditor: background re-verification of completed solves.
//
// serve/batch wire observe() into the engine's completion hook; every Nth
// completed job gets a copy of its solution queued for the dedicated
// audit worker, which runs audit::verify() and publishes the outcome
// (audit.* metrics + the /auditz failure ring) via record_outcome().
//
// The hot path pays one relaxed counter increment per completed job and,
// for sampled jobs only, one solution copy + queue push.  Verification
// itself runs on a single low-priority worker thread (SCHED_IDLE where
// available) so audits never compete with solves for a core.  The queue
// is bounded: when the auditor falls behind, samples are dropped and
// counted (audit.dropped_total) rather than backpressuring the engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "audit/verify.hpp"
#include "behavior/bounds.hpp"
#include "core/solvers.hpp"
#include "games/security_game.hpp"

namespace cubisg::audit {

/// Samples completed solves and verifies them off the hot path.
class ShadowAuditor {
 public:
  struct Options {
    /// Audit every Nth observed solve (1 = every solve).  0 behaves as 1.
    std::size_t sample_every = 8;
    /// Pending-verification queue bound; overflow drops the sample.
    std::size_t queue_capacity = 64;
    AuditOptions audit;
  };

  // Two overloads (not one defaulted argument): Options' member
  // initializers are unusable until the enclosing class is complete.
  ShadowAuditor();
  explicit ShadowAuditor(Options options);
  ~ShadowAuditor();  ///< stop()s; drains pending samples first

  ShadowAuditor(const ShadowAuditor&) = delete;
  ShadowAuditor& operator=(const ShadowAuditor&) = delete;

  /// Starts the audit worker.  Idempotent.
  void start();

  /// Stops the worker after it drains everything already queued, so tests
  /// (and exit paths) observe deterministic counts.  Idempotent.
  void stop();

  /// Completion-hook entry: samples every Nth call and queues a copy of
  /// the solution for verification.  The shared_ptrs keep game/bounds
  /// alive until the audit runs.  Cheap when the call is not sampled.
  void observe(std::shared_ptr<const games::SecurityGame> game,
               std::shared_ptr<const behavior::AttractivenessBounds> bounds,
               const core::DefenderSolution& solution, std::uint64_t job_id,
               std::string tag);

  // Introspection for tests and exit summaries.
  std::uint64_t observed() const {
    return observed_.load(std::memory_order_relaxed);
  }
  std::uint64_t audited() const {
    return audited_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Sample {
    std::shared_ptr<const games::SecurityGame> game;
    std::shared_ptr<const behavior::AttractivenessBounds> bounds;
    core::DefenderSolution solution;
    std::uint64_t job_id = 0;
    std::string tag;
  };

  void worker_loop();

  const Options options_;
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> audited_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Sample> queue_;  ///< guarded by mutex_
  bool stopping_ = false;     ///< guarded by mutex_
  bool running_ = false;      ///< guarded by mutex_
  std::thread worker_;
};

}  // namespace cubisg::audit

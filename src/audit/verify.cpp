#include "audit/verify.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include <optional>

#include "common/timer.hpp"
#include "core/worst_case.hpp"
#include "games/coverage_space.hpp"
#include "obs/audit_log.hpp"
#include "obs/metrics.hpp"

namespace cubisg::audit {

namespace {

/// Registry handles for the audit layer, resolved once.
struct AuditMetrics {
  obs::Counter& checks =
      obs::Registry::global().counter("audit.checks_total");
  obs::Counter& failures =
      obs::Registry::global().counter("audit.failures_total");
  obs::Gauge& max_residual =
      obs::Registry::global().gauge("audit.max_residual");
  obs::Histogram& verify_seconds = obs::Registry::global().histogram(
      "audit.verify_seconds", obs::Histogram::latency_bounds_seconds());

  static AuditMetrics& get() {
    static AuditMetrics m;
    return m;
  }
};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

const char* audit_code_name(AuditCode code) {
  switch (code) {
    case AuditCode::kOk:
      return "ok";
    case AuditCode::kMilpInconsistent:
      return "milp-inconsistent";
    case AuditCode::kBracketViolated:
      return "bracket-violated";
    case AuditCode::kWorstCaseMismatch:
      return "worst-case-mismatch";
    case AuditCode::kInfeasibleStrategy:
      return "infeasible-strategy";
    case AuditCode::kMalformedCertificate:
      return "malformed-certificate";
  }
  return "unknown";
}

AuditCode AuditResult::worst() const {
  AuditCode w = AuditCode::kOk;
  for (const AuditFinding& f : findings) {
    if (static_cast<int>(f.code) > static_cast<int>(w)) w = f.code;
  }
  return w;
}

std::string AuditResult::to_json() const {
  std::string out = "{\"ok\":";
  out += ok() ? "true" : "false";
  out += ",\"worst\":\"";
  out += audit_code_name(worst());
  out += "\",\"recomputed_worst_case\":";
  out += fmt(recomputed_worst_case);
  out += ",\"max_residual\":";
  out += fmt(max_residual);
  out += ",\"verify_seconds\":";
  out += fmt(verify_seconds);
  out += ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i) out += ',';
    out += "{\"code\":\"";
    out += audit_code_name(findings[i].code);
    out += "\",\"residual\":";
    out += fmt(findings[i].residual);
    out += ",\"detail\":\"";
    for (char ch : findings[i].detail) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += "\"}";
  }
  out += "]}";
  return out;
}

AuditResult verify(const games::SecurityGame& game,
                   const behavior::AttractivenessBounds& bounds,
                   const core::DefenderSolution& solution,
                   const SolutionCertificate& cert,
                   const AuditOptions& opt) {
  Timer timer;
  AuditResult out;
  const auto note = [&out](AuditCode code, std::string detail,
                           double residual = 0.0) {
    out.findings.push_back({code, std::move(detail), residual});
  };
  const auto track = [&out](double r) {
    if (std::isfinite(r) && r > out.max_residual) out.max_residual = r;
  };

  const std::size_t n = game.num_targets();
  const double budget = game.resources();

  // ---- Certificate structure: self-consistency + model match. ----
  bool cert_sound = cert.present;
  games::CoverageSpace space;  // set from cert.coverage when non-simplex
  bool space_set = false;
  if (cert.present) {
    if (cert.targets != n) {
      note(AuditCode::kMalformedCertificate,
           "certificate targets=" + std::to_string(cert.targets) +
               " but model has " + std::to_string(n));
      cert_sound = false;
    }
    if (!std::isfinite(cert.resources) ||
        std::abs(cert.resources - budget) > opt.feasibility_tol) {
      note(AuditCode::kMalformedCertificate,
           "certificate resources=" + fmt(cert.resources) +
               " but model has R=" + fmt(budget));
      cert_sound = false;
    }
    if (cert.has_bracket) {
      if (!std::isfinite(cert.lb) || !std::isfinite(cert.ub) ||
          !std::isfinite(cert.epsilon)) {
        note(AuditCode::kMalformedCertificate,
             "non-finite bracket evidence");
        cert_sound = false;
      } else if (cert.lb > cert.ub + opt.bracket_tol) {
        note(AuditCode::kMalformedCertificate,
             "inverted bracket: lb=" + fmt(cert.lb) +
                 " > ub=" + fmt(cert.ub),
             cert.lb - cert.ub);
        cert_sound = false;
      } else if (!(cert.epsilon > 0.0) || cert.segments < 1) {
        note(AuditCode::kMalformedCertificate,
             "bracket claims epsilon=" + fmt(cert.epsilon) + ", segments=" +
                 std::to_string(cert.segments));
        cert_sound = false;
      } else {
        // Rounds must nest: lo never decreases, hi never increases, and
        // the last round must land on the final bracket.
        for (std::size_t i = 0; i < cert.rounds.size(); ++i) {
          const CertificateRound& r = cert.rounds[i];
          const bool in_order =
              i == 0 || (r.lo >= cert.rounds[i - 1].lo - opt.bracket_tol &&
                         r.hi <= cert.rounds[i - 1].hi + opt.bracket_tol);
          if (!std::isfinite(r.lo) || !std::isfinite(r.hi) ||
              r.lo > r.hi + opt.bracket_tol || !in_order) {
            note(AuditCode::kMalformedCertificate,
                 "round " + std::to_string(i) + " breaks bracket nesting");
            cert_sound = false;
            break;
          }
        }
        if (cert_sound && !cert.rounds.empty() &&
            (std::abs(cert.rounds.back().lo - cert.lb) > opt.bracket_tol ||
             std::abs(cert.rounds.back().hi - cert.ub) > opt.bracket_tol)) {
          note(AuditCode::kMalformedCertificate,
               "final round bracket does not match certified [lb, ub]");
          cert_sound = false;
        }
      }
    }
    // Coverage polytope: the certificate is self-contained — the
    // descriptor alone must reconstruct the feasible set the solve ran
    // on.  Empty or "simplex" means the paper's X (legacy certificates
    // predate the field and stay verifiable unchanged).
    if (!cert.coverage.empty() && cert.coverage != "simplex") {
      std::optional<games::CoverageSpace> parsed =
          games::CoverageSpace::from_descriptor(cert.coverage);
      if (!parsed.has_value() || parsed->is_default()) {
        note(AuditCode::kMalformedCertificate,
             "unparseable coverage descriptor \"" + cert.coverage + "\"");
        cert_sound = false;
      } else if (parsed->num_targets() != n) {
        note(AuditCode::kMalformedCertificate,
             "coverage descriptor spans " +
                 std::to_string(parsed->num_targets()) +
                 " targets but model has " + std::to_string(n));
        cert_sound = false;
      } else if (std::abs(parsed->total_budget() - budget) >
                 opt.feasibility_tol) {
        note(AuditCode::kMalformedCertificate,
             "coverage budgets sum to " + fmt(parsed->total_budget()) +
                 " but model has R=" + fmt(budget));
        cert_sound = false;
      } else {
        space = std::move(*parsed);
        space_set = true;
      }
    }
    if (cert.has_milp) {
      if (!std::isfinite(cert.milp_incumbent) ||
          !std::isfinite(cert.milp_bound)) {
        note(AuditCode::kMalformedCertificate, "non-finite MILP evidence");
        cert_sound = false;
      } else {
        const double gap = cert.milp_incumbent - cert.milp_bound;
        track(std::max(0.0, gap));
        if (gap > opt.bracket_tol) {
          note(AuditCode::kMilpInconsistent,
               "MILP incumbent " + fmt(cert.milp_incumbent) +
                   " exceeds proven bound " + fmt(cert.milp_bound),
               gap);
        }
      }
    }
  }

  // ---- Strategy feasibility, re-measured from scratch. ----
  const std::vector<double>& x = solution.strategy;
  if (x.size() != n) {
    note(AuditCode::kInfeasibleStrategy,
         "strategy has " + std::to_string(x.size()) + " coordinates, model " +
             std::to_string(n));
    out.verify_seconds = timer.seconds();
    return out;  // no vector to evaluate
  }
  double sum = 0.0;
  double box = 0.0;
  bool all_finite = true;
  for (double xi : x) {
    if (!std::isfinite(xi)) {
      all_finite = false;
      break;
    }
    sum += xi;
    box = std::max(box, std::max(-xi, xi - 1.0));
  }
  if (!all_finite) {
    note(AuditCode::kInfeasibleStrategy, "non-finite strategy coordinate");
    out.verify_seconds = timer.seconds();
    return out;
  }
  if (space_set) {
    // Polytope feasibility re-measured from the certificate's own
    // descriptor: per-group budget rows and per-target caps.  Slack is
    // legal (Eq. 37 generalizes group-wise); only excess violates.
    double budget_over = 0.0;
    double box_over = 0.0;
    space.residuals(x, budget_over, box_over);
    track(box_over);
    if (box_over > opt.feasibility_tol) {
      note(AuditCode::kInfeasibleStrategy,
           "cap/box violation " + fmt(box_over) + " beyond tolerance",
           box_over);
    }
    track(budget_over);
    if (budget_over > opt.feasibility_tol) {
      note(AuditCode::kInfeasibleStrategy,
           "group budget violation " + fmt(budget_over) +
               " beyond tolerance",
           budget_over);
    }
  } else {
    box = std::max(box, 0.0);
    track(box);
    if (box > opt.feasibility_tol) {
      note(AuditCode::kInfeasibleStrategy,
           "box violation " + fmt(box) + " beyond tolerance", box);
    }
    // Eq. 37 allows slack (sum x < R is legal); only excess violates.
    const double over = std::max(0.0, sum - budget);
    track(over);
    if (over > opt.feasibility_tol) {
      note(AuditCode::kInfeasibleStrategy,
           "budget violation: sum x = " + fmt(sum) + " > R = " + fmt(budget),
           over);
    }
  }

  // ---- Worst-case recompute over interval corners (closed form). ----
  out.recomputed_worst_case = core::worst_case_utility(game, bounds, x);
  const double claim_gap =
      std::abs(out.recomputed_worst_case - solution.worst_case_utility);
  track(claim_gap);
  if (claim_gap > opt.value_tol) {
    note(AuditCode::kWorstCaseMismatch,
         "recomputed W(x)=" + fmt(out.recomputed_worst_case) +
             " but solution claims " + fmt(solution.worst_case_utility),
         claim_gap);
  }
  if (cert.present) {
    const double cert_gap =
        std::abs(out.recomputed_worst_case - cert.claimed_worst_case);
    track(cert_gap);
    if (cert_gap > opt.value_tol) {
      note(AuditCode::kWorstCaseMismatch,
           "recomputed W(x)=" + fmt(out.recomputed_worst_case) +
               " but certificate claims " + fmt(cert.claimed_worst_case),
           cert_gap);
    }
  }

  // ---- Bracket / epsilon-optimality consistency (Theorem 1). ----
  if (cert_sound && cert.has_bracket) {
    // The K-segment linearization makes the feasibility oracle O(1/K)
    // approximate, so lb may overstate W(x) by that much — same slack
    // model the repo's own convergence tests use.
    const double scale =
        game.max_defender_reward() - game.min_defender_penalty();
    const double lin_slack = opt.linearization_slack_factor * scale /
                             static_cast<double>(std::max(1, cert.segments));
    const double lb_gap = cert.lb - out.recomputed_worst_case;
    track(std::max(0.0, lb_gap));
    if (lb_gap > lin_slack + opt.bracket_tol) {
      note(AuditCode::kBracketViolated,
           "W(x)=" + fmt(out.recomputed_worst_case) +
               " falls short of certified lb=" + fmt(cert.lb) +
               " beyond the O(1/K) allowance " + fmt(lin_slack),
           lb_gap);
    }
    if (cert.bracket_converged) {
      const double width = cert.ub - cert.lb;
      track(std::max(0.0, width - cert.epsilon));
      if (width > cert.epsilon + opt.bracket_tol) {
        note(AuditCode::kBracketViolated,
             "converged bracket width " + fmt(width) +
                 " exceeds epsilon=" + fmt(cert.epsilon),
             width - cert.epsilon);
      }
    }
  }

  out.verify_seconds = timer.seconds();
  return out;
}

AuditResult verify(const games::SecurityGame& game,
                   const behavior::AttractivenessBounds& bounds,
                   const core::DefenderSolution& solution,
                   const AuditOptions& options) {
  return verify(game, bounds, solution, solution.certificate, options);
}

std::int64_t record_outcome(const AuditResult& result,
                            const std::string& solver, std::uint64_t job_id,
                            const std::string& tag) {
  AuditMetrics& m = AuditMetrics::get();
  m.checks.add(1);
  m.verify_seconds.record(result.verify_seconds);
  // High-water gauge; benign race with concurrent auditors (monotone
  // set-if-greater, a lost update only delays the high-water mark).
  if (result.max_residual > m.max_residual.value()) {
    m.max_residual.set(result.max_residual);
  }
  if (result.ok()) return 0;
  m.failures.add(1);
  obs::AuditRecord rec;
  rec.job_id = job_id;
  rec.tag = tag;
  rec.solver = solver;
  rec.worst_code = audit_code_name(result.worst());
  for (const AuditFinding& f : result.findings) {
    if (!rec.detail.empty()) rec.detail += "; ";
    rec.detail += audit_code_name(f.code);
    rec.detail += ": ";
    rec.detail += f.detail;
  }
  rec.findings = static_cast<int>(result.findings.size());
  rec.max_residual = result.max_residual;
  rec.recomputed_worst_case = result.recomputed_worst_case;
  rec.verify_seconds = result.verify_seconds;
  return obs::AuditLog::global().record(std::move(rec));
}

}  // namespace cubisg::audit

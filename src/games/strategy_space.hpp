// Operations on the paper's defender strategy space X = {0 <= x <= 1,
// sum = R}.  These are thin wrappers over the simplex instance of
// games::CoverageSpace (coverage_space.hpp), which owns the canonical
// implementations for every supported coverage polytope; the arithmetic
// behind these three helpers is unchanged from the pre-abstraction code.
#pragma once

#include <span>
#include <vector>

namespace cubisg::games {

/// The uniform strategy x_i = R / T.
std::vector<double> uniform_strategy(std::size_t num_targets,
                                     double resources);

/// Euclidean projection of `v` onto X = {0 <= x_i <= 1, sum x_i = R}.
/// Computed by bisection on the Lagrange multiplier of the sum constraint
/// (the projection is clamp(v - tau) with a monotone sum in tau).
std::vector<double> project_to_simplex_box(std::span<const double> v,
                                           double resources);

/// Greedy coverage: sorts targets by defender penalty (most damaging first)
/// and assigns coverage 1 until resources run out.  A cheap heuristic used
/// as a multi-start seed.
std::vector<double> greedy_by_penalty(std::span<const double> penalties,
                                      double resources);

}  // namespace cubisg::games

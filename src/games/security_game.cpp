#include "games/security_game.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace cubisg::games {

SecurityGame::SecurityGame(std::vector<TargetPayoffs> payoffs,
                           double resources)
    : payoffs_(std::move(payoffs)), resources_(resources) {
  if (payoffs_.empty()) {
    throw InvalidModelError("SecurityGame: at least one target required");
  }
  if (!std::isfinite(resources_) || resources_ < 0.0 ||
      resources_ > static_cast<double>(payoffs_.size())) {
    throw InvalidModelError(
        "SecurityGame: resources must lie in [0, num_targets]");
  }
  for (std::size_t i = 0; i < payoffs_.size(); ++i) {
    const TargetPayoffs& p = payoffs_[i];
    if (!std::isfinite(p.attacker_reward) ||
        !std::isfinite(p.attacker_penalty) ||
        !std::isfinite(p.defender_reward) ||
        !std::isfinite(p.defender_penalty)) {
      throw InvalidModelError("SecurityGame: non-finite payoff at target " +
                              std::to_string(i));
    }
    if (p.attacker_reward <= p.attacker_penalty) {
      throw InvalidModelError(
          "SecurityGame: attacker reward must exceed penalty at target " +
          std::to_string(i));
    }
    if (p.defender_reward <= p.defender_penalty) {
      throw InvalidModelError(
          "SecurityGame: defender reward must exceed penalty at target " +
          std::to_string(i));
    }
  }
}

std::vector<double> SecurityGame::defender_utilities(
    std::span<const double> x) const {
  if (x.size() != payoffs_.size()) {
    throw InvalidModelError("defender_utilities: strategy size mismatch");
  }
  std::vector<double> u(payoffs_.size());
  for (std::size_t i = 0; i < payoffs_.size(); ++i) {
    u[i] = defender_utility(i, x[i]);
  }
  return u;
}

double SecurityGame::min_defender_penalty() const {
  double v = std::numeric_limits<double>::infinity();
  for (const TargetPayoffs& p : payoffs_) {
    v = std::min(v, p.defender_penalty);
  }
  return v;
}

double SecurityGame::max_defender_reward() const {
  double v = -std::numeric_limits<double>::infinity();
  for (const TargetPayoffs& p : payoffs_) {
    v = std::max(v, p.defender_reward);
  }
  return v;
}

SecurityGame pessimistic_defender_game(
    const SecurityGame& game,
    std::span<const DefenderPayoffIntervals> intervals) {
  if (intervals.size() != game.num_targets()) {
    throw InvalidModelError(
        "pessimistic_defender_game: interval count mismatch");
  }
  std::vector<TargetPayoffs> payoffs(game.num_targets());
  for (std::size_t i = 0; i < game.num_targets(); ++i) {
    payoffs[i] = game.target(i);
    if (!intervals[i].reward.contains(payoffs[i].defender_reward) ||
        !intervals[i].penalty.contains(payoffs[i].defender_penalty)) {
      throw InvalidModelError(
          "pessimistic_defender_game: nominal payoff outside its interval "
          "at target " + std::to_string(i));
    }
    payoffs[i].defender_reward = intervals[i].reward.lo();
    payoffs[i].defender_penalty = intervals[i].penalty.lo();
    if (payoffs[i].defender_reward <= payoffs[i].defender_penalty) {
      throw InvalidModelError(
          "pessimistic_defender_game: reward.lo must exceed penalty.lo at "
          "target " + std::to_string(i));
    }
  }
  return SecurityGame(std::move(payoffs), game.resources());
}

bool SecurityGame::is_feasible_strategy(std::span<const double> x,
                                        double tol) const {
  if (x.size() != payoffs_.size()) return false;
  double sum = 0.0;
  for (double xi : x) {
    if (!(xi >= -tol && xi <= 1.0 + tol)) return false;
    sum += xi;
  }
  return std::abs(sum - resources_) <= tol * static_cast<double>(x.size());
}

}  // namespace cubisg::games

// Seeded random game generators.
//
// These regenerate the experimental workloads of the paper line: random SSG
// instances with attacker payoff intervals whose width is the experimental
// knob for behavioral uncertainty, plus the paper's concrete Table I
// instance and a spatial wildlife-park generator for the example apps.
#pragma once

#include <cstddef>
#include <vector>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "games/coverage_space.hpp"
#include "games/security_game.hpp"

namespace cubisg::games {

/// Knobs for random instance generation.
struct GeneratorOptions {
  double attacker_reward_lo = 1.0;
  double attacker_reward_hi = 10.0;
  double attacker_penalty_lo = -10.0;
  double attacker_penalty_hi = -1.0;
  /// When true the defender payoffs mirror the attacker's (Rd = -Pa,
  /// Pd = -Ra); otherwise they are drawn independently from the same
  /// magnitude ranges.
  bool zero_sum = true;
};

/// Random SSG with point payoffs.
SecurityGame random_game(Rng& rng, std::size_t num_targets, double resources,
                         const GeneratorOptions& options = {});

/// Per-target uncertainty intervals on the attacker's payoffs.
struct IntervalPayoffs {
  Interval attacker_reward;
  Interval attacker_penalty;
};

/// An SSG whose attacker payoffs are uncertain.  `game` carries the
/// midpoint attacker payoffs (and the defender's own, exactly known,
/// payoffs); `attacker_intervals` carries the ranges used to derive the
/// behavioral bounds L_i / U_i.
struct UncertainGame {
  SecurityGame game;
  std::vector<IntervalPayoffs> attacker_intervals;
};

/// Random uncertain SSG.  Each attacker payoff becomes an interval of width
/// `payoff_width` centered on a random draw (clipped so rewards stay
/// positive and penalties negative).
UncertainGame random_uncertain_game(Rng& rng, std::size_t num_targets,
                                    double resources, double payoff_width,
                                    const GeneratorOptions& options = {});

/// Covariant random game (Yang et al. IJCAI'11 style): attacker payoffs
/// are uniform draws; defender payoffs interpolate between the zero-sum
/// mirror (correlation = 1) and independent draws (correlation = 0):
///   Rd_i = c * (-Pa_i) + (1-c) * U[reward range]
///   Pd_i = c * (-Ra_i) + (1-c) * U[penalty range]
/// Security-game evaluations sweep this correlation to stress solvers away
/// from the zero-sum special case.
SecurityGame covariant_game(Rng& rng, std::size_t num_targets,
                            double resources, double correlation,
                            const GeneratorOptions& options = {});

/// The paper's Table I instance: 2 targets, 1 resource, attacker reward
/// intervals [1,5] and [5,9], penalty intervals [-7,-3] and [-9,-5];
/// defender payoffs are the zero-sum mirror of the attacker midpoints.
UncertainGame table1_game();

/// A rows x cols wildlife park: animal density peaks around a few random
/// hotspots; attacker rewards follow density, defender penalties mirror
/// them.  Used by the wildlife example and domain benches.
UncertainGame wildlife_grid_game(Rng& rng, std::size_t rows,
                                 std::size_t cols, double resources,
                                 double payoff_width);

/// A generated instance of one of the non-simplex coverage families: the
/// uncertain game plus the polytope the defender optimizes over.  The
/// game's `resources` always equals `coverage.total_budget()`, so the
/// instance is valid under both the legacy single-budget checks and the
/// family-aware ones.
struct FamilyGame {
  UncertainGame game;
  CoverageSpace coverage;
};

/// Multi-defender SSG (Mutzari et al., arXiv:2204.14000): `num_defenders`
/// defenders each own a contiguous block of `targets_per_defender`
/// targets with a private resource pool drawn around
/// `budget_per_defender` (clamped to the block size).  The coverage
/// polytope is the product of the per-block simplices.
FamilyGame multi_defender_uncertain_game(Rng& rng, std::size_t num_defenders,
                                         std::size_t targets_per_defender,
                                         double budget_per_defender,
                                         double payoff_width,
                                         const GeneratorOptions& options = {});

/// Patrol-graph SSG (Yang et al., arXiv:2410.15600): `num_locations`
/// locations on a path graph with the depot at location 0, time-expanded
/// over `num_slots` slots (target (l, s) has flat index s*L + l).  A
/// location farther than s hops from the depot is unreachable by slot s
/// and gets coverage cap 0 there; each slot's budget is
/// min(per_slot_budget, #reachable(s)).  Payoffs are drawn per location
/// and jittered per slot, so the time-expanded copies are correlated but
/// not identical.
FamilyGame patrol_graph_uncertain_game(Rng& rng, std::size_t num_locations,
                                       std::size_t num_slots,
                                       double per_slot_budget,
                                       double payoff_width,
                                       const GeneratorOptions& options = {});

}  // namespace cubisg::games

#include "games/coverage_space.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "common/math_util.hpp"

namespace cubisg::games {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);  // hex float: lossless
  return buf;
}

/// The legacy single-budget projection, kept verbatim: the simplex
/// instance must reproduce the pre-abstraction arithmetic bit-for-bit
/// (the golden fixtures pin every solve routed through it).
std::vector<double> project_simplex_box(std::span<const double> v,
                                        double resources) {
  const std::size_t n = v.size();
  if (n == 0) throw std::invalid_argument("project: empty vector");
  if (resources < 0.0 || resources > static_cast<double>(n)) {
    throw std::invalid_argument("project: resources out of [0, n]");
  }
  // x(tau)_i = clamp(v_i - tau, 0, 1); sum x(tau) is continuous and
  // non-increasing in tau, from n (tau -> -inf) to 0 (tau -> +inf).
  auto sum_at = [&](double tau) {
    double s = 0.0;
    for (double vi : v) s += clamp(vi - tau, 0.0, 1.0);
    return s;
  };
  double lo = -1.0, hi = 1.0;
  {
    const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    lo = *mn - 1.5;  // sum_at(lo) == n >= resources
    hi = *mx + 0.5;  // sum_at(hi) == 0 <= resources
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-14; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sum_at(mid) > resources) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double tau = 0.5 * (lo + hi);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = clamp(v[i] - tau, 0.0, 1.0);
  // Tiny residual redistribution so the sum is exact.
  double residual = resources;
  for (double xi : x) residual -= xi;
  for (std::size_t i = 0; i < n && std::abs(residual) > 1e-15; ++i) {
    const double adj = clamp(x[i] + residual, 0.0, 1.0) - x[i];
    x[i] += adj;
    residual -= adj;
  }
  return x;
}

}  // namespace

const char* to_string(CoverageFamily family) {
  switch (family) {
    case CoverageFamily::kSimplex:
      return "simplex";
    case CoverageFamily::kGrouped:
      return "grouped";
    case CoverageFamily::kMultiDefender:
      return "multi-defender";
    case CoverageFamily::kPatrolGraph:
      return "patrol-graph";
  }
  return "unknown";
}

CoverageSpace CoverageSpace::simplex(std::size_t num_targets,
                                     double resources) {
  if (num_targets == 0) {
    throw std::invalid_argument("CoverageSpace: empty game");
  }
  if (resources < 0.0 ||
      resources > static_cast<double>(num_targets)) {
    throw std::invalid_argument(
        "CoverageSpace: resources out of [0, num_targets]");
  }
  CoverageSpace s;
  s.family_ = CoverageFamily::kSimplex;
  s.t_ = num_targets;
  s.budgets_ = {resources};
  return s;
}

CoverageSpace CoverageSpace::grouped(std::vector<std::size_t> groups,
                                     std::vector<double> budgets,
                                     CoverageFamily family) {
  if (groups.empty()) {
    throw std::invalid_argument("CoverageSpace: empty game");
  }
  if (budgets.empty()) {
    throw std::invalid_argument("CoverageSpace: no group budgets");
  }
  std::vector<std::size_t> sizes(budgets.size(), 0);
  for (std::size_t g : groups) {
    if (g >= budgets.size()) {
      throw std::invalid_argument("CoverageSpace: group id out of range");
    }
    ++sizes[g];
  }
  for (std::size_t g = 0; g < budgets.size(); ++g) {
    if (!(budgets[g] >= 0.0)) {
      throw std::invalid_argument("CoverageSpace: negative group budget");
    }
    // Unit caps: a group must be able to absorb its own budget, or the
    // equality projection target would be unreachable.
    if (budgets[g] > static_cast<double>(sizes[g]) + 1e-9) {
      throw std::invalid_argument(
          "CoverageSpace: group budget exceeds group capacity");
    }
  }
  CoverageSpace s;
  s.family_ = family == CoverageFamily::kSimplex ? CoverageFamily::kGrouped
                                                 : family;
  s.t_ = groups.size();
  s.groups_ = std::move(groups);
  s.budgets_ = std::move(budgets);
  return s;
}

CoverageSpace CoverageSpace::multi_defender(
    const std::vector<std::size_t>& block_sizes,
    std::vector<double> budgets) {
  if (block_sizes.size() != budgets.size() || block_sizes.empty()) {
    throw std::invalid_argument(
        "CoverageSpace: one budget per defender block required");
  }
  std::vector<std::size_t> groups;
  for (std::size_t d = 0; d < block_sizes.size(); ++d) {
    if (block_sizes[d] == 0) {
      throw std::invalid_argument("CoverageSpace: empty defender block");
    }
    groups.insert(groups.end(), block_sizes[d], d);
  }
  return grouped(std::move(groups), std::move(budgets),
                 CoverageFamily::kMultiDefender);
}

CoverageSpace CoverageSpace::patrol_graph(std::vector<std::size_t> groups,
                                          std::vector<double> budgets,
                                          std::vector<double> caps) {
  if (caps.size() != groups.size()) {
    throw std::invalid_argument(
        "CoverageSpace: one cap per target required");
  }
  CoverageSpace s = grouped(std::move(groups), std::move(budgets),
                            CoverageFamily::kPatrolGraph);
  std::vector<double> cap_sum(s.budgets_.size(), 0.0);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (!(caps[i] >= 0.0) || caps[i] > 1.0) {
      throw std::invalid_argument("CoverageSpace: cap out of [0, 1]");
    }
    cap_sum[s.groups_[i]] += caps[i];
  }
  for (std::size_t g = 0; g < s.budgets_.size(); ++g) {
    if (s.budgets_[g] > cap_sum[g] + 1e-9) {
      throw std::invalid_argument(
          "CoverageSpace: group budget exceeds reachable capacity");
    }
  }
  s.caps_ = std::move(caps);
  return s;
}

double CoverageSpace::total_budget() const {
  double total = 0.0;
  for (double b : budgets_) total += b;
  return total;
}

std::vector<double> CoverageSpace::uniform_seed() const {
  if (t_ == 0) throw std::invalid_argument("CoverageSpace: empty game");
  if (is_simplex() && groups_.empty()) {
    // Legacy uniform_strategy: R/T exactly, no clamp.
    return std::vector<double>(t_,
                               budgets_[0] / static_cast<double>(t_));
  }
  std::vector<std::size_t> sizes(budgets_.size(), 0);
  for (std::size_t i = 0; i < t_; ++i) ++sizes[group_of(i)];
  std::vector<double> x(t_, 0.0);
  for (std::size_t i = 0; i < t_; ++i) {
    const std::size_t g = group_of(i);
    x[i] = std::min(cap(i), budgets_[g] /
                                static_cast<double>(
                                    std::max<std::size_t>(1, sizes[g])));
  }
  return x;
}

std::vector<double> CoverageSpace::greedy_seed(
    std::span<const double> penalties) const {
  if (penalties.size() != t_) {
    throw std::invalid_argument("CoverageSpace: penalties size mismatch");
  }
  std::vector<std::size_t> order(t_);
  std::iota(order.begin(), order.end(), 0u);
  // Most negative (worst) penalty first; equal penalties resolved by
  // target index so the seed is pinned across platforms.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (penalties[a] != penalties[b]) return penalties[a] < penalties[b];
    return a < b;
  });
  std::vector<double> left = budgets_;
  std::vector<double> x(t_, 0.0);
  for (std::size_t idx : order) {
    double& l = left[group_of(idx)];
    const double add = std::min(cap(idx), std::max(0.0, l));
    x[idx] = add;
    l -= add;
  }
  return x;
}

std::vector<double> CoverageSpace::project(std::span<const double> v) const {
  if (v.size() != t_) {
    throw std::invalid_argument("CoverageSpace: vector size mismatch");
  }
  if (is_simplex() && groups_.empty()) {
    return project_simplex_box(v, budgets_[0]);
  }
  // Per-group bisection, the same tau-clamp scheme as the simplex path
  // but with per-target caps: x(tau)_i = clamp(v_i - tau, 0, cap_i).
  std::vector<double> x(t_, 0.0);
  std::vector<std::vector<std::size_t>> members(budgets_.size());
  for (std::size_t i = 0; i < t_; ++i) members[group_of(i)].push_back(i);
  for (std::size_t g = 0; g < budgets_.size(); ++g) {
    if (members[g].empty()) continue;
    auto sum_at = [&](double tau) {
      double s = 0.0;
      for (std::size_t i : members[g]) {
        s += clamp(v[i] - tau, 0.0, cap(i));
      }
      return s;
    };
    double lo = v[members[g].front()];
    double hi = lo;
    for (std::size_t i : members[g]) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    lo -= 1.5;  // sum_at(lo) == sum of caps >= B_g (factory invariant)
    hi += 0.5;  // sum_at(hi) == 0 <= B_g
    for (int iter = 0; iter < 200 && hi - lo > 1e-14; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (sum_at(mid) > budgets_[g]) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double tau = 0.5 * (lo + hi);
    for (std::size_t i : members[g]) {
      x[i] = clamp(v[i] - tau, 0.0, cap(i));
    }
    double residual = budgets_[g];
    for (std::size_t i : members[g]) residual -= x[i];
    for (std::size_t j = 0;
         j < members[g].size() && std::abs(residual) > 1e-15; ++j) {
      const std::size_t i = members[g][j];
      const double adj = clamp(x[i] + residual, 0.0, cap(i)) - x[i];
      x[i] += adj;
      residual -= adj;
    }
  }
  return x;
}

void CoverageSpace::residuals(std::span<const double> x, double& budget_over,
                              double& box_over) const {
  budget_over = 0.0;
  box_over = 0.0;
  if (x.size() != t_) return;
  std::vector<double> sums(budgets_.size(), 0.0);
  for (std::size_t i = 0; i < t_; ++i) {
    sums[group_of(i)] += x[i];
    box_over = std::max(box_over, std::max(-x[i], x[i] - cap(i)));
  }
  box_over = std::max(box_over, 0.0);
  for (std::size_t g = 0; g < budgets_.size(); ++g) {
    budget_over = std::max(budget_over, sums[g] - budgets_[g]);
  }
  budget_over = std::max(budget_over, 0.0);
}

bool CoverageSpace::is_feasible(std::span<const double> x,
                                double tol) const {
  if (x.size() != t_) return false;
  double budget_over = 0.0;
  double box_over = 0.0;
  residuals(x, budget_over, box_over);
  return budget_over <= tol && box_over <= tol;
}

std::string CoverageSpace::descriptor() const {
  if (is_default() || is_simplex()) return "simplex";
  std::string out = to_string(family_);
  out += ";g=";
  for (std::size_t i = 0; i < t_; ++i) {
    if (i) out += ',';
    out += std::to_string(group_of(i));
  }
  out += ";b=";
  for (std::size_t g = 0; g < budgets_.size(); ++g) {
    if (g) out += ',';
    out += fmt(budgets_[g]);
  }
  if (!caps_.empty()) {
    out += ";c=";
    for (std::size_t i = 0; i < t_; ++i) {
      if (i) out += ',';
      out += fmt(caps_[i]);
    }
  }
  return out;
}

std::optional<CoverageSpace> CoverageSpace::from_descriptor(
    const std::string& text) {
  if (text == "simplex" || text.empty()) return CoverageSpace{};
  std::vector<std::string> sections;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t sep = text.find(';', start);
    if (sep == std::string::npos) {
      sections.push_back(text.substr(start));
      break;
    }
    sections.push_back(text.substr(start, sep - start));
    start = sep + 1;
  }
  if (sections.size() < 3) return std::nullopt;
  CoverageFamily family;
  if (sections[0] == "grouped") {
    family = CoverageFamily::kGrouped;
  } else if (sections[0] == "multi-defender") {
    family = CoverageFamily::kMultiDefender;
  } else if (sections[0] == "patrol-graph") {
    family = CoverageFamily::kPatrolGraph;
  } else {
    return std::nullopt;
  }
  std::vector<std::size_t> groups;
  std::vector<double> budgets;
  std::vector<double> caps;
  for (std::size_t s = 1; s < sections.size(); ++s) {
    const std::string& sec = sections[s];
    if (sec.size() < 2 || sec[1] != '=') return std::nullopt;
    const char kind = sec[0];
    std::size_t pos = 2;
    while (pos <= sec.size()) {
      std::size_t sep = sec.find(',', pos);
      if (sep == std::string::npos) sep = sec.size();
      const std::string item = sec.substr(pos, sep - pos);
      if (item.empty()) return std::nullopt;
      char* end = nullptr;
      if (kind == 'g') {
        const unsigned long long g = std::strtoull(item.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') return std::nullopt;
        groups.push_back(static_cast<std::size_t>(g));
      } else if (kind == 'b' || kind == 'c') {
        const double v = std::strtod(item.c_str(), &end);
        if (end == nullptr || *end != '\0') return std::nullopt;
        (kind == 'b' ? budgets : caps).push_back(v);
      } else {
        return std::nullopt;
      }
      pos = sep + 1;
    }
  }
  try {
    if (family == CoverageFamily::kPatrolGraph || !caps.empty()) {
      return patrol_graph(std::move(groups), std::move(budgets),
                          std::move(caps));
    }
    return grouped(std::move(groups), std::move(budgets), family);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace cubisg::games

// Stackelberg security game (SSG) model.
//
// A game has T targets and R < T identical defender resources.  The
// defender plays a coverage vector x in X = { 0 <= x_i <= 1, sum_i x_i = R }
// (marginal probabilities of a target being protected).  Payoffs per target
// follow the SSG convention of the paper (Section II):
//
//   attacker attacks i, i uncovered: attacker gets Ra_i, defender Pd_i
//   attacker attacks i, i covered:   attacker gets Pa_i, defender Rd_i
//
// with Ra_i > Pa_i and Rd_i > Pd_i.  Expected utilities at target i are
//   Ud_i(x_i) = x_i Rd_i + (1 - x_i) Pd_i            (Eq. 1)
//   Ua_i(x_i) = x_i Pa_i + (1 - x_i) Ra_i            (Eq. 2)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/errors.hpp"
#include "common/interval.hpp"

namespace cubisg::games {

/// Payoffs of a single target.
struct TargetPayoffs {
  double attacker_reward;   ///< Ra_i (attack succeeds)
  double attacker_penalty;  ///< Pa_i (attacker caught), < Ra_i
  double defender_reward;   ///< Rd_i (attack intercepted)
  double defender_penalty;  ///< Pd_i (attack succeeds), < Rd_i
};

/// An SSG instance: targets, payoffs, and the number of resources.
class SecurityGame {
 public:
  /// Validates and stores the instance.  Requires 1 <= targets,
  /// 0 <= resources <= targets, finite payoffs, Ra_i > Pa_i, Rd_i > Pd_i.
  SecurityGame(std::vector<TargetPayoffs> payoffs, double resources);

  std::size_t num_targets() const { return payoffs_.size(); }
  double resources() const { return resources_; }
  const TargetPayoffs& target(std::size_t i) const { return payoffs_[i]; }
  const std::vector<TargetPayoffs>& payoffs() const { return payoffs_; }

  /// Defender expected utility at target i under coverage x_i (Eq. 1).
  double defender_utility(std::size_t i, double x_i) const {
    const TargetPayoffs& p = payoffs_[i];
    return x_i * p.defender_reward + (1.0 - x_i) * p.defender_penalty;
  }

  /// Attacker expected utility at target i under coverage x_i (Eq. 2).
  double attacker_utility(std::size_t i, double x_i) const {
    const TargetPayoffs& p = payoffs_[i];
    return x_i * p.attacker_penalty + (1.0 - x_i) * p.attacker_reward;
  }

  /// Vector of Ud_i(x_i) for a full coverage vector.
  std::vector<double> defender_utilities(std::span<const double> x) const;

  /// Smallest defender penalty over targets: min_i Pd_i.  Lower end of the
  /// binary-search range in CUBIS.
  double min_defender_penalty() const;

  /// Largest defender reward over targets: max_i Rd_i.  Upper end of the
  /// binary-search range in CUBIS.
  double max_defender_reward() const;

  /// True when x is a feasible defender strategy: sizes match, bounds hold
  /// and sum x_i == R (within tol).
  bool is_feasible_strategy(std::span<const double> x,
                            double tol = 1e-7) const;

 private:
  std::vector<TargetPayoffs> payoffs_;
  double resources_;
};

/// Interval uncertainty on the defender's OWN payoffs (the direction of
/// the paper's reference [6], Kiekintveld et al. AAMAS'13: deployed payoff
/// elicitation is itself noisy).
struct DefenderPayoffIntervals {
  Interval reward;   ///< Rd_i range
  Interval penalty;  ///< Pd_i range
};

/// The pessimistic transform: a game whose defender payoffs sit at the
/// interval lower endpoints.  Since Ud_i(x) = x*Rd + (1-x)*Pd has
/// non-negative coefficients, this is the exact pointwise lower envelope —
/// so the behavioral worst case of the transformed game equals the worst
/// case over BOTH uncertainties (the adversarial nature picks payoffs and
/// attractiveness independently).  Requires reward.lo() > penalty.lo() at
/// every target (the SSG payoff-order invariant must survive).
SecurityGame pessimistic_defender_game(
    const SecurityGame& game,
    std::span<const DefenderPayoffIntervals> intervals);

}  // namespace cubisg::games

#include "games/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace cubisg::games {

namespace {

/// Keeps a reward interval strictly positive / a penalty interval strictly
/// negative, preserving its width where possible.
Interval clip_interval(double center, double half_width, double lo_limit,
                       double hi_limit) {
  double lo = center - half_width;
  double hi = center + half_width;
  lo = std::max(lo, lo_limit);
  hi = std::min(hi, hi_limit);
  if (lo > hi) {
    lo = hi = clamp(center, lo_limit, hi_limit);
  }
  return Interval(lo, hi);
}

}  // namespace

SecurityGame random_game(Rng& rng, std::size_t num_targets, double resources,
                         const GeneratorOptions& options) {
  std::vector<TargetPayoffs> payoffs(num_targets);
  for (auto& p : payoffs) {
    p.attacker_reward =
        rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
    p.attacker_penalty =
        rng.uniform(options.attacker_penalty_lo, options.attacker_penalty_hi);
    if (options.zero_sum) {
      p.defender_reward = -p.attacker_penalty;
      p.defender_penalty = -p.attacker_reward;
    } else {
      p.defender_reward =
          rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
      p.defender_penalty = rng.uniform(options.attacker_penalty_lo,
                                       options.attacker_penalty_hi);
    }
  }
  return SecurityGame(std::move(payoffs), resources);
}

UncertainGame random_uncertain_game(Rng& rng, std::size_t num_targets,
                                    double resources, double payoff_width,
                                    const GeneratorOptions& options) {
  const double hw = 0.5 * payoff_width;
  std::vector<TargetPayoffs> payoffs(num_targets);
  std::vector<IntervalPayoffs> intervals(num_targets);
  for (std::size_t i = 0; i < num_targets; ++i) {
    const double ra =
        rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
    const double pa =
        rng.uniform(options.attacker_penalty_lo, options.attacker_penalty_hi);
    intervals[i].attacker_reward = clip_interval(ra, hw, 0.1, 1e6);
    intervals[i].attacker_penalty = clip_interval(pa, hw, -1e6, -0.1);
    TargetPayoffs& p = payoffs[i];
    p.attacker_reward = intervals[i].attacker_reward.mid();
    p.attacker_penalty = intervals[i].attacker_penalty.mid();
    if (options.zero_sum) {
      p.defender_reward = -p.attacker_penalty;
      p.defender_penalty = -p.attacker_reward;
    } else {
      p.defender_reward =
          rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
      p.defender_penalty = rng.uniform(options.attacker_penalty_lo,
                                       options.attacker_penalty_hi);
    }
  }
  return UncertainGame{SecurityGame(std::move(payoffs), resources),
                       std::move(intervals)};
}

SecurityGame covariant_game(Rng& rng, std::size_t num_targets,
                            double resources, double correlation,
                            const GeneratorOptions& options) {
  if (!(correlation >= 0.0) || correlation > 1.0) {
    throw InvalidModelError("covariant_game: correlation must be in [0, 1]");
  }
  std::vector<TargetPayoffs> payoffs(num_targets);
  for (auto& p : payoffs) {
    p.attacker_reward =
        rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
    p.attacker_penalty =
        rng.uniform(options.attacker_penalty_lo, options.attacker_penalty_hi);
    const double rd_free =
        rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
    const double pd_free = rng.uniform(options.attacker_penalty_lo,
                                       options.attacker_penalty_hi);
    p.defender_reward = correlation * (-p.attacker_penalty) +
                        (1.0 - correlation) * rd_free;
    p.defender_penalty = correlation * (-p.attacker_reward) +
                         (1.0 - correlation) * pd_free;
  }
  return SecurityGame(std::move(payoffs), resources);
}

UncertainGame table1_game() {
  std::vector<IntervalPayoffs> intervals = {
      {Interval(1.0, 5.0), Interval(-7.0, -3.0)},
      {Interval(5.0, 9.0), Interval(-9.0, -5.0)},
  };
  std::vector<TargetPayoffs> payoffs(2);
  for (std::size_t i = 0; i < 2; ++i) {
    payoffs[i].attacker_reward = intervals[i].attacker_reward.mid();
    payoffs[i].attacker_penalty = intervals[i].attacker_penalty.mid();
    payoffs[i].defender_reward = -payoffs[i].attacker_penalty;
    payoffs[i].defender_penalty = -payoffs[i].attacker_reward;
  }
  return UncertainGame{SecurityGame(std::move(payoffs), 1.0),
                       std::move(intervals)};
}

UncertainGame wildlife_grid_game(Rng& rng, std::size_t rows,
                                 std::size_t cols, double resources,
                                 double payoff_width) {
  const std::size_t n = rows * cols;
  // Animal density: a few Gaussian hotspots over the grid.
  const int num_hotspots = static_cast<int>(rng.uniform_int(2, 4));
  struct Hotspot {
    double r, c, amp, sigma;
  };
  std::vector<Hotspot> hotspots;
  for (int h = 0; h < num_hotspots; ++h) {
    hotspots.push_back({rng.uniform(0.0, static_cast<double>(rows)),
                        rng.uniform(0.0, static_cast<double>(cols)),
                        rng.uniform(4.0, 9.0),
                        rng.uniform(1.0, 2.5)});
  }
  std::vector<TargetPayoffs> payoffs(n);
  std::vector<IntervalPayoffs> intervals(n);
  const double hw = 0.5 * payoff_width;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      double density = 0.5;
      for (const Hotspot& h : hotspots) {
        const double dr = static_cast<double>(r) - h.r;
        const double dc = static_cast<double>(c) - h.c;
        density +=
            h.amp * std::exp(-(dr * dr + dc * dc) / (2.0 * h.sigma * h.sigma));
      }
      // Poacher reward follows density; the penalty of being caught is
      // roughly uniform (fines/arrest), with mild noise.
      const double ra = clamp(density, 0.5, 12.0);
      const double pa = -rng.uniform(2.0, 6.0);
      intervals[i].attacker_reward = clip_interval(ra, hw, 0.1, 1e6);
      intervals[i].attacker_penalty = clip_interval(pa, hw, -1e6, -0.1);
      payoffs[i].attacker_reward = intervals[i].attacker_reward.mid();
      payoffs[i].attacker_penalty = intervals[i].attacker_penalty.mid();
      payoffs[i].defender_reward = -payoffs[i].attacker_penalty;
      payoffs[i].defender_penalty = -payoffs[i].attacker_reward;
    }
  }
  return UncertainGame{SecurityGame(std::move(payoffs), resources),
                       std::move(intervals)};
}

FamilyGame multi_defender_uncertain_game(Rng& rng, std::size_t num_defenders,
                                         std::size_t targets_per_defender,
                                         double budget_per_defender,
                                         double payoff_width,
                                         const GeneratorOptions& options) {
  if (num_defenders == 0 || targets_per_defender == 0) {
    throw InvalidModelError(
        "multi_defender_uncertain_game: defenders and block size must be "
        "positive");
  }
  if (!(budget_per_defender > 0.0)) {
    throw InvalidModelError(
        "multi_defender_uncertain_game: budget must be positive");
  }
  // Private pools: jitter each defender's budget so the blocks are
  // genuinely heterogeneous (equal pools would be indistinguishable from
  // a scaled simplex for many instances).
  std::vector<std::size_t> blocks(num_defenders, targets_per_defender);
  std::vector<double> budgets(num_defenders);
  double total = 0.0;
  for (double& b : budgets) {
    b = std::min(static_cast<double>(targets_per_defender),
                 budget_per_defender * rng.uniform(0.8, 1.2));
    total += b;
  }
  const std::size_t n = num_defenders * targets_per_defender;
  UncertainGame game =
      random_uncertain_game(rng, n, total, payoff_width, options);
  return FamilyGame{std::move(game),
                    CoverageSpace::multi_defender(blocks, std::move(budgets))};
}

FamilyGame patrol_graph_uncertain_game(Rng& rng, std::size_t num_locations,
                                       std::size_t num_slots,
                                       double per_slot_budget,
                                       double payoff_width,
                                       const GeneratorOptions& options) {
  if (num_locations == 0 || num_slots == 0) {
    throw InvalidModelError(
        "patrol_graph_uncertain_game: locations and slots must be positive");
  }
  if (!(per_slot_budget > 0.0)) {
    throw InvalidModelError(
        "patrol_graph_uncertain_game: per-slot budget must be positive");
  }
  const std::size_t n = num_locations * num_slots;
  const double hw = 0.5 * payoff_width;

  // Per-location base payoffs; the time-expanded copies jitter around
  // them so each slot sees a correlated but distinct instance.
  std::vector<double> base_ra(num_locations);
  std::vector<double> base_pa(num_locations);
  for (std::size_t l = 0; l < num_locations; ++l) {
    base_ra[l] =
        rng.uniform(options.attacker_reward_lo, options.attacker_reward_hi);
    base_pa[l] =
        rng.uniform(options.attacker_penalty_lo, options.attacker_penalty_hi);
  }

  std::vector<TargetPayoffs> payoffs(n);
  std::vector<IntervalPayoffs> intervals(n);
  std::vector<std::size_t> groups(n);
  std::vector<double> caps(n);
  std::vector<double> budgets(num_slots);
  double total = 0.0;
  for (std::size_t s = 0; s < num_slots; ++s) {
    // Path graph, depot at location 0: dist(depot, l) = l, so location l
    // is unreachable before slot l and capped to 0 there.
    const std::size_t reachable = std::min(num_locations, s + 1);
    budgets[s] = std::min(per_slot_budget, static_cast<double>(reachable));
    total += budgets[s];
    for (std::size_t l = 0; l < num_locations; ++l) {
      const std::size_t i = s * num_locations + l;
      groups[i] = s;
      caps[i] = l <= s ? 1.0 : 0.0;
      const double ra = base_ra[l] * rng.uniform(0.85, 1.15);
      const double pa = base_pa[l] * rng.uniform(0.85, 1.15);
      intervals[i].attacker_reward = clip_interval(ra, hw, 0.1, 1e6);
      intervals[i].attacker_penalty = clip_interval(pa, hw, -1e6, -0.1);
      TargetPayoffs& p = payoffs[i];
      p.attacker_reward = intervals[i].attacker_reward.mid();
      p.attacker_penalty = intervals[i].attacker_penalty.mid();
      if (options.zero_sum) {
        p.defender_reward = -p.attacker_penalty;
        p.defender_penalty = -p.attacker_reward;
      } else {
        p.defender_reward = rng.uniform(options.attacker_reward_lo,
                                        options.attacker_reward_hi);
        p.defender_penalty = rng.uniform(options.attacker_penalty_lo,
                                         options.attacker_penalty_hi);
      }
    }
  }
  UncertainGame game{SecurityGame(std::move(payoffs), total),
                     std::move(intervals)};
  return FamilyGame{
      std::move(game),
      CoverageSpace::patrol_graph(std::move(groups), std::move(budgets),
                                  std::move(caps))};
}

}  // namespace cubisg::games

// Comb sampling: turning marginal coverage into implementable patrols.
//
// Solvers output a marginal coverage vector x (x_i = probability target i
// is protected).  Real defenders execute *pure* allocations: on each day,
// a concrete set of at most R targets is patrolled.  Comb sampling (Tsai
// et al., "Urban Security: Game-Theoretic Resource Allocation in Networked
// Physical Domains", AAAI 2010) realizes any feasible marginal exactly:
// lay the targets end-to-end as segments of length x_i on [0, sum x); draw
// a uniform offset u in [0,1) and place comb teeth at u, u+1, u+2, ...;
// patrol exactly the targets whose segment contains a tooth.  Each target
// (length <= 1) meets at most one tooth, at most ceil(sum x) <= R teeth
// land, and P[target i patrolled] = x_i exactly.
//
// Because the allocation only changes when a tooth crosses a segment
// boundary, the mixture has at most T+1 distinct pure strategies — this
// module computes that explicit decomposition as well as single draws.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace cubisg::games {

/// A pure defender strategy: the set of patrolled targets and the
/// probability with which the mixture plays it.
struct PureAllocation {
  std::vector<std::size_t> covered;  ///< sorted target indices
  double probability = 0.0;
};

/// Explicit comb decomposition of the marginal `x` (0 <= x_i <= 1).
/// The returned mixture has at most T+1 allocations, probabilities sum to
/// 1, every allocation patrols at most ceil(sum x) targets, and the
/// per-target marginals reproduce `x` exactly.
/// Throws InvalidModelError when some x_i is outside [0, 1].
std::vector<PureAllocation> comb_decomposition(std::span<const double> x);

/// One comb draw: the pure allocation for offset `u` in [0, 1).
std::vector<std::size_t> comb_sample(std::span<const double> x, double u);

/// Convenience: draw with an Rng.
std::vector<std::size_t> comb_sample(std::span<const double> x, Rng& rng);

/// Recomputes the marginal coverage of a mixture (for verification).
std::vector<double> mixture_marginals(std::size_t num_targets,
                                      std::span<const PureAllocation> mix);

}  // namespace cubisg::games

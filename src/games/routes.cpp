#include "games/routes.hpp"

#include <algorithm>
#include <string>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::games {

std::vector<PatrolRoute> window_routes(std::size_t num_targets,
                                       std::size_t width, bool wrap) {
  if (width == 0 || width > num_targets) {
    throw InvalidModelError("window_routes: width must be in [1, T]");
  }
  std::vector<PatrolRoute> routes;
  const std::size_t count = wrap ? num_targets : num_targets - width + 1;
  for (std::size_t start = 0; start < count; ++start) {
    PatrolRoute r;
    for (std::size_t k = 0; k < width; ++k) {
      r.covered.push_back((start + k) % num_targets);
    }
    std::sort(r.covered.begin(), r.covered.end());
    routes.push_back(std::move(r));
  }
  return routes;
}

std::vector<PatrolRoute> all_k_subsets(std::size_t num_targets,
                                       std::size_t k) {
  if (k > num_targets) {
    throw InvalidModelError("all_k_subsets: k must be <= T");
  }
  // Count check: C(T, k) capped.
  double count = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    count *= static_cast<double>(num_targets - i) /
             static_cast<double>(i + 1);
  }
  if (count > 100000.0) {
    throw InvalidModelError("all_k_subsets: too many subsets");
  }
  std::vector<PatrolRoute> routes;
  std::vector<std::size_t> pick(k);
  auto rec = [&](auto&& self, std::size_t start, std::size_t depth) -> void {
    if (depth == k) {
      PatrolRoute r;
      r.covered = pick;
      routes.push_back(std::move(r));
      return;
    }
    for (std::size_t i = start; i + (k - depth) <= num_targets; ++i) {
      pick[depth] = i;
      self(self, i + 1, depth + 1);
    }
  };
  rec(rec, 0, 0);
  return routes;
}

RouteMixture marginal_to_route_mixture(std::span<const PatrolRoute> routes,
                                       std::span<const double> x,
                                       double resources) {
  if (routes.empty()) {
    throw InvalidModelError("marginal_to_route_mixture: no routes");
  }
  const std::size_t n = x.size();
  for (const PatrolRoute& r : routes) {
    for (std::size_t i : r.covered) {
      if (i >= n) {
        throw InvalidModelError(
            "marginal_to_route_mixture: route target out of range");
      }
    }
  }

  // LP: min d  s.t.  sum_r lambda_r a_r(i) - x_i in [-d, d] for all i,
  //                  sum_r lambda_r <= resources,  lambda >= 0,  d >= 0.
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMinimize);
  std::vector<int> lam(routes.size());
  for (std::size_t r = 0; r < routes.size(); ++r) {
    lam[r] = m.add_col("lam" + std::to_string(r), 0.0, lp::kInf, 0.0);
  }
  const int dev = m.add_col("deviation", 0.0, lp::kInf, 1.0);
  const int budget = m.add_row("budget", lp::Sense::kLe, resources);
  for (std::size_t r = 0; r < routes.size(); ++r) {
    m.set_coeff(budget, lam[r], 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // achieved_i - d <= x_i  and  achieved_i + d >= x_i.
    const int up = m.add_row("up" + std::to_string(i), lp::Sense::kLe, x[i]);
    const int dn = m.add_row("dn" + std::to_string(i), lp::Sense::kGe, x[i]);
    for (std::size_t r = 0; r < routes.size(); ++r) {
      const bool covers = std::binary_search(routes[r].covered.begin(),
                                             routes[r].covered.end(), i);
      if (covers) {
        m.set_coeff(up, lam[r], 1.0);
        m.set_coeff(dn, lam[r], 1.0);
      }
    }
    m.set_coeff(up, dev, -1.0);
    m.set_coeff(dn, dev, 1.0);
  }

  lp::LpSolution s = lp::solve_lp(m);
  if (!s.optimal()) {
    throw NumericalError("marginal_to_route_mixture: LP returned " +
                         std::string(to_string(s.status)));
  }
  RouteMixture out;
  out.deviation = s.x[dev];
  out.achieved.assign(n, 0.0);
  for (std::size_t r = 0; r < routes.size(); ++r) {
    const double w = s.x[lam[r]];
    if (w > 1e-12) {
      out.weights.push_back({r, w});
      for (std::size_t i : routes[r].covered) out.achieved[i] += w;
    }
  }
  return out;
}

std::vector<double> route_mixture_marginals(
    std::span<const PatrolRoute> routes, const RouteMixture& mixture,
    std::size_t num_targets) {
  std::vector<double> marg(num_targets, 0.0);
  for (const auto& [r, w] : mixture.weights) {
    for (std::size_t i : routes[r].covered) marg[i] += w;
  }
  return marg;
}

}  // namespace cubisg::games

// Scheduled (multi-slot) patrol games — a beyond-the-paper extension.
//
// The attacker chooses WHERE and WHEN to strike: a base game of L
// locations is unrolled over D time slots into an L*D-target game, with a
// separate patrol budget per slot (the defender fields R units each day).
// Target attractiveness can drift over time (e.g. seasonal animal
// movement) via per-slot reward multipliers.
//
// The flattened game plugs into the ordinary SSG machinery; the per-slot
// budgets become CUBIS budget groups (CubisOptions::target_groups /
// group_budgets), which keep the binary-search step separable.
#pragma once

#include <cstddef>
#include <vector>

#include "games/coverage_space.hpp"
#include "games/generators.hpp"

namespace cubisg::games {

/// A base game unrolled over time slots.
struct ScheduledGame {
  UncertainGame flattened;  ///< locations * slots targets
  std::size_t locations = 0;
  std::size_t slots = 0;
  double per_slot_resources = 0.0;

  /// Flat index of (location, slot).
  std::size_t flat_index(std::size_t location, std::size_t slot) const {
    return slot * locations + location;
  }
  /// Budget-group id (== slot) of a flat target.
  std::size_t group_of(std::size_t flat) const { return flat / locations; }

  /// target_groups vector for CubisOptions.
  std::vector<std::size_t> target_groups() const;
  /// group_budgets vector for CubisOptions.
  std::vector<double> group_budgets() const;
  /// The per-slot budget polytope as a CoverageSpace (kGrouped).
  CoverageSpace coverage_space() const {
    return CoverageSpace::grouped(target_groups(), group_budgets());
  }
};

/// Unrolls `base` over `slots` time slots with `per_slot_resources` patrol
/// units per slot.  `slot_reward_scale[d]` (optional; default all 1)
/// multiplies every attacker reward in slot d — both the point payoffs and
/// the interval endpoints — modelling temporal drift.  Defender payoffs
/// mirror the scaled attacker payoffs when the base game was zero-sum.
ScheduledGame unroll_schedule(const UncertainGame& base, std::size_t slots,
                              double per_slot_resources,
                              const std::vector<double>& slot_reward_scale =
                                  {});

}  // namespace cubisg::games

// Route-constrained patrols.
//
// Comb sampling implements any marginal when a resource can guard any
// single target.  Real patrols follow ROUTES — e.g. a boat sweeping a
// contiguous stretch of river, a ranger walking a loop — and the
// implementable marginals shrink to R * conv(route incidence vectors).
// This module provides route generators for the common topologies and an
// LP-based decomposition that either expresses a marginal as a mixture of
// routes or reports (and minimizes) the deviation when it cannot.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/errors.hpp"

namespace cubisg::games {

/// A pure patrol route: the set of targets it covers.
struct PatrolRoute {
  std::vector<std::size_t> covered;  ///< sorted target indices
};

/// Contiguous windows of `width` targets on a line of `num_targets`
/// (T - width + 1 routes), or on a cycle (T routes) when `wrap` is true.
std::vector<PatrolRoute> window_routes(std::size_t num_targets,
                                       std::size_t width, bool wrap = false);

/// Every subset of exactly `k` targets (use only for small T; throws when
/// the count would exceed 100000).
std::vector<PatrolRoute> all_k_subsets(std::size_t num_targets,
                                       std::size_t k);

/// Result of a route-mixture decomposition.
struct RouteMixture {
  /// Weight per route; weights sum to at most `resources` and each route's
  /// weight is >= 0.  Routes with zero weight are omitted.
  std::vector<std::pair<std::size_t, double>> weights;  ///< (route, lambda)
  /// Max |achieved - requested| marginal deviation (0 = implementable).
  double deviation = 0.0;
  /// The achieved marginal coverage.
  std::vector<double> achieved;
};

/// Expresses the marginal `x` as a mixture of `routes` executed by
/// `resources` patrol units (sum of weights <= resources), minimizing the
/// worst per-target deviation |achieved_i - x_i| (an LP).  deviation == 0
/// (up to LP tolerance) iff `x` is implementable with these routes.
RouteMixture marginal_to_route_mixture(std::span<const PatrolRoute> routes,
                                       std::span<const double> x,
                                       double resources);

/// Marginal coverage achieved by a mixture (for verification).
std::vector<double> route_mixture_marginals(
    std::span<const PatrolRoute> routes, const RouteMixture& mixture,
    std::size_t num_targets);

}  // namespace cubisg::games

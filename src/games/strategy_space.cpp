#include "games/strategy_space.hpp"

#include <stdexcept>

#include "games/coverage_space.hpp"

namespace cubisg::games {

std::vector<double> uniform_strategy(std::size_t num_targets,
                                     double resources) {
  if (num_targets == 0) {
    throw std::invalid_argument("uniform_strategy: empty game");
  }
  return CoverageSpace::simplex(num_targets, resources).uniform_seed();
}

std::vector<double> project_to_simplex_box(std::span<const double> v,
                                           double resources) {
  const std::size_t n = v.size();
  if (n == 0) throw std::invalid_argument("project: empty vector");
  if (resources < 0.0 || resources > static_cast<double>(n)) {
    throw std::invalid_argument("project: resources out of [0, n]");
  }
  return CoverageSpace::simplex(n, resources).project(v);
}

std::vector<double> greedy_by_penalty(std::span<const double> penalties,
                                      double resources) {
  const std::size_t n = penalties.size();
  if (n == 0) throw std::invalid_argument("greedy_by_penalty: empty game");
  return CoverageSpace::simplex(n, resources).greedy_seed(penalties);
}

}  // namespace cubisg::games

#include "games/strategy_space.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/math_util.hpp"

namespace cubisg::games {

std::vector<double> uniform_strategy(std::size_t num_targets,
                                     double resources) {
  if (num_targets == 0) {
    throw std::invalid_argument("uniform_strategy: empty game");
  }
  return std::vector<double>(num_targets,
                             resources / static_cast<double>(num_targets));
}

std::vector<double> project_to_simplex_box(std::span<const double> v,
                                           double resources) {
  const std::size_t n = v.size();
  if (n == 0) throw std::invalid_argument("project: empty vector");
  if (resources < 0.0 || resources > static_cast<double>(n)) {
    throw std::invalid_argument("project: resources out of [0, n]");
  }
  // x(tau)_i = clamp(v_i - tau, 0, 1); sum x(tau) is continuous and
  // non-increasing in tau, from n (tau -> -inf) to 0 (tau -> +inf).
  auto sum_at = [&](double tau) {
    double s = 0.0;
    for (double vi : v) s += clamp(vi - tau, 0.0, 1.0);
    return s;
  };
  double lo = -1.0, hi = 1.0;
  {
    const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    lo = *mn - 1.5;  // sum_at(lo) == n >= resources
    hi = *mx + 0.5;  // sum_at(hi) == 0 <= resources
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-14; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sum_at(mid) > resources) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double tau = 0.5 * (lo + hi);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = clamp(v[i] - tau, 0.0, 1.0);
  // Tiny residual redistribution so the sum is exact.
  double residual = resources;
  for (double xi : x) residual -= xi;
  for (std::size_t i = 0; i < n && std::abs(residual) > 1e-15; ++i) {
    const double adj = clamp(x[i] + residual, 0.0, 1.0) - x[i];
    x[i] += adj;
    residual -= adj;
  }
  return x;
}

std::vector<double> greedy_by_penalty(std::span<const double> penalties,
                                      double resources) {
  const std::size_t n = penalties.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return penalties[a] < penalties[b];  // most negative (worst) first
  });
  std::vector<double> x(n, 0.0);
  double left = resources;
  for (std::size_t idx : order) {
    const double add = std::min(1.0, left);
    x[idx] = add;
    left -= add;
    if (left <= 0.0) break;
  }
  return x;
}

}  // namespace cubisg::games

// The defender's feasible coverage polytope, abstracted.
//
// The paper's strategy space X = {0 <= x <= 1, sum x_i = R} is one member
// of a family of separable polytopes
//
//   X = { x : 0 <= x_i <= cap_i,  sum_{i in group g} x_i <= B_g }
//
// that all admit the same per-step machinery (the knapsack DP stays exact,
// the MILP budget rows stay c-invariant, Euclidean projection stays a
// per-group bisection).  Concrete instances:
//
//   kSimplex        one group, unit caps — the paper's X (Eq. 37).
//   kGrouped        per-slot budgets from an unrolled schedule
//                   (games::ScheduledGame).
//   kMultiDefender  product of simplices: each defender owns a disjoint
//                   target block with its own resource pool (Mutzari et
//                   al., arXiv:2204.14000).
//   kPatrolGraph    time-expanded targets with per-slot budgets AND
//                   per-target coverage caps from patrol-graph
//                   reachability (Yang et al., arXiv:2410.15600): a
//                   location unreachable by slot s has cap 0 there.
//
// The simplex instance routes through the EXACT legacy single-budget code
// (uniform_strategy / project_to_simplex_box / greedy_by_penalty), so
// every solver that consumes a CoverageSpace stays bitwise-identical to
// the pre-abstraction behavior on simplex games — the golden fixtures
// prove the refactor.
//
// A CoverageSpace is a copyable value; descriptor() is a stable, lossless
// (%a floats), parseable canonical string used by the fingerprint compat
// hash, canonical_solver_config, certificates and the scenario format.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace cubisg::games {

enum class CoverageFamily {
  kSimplex,       ///< one budget over all targets, unit caps
  kGrouped,       ///< per-group budgets (scheduled games), unit caps
  kMultiDefender, ///< product of simplices over disjoint defender blocks
  kPatrolGraph,   ///< per-slot budgets + reachability caps
};

const char* to_string(CoverageFamily family);

class CoverageSpace {
 public:
  /// Default: the "unset" sentinel (is_default() true).  Consumers treat
  /// it as "derive the simplex from the game's own T and R".
  CoverageSpace() = default;

  /// The paper's X: one budget row over all `num_targets` targets.
  static CoverageSpace simplex(std::size_t num_targets, double resources);

  /// Per-group budgets: `groups[i]` is target i's group id in
  /// [0, budgets.size()).  Unit caps.  `family` tags the instance
  /// (kGrouped or kMultiDefender — the polytope algebra is identical,
  /// the tag keeps provenance for descriptors and bench labels).
  static CoverageSpace grouped(std::vector<std::size_t> groups,
                               std::vector<double> budgets,
                               CoverageFamily family =
                                   CoverageFamily::kGrouped);

  /// Product of simplices: defender d owns the contiguous block of
  /// `block_sizes[d]` targets with budget `budgets[d]`.
  static CoverageSpace multi_defender(
      const std::vector<std::size_t>& block_sizes,
      std::vector<double> budgets);

  /// Per-slot budgets plus per-target caps in [0, 1] (cap 0 = the target
  /// cannot be covered at all in its slot).  Requires, per group, that
  /// the caps sum to at least the budget (else the equality projection
  /// target is unreachable).
  static CoverageSpace patrol_graph(std::vector<std::size_t> groups,
                                    std::vector<double> budgets,
                                    std::vector<double> caps);

  /// Round-trip of descriptor(): parses a canonical descriptor string.
  /// std::nullopt on malformed input.
  static std::optional<CoverageSpace> from_descriptor(
      const std::string& text);

  CoverageFamily family() const { return family_; }
  /// True for the default-constructed sentinel (no shape attached).
  bool is_default() const { return t_ == 0; }
  /// True when the polytope is the paper's X: a single budget group and
  /// unit caps.  Solvers key their legacy (bitwise-pinned) paths on this.
  bool is_simplex() const {
    return family_ == CoverageFamily::kSimplex && caps_.empty();
  }
  bool has_caps() const { return !caps_.empty(); }

  std::size_t num_targets() const { return t_; }
  std::size_t num_groups() const { return budgets_.size(); }
  std::size_t group_of(std::size_t i) const {
    return groups_.empty() ? 0 : groups_[i];
  }
  double budget(std::size_t g) const { return budgets_[g]; }
  double total_budget() const;
  double cap(std::size_t i) const { return caps_.empty() ? 1.0 : caps_[i]; }

  /// Per-target group ids (empty = everything in group 0) and per-group
  /// budgets, in the same shape CubisOptions carries.
  const std::vector<std::size_t>& target_groups() const { return groups_; }
  const std::vector<double>& group_budgets() const { return budgets_; }
  const std::vector<double>& caps() const { return caps_; }

  /// The per-group uniform fallback strategy.  Simplex: R/T exactly
  /// (legacy uniform_strategy); grouped: min(cap_i, B_g / |g|).
  std::vector<double> uniform_seed() const;

  /// Greedy coverage seed: within each group, assign min(cap, remaining
  /// budget) in ascending defender-penalty order (most damaging first),
  /// equal penalties resolved by target index (pinned ordering).
  std::vector<double> greedy_seed(std::span<const double> penalties) const;

  /// Euclidean projection of `v` onto the polytope with per-group sums
  /// pinned to the budgets (clamp(v - tau, 0, cap) with a per-group
  /// bisection on tau).  Simplex delegates to the legacy
  /// project_to_simplex_box bit-for-bit.
  std::vector<double> project(std::span<const double> v) const;

  /// Max feasibility violations, re-measured from scratch: `budget_over`
  /// = max over groups of max(0, sum_g x - B_g) (Eq. 37 slack is legal),
  /// `box_over` = max over targets of max(-x_i, x_i - cap_i, 0).
  void residuals(std::span<const double> x, double& budget_over,
                 double& box_over) const;
  bool is_feasible(std::span<const double> x, double tol) const;

  /// Stable canonical string: "simplex" for the paper's X, else
  /// "<family>;g=...;b=...[;c=...]" with %a-rendered floats.  Feeds the
  /// fingerprint compat hash, canonical_solver_config, certificates and
  /// the scenario text format (single token, no spaces).
  std::string descriptor() const;

  bool operator==(const CoverageSpace& o) const {
    return family_ == o.family_ && t_ == o.t_ && groups_ == o.groups_ &&
           budgets_ == o.budgets_ && caps_ == o.caps_;
  }

 private:
  CoverageFamily family_ = CoverageFamily::kSimplex;
  std::size_t t_ = 0;
  std::vector<std::size_t> groups_;  ///< empty = all targets in group 0
  std::vector<double> budgets_;      ///< per-group; simplex: {R}
  std::vector<double> caps_;         ///< empty = all caps 1.0
};

}  // namespace cubisg::games

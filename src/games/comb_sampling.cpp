#include "games/comb_sampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace cubisg::games {

namespace {

/// Prefix positions: target i occupies [prefix[i], prefix[i+1]).
std::vector<double> prefix_positions(std::span<const double> x) {
  std::vector<double> prefix(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] >= -1e-12) || !(x[i] <= 1.0 + 1e-12)) {
      throw InvalidModelError("comb sampling: coverage outside [0, 1]");
    }
    prefix[i + 1] = prefix[i] + std::clamp(x[i], 0.0, 1.0);
  }
  return prefix;
}

/// Targets whose segment contains a tooth at offset u (teeth at u + k).
std::vector<std::size_t> allocation_at(const std::vector<double>& prefix,
                                       double u) {
  std::vector<std::size_t> covered;
  const double total = prefix.back();
  for (double tooth = u; tooth < total; tooth += 1.0) {
    // Find the segment containing `tooth`: prefix[i] <= tooth < prefix[i+1].
    const auto it =
        std::upper_bound(prefix.begin(), prefix.end(), tooth);
    const std::size_t i = static_cast<std::size_t>(it - prefix.begin()) - 1;
    if (i < prefix.size() - 1 && prefix[i + 1] > tooth) {
      covered.push_back(i);
    }
  }
  return covered;
}

}  // namespace

std::vector<std::size_t> comb_sample(std::span<const double> x, double u) {
  return allocation_at(prefix_positions(x), u);
}

std::vector<std::size_t> comb_sample(std::span<const double> x, Rng& rng) {
  return comb_sample(x, rng.uniform());
}

std::vector<PureAllocation> comb_decomposition(std::span<const double> x) {
  const std::vector<double> prefix = prefix_positions(x);

  // The allocation changes exactly when a tooth crosses a segment
  // boundary, i.e. at u = frac(prefix[i]).  Collect those breakpoints.
  std::vector<double> breaks{0.0, 1.0};
  for (double p : prefix) {
    const double f = p - std::floor(p);
    if (f > 1e-15 && f < 1.0 - 1e-15) breaks.push_back(f);
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) {
                             return std::abs(a - b) < 1e-15;
                           }),
               breaks.end());

  std::vector<PureAllocation> mix;
  for (std::size_t b = 0; b + 1 < breaks.size(); ++b) {
    const double lo = breaks[b];
    const double hi = breaks[b + 1];
    const double width = hi - lo;
    if (width <= 1e-15) continue;
    PureAllocation alloc;
    alloc.covered = allocation_at(prefix, 0.5 * (lo + hi));
    alloc.probability = width;
    // Merge with an identical predecessor (keeps the mixture minimal).
    if (!mix.empty() && mix.back().covered == alloc.covered) {
      mix.back().probability += width;
    } else {
      mix.push_back(std::move(alloc));
    }
  }
  return mix;
}

std::vector<double> mixture_marginals(std::size_t num_targets,
                                      std::span<const PureAllocation> mix) {
  std::vector<double> marginals(num_targets, 0.0);
  for (const PureAllocation& a : mix) {
    for (std::size_t i : a.covered) {
      if (i >= num_targets) {
        throw InvalidModelError("mixture_marginals: target out of range");
      }
      marginals[i] += a.probability;
    }
  }
  return marginals;
}

}  // namespace cubisg::games

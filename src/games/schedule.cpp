#include "games/schedule.hpp"

#include <string>

#include "common/errors.hpp"

namespace cubisg::games {

std::vector<std::size_t> ScheduledGame::target_groups() const {
  std::vector<std::size_t> groups(locations * slots);
  for (std::size_t i = 0; i < groups.size(); ++i) groups[i] = group_of(i);
  return groups;
}

std::vector<double> ScheduledGame::group_budgets() const {
  return std::vector<double>(slots, per_slot_resources);
}

ScheduledGame unroll_schedule(const UncertainGame& base, std::size_t slots,
                              double per_slot_resources,
                              const std::vector<double>& slot_reward_scale) {
  if (slots == 0) {
    throw InvalidModelError("unroll_schedule: need at least one slot");
  }
  if (!slot_reward_scale.empty() && slot_reward_scale.size() != slots) {
    throw InvalidModelError(
        "unroll_schedule: slot_reward_scale size must equal slots");
  }
  const std::size_t locations = base.game.num_targets();
  std::vector<TargetPayoffs> payoffs;
  std::vector<IntervalPayoffs> intervals;
  payoffs.reserve(locations * slots);
  intervals.reserve(locations * slots);

  for (std::size_t d = 0; d < slots; ++d) {
    const double scale =
        slot_reward_scale.empty() ? 1.0 : slot_reward_scale[d];
    if (!(scale > 0.0)) {
      throw InvalidModelError("unroll_schedule: reward scale must be > 0");
    }
    for (std::size_t l = 0; l < locations; ++l) {
      TargetPayoffs p = base.game.target(l);
      const IntervalPayoffs& iv = base.attacker_intervals[l];
      p.attacker_reward *= scale;
      // Zero-sum mirror tracks the scaled reward.
      p.defender_penalty = -p.attacker_reward;
      payoffs.push_back(p);
      intervals.push_back(IntervalPayoffs{
          Interval(iv.attacker_reward.lo() * scale,
                   iv.attacker_reward.hi() * scale),
          iv.attacker_penalty});
    }
  }

  ScheduledGame out{
      UncertainGame{
          SecurityGame(std::move(payoffs),
                       per_slot_resources * static_cast<double>(slots)),
          std::move(intervals)},
      locations, slots, per_slot_resources};
  return out;
}

}  // namespace cubisg::games

// Branch-and-bound MILP solver over the bounded-variable simplex.
//
// This is the library's replacement for CPLEX in the CUBIS pipeline.  Two
// features matter for that pipeline:
//
//  * Sign queries.  Each CUBIS binary-search step only needs to know whether
//    max G >= 0 (Proposition 2 of the paper).  With `sign_threshold` set,
//    the search stops as soon as an incumbent reaches the threshold
//    (kEarlyPositive) or the global bound proves no solution can
//    (kEarlyNegative) — usually orders of magnitude before optimality.
//  * Warm incumbents.  A caller-provided feasible point (e.g. from the
//    separable DP solver) seeds the incumbent and tightens pruning from
//    node one.
//
// Search is best-first on the parent LP bound with most-fractional
// branching; a rounding heuristic at the root provides an initial
// incumbent.  Node bound changes are stored as a persistent parent-pointer
// chain, so memory stays O(depth) per frontier node.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/budget.hpp"
#include "common/errors.hpp"
#include "common/tolerances.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cubisg::milp {

/// Variable-selection rule for branching.
enum class BranchingRule {
  kMostFractional,  ///< classic: the variable farthest from integrality
  kPseudoCost,      ///< history-weighted: per-variable average objective
                    ///< degradation observed on earlier branchings (falls
                    ///< back to most-fractional until history exists)
};

/// Options controlling a branch-and-bound solve.
struct MilpOptions {
  double int_tol = Tol::kInt;     ///< integrality tolerance
  BranchingRule branching = BranchingRule::kMostFractional;
  double gap_abs = 1e-9;          ///< stop when bound - incumbent <= gap
  std::int64_t max_nodes = 200000;
  double time_limit_sec = -1.0;   ///< <= 0: no limit
  /// Optional shared budget/cancellation token, polled at every node
  /// boundary (and, via `lp.budget`, at every simplex pivot).  On a trip
  /// the search unwinds with the incumbent and the proven bound, status
  /// kDeadlineExceeded / kCancelled / kIterLimit.  Nodes are charged to
  /// the token's node cap.  Null = no shared budget.
  const SolveBudget* budget = nullptr;
  lp::SimplexOptions lp;          ///< options for node LP solves
  /// Presolve node LPs below the root (branching fixes binaries, so deep
  /// nodes shrink substantially).  Mutually exclusive with parent-basis
  /// warm starts at those nodes, which presolve's column remapping breaks.
  bool use_presolve = true;
  /// Number of node-processing workers.  1 = the sequential search; > 1
  /// runs a shared-frontier parallel branch and bound where each worker
  /// owns a private model copy and the incumbent/bound bookkeeping is
  /// mutex-guarded.  Node-processing order differs from the sequential
  /// search, so node counts vary run to run, but the optimum (and every
  /// sign-query verdict) is identical.
  int num_workers = 1;

  /// When set: answer "is the optimum >= threshold?" (for maximization; or
  /// "<= threshold" for minimization) and stop as soon as the answer is
  /// proven, returning kEarlyPositive / kEarlyNegative.
  std::optional<double> sign_threshold;

  /// Optional feasible starting point (full column vector) used to seed the
  /// incumbent.  Ignored when infeasible or not integral.
  std::optional<std::vector<double>> warm_start;

  /// Optional cross-solve basis handle for the ROOT relaxation.  When set,
  /// the root node LP warm-starts from handle->positions (e.g. the optimal
  /// root basis of the previous binary-search round's patched model) and
  /// the new optimal root basis is written back.  Child nodes keep the
  /// parent-basis warm starts they already had.  Ignored by the parallel
  /// search (num_workers > 1), whose write-back order would race.
  lp::WarmStart* root_warm = nullptr;
};

/// Result of a branch-and-bound solve.
struct MilpSolution {
  SolverStatus status = SolverStatus::kNumericalIssue;
  /// Incumbent objective in the model's sense (valid when `x` non-empty).
  double objective = 0.0;
  /// Incumbent solution; empty when none found.
  std::vector<double> x;
  /// Proven bound on the optimum (same sense as objective).
  double best_bound = 0.0;
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;

  bool has_solution() const { return !x.empty(); }
  bool optimal() const { return status == SolverStatus::kOptimal; }
};

/// Solves `model` (columns marked with set_integer are integral).
MilpSolution solve_milp(const lp::Model& model, const MilpOptions& options = {});

}  // namespace cubisg::milp

#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <map>
#include <queue>
#include <set>
#include <thread>
#include <tuple>

#include "lp/io.hpp"
#include "lp/presolve.hpp"

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cubisg::milp {

namespace {

constexpr double kInfD = std::numeric_limits<double>::infinity();

/// Registry handles, resolved once; node loops count locally and flush
/// totals when a search finishes.
struct MilpMetrics {
  obs::Counter& solves = obs::Registry::global().counter(
      "milp.solves_total");
  obs::Counter& nodes = obs::Registry::global().counter(
      "milp.nodes_explored");
  obs::Counter& lp_relaxations = obs::Registry::global().counter(
      "milp.lp_relaxations");
  obs::Counter& incumbents = obs::Registry::global().counter(
      "milp.incumbent_updates");
  obs::Counter& early_exits = obs::Registry::global().counter(
      "milp.sign_query_early_exits");
  // Live-search gauges for the /metrics endpoint: last-write-wins, so
  // with concurrent searches they show "some active search" rather than a
  // per-solve value — good enough to watch a long solve converge.
  obs::Gauge& frontier_open = obs::Registry::global().gauge(
      "milp.frontier_open_nodes");
  obs::Gauge& incumbent_objective = obs::Registry::global().gauge(
      "milp.incumbent_objective");

  static MilpMetrics& get() {
    static MilpMetrics m;
    return m;
  }
};

/// One bound tightening, chained back to the root (persistent structure so
/// sibling nodes share their common prefix).
struct BoundChange {
  int col;
  double lo;
  double hi;
  std::shared_ptr<const BoundChange> parent;
};

struct Node {
  std::shared_ptr<const BoundChange> changes;
  double parent_bound;  ///< LP bound inherited from the parent (user sense)
  int depth = 0;
  /// Parent's optimal basis positions: warm-starts the node LP (a child
  /// differs from its parent by a single bound change, so the parent basis
  /// is usually still primal feasible).
  std::shared_ptr<const std::vector<lp::VarPosition>> warm;
  /// Pseudo-cost bookkeeping: the column branched on to create this node
  /// and the fraction moved (f for down children, 1-f for up children).
  int branch_col = -1;
  double branch_frac = 0.0;
};

class BranchAndBound {
 public:
  BranchAndBound(const lp::Model& model, const MilpOptions& options)
      : base_(model), opt_(options) {
    base_.validate();
    // Callers only set MilpOptions::budget; thread it through to the node
    // LPs so the simplex polls the same token at pivot granularity.
    if (opt_.budget != nullptr && opt_.lp.budget == nullptr) {
      opt_.lp.budget = opt_.budget;
    }
    sign_ = base_.objective_sense() == lp::Objective::kMaximize ? 1.0 : -1.0;
    for (int j = 0; j < base_.num_cols(); ++j) {
      if (base_.col_is_integer(j)) int_cols_.push_back(j);
    }
  }

  MilpSolution run() {
    Timer timer;
    MilpSolution out;

    if (int_cols_.empty()) {
      return solve_as_pure_lp();
    }

    seed_warm_start();

    // `score` = sign_ * objective, so the search always maximizes score.
    auto cmp = [](const std::pair<double, Node>& a,
                  const std::pair<double, Node>& b) {
      return a.first < b.first;  // max-heap on score
    };
    std::priority_queue<std::pair<double, Node>,
                        std::vector<std::pair<double, Node>>, decltype(cmp)>
        frontier(cmp);
    frontier.push({kInfD, Node{nullptr, sign_ > 0 ? kInfD : -kInfD,
                                0, nullptr, -1, 0.0}});

    bool any_limit_hit = false;
    while (!frontier.empty()) {
      MilpMetrics::get().frontier_open.set(
          static_cast<double>(frontier.size()));
      // Global bound: best score still reachable from the frontier.
      const double frontier_score = frontier.top().first;
      const double global_bound_score =
          std::isfinite(frontier_score)
              ? std::max(frontier_score, incumbent_score_)
              : frontier_score;

      if (auto early = sign_query_decision(global_bound_score)) {
        out = *early;
        finalize(out, global_bound_score);
        return out;
      }
      if (has_incumbent_ &&
          global_bound_score - incumbent_score_ <= opt_.gap_abs) {
        break;  // proven optimal within gap
      }
      if (opt_.max_nodes >= 0 && nodes_ >= opt_.max_nodes) {
        any_limit_hit = true;
        out.status = SolverStatus::kIterLimit;
        break;
      }
      if (opt_.time_limit_sec > 0 && timer.seconds() > opt_.time_limit_sec) {
        any_limit_hit = true;
        out.status = SolverStatus::kTimeLimit;
        break;
      }
      // Shared budget: the node boundary is a safe point — incumbent and
      // proven bound are both consistent, so we unwind with partial
      // results rather than discarding the search.
      if (opt_.budget != nullptr) {
        if (const auto stop = opt_.budget->exceeded()) {
          any_limit_hit = true;
          out.status = *stop;
          break;
        }
      }
      if (faultinject::should_fail(faultinject::Site::kMilpDeadline)) {
        any_limit_hit = true;
        out.status = SolverStatus::kDeadlineExceeded;
        break;
      }

      Node node = frontier.top().second;
      frontier.pop();

      // Re-check pruning against the incumbent found since it was queued.
      if (has_incumbent_ &&
          sign_ * node.parent_bound <= incumbent_score_ + opt_.gap_abs &&
          std::isfinite(node.parent_bound)) {
        continue;
      }

      ++nodes_;
      if (opt_.budget != nullptr) opt_.budget->charge_nodes(1);
      if (!apply_bounds(node.changes)) {
        restore_bounds();
        continue;  // empty variable domain: node infeasible
      }
      lp::LpSolution rel;
      if (opt_.use_presolve && node.depth > 0) {
        rel = lp::solve_lp_presolved(base_, opt_.lp);
      } else {
        lp::SimplexOptions lp_opt = opt_.lp;
        lp_opt.warm_positions = node.warm ? node.warm.get() : nullptr;
        if (node.depth == 0 && opt_.root_warm != nullptr &&
            !opt_.root_warm->empty()) {
          // Cross-round reuse: the previous round's optimal root basis of
          // the patched model, threaded in by the caller.
          lp_opt.warm_positions = &opt_.root_warm->positions;
        }
        rel = lp::solve_lp(base_, lp_opt);
        if (node.depth == 0 && opt_.root_warm != nullptr && rel.optimal()) {
          opt_.root_warm->positions = rel.positions;
        }
      }
      ++lp_solves_;
      lp_iterations_ += rel.iterations;
      if (rel.status == SolverStatus::kNumericalIssue) {
        if (const char* dump = std::getenv("CUBISG_DUMP_FAILED_LP")) {
          lp::save_model(dump, base_);
        }
      }
      restore_bounds();

      if (rel.status == SolverStatus::kInfeasible) continue;
      if (rel.status == SolverStatus::kUnbounded) {
        // Integrality cannot cure an unbounded relaxation direction here;
        // report and stop (never occurs for the bounded CUBIS MILPs).
        out.status = SolverStatus::kUnbounded;
        finalize(out, kInfD);
        return out;
      }
      if (rel.status == SolverStatus::kDeadlineExceeded ||
          rel.status == SolverStatus::kCancelled) {
        // The shared budget tripped inside the node LP; unwind now rather
        // than spinning through the rest of the frontier.
        any_limit_hit = true;
        out.status = rel.status;
        break;
      }
      if (rel.status != SolverStatus::kOptimal) {
        // A node LP that failed because the *shared budget* tripped (node
        // or iteration cap) must unwind the whole search: every remaining
        // node would fail the same way, and silently dropping them would
        // end with a bogus "infeasible" verdict on an empty frontier.
        if (opt_.budget != nullptr) {
          if (const auto stop = opt_.budget->exceeded()) {
            any_limit_hit = true;
            out.status = *stop;
            break;
          }
        }
        CUBISG_LOG(LogLevel::kWarn)
            << "milp: node LP returned " << to_string(rel.status);
        continue;  // treat as prunable rather than aborting the search
      }

      const double node_score = sign_ * rel.objective;
      if (node.branch_col >= 0 && std::isfinite(node.parent_bound) &&
          node.branch_frac > opt_.int_tol) {
        // Pseudo-cost observation: objective degradation per unit of
        // fraction removed by this branching.
        const double degradation =
            std::max(0.0, sign_ * node.parent_bound - node_score);
        auto& pc = pseudo_[node.branch_col];
        pc.first += degradation / node.branch_frac;
        pc.second += 1;
      }
      if (has_incumbent_ && node_score <= incumbent_score_ + opt_.gap_abs) {
        continue;  // cannot beat the incumbent
      }

      const int frac = select_branch_var(rel.x);
      if (frac < 0) {
        update_incumbent(rel.x, rel.objective);
        continue;
      }

      if (node.depth == 0) {
        try_rounding_heuristic(rel.x, node.changes);
      }

      // Branch.
      const double v = rel.x[frac];
      auto down = std::make_shared<BoundChange>(BoundChange{
          frac, effective_lower(frac, node.changes), std::floor(v),
          node.changes});
      auto up = std::make_shared<BoundChange>(BoundChange{
          frac, std::ceil(v), effective_upper(frac, node.changes),
          node.changes});
      auto warm = rel.positions.empty()
                      ? nullptr
                      : std::make_shared<const std::vector<lp::VarPosition>>(
                            std::move(rel.positions));
      const double frac_part = v - std::floor(v);
      if (down->lo <= down->hi + 1e-12) {
        frontier.push({node_score, Node{down, rel.objective, node.depth + 1,
                                        warm, frac, frac_part}});
      }
      if (up->lo <= up->hi + 1e-12) {
        frontier.push({node_score, Node{up, rel.objective, node.depth + 1,
                                        warm, frac, 1.0 - frac_part}});
      }
    }

    if (!any_limit_hit) {
      out.status =
          has_incumbent_ ? SolverStatus::kOptimal : SolverStatus::kInfeasible;
    }
    const double final_bound_score =
        (out.status == SolverStatus::kOptimal)
            ? incumbent_score_
            : (frontier.empty() ? incumbent_score_
                                : std::max(frontier.top().first,
                                           incumbent_score_));
    // A sign query can also resolve exactly at exhaustion.  After a limit
    // stop only the incumbent certificate (kEarlyPositive) is trustworthy:
    // the node being processed at the break was already popped, so the
    // frontier bound no longer covers its subtree and cannot prove a
    // negative.
    if (opt_.sign_threshold) {
      if (auto early = sign_query_decision(final_bound_score)) {
        if (early->status == SolverStatus::kEarlyPositive ||
            !any_limit_hit) {
          out = *early;
        }
      }
    }
    finalize(out, final_bound_score);
    return out;
  }

 private:
  MilpSolution solve_as_pure_lp() {
    MilpSolution out;
    lp::LpSolution rel = lp::solve_lp(base_, opt_.lp);
    out.status = rel.status;
    out.lp_iterations = rel.iterations;
    out.nodes = 1;
    MilpMetrics::get().nodes.add(1);
    MilpMetrics::get().lp_relaxations.add(1);
    if (rel.optimal()) {
      out.objective = rel.objective;
      out.best_bound = rel.objective;
      out.x = rel.x;
      if (opt_.sign_threshold) {
        const double thr_score = sign_ * *opt_.sign_threshold;
        out.status = sign_ * rel.objective >= thr_score
                         ? SolverStatus::kEarlyPositive
                         : SolverStatus::kEarlyNegative;
      }
    }
    return out;
  }

  void seed_warm_start() {
    if (!opt_.warm_start) return;
    const std::vector<double>& x = *opt_.warm_start;
    if (static_cast<int>(x.size()) != base_.num_cols()) return;
    if (base_.max_violation(x) > 1e-7) return;
    for (int j : int_cols_) {
      if (std::abs(x[j] - std::round(x[j])) > opt_.int_tol) return;
    }
    update_incumbent(x, base_.objective_value(x));
  }

  /// Returns the early-exit result if the sign query is decided.
  std::optional<MilpSolution> sign_query_decision(double bound_score) {
    if (!opt_.sign_threshold) return std::nullopt;
    const double thr_score = sign_ * *opt_.sign_threshold;
    if (has_incumbent_ && incumbent_score_ >= thr_score) {
      MilpSolution out;
      out.status = SolverStatus::kEarlyPositive;
      return out;
    }
    if (bound_score < thr_score) {
      MilpSolution out;
      out.status = SolverStatus::kEarlyNegative;
      return out;
    }
    return std::nullopt;
  }

  void finalize(MilpSolution& out, double bound_score) {
    out.nodes = nodes_;
    out.lp_iterations = lp_iterations_;
    if (has_incumbent_) {
      out.x = incumbent_;
      out.objective = sign_ * incumbent_score_;
    }
    out.best_bound = sign_ * bound_score;

    MilpMetrics& m = MilpMetrics::get();
    m.frontier_open.set(0.0);
    if (nodes_ != 0) m.nodes.add(nodes_);
    if (lp_solves_ != 0) m.lp_relaxations.add(lp_solves_);
    if (inc_updates_ != 0) m.incumbents.add(inc_updates_);
    if (out.status == SolverStatus::kEarlyPositive ||
        out.status == SolverStatus::kEarlyNegative) {
      m.early_exits.add(1);
    }
  }

  /// Applies the node's bound chain to base_; returns false when some
  /// variable domain becomes empty (the node is trivially infeasible).
  bool apply_bounds(const std::shared_ptr<const BoundChange>& changes) {
    saved_.clear();
    bool feasible = true;
    for (const BoundChange* c = changes.get(); c != nullptr;
         c = c->parent.get()) {
      saved_.push_back({c->col, base_.col_lower(c->col),
                        base_.col_upper(c->col)});
      // Deeper changes are applied first and must win: intersect.
      const double lo = std::max(base_.col_lower(c->col), c->lo);
      const double hi = std::min(base_.col_upper(c->col), c->hi);
      if (lo > hi + 1e-12) {
        feasible = false;
        base_.set_col_bounds(c->col, lo, lo);
      } else {
        base_.set_col_bounds(c->col, lo, std::max(lo, hi));
      }
    }
    return feasible;
  }

  void restore_bounds() {
    // Undo in reverse order so the original bounds come back exactly.
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
      base_.set_col_bounds(it->col, it->lo, it->hi);
    }
    saved_.clear();
  }

  double effective_lower(int col,
                         const std::shared_ptr<const BoundChange>& changes) {
    double lo = base_.col_lower(col);
    for (const BoundChange* c = changes.get(); c; c = c->parent.get()) {
      if (c->col == col) lo = std::max(lo, c->lo);
    }
    return lo;
  }

  double effective_upper(int col,
                         const std::shared_ptr<const BoundChange>& changes) {
    double hi = base_.col_upper(col);
    for (const BoundChange* c = changes.get(); c; c = c->parent.get()) {
      if (c->col == col) hi = std::min(hi, c->hi);
    }
    return hi;
  }

  /// Branching-variable selection per the configured rule; -1 = integral.
  int select_branch_var(const std::vector<double>& x) {
    if (opt_.branching == BranchingRule::kMostFractional) {
      return most_fractional(x);
    }
    // Pseudo-cost: score = fraction * average historical degradation;
    // columns without history fall back to their fraction alone, which
    // reduces to most-fractional on a cold start.
    int best = -1;
    double best_score = -1.0;
    for (int j : int_cols_) {
      const double f = std::abs(x[j] - std::round(x[j]));
      if (f <= opt_.int_tol) continue;
      const auto it = pseudo_.find(j);
      const double avg =
          it == pseudo_.end() || it->second.second == 0
              ? 1.0
              : it->second.first / static_cast<double>(it->second.second);
      const double score = f * avg;
      if (score > best_score) {
        best_score = score;
        best = j;
      }
    }
    return best;
  }

  /// Index of the integer column farthest from integrality, or -1.
  int most_fractional(const std::vector<double>& x) {
    int best = -1;
    double best_frac = opt_.int_tol;
    for (int j : int_cols_) {
      const double f = std::abs(x[j] - std::round(x[j]));
      if (f > best_frac) {
        best_frac = f;
        best = j;
      }
    }
    return best;
  }

  void update_incumbent(const std::vector<double>& x, double objective) {
    const double score = sign_ * objective;
    if (!has_incumbent_ || score > incumbent_score_) {
      incumbent_ = x;
      incumbent_score_ = score;
      has_incumbent_ = true;
      ++inc_updates_;
      MilpMetrics::get().incumbent_objective.set(objective);
    }
  }

  /// Rounds the relaxation's integer values, fixes them, and re-solves the
  /// continuous remainder; a feasible result seeds/updates the incumbent.
  void try_rounding_heuristic(
      const std::vector<double>& relax_x,
      const std::shared_ptr<const BoundChange>& changes) {
    apply_bounds(changes);
    std::vector<std::pair<int, std::pair<double, double>>> fixed;
    fixed.reserve(int_cols_.size());
    bool ok = true;
    for (int j : int_cols_) {
      double v = std::round(relax_x[j]);
      v = std::clamp(v, base_.col_lower(j), base_.col_upper(j));
      if (std::abs(v - std::round(v)) > opt_.int_tol) {
        ok = false;
        break;
      }
      fixed.push_back({j, {base_.col_lower(j), base_.col_upper(j)}});
      base_.set_col_bounds(j, v, v);
    }
    if (ok) {
      lp::LpSolution fix = lp::solve_lp(base_, opt_.lp);
      ++lp_solves_;
      lp_iterations_ += fix.iterations;
      if (fix.optimal()) {
        update_incumbent(fix.x, fix.objective);
      }
    }
    for (auto it = fixed.rbegin(); it != fixed.rend(); ++it) {
      base_.set_col_bounds(it->first, it->second.first, it->second.second);
    }
    restore_bounds();
  }

  lp::Model base_;  ///< mutated/restored around each node LP solve
  MilpOptions opt_;
  double sign_ = 1.0;
  std::vector<int> int_cols_;

  std::vector<double> incumbent_;
  double incumbent_score_ = -kInfD;
  bool has_incumbent_ = false;

  struct SavedBound {
    int col;
    double lo;
    double hi;
  };
  std::vector<SavedBound> saved_;
  /// Per-column (sum of per-unit degradations, observation count).
  std::map<int, std::pair<double, int>> pseudo_;

  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  std::int64_t lp_solves_ = 0;
  std::int64_t inc_updates_ = 0;
};

/// Shared-frontier parallel branch and bound.  Each worker owns a private
/// copy of the model (bound changes are applied/restored locally); the
/// frontier, incumbent and statistics live behind one mutex.  Termination:
/// the frontier is empty AND no worker is mid-node.  The global bound for
/// sign queries covers both queued nodes and nodes in flight.
class ParallelBranchAndBound {
 public:
  ParallelBranchAndBound(const lp::Model& model, const MilpOptions& options)
      : base_(model), opt_(options) {
    base_.validate();
    if (opt_.budget != nullptr && opt_.lp.budget == nullptr) {
      opt_.lp.budget = opt_.budget;
    }
    sign_ = base_.objective_sense() == lp::Objective::kMaximize ? 1.0 : -1.0;
    for (int j = 0; j < base_.num_cols(); ++j) {
      if (base_.col_is_integer(j)) int_cols_.push_back(j);
    }
  }

  MilpSolution run() {
    // Seed the incumbent from the caller's warm start, like the
    // sequential path.
    if (opt_.warm_start) {
      const std::vector<double>& x = *opt_.warm_start;
      if (static_cast<int>(x.size()) == base_.num_cols() &&
          base_.max_violation(x) <= 1e-7) {
        bool integral = true;
        for (int j : int_cols_) {
          integral = integral &&
                     std::abs(x[j] - std::round(x[j])) <= opt_.int_tol;
        }
        if (integral) {
          incumbent_ = x;
          incumbent_score_ = sign_ * base_.objective_value(x);
          has_incumbent_ = true;
        }
      }
    }
    check_early_exit_locked();

    frontier_.push({kInfD, Node{nullptr, sign_ > 0 ? kInfD : -kInfD, 0,
                                nullptr, -1, 0.0}});
    {
      const int workers = std::max(1, opt_.num_workers);
      std::vector<std::jthread> pool;
      pool.reserve(workers);
      for (int w = 0; w < workers; ++w) {
        pool.emplace_back([this] { worker_loop(); });
      }
      // jthreads join here.
    }

    MilpSolution out;
    out.nodes = nodes_;
    out.lp_iterations = lp_iterations_;
    if (decided_ != SolverStatus::kNumericalIssue) {
      out.status = decided_;
    } else if (limit_hit_ != SolverStatus::kNumericalIssue) {
      out.status = limit_hit_;
    } else {
      out.status = has_incumbent_ ? SolverStatus::kOptimal
                                  : SolverStatus::kInfeasible;
    }
    if (has_incumbent_) {
      out.x = incumbent_;
      out.objective = sign_ * incumbent_score_;
    }
    out.best_bound = sign_ * global_bound_score_locked();

    MilpMetrics& m = MilpMetrics::get();
    m.frontier_open.set(0.0);
    if (nodes_ != 0) m.nodes.add(nodes_);
    if (lp_solves_ != 0) m.lp_relaxations.add(lp_solves_);
    if (inc_updates_ != 0) m.incumbents.add(inc_updates_);
    if (out.status == SolverStatus::kEarlyPositive ||
        out.status == SolverStatus::kEarlyNegative) {
      m.early_exits.add(1);
    }
    return out;
  }

 private:
  void worker_loop() {
    // Each worker mutates its own model copy.
    lp::Model local = base_;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] {
        return stop_ || !frontier_.empty() || active_ == 0;
      });
      if (stop_ || (frontier_.empty() && active_ == 0)) {
        cv_.notify_all();
        return;
      }
      if (frontier_.empty()) continue;  // spurious wake while others work

      if (opt_.max_nodes >= 0 && nodes_ >= opt_.max_nodes) {
        limit_hit_ = SolverStatus::kIterLimit;
        stop_ = true;
        cv_.notify_all();
        return;
      }
      if (opt_.time_limit_sec > 0 &&
          timer_.seconds() > opt_.time_limit_sec) {
        limit_hit_ = SolverStatus::kTimeLimit;
        stop_ = true;
        cv_.notify_all();
        return;
      }
      // Shared budget: the token's trip is sticky, so every worker that
      // polls it sees the same verdict and the pool unwinds consistently.
      if (opt_.budget != nullptr) {
        if (const auto stop = opt_.budget->exceeded()) {
          limit_hit_ = *stop;
          stop_ = true;
          cv_.notify_all();
          return;
        }
      }
      if (faultinject::should_fail(faultinject::Site::kMilpDeadline)) {
        limit_hit_ = SolverStatus::kDeadlineExceeded;
        stop_ = true;
        cv_.notify_all();
        return;
      }

      Node node = frontier_.top().second;
      const double node_parent_score = frontier_.top().first;
      frontier_.pop();
      if (has_incumbent_ && std::isfinite(node.parent_bound) &&
          sign_ * node.parent_bound <= incumbent_score_ + opt_.gap_abs) {
        continue;  // pruned by a newer incumbent
      }
      ++active_;
      inflight_.insert(node_parent_score);
      ++nodes_;
      if (opt_.budget != nullptr) opt_.budget->charge_nodes(1);
      lock.unlock();

      // ---- out-of-lock node processing ----
      ProcessResult res = process_node(local, node);

      lock.lock();
      lp_iterations_ += res.lp_iterations;
      lp_solves_ += res.lp_solves;
      inflight_.erase(inflight_.find(node_parent_score));
      --active_;
      if (res.incumbent_candidate) {
        const double score = sign_ * res.incumbent_objective;
        if (!has_incumbent_ || score > incumbent_score_) {
          incumbent_ = std::move(res.incumbent_x);
          incumbent_score_ = score;
          has_incumbent_ = true;
          ++inc_updates_;
          MilpMetrics::get().incumbent_objective.set(
              res.incumbent_objective);
        }
      }
      for (auto& child : res.children) {
        frontier_.push(std::move(child));
      }
      MilpMetrics::get().frontier_open.set(
          static_cast<double>(frontier_.size()));
      // A budget trip inside the node LP drops the node's children, so
      // without this poll the frontier could drain and the search would
      // exit reporting infeasible/optimal instead of the budget status.
      if (opt_.budget != nullptr &&
          limit_hit_ == SolverStatus::kNumericalIssue) {
        if (const auto bstop = opt_.budget->exceeded()) {
          limit_hit_ = *bstop;
          stop_ = true;
        }
      }
      check_early_exit_locked();
      if (has_incumbent_ &&
          global_bound_score_locked() - incumbent_score_ <= opt_.gap_abs) {
        stop_ = true;  // optimality proven
      }
      cv_.notify_all();
    }
  }

  struct ProcessResult {
    std::vector<std::pair<double, Node>> children;
    bool incumbent_candidate = false;
    double incumbent_objective = 0.0;
    std::vector<double> incumbent_x;
    std::int64_t lp_iterations = 0;
    std::int64_t lp_solves = 0;
  };

  ProcessResult process_node(lp::Model& local, const Node& node) {
    ProcessResult res;
    // Apply the bound chain onto the worker-local model.
    std::vector<std::tuple<int, double, double>> saved;
    bool feasible = true;
    for (const BoundChange* c = node.changes.get(); c; c = c->parent.get()) {
      saved.emplace_back(c->col, local.col_lower(c->col),
                         local.col_upper(c->col));
      const double lo = std::max(local.col_lower(c->col), c->lo);
      const double hi = std::min(local.col_upper(c->col), c->hi);
      if (lo > hi + 1e-12) {
        feasible = false;
        local.set_col_bounds(c->col, lo, lo);
      } else {
        local.set_col_bounds(c->col, lo, std::max(lo, hi));
      }
    }
    if (feasible) {
      lp::LpSolution rel = opt_.use_presolve && node.depth > 0
                               ? lp::solve_lp_presolved(local, opt_.lp)
                               : lp::solve_lp(local, opt_.lp);
      res.lp_iterations = rel.iterations;
      res.lp_solves = 1;
      if (rel.status == SolverStatus::kOptimal) {
        int frac = -1;
        double best_frac = opt_.int_tol;
        for (int j : int_cols_) {
          const double f = std::abs(rel.x[j] - std::round(rel.x[j]));
          if (f > best_frac) {
            best_frac = f;
            frac = j;
          }
        }
        if (frac < 0) {
          res.incumbent_candidate = true;
          res.incumbent_objective = rel.objective;
          res.incumbent_x = rel.x;
        } else {
          const double v = rel.x[frac];
          auto down = std::make_shared<BoundChange>(BoundChange{
              frac, local.col_lower(frac), std::floor(v), node.changes});
          auto up = std::make_shared<BoundChange>(BoundChange{
              frac, std::ceil(v), local.col_upper(frac), node.changes});
          const double score = sign_ * rel.objective;
          if (down->lo <= down->hi + 1e-12) {
            res.children.push_back({score, Node{down, rel.objective,
                                                node.depth + 1, nullptr,
                                                -1, 0.0}});
          }
          if (up->lo <= up->hi + 1e-12) {
            res.children.push_back({score, Node{up, rel.objective,
                                                node.depth + 1, nullptr,
                                                -1, 0.0}});
          }
        }
      }
      // Infeasible/limit/numerical nodes are dropped (as sequential does).
    }
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      local.set_col_bounds(std::get<0>(*it), std::get<1>(*it),
                           std::get<2>(*it));
    }
    return res;
  }

  /// Best score still reachable anywhere (caller holds the mutex).
  double global_bound_score_locked() const {
    double bound = has_incumbent_ ? incumbent_score_ : -kInfD;
    if (!frontier_.empty()) bound = std::max(bound, frontier_.top().first);
    if (!inflight_.empty()) bound = std::max(bound, *inflight_.rbegin());
    return bound;
  }

  /// Resolves sign queries (caller holds the mutex).
  void check_early_exit_locked() {
    if (!opt_.sign_threshold || decided_ != SolverStatus::kNumericalIssue) {
      return;
    }
    const double thr_score = sign_ * *opt_.sign_threshold;
    if (has_incumbent_ && incumbent_score_ >= thr_score) {
      decided_ = SolverStatus::kEarlyPositive;
      stop_ = true;
    } else if (limit_hit_ == SolverStatus::kNumericalIssue &&
               global_bound_score_locked() < thr_score && active_ == 0 &&
               nodes_ > 0) {
      // The bound only proves a negative when no limit dropped a subtree.
      decided_ = SolverStatus::kEarlyNegative;
      stop_ = true;
    }
  }

  lp::Model base_;
  MilpOptions opt_;
  double sign_ = 1.0;
  std::vector<int> int_cols_;

  std::mutex mutex_;
  std::condition_variable cv_;
  struct NodeCmp {
    bool operator()(const std::pair<double, Node>& a,
                    const std::pair<double, Node>& b) const {
      return a.first < b.first;
    }
  };
  std::priority_queue<std::pair<double, Node>,
                      std::vector<std::pair<double, Node>>, NodeCmp>
      frontier_;
  std::multiset<double> inflight_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<double> incumbent_;
  double incumbent_score_ = -kInfD;
  bool has_incumbent_ = false;
  SolverStatus decided_ = SolverStatus::kNumericalIssue;   // early-exit
  SolverStatus limit_hit_ = SolverStatus::kNumericalIssue;  // limits
  std::int64_t nodes_ = 0;
  std::int64_t lp_iterations_ = 0;
  std::int64_t lp_solves_ = 0;
  std::int64_t inc_updates_ = 0;
  Timer timer_;
};

}  // namespace

MilpSolution solve_milp(const lp::Model& model, const MilpOptions& options) {
  obs::TraceSpan span("milp.solve");
  MilpMetrics::get().solves.add(1);
  if (options.num_workers > 1 && model.has_integers()) {
    ParallelBranchAndBound bb(model, options);
    return bb.run();
  }
  BranchAndBound bb(model, options);
  return bb.run();
}

}  // namespace cubisg::milp

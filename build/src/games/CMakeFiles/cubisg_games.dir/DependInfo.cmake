
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/games/comb_sampling.cpp" "src/games/CMakeFiles/cubisg_games.dir/comb_sampling.cpp.o" "gcc" "src/games/CMakeFiles/cubisg_games.dir/comb_sampling.cpp.o.d"
  "/root/repo/src/games/generators.cpp" "src/games/CMakeFiles/cubisg_games.dir/generators.cpp.o" "gcc" "src/games/CMakeFiles/cubisg_games.dir/generators.cpp.o.d"
  "/root/repo/src/games/routes.cpp" "src/games/CMakeFiles/cubisg_games.dir/routes.cpp.o" "gcc" "src/games/CMakeFiles/cubisg_games.dir/routes.cpp.o.d"
  "/root/repo/src/games/schedule.cpp" "src/games/CMakeFiles/cubisg_games.dir/schedule.cpp.o" "gcc" "src/games/CMakeFiles/cubisg_games.dir/schedule.cpp.o.d"
  "/root/repo/src/games/security_game.cpp" "src/games/CMakeFiles/cubisg_games.dir/security_game.cpp.o" "gcc" "src/games/CMakeFiles/cubisg_games.dir/security_game.cpp.o.d"
  "/root/repo/src/games/strategy_space.cpp" "src/games/CMakeFiles/cubisg_games.dir/strategy_space.cpp.o" "gcc" "src/games/CMakeFiles/cubisg_games.dir/strategy_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cubisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cubisg_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cubisg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

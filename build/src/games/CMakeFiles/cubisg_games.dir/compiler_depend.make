# Empty compiler generated dependencies file for cubisg_games.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcubisg_games.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cubisg_games.dir/comb_sampling.cpp.o"
  "CMakeFiles/cubisg_games.dir/comb_sampling.cpp.o.d"
  "CMakeFiles/cubisg_games.dir/generators.cpp.o"
  "CMakeFiles/cubisg_games.dir/generators.cpp.o.d"
  "CMakeFiles/cubisg_games.dir/routes.cpp.o"
  "CMakeFiles/cubisg_games.dir/routes.cpp.o.d"
  "CMakeFiles/cubisg_games.dir/schedule.cpp.o"
  "CMakeFiles/cubisg_games.dir/schedule.cpp.o.d"
  "CMakeFiles/cubisg_games.dir/security_game.cpp.o"
  "CMakeFiles/cubisg_games.dir/security_game.cpp.o.d"
  "CMakeFiles/cubisg_games.dir/strategy_space.cpp.o"
  "CMakeFiles/cubisg_games.dir/strategy_space.cpp.o.d"
  "libcubisg_games.a"
  "libcubisg_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

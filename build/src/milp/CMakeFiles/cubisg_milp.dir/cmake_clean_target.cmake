file(REMOVE_RECURSE
  "libcubisg_milp.a"
)

# Empty dependencies file for cubisg_milp.
# This may be replaced when dependencies are built.

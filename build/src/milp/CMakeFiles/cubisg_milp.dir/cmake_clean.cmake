file(REMOVE_RECURSE
  "CMakeFiles/cubisg_milp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/cubisg_milp.dir/branch_and_bound.cpp.o.d"
  "libcubisg_milp.a"
  "libcubisg_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

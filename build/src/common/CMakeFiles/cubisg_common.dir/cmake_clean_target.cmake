file(REMOVE_RECURSE
  "libcubisg_common.a"
)

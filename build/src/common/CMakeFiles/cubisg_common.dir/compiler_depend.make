# Empty compiler generated dependencies file for cubisg_common.
# This may be replaced when dependencies are built.

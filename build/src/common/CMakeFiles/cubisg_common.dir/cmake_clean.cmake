file(REMOVE_RECURSE
  "CMakeFiles/cubisg_common.dir/interval.cpp.o"
  "CMakeFiles/cubisg_common.dir/interval.cpp.o.d"
  "CMakeFiles/cubisg_common.dir/log.cpp.o"
  "CMakeFiles/cubisg_common.dir/log.cpp.o.d"
  "CMakeFiles/cubisg_common.dir/math_util.cpp.o"
  "CMakeFiles/cubisg_common.dir/math_util.cpp.o.d"
  "libcubisg_common.a"
  "libcubisg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cubisg_learning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cubisg_learning.dir/data_io.cpp.o"
  "CMakeFiles/cubisg_learning.dir/data_io.cpp.o.d"
  "CMakeFiles/cubisg_learning.dir/suqr_mle.cpp.o"
  "CMakeFiles/cubisg_learning.dir/suqr_mle.cpp.o.d"
  "libcubisg_learning.a"
  "libcubisg_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

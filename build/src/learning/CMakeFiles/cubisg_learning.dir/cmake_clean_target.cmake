file(REMOVE_RECURSE
  "libcubisg_learning.a"
)

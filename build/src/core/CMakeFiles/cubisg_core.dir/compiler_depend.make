# Empty compiler generated dependencies file for cubisg_core.
# This may be replaced when dependencies are built.

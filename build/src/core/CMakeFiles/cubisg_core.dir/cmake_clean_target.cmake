file(REMOVE_RECURSE
  "libcubisg_core.a"
)

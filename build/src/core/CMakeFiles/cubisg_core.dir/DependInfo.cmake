
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/cubisg_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/cubis.cpp" "src/core/CMakeFiles/cubisg_core.dir/cubis.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/cubis.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/cubisg_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/gradient.cpp" "src/core/CMakeFiles/cubisg_core.dir/gradient.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/gradient.cpp.o.d"
  "/root/repo/src/core/hfunction.cpp" "src/core/CMakeFiles/cubisg_core.dir/hfunction.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/hfunction.cpp.o.d"
  "/root/repo/src/core/maximin.cpp" "src/core/CMakeFiles/cubisg_core.dir/maximin.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/maximin.cpp.o.d"
  "/root/repo/src/core/origami.cpp" "src/core/CMakeFiles/cubisg_core.dir/origami.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/origami.cpp.o.d"
  "/root/repo/src/core/pasaq.cpp" "src/core/CMakeFiles/cubisg_core.dir/pasaq.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/pasaq.cpp.o.d"
  "/root/repo/src/core/piecewise.cpp" "src/core/CMakeFiles/cubisg_core.dir/piecewise.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/piecewise.cpp.o.d"
  "/root/repo/src/core/population_solvers.cpp" "src/core/CMakeFiles/cubisg_core.dir/population_solvers.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/population_solvers.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/cubisg_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/solvers.cpp" "src/core/CMakeFiles/cubisg_core.dir/solvers.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/solvers.cpp.o.d"
  "/root/repo/src/core/sse.cpp" "src/core/CMakeFiles/cubisg_core.dir/sse.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/sse.cpp.o.d"
  "/root/repo/src/core/step_solver.cpp" "src/core/CMakeFiles/cubisg_core.dir/step_solver.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/step_solver.cpp.o.d"
  "/root/repo/src/core/worst_case.cpp" "src/core/CMakeFiles/cubisg_core.dir/worst_case.cpp.o" "gcc" "src/core/CMakeFiles/cubisg_core.dir/worst_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cubisg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/games/CMakeFiles/cubisg_games.dir/DependInfo.cmake"
  "/root/repo/build/src/behavior/CMakeFiles/cubisg_behavior.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cubisg_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/cubisg_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/cubisg_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/cubisg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

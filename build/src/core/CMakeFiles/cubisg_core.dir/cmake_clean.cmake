file(REMOVE_RECURSE
  "CMakeFiles/cubisg_core.dir/adaptive.cpp.o"
  "CMakeFiles/cubisg_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/cubis.cpp.o"
  "CMakeFiles/cubisg_core.dir/cubis.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/evaluation.cpp.o"
  "CMakeFiles/cubisg_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/gradient.cpp.o"
  "CMakeFiles/cubisg_core.dir/gradient.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/hfunction.cpp.o"
  "CMakeFiles/cubisg_core.dir/hfunction.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/maximin.cpp.o"
  "CMakeFiles/cubisg_core.dir/maximin.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/origami.cpp.o"
  "CMakeFiles/cubisg_core.dir/origami.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/pasaq.cpp.o"
  "CMakeFiles/cubisg_core.dir/pasaq.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/piecewise.cpp.o"
  "CMakeFiles/cubisg_core.dir/piecewise.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/population_solvers.cpp.o"
  "CMakeFiles/cubisg_core.dir/population_solvers.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/registry.cpp.o"
  "CMakeFiles/cubisg_core.dir/registry.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/solvers.cpp.o"
  "CMakeFiles/cubisg_core.dir/solvers.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/sse.cpp.o"
  "CMakeFiles/cubisg_core.dir/sse.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/step_solver.cpp.o"
  "CMakeFiles/cubisg_core.dir/step_solver.cpp.o.d"
  "CMakeFiles/cubisg_core.dir/worst_case.cpp.o"
  "CMakeFiles/cubisg_core.dir/worst_case.cpp.o.d"
  "libcubisg_core.a"
  "libcubisg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

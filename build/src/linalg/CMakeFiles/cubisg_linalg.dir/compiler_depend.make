# Empty compiler generated dependencies file for cubisg_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cubisg_linalg.dir/lu.cpp.o"
  "CMakeFiles/cubisg_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/cubisg_linalg.dir/matrix.cpp.o"
  "CMakeFiles/cubisg_linalg.dir/matrix.cpp.o.d"
  "libcubisg_linalg.a"
  "libcubisg_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcubisg_linalg.a"
)

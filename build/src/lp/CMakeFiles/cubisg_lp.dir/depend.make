# Empty dependencies file for cubisg_lp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cubisg_lp.dir/io.cpp.o"
  "CMakeFiles/cubisg_lp.dir/io.cpp.o.d"
  "CMakeFiles/cubisg_lp.dir/model.cpp.o"
  "CMakeFiles/cubisg_lp.dir/model.cpp.o.d"
  "CMakeFiles/cubisg_lp.dir/presolve.cpp.o"
  "CMakeFiles/cubisg_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/cubisg_lp.dir/simplex.cpp.o"
  "CMakeFiles/cubisg_lp.dir/simplex.cpp.o.d"
  "libcubisg_lp.a"
  "libcubisg_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcubisg_lp.a"
)

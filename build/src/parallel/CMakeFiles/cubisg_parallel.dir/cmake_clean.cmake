file(REMOVE_RECURSE
  "CMakeFiles/cubisg_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/cubisg_parallel.dir/thread_pool.cpp.o.d"
  "libcubisg_parallel.a"
  "libcubisg_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

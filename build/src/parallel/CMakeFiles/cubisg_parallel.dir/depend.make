# Empty dependencies file for cubisg_parallel.
# This may be replaced when dependencies are built.

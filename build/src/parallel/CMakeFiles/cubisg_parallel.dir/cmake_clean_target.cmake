file(REMOVE_RECURSE
  "libcubisg_parallel.a"
)

file(REMOVE_RECURSE
  "libcubisg_behavior.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cubisg_behavior.dir/attacker_sim.cpp.o"
  "CMakeFiles/cubisg_behavior.dir/attacker_sim.cpp.o.d"
  "CMakeFiles/cubisg_behavior.dir/bounds.cpp.o"
  "CMakeFiles/cubisg_behavior.dir/bounds.cpp.o.d"
  "CMakeFiles/cubisg_behavior.dir/scenario.cpp.o"
  "CMakeFiles/cubisg_behavior.dir/scenario.cpp.o.d"
  "CMakeFiles/cubisg_behavior.dir/suqr.cpp.o"
  "CMakeFiles/cubisg_behavior.dir/suqr.cpp.o.d"
  "libcubisg_behavior.a"
  "libcubisg_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

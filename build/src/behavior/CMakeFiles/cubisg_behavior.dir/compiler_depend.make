# Empty compiler generated dependencies file for cubisg_behavior.
# This may be replaced when dependencies are built.

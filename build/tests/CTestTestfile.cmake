# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_milp[1]_include.cmake")
include("/root/repo/build/tests/test_games[1]_include.cmake")
include("/root/repo/build/tests/test_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_worst_case[1]_include.cmake")
include("/root/repo/build/tests/test_piecewise[1]_include.cmake")
include("/root/repo/build/tests/test_cubis[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_comb_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_sse[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_presolve[1]_include.cmake")
include("/root/repo/build/tests/test_learning[1]_include.cmake")
include("/root/repo/build/tests/test_routes[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_evaluation[1]_include.cmake")

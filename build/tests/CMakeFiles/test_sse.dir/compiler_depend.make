# Empty compiler generated dependencies file for test_sse.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sse.dir/test_sse.cpp.o"
  "CMakeFiles/test_sse.dir/test_sse.cpp.o.d"
  "test_sse"
  "test_sse.pdb"
  "test_sse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_worst_case.
# This may be replaced when dependencies are built.

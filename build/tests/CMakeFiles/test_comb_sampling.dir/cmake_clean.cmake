file(REMOVE_RECURSE
  "CMakeFiles/test_comb_sampling.dir/test_comb_sampling.cpp.o"
  "CMakeFiles/test_comb_sampling.dir/test_comb_sampling.cpp.o.d"
  "test_comb_sampling"
  "test_comb_sampling.pdb"
  "test_comb_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comb_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

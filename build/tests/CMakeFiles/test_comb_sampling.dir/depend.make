# Empty dependencies file for test_comb_sampling.
# This may be replaced when dependencies are built.

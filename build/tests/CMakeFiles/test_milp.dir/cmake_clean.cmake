file(REMOVE_RECURSE
  "CMakeFiles/test_milp.dir/brute_force.cpp.o"
  "CMakeFiles/test_milp.dir/brute_force.cpp.o.d"
  "CMakeFiles/test_milp.dir/test_milp.cpp.o"
  "CMakeFiles/test_milp.dir/test_milp.cpp.o.d"
  "test_milp"
  "test_milp.pdb"
  "test_milp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

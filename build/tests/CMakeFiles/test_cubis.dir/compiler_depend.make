# Empty compiler generated dependencies file for test_cubis.
# This may be replaced when dependencies are built.

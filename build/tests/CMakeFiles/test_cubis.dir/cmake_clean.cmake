file(REMOVE_RECURSE
  "CMakeFiles/test_cubis.dir/test_cubis.cpp.o"
  "CMakeFiles/test_cubis.dir/test_cubis.cpp.o.d"
  "test_cubis"
  "test_cubis.pdb"
  "test_cubis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cubis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

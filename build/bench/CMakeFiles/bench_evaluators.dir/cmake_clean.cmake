file(REMOVE_RECURSE
  "CMakeFiles/bench_evaluators.dir/bench_evaluators.cpp.o"
  "CMakeFiles/bench_evaluators.dir/bench_evaluators.cpp.o.d"
  "bench_evaluators"
  "bench_evaluators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evaluators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_patrol.dir/bench_patrol.cpp.o"
  "CMakeFiles/bench_patrol.dir/bench_patrol.cpp.o.d"
  "bench_patrol"
  "bench_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

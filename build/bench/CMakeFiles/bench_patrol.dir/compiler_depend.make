# Empty compiler generated dependencies file for bench_patrol.
# This may be replaced when dependencies are built.

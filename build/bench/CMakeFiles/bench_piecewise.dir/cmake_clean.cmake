file(REMOVE_RECURSE
  "CMakeFiles/bench_piecewise.dir/bench_piecewise.cpp.o"
  "CMakeFiles/bench_piecewise.dir/bench_piecewise.cpp.o.d"
  "bench_piecewise"
  "bench_piecewise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_piecewise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_piecewise.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cubisg_cli.dir/cubisg_cli.cpp.o"
  "CMakeFiles/cubisg_cli.dir/cubisg_cli.cpp.o.d"
  "cubisg"
  "cubisg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubisg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

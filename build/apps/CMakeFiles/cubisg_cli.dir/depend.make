# Empty dependencies file for cubisg_cli.
# This may be replaced when dependencies are built.

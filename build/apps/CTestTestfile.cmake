# CMake generated Testfile for 
# Source directory: /root/repo/apps
# Build directory: /root/repo/build/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_table1 "/root/repo/build/apps/cubisg" "table1" "--out" "/root/repo/build/apps/cli_smoke.scn")
set_tests_properties(cli_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;10;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_solve "/root/repo/build/apps/cubisg" "solve" "/root/repo/build/apps/cli_smoke.scn" "--solver" "cubis" "--segments" "20")
set_tests_properties(cli_solve PROPERTIES  DEPENDS "cli_table1" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;12;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/apps/cubisg" "compare" "/root/repo/build/apps/cli_smoke.scn" "--types" "20")
set_tests_properties(cli_compare PROPERTIES  DEPENDS "cli_table1" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;14;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_eval "/root/repo/build/apps/cubisg" "eval" "/root/repo/build/apps/cli_smoke.scn" "--coverage" "0.46,0.54")
set_tests_properties(cli_eval PROPERTIES  DEPENDS "cli_table1" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;16;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_patrol "/root/repo/build/apps/cubisg" "patrol" "/root/repo/build/apps/cli_smoke.scn" "--days" "3")
set_tests_properties(cli_patrol PROPERTIES  DEPENDS "cli_table1" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;18;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build/apps/cubisg" "generate" "--targets" "6" "--seed" "4" "--out" "/root/repo/build/apps/cli_gen.scn")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;20;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_simulate_data "/root/repo/build/apps/cubisg" "simulate-data" "/root/repo/build/apps/cli_gen.scn" "--records" "120" "--out" "/root/repo/build/apps/cli_data.txt")
set_tests_properties(cli_simulate_data PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;23;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_learn "/root/repo/build/apps/cubisg" "learn" "/root/repo/build/apps/cli_gen.scn" "--data" "/root/repo/build/apps/cli_data.txt" "--resamples" "20")
set_tests_properties(cli_learn PROPERTIES  DEPENDS "cli_simulate_data" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;26;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/apps/cubisg" "report" "/root/repo/build/apps/cli_gen.scn" "--out" "/root/repo/build/apps/cli_report.md" "--segments" "10")
set_tests_properties(cli_report PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;31;add_test;/root/repo/apps/CMakeLists.txt;0;")

# Empty dependencies file for port_ferry.
# This may be replaced when dependencies are built.

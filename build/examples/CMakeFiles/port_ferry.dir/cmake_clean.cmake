file(REMOVE_RECURSE
  "CMakeFiles/port_ferry.dir/port_ferry.cpp.o"
  "CMakeFiles/port_ferry.dir/port_ferry.cpp.o.d"
  "port_ferry"
  "port_ferry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_ferry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

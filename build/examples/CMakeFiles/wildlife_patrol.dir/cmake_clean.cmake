file(REMOVE_RECURSE
  "CMakeFiles/wildlife_patrol.dir/wildlife_patrol.cpp.o"
  "CMakeFiles/wildlife_patrol.dir/wildlife_patrol.cpp.o.d"
  "wildlife_patrol"
  "wildlife_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildlife_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

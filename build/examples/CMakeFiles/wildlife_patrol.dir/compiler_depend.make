# Empty compiler generated dependencies file for wildlife_patrol.
# This may be replaced when dependencies are built.

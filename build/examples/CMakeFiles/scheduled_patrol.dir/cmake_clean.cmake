file(REMOVE_RECURSE
  "CMakeFiles/scheduled_patrol.dir/scheduled_patrol.cpp.o"
  "CMakeFiles/scheduled_patrol.dir/scheduled_patrol.cpp.o.d"
  "scheduled_patrol"
  "scheduled_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduled_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

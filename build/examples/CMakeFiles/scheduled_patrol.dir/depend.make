# Empty dependencies file for scheduled_patrol.
# This may be replaced when dependencies are built.

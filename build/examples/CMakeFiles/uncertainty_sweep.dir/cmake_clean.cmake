file(REMOVE_RECURSE
  "CMakeFiles/uncertainty_sweep.dir/uncertainty_sweep.cpp.o"
  "CMakeFiles/uncertainty_sweep.dir/uncertainty_sweep.cpp.o.d"
  "uncertainty_sweep"
  "uncertainty_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertainty_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for uncertainty_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/airport_checkpoints.dir/airport_checkpoints.cpp.o"
  "CMakeFiles/airport_checkpoints.dir/airport_checkpoints.cpp.o.d"
  "airport_checkpoints"
  "airport_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airport_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for airport_checkpoints.
# This may be replaced when dependencies are built.

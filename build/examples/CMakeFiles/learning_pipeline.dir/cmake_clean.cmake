file(REMOVE_RECURSE
  "CMakeFiles/learning_pipeline.dir/learning_pipeline.cpp.o"
  "CMakeFiles/learning_pipeline.dir/learning_pipeline.cpp.o.d"
  "learning_pipeline"
  "learning_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

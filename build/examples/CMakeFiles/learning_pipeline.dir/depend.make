# Empty dependencies file for learning_pipeline.
# This may be replaced when dependencies are built.

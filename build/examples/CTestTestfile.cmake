# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wildlife "/root/repo/build/examples/wildlife_patrol" "99")
set_tests_properties(example_wildlife PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_airport "/root/repo/build/examples/airport_checkpoints")
set_tests_properties(example_airport PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sweep "/root/repo/build/examples/uncertainty_sweep" "6" "2" "3")
set_tests_properties(example_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schedule "/root/repo/build/examples/scheduled_patrol")
set_tests_properties(example_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_learning "/root/repo/build/examples/learning_pipeline" "60")
set_tests_properties(example_learning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ferry "/root/repo/build/examples/port_ferry")
set_tests_properties(example_ferry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")

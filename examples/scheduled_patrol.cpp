// Scheduled patrols: WHERE and WHEN to defend.
//
// A poacher does not only choose a location — he chooses a day.  This
// example unrolls a 6-location reserve over a 5-day horizon with seasonal
// drift (animal density peaks mid-week at the watering holes), gives the
// rangers 2 patrols per day, and computes the robust schedule with CUBIS
// under per-day budget groups.  The output contrasts the robust schedule
// against a static plan that repeats the single-day optimum.
//
// Run:  ./scheduled_patrol
#include <cstdio>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/schedule.hpp"

int main() {
  using namespace cubisg;
  const std::size_t kLocations = 6;
  const std::size_t kDays = 5;
  const double kPatrolsPerDay = 2.0;

  Rng rng(2024);
  games::UncertainGame base =
      games::random_uncertain_game(rng, kLocations, kPatrolsPerDay, 1.0);

  // Seasonal drift: rewards swell mid-week.
  std::vector<double> drift{0.8, 1.0, 1.4, 1.2, 0.9};
  games::ScheduledGame sched =
      games::unroll_schedule(base, kDays, kPatrolsPerDay, drift);

  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      sched.flattened.attacker_intervals);
  core::SolveContext ctx{sched.flattened.game, bounds};

  core::CubisOptions opt;
  opt.segments = 20;
  opt.epsilon = 1e-3;
  opt.target_groups = sched.target_groups();
  opt.group_budgets = sched.group_budgets();
  core::DefenderSolution robust = core::CubisSolver(opt).solve(ctx);

  std::printf("Robust weekly schedule (%zu locations x %zu days, "
              "%.0f patrols/day):\n\n", kLocations, kDays, kPatrolsPerDay);
  std::printf("%10s", "");
  for (std::size_t d = 0; d < kDays; ++d) std::printf("   day%zu", d + 1);
  std::printf("   (drift)\n");
  for (std::size_t l = 0; l < kLocations; ++l) {
    std::printf("location %zu", l);
    for (std::size_t d = 0; d < kDays; ++d) {
      std::printf("  %5.2f", robust.strategy[sched.flat_index(l, d)]);
    }
    std::printf("\n");
  }
  std::printf("%10s", "drift");
  for (double s : drift) std::printf("  %5.2f", s);
  std::printf("\n\nworst-case utility (robust schedule): %+.3f\n",
              robust.worst_case_utility);

  // Static plan: the single-day robust coverage repeated every day,
  // ignoring drift.
  core::CubisOptions sopt;
  sopt.segments = 20;
  behavior::SuqrIntervalBounds day_bounds(behavior::SuqrWeightIntervals{},
                                          base.attacker_intervals);
  auto day = core::CubisSolver(sopt).solve({base.game, day_bounds});
  std::vector<double> static_plan(kLocations * kDays);
  for (std::size_t d = 0; d < kDays; ++d) {
    for (std::size_t l = 0; l < kLocations; ++l) {
      static_plan[sched.flat_index(l, d)] = day.strategy[l];
    }
  }
  const double static_w = core::worst_case_utility(
      sched.flattened.game, bounds, static_plan);
  std::printf("worst-case utility (static repeat):   %+.3f\n", static_w);
  std::printf(
      "\nThe robust schedule shifts patrols toward the mid-week density\n"
      "peak the attacker would otherwise exploit; the static plan leaves\n"
      "that window open and pays for it in the worst case.\n");
  return 0;
}

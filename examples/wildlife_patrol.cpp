// Wildlife patrol planning — the paper's motivating domain.
//
// A protected park is a grid of cells; animal density hotspots define the
// poachers' rewards.  Poaching records are scarce, so the rangers only
// know intervals for the poachers' SUQR behavior.  This example plans a
// robust patrol with CUBIS, renders the coverage as an ASCII heatmap and
// stress-tests the plan against a sampled poacher population.
//
// Run:  ./wildlife_patrol [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "behavior/attacker_sim.hpp"
#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/pasaq.hpp"
#include "core/maximin.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"

namespace {

void print_grid(const char* title, std::size_t rows, std::size_t cols,
                const std::vector<double>& values, double lo, double hi) {
  static const char kShades[] = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("    ");
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = values[r * cols + c];
      int idx = static_cast<int>((v - lo) / (hi - lo + 1e-12) * 9.0);
      if (idx < 0) idx = 0;
      if (idx > 9) idx = 9;
      std::printf("%c%c", kShades[idx], kShades[idx]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cubisg;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2016;
  const std::size_t kRows = 5, kCols = 8;
  const double kRangers = 6.0;

  Rng rng(seed);
  games::UncertainGame park =
      games::wildlife_grid_game(rng, kRows, kCols, kRangers, 1.0);
  std::printf("Park: %zux%zu cells, %.0f ranger patrols, seed %llu\n\n",
              kRows, kCols, kRangers,
              static_cast<unsigned long long>(seed));

  std::vector<double> density(park.game.num_targets());
  double dmax = 0.0;
  for (std::size_t i = 0; i < density.size(); ++i) {
    density[i] = park.game.target(i).attacker_reward;
    dmax = std::max(dmax, density[i]);
  }
  print_grid("Animal density (poacher reward):", kRows, kCols, density, 0.0,
             dmax);

  behavior::SuqrWeightIntervals weights;
  behavior::SuqrIntervalBounds bounds(weights, park.attacker_intervals);
  core::SolveContext ctx{park.game, bounds};

  core::CubisOptions copt;
  copt.segments = 20;
  copt.epsilon = 1e-3;
  core::DefenderSolution robust = core::CubisSolver(copt).solve(ctx);
  core::DefenderSolution naive = core::PasaqSolver().solve(ctx);
  core::DefenderSolution floor = core::MaximinSolver().solve(ctx);

  std::printf("\n");
  print_grid("Robust patrol coverage (CUBIS):", kRows, kCols,
             robust.strategy, 0.0, 1.0);

  // Stress test against 500 sampled poacher types from the parameter box.
  Rng sim_rng(seed ^ 0xABCDEF);
  behavior::SampledSuqrPopulation poachers(weights, park.attacker_intervals,
                                           500, sim_rng);

  std::printf("\n%-22s %12s %14s %14s\n", "strategy", "worst-case",
              "sampled-min", "sampled-mean");
  auto report = [&](const char* name, const core::DefenderSolution& sol) {
    std::printf("%-22s %12.3f %14.3f %14.3f\n", name,
                sol.worst_case_utility,
                poachers.min_defender_utility(park.game, sol.strategy),
                poachers.mean_defender_utility(park.game, sol.strategy));
  };
  report("cubis (robust)", robust);
  report("midpoint (non-robust)", naive);
  report("maximin (no model)", floor);

  std::printf(
      "\nReading: 'worst-case' is the certified bound over ALL behaviors\n"
      "in the intervals; 'sampled-min/mean' are against 500 random poacher\n"
      "types.  The robust plan gives up a little average utility to protect\n"
      "the tail.\n");
  return 0;
}

// Ferry-line protection with route-constrained patrol boats.
//
// A ferry crosses a channel past a cycle of waypoints (PROTECT-style).
// Patrol boats cannot teleport: each boat sweeps a CONTIGUOUS window of
// waypoints.  This example solves the robust coverage with CUBIS, then
// asks the practical question the marginal-based abstraction hides: *is
// that coverage implementable with window routes, and how long must the
// windows be?*
//
// Run:  ./port_ferry
#include <cstdio>
#include <vector>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "games/generators.hpp"
#include "games/routes.hpp"

int main() {
  using namespace cubisg;
  const std::size_t kWaypoints = 12;
  const double kBoats = 3.0;

  Rng rng(1717);
  games::UncertainGame channel =
      games::random_uncertain_game(rng, kWaypoints, kBoats, 1.0);
  behavior::SuqrIntervalBounds bounds(behavior::SuqrWeightIntervals{},
                                      channel.attacker_intervals);

  core::CubisOptions opt;
  opt.segments = 20;
  core::DefenderSolution sol =
      core::CubisSolver(opt).solve({channel.game, bounds});
  std::printf("Channel: %zu waypoints, %.0f patrol boats\n", kWaypoints,
              kBoats);
  std::printf("robust marginal coverage (worst case %+.3f):\n   ",
              sol.worst_case_utility);
  for (double xi : sol.strategy) std::printf(" %.2f", xi);
  std::printf("\n\n");

  std::printf("%14s %12s %16s\n", "window width", "deviation",
              "implementable?");
  for (std::size_t width = 1; width <= 6; ++width) {
    auto routes = games::window_routes(kWaypoints, width, /*wrap=*/true);
    games::RouteMixture mix =
        games::marginal_to_route_mixture(routes, sol.strategy, kBoats);
    std::printf("%14zu %12.4f %16s\n", width, mix.deviation,
                mix.deviation < 1e-6 ? "yes" : "no");
  }

  // Deploy with the narrowest implementable width.
  for (std::size_t width = 1; width <= kWaypoints; ++width) {
    auto routes = games::window_routes(kWaypoints, width, true);
    games::RouteMixture mix =
        games::marginal_to_route_mixture(routes, sol.strategy, kBoats);
    if (mix.deviation < 1e-6) {
      std::printf("\nDeployment with width-%zu sweeps (%zu routes in the "
                  "mixture):\n", width, mix.weights.size());
      for (const auto& [r, wgt] : mix.weights) {
        std::printf("  weight %.3f: sweep {", wgt);
        for (std::size_t k = 0; k < routes[r].covered.size(); ++k) {
          std::printf("%s%zu", k ? "," : "", routes[r].covered[k]);
        }
        std::printf("}\n");
      }
      break;
    }
  }
  std::printf(
      "\nNote: width-1 'windows' can realize any marginal (that is comb\n"
      "sampling); real sweeps trade window length against the coverage\n"
      "shapes they can express.\n");
  return 0;
}

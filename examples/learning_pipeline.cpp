// From poaching records to robust patrols: the full learning pipeline.
//
// A park has one season of attack records (which cell was hit under which
// patrol schedule).  The rangers:
//   1. fit a SUQR poacher model by maximum likelihood,
//   2. quantify its uncertainty with bootstrap confidence intervals,
//   3. hand those intervals to CUBIS for a robust patrol plan,
// and compare the plan against trusting the point estimate outright.
//
// Run:  ./learning_pipeline [num_records]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/pasaq.hpp"
#include "games/generators.hpp"
#include "learning/suqr_mle.hpp"

int main(int argc, char** argv) {
  using namespace cubisg;
  const std::size_t records =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  // The park (payoffs known from terrain/animal surveys; behavior is not).
  Rng rng(42);
  games::UncertainGame park =
      games::random_uncertain_game(rng, 12, 4.0, 0.0);
  const behavior::SuqrWeights hidden_truth{-4.5, 0.8, 0.5};

  std::printf("Step 0: one season of poaching records (%zu attacks)\n",
              records);
  Rng season(7);
  auto data =
      learning::simulate_attack_data(park.game, hidden_truth, records,
                                     season);

  std::printf("Step 1: maximum-likelihood SUQR fit\n");
  auto fit = learning::fit_suqr(park.game, data);
  std::printf("  fitted (w1, w2, w3) = (%.2f, %.2f, %.2f)   "
              "[hidden truth: (%.2f, %.2f, %.2f)]\n",
              fit.weights.w1, fit.weights.w2, fit.weights.w3,
              hidden_truth.w1, hidden_truth.w2, hidden_truth.w3);

  std::printf("Step 2: bootstrap 90%% confidence intervals\n");
  learning::BootstrapOptions bo;
  bo.resamples = 80;
  auto intervals = learning::bootstrap_weight_intervals(park.game, data,
                                                        {}, bo);
  std::printf("  w1 in [%.2f, %.2f], w2 in [%.2f, %.2f], w3 in "
              "[%.2f, %.2f]\n",
              intervals.w1.lo(), intervals.w1.hi(), intervals.w2.lo(),
              intervals.w2.hi(), intervals.w3.lo(), intervals.w3.hi());

  std::printf("Step 3: robust patrol plan (CUBIS on learned intervals)\n");
  behavior::SuqrIntervalBounds bounds(intervals, park.attacker_intervals);
  core::SolveContext ctx{park.game, bounds};
  core::CubisOptions copt;
  copt.segments = 25;
  copt.polish_iterations = 20;
  auto robust = core::CubisSolver(copt).solve(ctx);

  core::PasaqOptions popt;
  popt.segments = 25;
  popt.source = core::PasaqModelSource::kCustom;
  behavior::SuqrWeights w = fit.weights;
  w.w1 = std::min(w.w1, -1e-3);
  w.w2 = std::max(w.w2, 0.0);
  w.w3 = std::max(w.w3, 0.0);
  popt.model = std::make_shared<behavior::SuqrModel>(w, park.game);
  auto trusting = core::PasaqSolver(popt).solve(ctx);

  behavior::SuqrModel truth_model(hidden_truth, park.game);
  const double robust_real = behavior::defender_expected_utility(
      park.game, truth_model, robust.strategy);
  const double trusting_real = behavior::defender_expected_utility(
      park.game, truth_model, trusting.strategy);

  std::printf("\n%-28s %14s %16s\n", "plan", "certified-min",
              "vs true poacher");
  std::printf("%-28s %14.3f %16.3f\n", "robust (CUBIS)",
              robust.worst_case_utility, robust_real);
  std::printf("%-28s %14s %16.3f\n", "trust-the-point-estimate", "none",
              trusting_real);
  std::printf(
      "\nWith only %zu records the point estimate is noisy; the robust\n"
      "plan certifies a floor over every behavior the data cannot rule\n"
      "out.  Re-run with more records (e.g. 5000) to watch the two plans\n"
      "converge as the intervals tighten.\n",
      records);
  return 0;
}

// Quickstart: the paper's 2-target Table I game, end to end.
//
// Builds the uncertain game, solves it with CUBIS and with the non-robust
// midpoint baseline, and shows why robustness pays: the worst-case utility
// of the robust strategy is far higher.
//
// Run:  ./quickstart
#include <cstdio>
#include <memory>

#include "behavior/bounds.hpp"
#include "core/cubis.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"

int main() {
  using namespace cubisg;

  // --- 1. The game -------------------------------------------------------
  // Table I of the paper: 2 targets, 1 defender resource, attacker payoff
  // intervals.  Defender payoffs mirror the attacker midpoints (zero-sum).
  games::UncertainGame ug = games::table1_game();
  std::printf("Game: %zu targets, %.0f resource(s)\n",
              ug.game.num_targets(), ug.game.resources());
  for (std::size_t i = 0; i < ug.game.num_targets(); ++i) {
    const auto& iv = ug.attacker_intervals[i];
    std::printf(
        "  target %zu: attacker reward [%.0f, %.0f], penalty [%.0f, %.0f]\n",
        i + 1, iv.attacker_reward.lo(), iv.attacker_reward.hi(),
        iv.attacker_penalty.lo(), iv.attacker_penalty.hi());
  }

  // --- 2. Behavioral uncertainty ------------------------------------------
  // SUQR weights are only known up to intervals (Section III example):
  // w1 in [-6,-2], w2 in [0.5,1.0], w3 in [0.4,0.9].  These induce bounds
  // L_i(x) <= F_i(x) <= U_i(x) on the attacker's attractiveness function.
  behavior::SuqrWeightIntervals weights;  // defaults = the paper's intervals
  behavior::SuqrIntervalBounds bounds(weights, ug.attacker_intervals,
                                      behavior::IntervalMode::kPaperCorners);
  std::printf("\nAttractiveness bounds at x=0.3 (paper: e^-4.1, e^1.7):\n");
  std::printf("  L1(0.3) = %.6f, U1(0.3) = %.6f\n", bounds.lower(0, 0.3),
              bounds.upper(0, 0.3));

  core::SolveContext ctx{ug.game, bounds};

  // --- 3. Robust solve with CUBIS -----------------------------------------
  core::CubisOptions copt;
  copt.segments = 50;    // K in the piecewise linearization
  copt.epsilon = 1e-4;   // binary-search convergence threshold
  core::CubisSolver cubis(copt);
  core::DefenderSolution robust = cubis.solve(ctx);
  std::printf("\nCUBIS robust strategy:   (%.2f, %.2f)   worst-case utility %+.3f\n",
              robust.strategy[0], robust.strategy[1],
              robust.worst_case_utility);

  // --- 4. The non-robust midpoint baseline --------------------------------
  core::PasaqOptions popt;
  popt.segments = 50;
  popt.epsilon = 1e-4;
  popt.source = core::PasaqModelSource::kCustom;
  popt.model = std::make_shared<behavior::SuqrModel>(bounds.midpoint_model());
  core::PasaqSolver midpoint(popt);
  core::DefenderSolution naive = midpoint.solve(ctx);
  std::printf("Midpoint (non-robust):   (%.2f, %.2f)   worst-case utility %+.3f\n",
              naive.strategy[0], naive.strategy[1],
              naive.worst_case_utility);

  std::printf(
      "\nThe midpoint defender believes she gets %+.3f, but an attacker\n"
      "anywhere inside the uncertainty intervals can drive her down to "
      "%+.3f.\nThe CUBIS strategy certifies %+.3f no matter which behavior "
      "is real.\n",
      naive.solver_objective, naive.worst_case_utility,
      robust.worst_case_utility);
  return 0;
}

// Price-of-robustness analysis.
//
// Sweeps the behavioral uncertainty level (a factor scaling the interval
// widths) and reports, for the robust and non-robust strategies:
//   * the certified worst-case utility, and
//   * the expected utility if the midpoint model happens to be correct.
// The gap between the two columns is the premium the defender pays (in the
// benign world) to insure against the adversarial one — and how that
// premium shrinks to zero as uncertainty vanishes.
//
// Run:  ./uncertainty_sweep [targets] [resources] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "behavior/bounds.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"

int main(int argc, char** argv) {
  using namespace cubisg;
  const std::size_t targets = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                       : 10;
  const double resources =
      argc > 2 ? std::strtod(argv[2], nullptr)
               : static_cast<double>(targets) * 0.3;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  Rng rng(seed);
  games::UncertainGame ug =
      games::random_uncertain_game(rng, targets, resources, 2.0);
  behavior::SuqrWeightIntervals weights;
  auto base = std::make_shared<behavior::SuqrIntervalBounds>(
      weights, ug.attacker_intervals);
  behavior::SuqrModel midpoint_model = base->midpoint_model();

  std::printf("Price of robustness: %zu targets, %.1f resources, seed %llu\n",
              targets, resources, static_cast<unsigned long long>(seed));
  std::printf("%8s | %12s %12s | %12s %12s | %10s\n", "width", "robust:worst",
              "robust:mid", "naive:worst", "naive:mid", "premium");

  for (double factor : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    behavior::ScaledBounds bounds(base, factor);
    core::SolveContext ctx{ug.game, bounds};

    core::CubisOptions copt;
    copt.segments = 20;
    copt.epsilon = 1e-3;
    core::DefenderSolution robust = core::CubisSolver(copt).solve(ctx);

    core::DefenderSolution naive = core::PasaqSolver().solve(ctx);

    const double robust_if_mid = behavior::defender_expected_utility(
        ug.game, midpoint_model, robust.strategy);
    const double naive_if_mid = behavior::defender_expected_utility(
        ug.game, midpoint_model, naive.strategy);
    // Premium: expected utility given up in the benign (midpoint) world in
    // exchange for the worst-case guarantee.
    const double premium = naive_if_mid - robust_if_mid;

    std::printf("%8.2f | %12.3f %12.3f | %12.3f %12.3f | %10.3f\n", factor,
                robust.worst_case_utility, robust_if_mid,
                naive.worst_case_utility, naive_if_mid, premium);
  }

  std::printf(
      "\nReading: as the interval width grows, the naive strategy's\n"
      "worst case collapses while the robust one degrades gracefully;\n"
      "the premium column is the (small) price paid for that insurance.\n");
  return 0;
}

// Airport checkpoint allocation — an ARMOR/LAX-style scenario.
//
// Eight terminals with heterogeneous stakes; three canine/checkpoint teams
// to randomize over them.  Intelligence on the adversary is limited, so
// SUQR parameters carry wide intervals.  The example runs every solver in
// the library on the same instance and prints a comparison table, then
// shows how the robust strategy reallocates coverage relative to the
// non-robust one.
//
// Run:  ./airport_checkpoints
#include <cstdio>
#include <memory>
#include <vector>

#include "behavior/bounds.hpp"
#include "core/cubis.hpp"
#include "core/gradient.hpp"
#include "core/maximin.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"

int main() {
  using namespace cubisg;

  // Terminals: (attacker reward, attacker penalty, defender reward,
  // defender penalty).  Stakes follow passenger volume; the international
  // terminal (T4) is the most attractive target.
  std::vector<games::TargetPayoffs> terminals = {
      {4.0, -3.0, 3.0, -4.0},   // T1 commuter
      {5.0, -3.0, 3.0, -5.0},   // T2 domestic
      {6.0, -4.0, 4.0, -6.0},   // T3 domestic hub
      {9.0, -5.0, 5.0, -9.0},   // T4 international
      {7.0, -4.0, 4.0, -7.0},   // T5 international annex
      {5.0, -3.0, 3.0, -5.0},   // T6 regional
      {3.0, -2.0, 2.0, -3.0},   // T7 cargo
      {6.0, -4.0, 4.0, -6.0},   // T8 mixed
  };
  games::SecurityGame game(terminals, 3.0);

  // Payoff intelligence is good (+-0.5) but behavioral intelligence poor.
  std::vector<games::IntervalPayoffs> intervals;
  for (const auto& t : terminals) {
    intervals.push_back({Interval(t.attacker_reward - 0.5,
                                  t.attacker_reward + 0.5),
                         Interval(t.attacker_penalty - 0.5,
                                  t.attacker_penalty + 0.5)});
  }
  behavior::SuqrWeightIntervals weights;
  weights.w1 = Interval(-8.0, -2.0);  // wide: deterrence poorly understood
  weights.w2 = Interval(0.4, 1.1);
  weights.w3 = Interval(0.2, 1.0);
  behavior::SuqrIntervalBounds bounds(weights, intervals);
  core::SolveContext ctx{game, bounds};

  std::printf("Airport: 8 terminals, 3 checkpoint teams\n\n");
  std::printf("%-24s %12s %10s %8s\n", "solver", "worst-case", "time(ms)",
              "steps");

  auto row = [&](const char* name, const core::DefenderSolution& sol) {
    std::printf("%-24s %12.3f %10.1f %8d\n", name, sol.worst_case_utility,
                sol.wall_seconds * 1e3, sol.binary_steps);
    return sol;
  };

  core::CubisOptions copt;
  copt.segments = 25;
  copt.epsilon = 1e-3;
  auto robust = row("cubis-dp (robust)", core::CubisSolver(copt).solve(ctx));

  core::CubisOptions mopt = copt;
  mopt.segments = 5;  // the MILP path is exact but slower; keep K modest
  mopt.backend = core::StepBackend::kMilp;
  row("cubis-milp (paper)", core::CubisSolver(mopt).solve(ctx));

  row("midpoint-pasaq", core::PasaqSolver().solve(ctx));
  row("maximin", core::MaximinSolver().solve(ctx));
  core::GradientOptions gopt;
  gopt.num_starts = 6;
  row("gradient-multistart", core::GradientSolver(gopt).solve(ctx));
  row("uniform", core::UniformSolver().solve(ctx));

  auto naive = core::PasaqSolver().solve(ctx);
  std::printf("\n%-10s %10s %10s %10s\n", "terminal", "robust", "midpoint",
              "shift");
  for (std::size_t i = 0; i < game.num_targets(); ++i) {
    std::printf("T%-9zu %10.3f %10.3f %+10.3f\n", i + 1, robust.strategy[i],
                naive.strategy[i], robust.strategy[i] - naive.strategy[i]);
  }
  std::printf(
      "\nThe robust plan hedges: coverage moves from the 'probably attacked'\n"
      "terminals toward those whose loss would be catastrophic if the\n"
      "behavioral model is wrong.\n");
  return 0;
}

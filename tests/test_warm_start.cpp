// Differential correctness harness for the warm-started binary search
// (CubisOptions::reuse_rounds).  The reuse path — affine breakpoint cache,
// patched MILP skeleton, cross-round root basis — must be behaviorally
// indistinguishable from the fresh per-round path it replaces, so every
// test here solves the same instance twice (reuse on / reuse off) and pins
// the results against each other.  The fresh path is the oracle.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "common/fault_inject.hpp"
#include "common/rng.hpp"
#include "core/cubis.hpp"
#include "core/round_cache.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "lp/simplex.hpp"
#include "obs/metrics.hpp"

namespace cubisg::core {
namespace {

using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

struct Fixture {
  games::UncertainGame ug;
  SuqrIntervalBounds bounds;
  Fixture(std::uint64_t seed, std::size_t t, double r, double width)
      : ug(make(seed, t, r, width)),
        bounds(SuqrWeightIntervals{}, ug.attacker_intervals) {}
  static games::UncertainGame make(std::uint64_t seed, std::size_t t,
                                   double r, double width) {
    Rng rng(seed);
    return games::random_uncertain_game(rng, t, r, width);
  }
  SolveContext ctx() const { return SolveContext{ug.game, bounds}; }
};

DefenderSolution solve_with(const Fixture& f, CubisOptions opt, bool reuse) {
  opt.reuse_rounds = reuse;
  return CubisSolver(opt).solve(f.ctx());
}

void expect_equivalent(const DefenderSolution& warm,
                       const DefenderSolution& cold, const std::string& tag,
                       double strategy_tol = 1e-9) {
  ASSERT_TRUE(warm.ok()) << tag;
  ASSERT_TRUE(cold.ok()) << tag;
  // Same verdict sequence => same bracket and step count.
  EXPECT_EQ(warm.binary_steps, cold.binary_steps) << tag;
  EXPECT_NEAR(warm.lb, cold.lb, 1e-9) << tag;
  EXPECT_NEAR(warm.ub, cold.ub, 1e-9) << tag;
  EXPECT_NEAR(warm.worst_case_utility, cold.worst_case_utility, 1e-9) << tag;
  ASSERT_EQ(warm.strategy.size(), cold.strategy.size()) << tag;
  for (std::size_t i = 0; i < warm.strategy.size(); ++i) {
    EXPECT_NEAR(warm.strategy[i], cold.strategy[i], strategy_tol)
        << tag << " target " << i;
  }
}

// ---- end-to-end differential: reuse on == reuse off ----------------------

TEST(WarmStartDifferential, DpBackendMatchesFreshPathOnFixtureGames) {
  struct Case {
    std::uint64_t seed;
    std::size_t targets;
    double resources;
    double width;
  };
  const Case cases[] = {
      {21, 4, 1.0, 0.8},  {22, 6, 2.0, 1.0},  {23, 8, 3.0, 1.5},
      {24, 10, 2.5, 0.5}, {25, 12, 4.0, 2.0},
  };
  for (const Case& c : cases) {
    Fixture f(c.seed, c.targets, c.resources, c.width);
    CubisOptions opt;
    opt.segments = 10;
    opt.epsilon = 1e-3;
    expect_equivalent(solve_with(f, opt, true), solve_with(f, opt, false),
                      "seed " + std::to_string(c.seed));
  }
}

TEST(WarmStartDifferential, MilpBackendMatchesFreshPath) {
  for (std::uint64_t seed : {31, 32, 33}) {
    Fixture f(seed, 4, 1.5, 1.0);
    CubisOptions opt;
    opt.backend = StepBackend::kMilp;
    opt.segments = 5;
    opt.epsilon = 5e-3;
    expect_equivalent(solve_with(f, opt, true), solve_with(f, opt, false),
                      "milp seed " + std::to_string(seed));
  }
}

TEST(WarmStartDifferential, MilpBackendWithoutDpSeedMatchesFreshPath) {
  // Without the DP incumbent the branch-and-bound search actually runs, so
  // this exercises the patched skeleton + root basis under real pivoting.
  for (std::uint64_t seed : {41, 42}) {
    Fixture f(seed, 4, 1.5, 1.2);
    CubisOptions opt;
    opt.backend = StepBackend::kMilp;
    opt.warm_start_from_dp = false;
    opt.segments = 4;
    opt.epsilon = 1e-2;
    expect_equivalent(solve_with(f, opt, true), solve_with(f, opt, false),
                      "milp-noseed seed " + std::to_string(seed));
  }
}

TEST(WarmStartDifferential, MultisectionLanesMatchFreshPath) {
  Fixture f(51, 6, 2.0, 1.0);
  CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  opt.parallel_sections = 3;  // one reuse slot per lane
  expect_equivalent(solve_with(f, opt, true), solve_with(f, opt, false),
                    "multisection");
}

TEST(WarmStartDifferential, PolishAndTopUpComposeWithReuse) {
  Fixture f(52, 6, 2.0, 1.0);
  CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  opt.polish_iterations = 10;
  expect_equivalent(solve_with(f, opt, true), solve_with(f, opt, false),
                    "polish");
}

TEST(WarmStartDifferential, GroupedBudgetsFallBackToFreshPath) {
  // reuse_rounds is documented as ignored with group budgets: both solves
  // must take the fresh path and agree trivially.
  Fixture f(53, 6, 2.0, 1.0);
  CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  opt.target_groups = {0, 0, 0, 1, 1, 1};
  opt.group_budgets = {1.0, 1.0};
  expect_equivalent(solve_with(f, opt, true), solve_with(f, opt, false),
                    "grouped");
}

// ---- step-level differential: bitwise on the DP backend ------------------

TEST(WarmStartDifferential, CachedStepIsBitwiseIdenticalOnDpBackend) {
  Fixture f(61, 8, 3.0, 1.5);
  const SolveContext ctx = f.ctx();
  CubisOptions opt;
  opt.segments = 10;
  const StepTables tables = build_step_tables(ctx, opt.segments);
  RoundReuse reuse(tables, /*milp_backend=*/false);
  // Sweep c across the payoff range, reusing one slot across rounds the
  // way the solver does.
  const double lo = f.ug.game.min_defender_penalty();
  const double hi = f.ug.game.max_defender_reward();
  for (int s = 0; s <= 20; ++s) {
    const double c = lo + (hi - lo) * s / 20.0;
    const StepResult fresh = cubis_step(ctx, c, opt, &tables);
    const StepResult cached = cubis_step(ctx, c, opt, &tables, &reuse);
    ASSERT_EQ(cached.status, fresh.status) << "c=" << c;
    // The flat DP evaluates the same candidate sums from the same doubles:
    // bit-for-bit equality, not just tolerance.
    EXPECT_EQ(cached.objective, fresh.objective) << "c=" << c;
    ASSERT_EQ(cached.x.size(), fresh.x.size());
    for (std::size_t i = 0; i < fresh.x.size(); ++i) {
      EXPECT_EQ(cached.x[i], fresh.x[i]) << "c=" << c << " target " << i;
    }
  }
}

TEST(WarmStartDifferential, ReuseSegmentMismatchIsRejected) {
  Fixture f(62, 4, 1.0, 1.0);
  const SolveContext ctx = f.ctx();
  CubisOptions opt;
  opt.segments = 10;
  const StepTables tables = build_step_tables(ctx, opt.segments);
  RoundReuse reuse(tables, false);
  opt.segments = 5;
  const StepTables tables5 = build_step_tables(ctx, 5);
  EXPECT_THROW(cubis_step(ctx, 0.0, opt, &tables5, &reuse),
               InvalidModelError);
}

// ---- LP warm-vs-cold equivalence on seeded random models -----------------

TEST(WarmStartLp, WarmStartFromPriorBasisMatchesColdSolve) {
  // 200 random LPs: solve cold, perturb the objective and RHS (the same
  // kind of patch the MILP skeleton applies between rounds), then solve
  // the patched model cold and warm (from the pre-perturbation basis).
  // Optimal objectives must agree to LP tolerance.
  Rng rng(404);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    const int rows = static_cast<int>(rng.uniform_int(1, 5));
    lp::Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? lp::Objective::kMinimize
                                              : lp::Objective::kMaximize);
    // Feasible by construction: every row's RHS gives slack to a random
    // interior point x0 (box bounds keep the LP bounded too), so the warm
    // path is exercised on ~all 200 draws instead of the lucky ones.
    std::vector<double> x0(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(-3.0, 0.0);
      const double hi = lo + rng.uniform(0.5, 5.0);
      m.add_col("x" + std::to_string(j), lo, hi, rng.uniform(-2.0, 2.0));
      x0[static_cast<std::size_t>(j)] = rng.uniform(lo, hi);
    }
    std::vector<lp::Sense> senses;
    for (int r = 0; r < rows; ++r) {
      const lp::Sense sense =
          rng.uniform() < 0.7 ? lp::Sense::kLe : lp::Sense::kGe;
      senses.push_back(sense);
      const int row = m.add_row("r" + std::to_string(r), sense, 0.0);
      double ax0 = 0.0;
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.8) {
          const double a = rng.uniform(-2.0, 2.0);
          m.set_coeff(row, j, a);
          ax0 += a * x0[static_cast<std::size_t>(j)];
        }
      }
      const double slack = rng.uniform(0.0, 2.0);
      m.set_row_rhs(row, sense == lp::Sense::kLe ? ax0 + slack
                                                 : ax0 - slack);
    }
    const lp::LpSolution base = lp::solve_lp(m);
    ASSERT_TRUE(base.optimal()) << "trial " << trial;

    // Patch: new objective coefficients and RHS, same constraint shape
    // (RHS stays feasible for x0, mirroring the MILP skeleton's patches).
    for (int j = 0; j < n; ++j) {
      m.set_col_objective(j, rng.uniform(-2.0, 2.0));
    }
    for (int r = 0; r < rows; ++r) {
      double ax0 = 0.0;
      for (const lp::RowEntry& e : m.row_entries(r)) {
        ax0 += e.value * x0[static_cast<std::size_t>(e.col)];
      }
      const double slack = rng.uniform(0.0, 2.0);
      m.set_row_rhs(r, senses[static_cast<std::size_t>(r)] == lp::Sense::kLe
                           ? ax0 + slack
                           : ax0 - slack);
    }
    const lp::LpSolution cold = lp::solve_lp(m);
    lp::SimplexOptions wopt;
    wopt.warm_positions = &base.positions;
    const lp::LpSolution warm = lp::solve_lp(m, wopt);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.optimal()) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-7) << "trial " << trial;
      EXPECT_LE(m.max_violation(warm.x), 1e-7) << "trial " << trial;
      ++solved;
    }
  }
  // The generator must actually exercise the warm path, not skip its way
  // through the loop.
  EXPECT_GE(solved, 100);
}

// ---- fault injection: forced warm-start rejection ------------------------

TEST(WarmStartFault, RejectedBasisFallsBackToColdStartSafely) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  lp::Model m;
  m.set_objective_sense(lp::Objective::kMaximize);
  m.add_col("x", 0.0, 2.0, 1.0);
  m.add_col("y", 0.0, 2.0, 1.0);
  const int r = m.add_row("cap", lp::Sense::kLe, 3.0);
  m.set_coeff(r, 0, 1.0);
  m.set_coeff(r, 1, 1.0);
  const lp::LpSolution base = lp::solve_lp(m);
  ASSERT_TRUE(base.optimal());

  faultinject::arm(faultinject::Site::kWarmStartReject, 1);
  lp::SimplexOptions wopt;
  wopt.warm_positions = &base.positions;
  const lp::LpSolution rejected = lp::solve_lp(m, wopt);
  faultinject::disarm_all();
  EXPECT_EQ(faultinject::fire_count(faultinject::Site::kWarmStartReject), 1);
  ASSERT_TRUE(rejected.optimal());
  EXPECT_NEAR(rejected.objective, base.objective, 1e-9);
}

TEST(WarmStartFault, SolveSurvivesWarmRejectMidSearch) {
  if (!faultinject::compiled_in()) GTEST_SKIP() << "fault hooks compiled out";
  Fixture f(71, 4, 1.5, 1.0);
  CubisOptions opt;
  opt.backend = StepBackend::kMilp;
  opt.warm_start_from_dp = false;
  opt.segments = 4;
  opt.epsilon = 1e-2;
  const DefenderSolution cold = solve_with(f, opt, false);
  // Reject every hinted basis: the reuse path must degrade to per-round
  // cold starts and still land on the oracle's answer.
  faultinject::arm(faultinject::Site::kWarmStartReject, -1);
  const DefenderSolution warm = solve_with(f, opt, true);
  faultinject::disarm_all();
  expect_equivalent(warm, cold, "fault-reject");
}

// ---- telemetry: the caches actually engage -------------------------------

#if CUBISG_OBS_ENABLED
TEST(WarmStartTelemetry, ReuseSkipsPerRoundFunctionBuilds) {
  Fixture f(81, 8, 3.0, 1.5);
  CubisOptions opt;
  opt.segments = 10;
  opt.epsilon = 1e-3;
  const DefenderSolution warm = solve_with(f, opt, true);
  const DefenderSolution cold = solve_with(f, opt, false);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());
  const auto warm_built = warm.telemetry.counter("piecewise.functions_built");
  const auto cold_built = cold.telemetry.counter("piecewise.functions_built");
  // Cold: 3 functions per target per round.  Warm DP: none at all (flat
  // axpy tables only); the acceptance gate is >= 10x, met with margin.
  EXPECT_GE(cold_built, 3 * 8);
  EXPECT_LE(warm_built * 10, cold_built);
  EXPECT_GT(warm.telemetry.counter("piecewise.cache_hits_total"), 0);
  EXPECT_EQ(cold.telemetry.counter("piecewise.cache_hits_total"), 0);
}

TEST(WarmStartTelemetry, MilpReusePatchesAndWarmStarts) {
  Fixture f(82, 4, 1.5, 1.0);
  CubisOptions opt;
  opt.backend = StepBackend::kMilp;
  opt.warm_start_from_dp = false;
  opt.segments = 4;
  opt.epsilon = 1e-2;
  const DefenderSolution warm = solve_with(f, opt, true);
  ASSERT_TRUE(warm.ok());
  ASSERT_GT(warm.binary_steps, 1);
  // Every round after the first patches instead of rebuilding...
  EXPECT_EQ(warm.telemetry.counter("milp.model_patches_total"),
            warm.binary_steps - 1);
  // ...and at least one root relaxation adopted the carried basis.
  EXPECT_GT(warm.telemetry.counter("simplex.warm_starts_total"), 0);
  const DefenderSolution cold = solve_with(f, opt, false);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.telemetry.counter("milp.model_patches_total"), 0);
}
#endif  // CUBISG_OBS_ENABLED

}  // namespace
}  // namespace cubisg::core

// Live HTTP exporter: routing, status codes, content types, and — the
// reason this binary carries the `tsan` ctest label — concurrent
// exposition: scraper threads GET /metrics while worker threads hammer
// counters and histograms, and every response must be well-formed with
// internally consistent histograms (no torn snapshots).
//
// Requests are issued with a raw POSIX-socket helper so the tests stay
// dependency-free like the server itself.  When the exporter is compiled
// out (CUBISG_OBS=OFF or non-POSIX) every test skips via
// http_exporter_available().
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/audit_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/process_metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/solve_report.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define CUBISG_TEST_HAVE_SOCKETS 1
#else
#define CUBISG_TEST_HAVE_SOCKETS 0
#endif

namespace cubisg {
namespace {

struct HttpResponse {
  bool ok = false;       ///< transport succeeded (socket/connect/recv)
  int status = 0;        ///< parsed HTTP status code
  std::string headers;   ///< raw header block
  std::string body;
};

#if CUBISG_TEST_HAVE_SOCKETS
/// Minimal blocking HTTP/1.0-style GET against 127.0.0.1:port.
HttpResponse http_request(int port, const std::string& request_line) {
  HttpResponse resp;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return resp;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return resp;
  }
  const std::string request =
      request_line + "\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return resp;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      ::close(fd);
      return resp;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return resp;
  }
  resp.headers = raw.substr(0, split);
  resp.body = raw.substr(split + 4);
  const std::size_t sp = resp.headers.find(' ');
  if (sp == std::string::npos) return resp;
  resp.status = std::stoi(resp.headers.substr(sp + 1));
  resp.ok = true;
  return resp;
}

HttpResponse http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1");
}
#endif  // CUBISG_TEST_HAVE_SOCKETS

#if CUBISG_TEST_HAVE_SOCKETS
/// Checks one /metrics body for structural sanity and histogram
/// self-consistency: every line is a comment or `name[{labels}] value`,
/// buckets are cumulative, and each `_count` equals its +Inf bucket.
void check_exposition_consistent(const std::string& body) {
  std::size_t pos = 0;
  std::int64_t last_bucket = 0;
  std::int64_t inf_bucket = -1;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated final line";
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      if (line.find(" histogram") != std::string::npos) {
        last_bucket = 0;
        inf_bucket = -1;
      }
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_LT(sp + 1, line.size()) << line;
    const std::string value = line.substr(sp + 1);
    if (line.find("_bucket{le=") != std::string::npos) {
      const std::int64_t v = std::stoll(value);
      EXPECT_GE(v, last_bucket) << "non-cumulative bucket: " << line;
      last_bucket = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = v;
    } else if (line.size() > sp && line.find("_count ") == sp - 6 &&
               inf_bucket >= 0) {
      EXPECT_EQ(std::stoll(value), inf_bucket)
          << "+Inf bucket != _count: " << line;
    }
  }
}
#endif  // CUBISG_TEST_HAVE_SOCKETS

TEST(HttpExporter, AvailabilityMatchesBuild) {
#if CUBISG_OBS_ENABLED && CUBISG_TEST_HAVE_SOCKETS
  EXPECT_TRUE(obs::http_exporter_available());
#else
  EXPECT_FALSE(obs::http_exporter_available());
  obs::HttpExporter server;
  EXPECT_FALSE(server.start());
  EXPECT_NE(server.last_error().find("unavailable"), std::string::npos);
#endif
}

#if CUBISG_TEST_HAVE_SOCKETS

class HttpExporterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::http_exporter_available()) {
      GTEST_SKIP() << "http exporter compiled out (CUBISG_OBS=OFF)";
    }
    obs::HttpExporterOptions opts;
    opts.port = 0;  // ephemeral: tests never collide on a fixed port
    ASSERT_TRUE(server_.start(opts)) << server_.last_error();
    ASSERT_TRUE(server_.running());
    ASSERT_GT(server_.port(), 0);
  }

  obs::HttpExporter server_;
};

TEST_F(HttpExporterFixture, HealthzIs200Ok) {
  const HttpResponse resp = http_get(server_.port(), "/healthz");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok\n");
}

TEST_F(HttpExporterFixture, MetricsServesPrometheusText) {
  obs::Registry::global().counter("httptest.hits").add(3);
  const HttpResponse resp = http_get(server_.port(), "/metrics");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.find(obs::kPrometheusContentType),
            std::string::npos);
  EXPECT_NE(resp.body.find("httptest_hits_total 3"), std::string::npos);
  // The exporter instruments itself; its own families must be present.
  EXPECT_NE(resp.body.find("# TYPE obs_http_requests_total counter"),
            std::string::npos);
  check_exposition_consistent(resp.body);
}

TEST_F(HttpExporterFixture, MetricsIgnoresQueryString) {
  const HttpResponse resp =
      http_get(server_.port(), "/metrics?format=prometheus");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
}

TEST_F(HttpExporterFixture, SolvezServesReportJson) {
  obs::SolveReportBuffer& buffer = obs::SolveReportBuffer::global();
  obs::SolveReport report;
  report.solver = "http-test-solver";
  report.status = "optimal";
  report.targets = 9;
  report.lb = 1.25;
  report.ub = 1.5;
  report.trajectory.push_back({1.25, 1.5, 1, 2});
  buffer.add(std::move(report));

  const HttpResponse resp = http_get(server_.port(), "/solvez");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.find("application/json"), std::string::npos);
  EXPECT_NE(resp.body.find("\"reports\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"http-test-solver\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"trajectory\""), std::string::npos);
}

TEST_F(HttpExporterFixture, UnknownPathIs404) {
  const HttpResponse resp = http_get(server_.port(), "/nope");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 404);
}

TEST_F(HttpExporterFixture, NonGetIs405) {
  const HttpResponse resp =
      http_request(server_.port(), "POST /metrics HTTP/1.1");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 405);
}

TEST_F(HttpExporterFixture, StopIsIdempotentAndRestartable) {
  server_.stop();
  EXPECT_FALSE(server_.running());
  server_.stop();  // second stop is a no-op
  obs::HttpExporterOptions opts;
  opts.port = 0;
  ASSERT_TRUE(server_.start(opts)) << server_.last_error();
  const HttpResponse resp = http_get(server_.port(), "/healthz");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
}

TEST_F(HttpExporterFixture, SecondStartWhileRunningFails) {
  obs::HttpExporterOptions opts;
  opts.port = 0;
  EXPECT_FALSE(server_.start(opts));
  EXPECT_FALSE(server_.last_error().empty());
}

TEST_F(HttpExporterFixture, SlowzServesFlightRecorderJson) {
  obs::FlightRecorder& rec = obs::FlightRecorder::global();
  rec.clear();
  rec.arm(0.25);
  obs::FlightEntry entry;
  entry.job_id = 77;
  entry.tag = "http-slow-test";
  entry.solve_seconds = 0.4;
  entry.slo_seconds = 0.25;
  entry.phases.push_back({"cubis.solve", 1000000, 1});
  ASSERT_GT(rec.record(entry), 0);
  rec.disarm();

  const HttpResponse resp = http_get(server_.port(), "/slowz");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.find("application/json"), std::string::npos);
  EXPECT_NE(resp.body.find("\"entries\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"job_id\":77"), std::string::npos);
  EXPECT_NE(resp.body.find("\"http-slow-test\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cubis.solve\""), std::string::npos);
  rec.clear();
}

TEST_F(HttpExporterFixture, AuditzServesFailureRing) {
  obs::AuditLog& log = obs::AuditLog::global();
  log.clear();
  obs::AuditRecord rec;
  rec.job_id = 42;
  rec.tag = "http-audit-test";
  rec.solver = "cubis";
  rec.worst_code = "worst-case-mismatch";
  rec.detail = "claimed -1.25 but recomputed -1.75";
  rec.findings = 1;
  rec.max_residual = 0.5;
  rec.recomputed_worst_case = -1.75;
  rec.verify_seconds = 0.002;
  ASSERT_GT(log.record(std::move(rec)), 0);

  const HttpResponse resp = http_get(server_.port(), "/auditz");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.find("application/json"), std::string::npos);
  EXPECT_NE(resp.body.find("\"failures\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"job_id\":42"), std::string::npos);
  EXPECT_NE(resp.body.find("\"http-audit-test\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"worst-case-mismatch\""), std::string::npos);
  log.clear();
}

TEST_F(HttpExporterFixture, MetricsCarriesBuildInfo) {
  const HttpResponse resp = http_get(server_.port(), "/metrics");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  // Provenance gauge: constant 1 with the build stamped into labels, so
  // any scrape ties a metrics series back to an exact binary.
  EXPECT_NE(resp.body.find("# TYPE cubisg_build_info gauge"),
            std::string::npos);
  const std::size_t pos = resp.body.find("cubisg_build_info{");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = resp.body.find('\n', pos);
  ASSERT_NE(eol, std::string::npos);
  const std::string line = resp.body.substr(pos, eol - pos);
  EXPECT_NE(line.find("version=\""), std::string::npos);
  EXPECT_NE(line.find("git_sha=\""), std::string::npos);
  EXPECT_TRUE(line.size() >= 2 &&
              line.compare(line.size() - 2, 2, " 1") == 0)
      << line;
  check_exposition_consistent(resp.body);
}

TEST_F(HttpExporterFixture, MetricsRefreshesProcessGauges) {
  if (!obs::process_metrics_available()) {
    GTEST_SKIP() << "process metrics unavailable on this platform";
  }
  const HttpResponse resp = http_get(server_.port(), "/metrics");
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  // Scrape-time refresh: the gauges exist and RSS is a positive number.
  EXPECT_NE(resp.body.find("# TYPE process_resident_memory_bytes gauge"),
            std::string::npos);
  const std::string sample = "\nprocess_resident_memory_bytes ";
  const std::size_t pos = resp.body.find(sample);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GT(std::stod(resp.body.substr(pos + sample.size())), 0.0);
  EXPECT_NE(resp.body.find("process_open_fds "), std::string::npos);
  EXPECT_NE(resp.body.find("process_cpu_user_seconds "), std::string::npos);
}

TEST_F(HttpExporterFixture, ProfilezReturnsCollapsedStacksOrExplains) {
  if (!obs::profiler_available()) {
    const HttpResponse resp = http_get(server_.port(), "/profilez");
    ASSERT_TRUE(resp.ok);
    EXPECT_EQ(resp.status, 501);
    return;
  }
  // Run a live session so the route takes the snapshot path instead of
  // sleeping for a full on-demand window inside the test.
  obs::profiler_clear();
  obs::profiler_register_this_thread();
  ASSERT_TRUE(obs::profiler_start({})) << obs::profiler_last_error();
  volatile double sink = 0.0;
  for (int round = 0; round < 2000 && obs::profiler_samples_total() < 2;
       ++round) {
    for (int i = 0; i < 1000000; ++i) sink = sink + 1e-9 * i;
  }
  ASSERT_GE(obs::profiler_samples_total(), 2);
  const HttpResponse resp = http_get(server_.port(), "/profilez?seconds=1");
  obs::profiler_stop();
  obs::profiler_unregister_this_thread();
  obs::profiler_clear();
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.headers.find("text/plain"), std::string::npos);
  ASSERT_FALSE(resp.body.empty());
  // Collapsed format: last token of the first line is a count.
  const std::size_t eol = resp.body.find('\n');
  ASSERT_NE(eol, std::string::npos);
  const std::string first = resp.body.substr(0, eol);
  const std::size_t sp = first.rfind(' ');
  ASSERT_NE(sp, std::string::npos);
  for (std::size_t i = sp + 1; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] >= '0' && first[i] <= '9') << first;
  }
}

// The headline tsan test: scrapers pull /metrics while writers hammer a
// counter and a histogram.  Every scrape must be transport-complete,
// 200, and internally consistent; after the writers join, one final
// scrape must read the exact totals.
TEST_F(HttpExporterFixture, ConcurrentScrapesWhileWritersHammer) {
  // SetUp already skips when the exporter (and thus recording) is
  // compiled out, so counters here are guaranteed live.
  obs::Counter& counter =
      obs::Registry::global().counter("httptest.hammer_total");
  obs::Histogram& hist = obs::Registry::global().histogram(
      "httptest.hammer_latency", std::vector<double>{0.25, 0.5, 0.75});
  counter.reset();
  hist.reset();

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  constexpr int kScrapers = 3;
  std::atomic<bool> writers_done{false};
  std::atomic<int> scrapes_ok{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&counter, &hist, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.add(1);
        hist.record(static_cast<double>((i + w) % 5) * 0.25);
      }
    });
  }

  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  const int port = server_.port();
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&writers_done, &scrapes_ok, port] {
      while (!writers_done.load(std::memory_order_acquire)) {
        const HttpResponse resp = http_get(port, "/metrics");
        ASSERT_TRUE(resp.ok);
        EXPECT_EQ(resp.status, 200);
        check_exposition_consistent(resp.body);
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::thread& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();
  EXPECT_GT(scrapes_ok.load(), 0);

  // Quiescent scrape: the exact totals must now be visible.
  const HttpResponse resp = http_get(port, "/metrics");
  ASSERT_TRUE(resp.ok);
  const std::string want_counter =
      "httptest_hammer_total " +
      std::to_string(std::int64_t{kWriters} * kOpsPerWriter) + "\n";
  EXPECT_NE(resp.body.find(want_counter), std::string::npos);
  const std::string want_count =
      "httptest_hammer_latency_count " +
      std::to_string(std::int64_t{kWriters} * kOpsPerWriter) + "\n";
  EXPECT_NE(resp.body.find(want_count), std::string::npos);
}

#endif  // CUBISG_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace cubisg

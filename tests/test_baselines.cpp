// Tests for the baseline solvers: midpoint PASAQ, maximin LP, multi-start
// projected gradient and uniform.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "behavior/bounds.hpp"
#include "behavior/suqr.hpp"
#include "common/rng.hpp"
#include "core/gradient.hpp"
#include "core/maximin.hpp"
#include "core/pasaq.hpp"
#include "core/worst_case.hpp"
#include "games/generators.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::core {
namespace {

using behavior::IntervalMode;
using behavior::SuqrIntervalBounds;
using behavior::SuqrWeightIntervals;

struct Fixture {
  games::UncertainGame ug;
  SuqrIntervalBounds bounds;
  Fixture(std::uint64_t seed, std::size_t t, double r, double width)
      : ug(make(seed, t, r, width)),
        bounds(SuqrWeightIntervals{}, ug.attacker_intervals) {}
  static games::UncertainGame make(std::uint64_t seed, std::size_t t,
                                   double r, double width) {
    Rng rng(seed);
    return games::random_uncertain_game(rng, t, r, width);
  }
  SolveContext ctx() const { return SolveContext{ug.game, bounds}; }
};

// ---- uniform ---------------------------------------------------------

TEST(Uniform, ReturnsUniformCoverage) {
  Fixture f(50, 5, 2.0, 1.0);
  DefenderSolution sol = UniformSolver().solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  for (double xi : sol.strategy) EXPECT_DOUBLE_EQ(xi, 0.4);
  // worst_case_utility is evaluated by the canonical evaluator.
  EXPECT_NEAR(sol.worst_case_utility,
              worst_case_utility(f.ug.game, f.bounds, sol.strategy), 1e-12);
}

// ---- maximin ---------------------------------------------------------

TEST(Maximin, EqualizesDefenderUtilitiesOnTable1) {
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals);
  DefenderSolution sol = MaximinSolver().solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  // Analytic equalizer for Ud1 = -3 + 8x, Ud2 = -7 + 14(1-x): x = 10/22.
  EXPECT_NEAR(sol.strategy[0], 10.0 / 22.0, 1e-7);
  EXPECT_NEAR(sol.solver_objective, -3.0 + 8.0 * 10.0 / 22.0, 1e-7);
}

TEST(Maximin, ObjectiveIsMinUtilityFloor) {
  Fixture f(51, 7, 3.0, 1.0);
  DefenderSolution sol = MaximinSolver().solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  double floor_u = 1e18;
  for (std::size_t i = 0; i < 7; ++i) {
    floor_u = std::min(floor_u,
                       f.ug.game.defender_utility(i, sol.strategy[i]));
  }
  EXPECT_NEAR(floor_u, sol.solver_objective, 1e-7);
  // No strategy can have a higher floor (spot-check with uniform).
  auto uni = games::uniform_strategy(7, 3.0);
  double uni_floor = 1e18;
  for (std::size_t i = 0; i < 7; ++i) {
    uni_floor = std::min(uni_floor, f.ug.game.defender_utility(i, uni[i]));
  }
  EXPECT_GE(sol.solver_objective, uni_floor - 1e-9);
}

TEST(Maximin, WorstCaseAtLeastFloor) {
  // The behavioral worst case can never dip below the attack-anywhere
  // floor: W(x) is a convex combination of the Ud_i(x_i).
  Fixture f(52, 6, 2.0, 2.0);
  DefenderSolution sol = MaximinSolver().solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  EXPECT_GE(sol.worst_case_utility, sol.solver_objective - 1e-7);
}

// ---- midpoint PASAQ ----------------------------------------------------

TEST(Pasaq, Table1ParameterMidpointMatchesPaper) {
  // With the SUQR model at the box midpoints, the paper's midpoint
  // strategy (0.34, 0.66) is recovered.
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals,
                       IntervalMode::kPaperCorners);
  PasaqOptions opt;
  opt.segments = 50;
  opt.epsilon = 1e-4;
  opt.source = PasaqModelSource::kCustom;
  opt.model = std::make_shared<behavior::SuqrModel>(b.midpoint_model());
  DefenderSolution sol = PasaqSolver(opt).solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.strategy[0], 0.34, 1e-6);
  EXPECT_NEAR(sol.strategy[1], 0.66, 1e-6);
}

TEST(Pasaq, BelievedUtilityMatchesBinarySearchValue) {
  Fixture f(53, 6, 2.0, 1.0);
  PasaqOptions opt;
  opt.segments = 30;
  opt.epsilon = 1e-4;
  PasaqSolver solver(opt);
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  // The binary-search lb approximates the believed (midpoint-model)
  // utility of the returned strategy.
  const double believed = solver.believed_utility(f.ctx(), sol.strategy);
  EXPECT_NEAR(believed, sol.lb, 10.0 / 30.0 + 0.01);
}

TEST(Pasaq, OptimalForItsOwnModel) {
  // On its believed (midpoint) objective, PASAQ must beat uniform and
  // maximin strategies.
  Fixture f(54, 8, 3.0, 1.0);
  PasaqOptions opt;
  opt.segments = 30;
  PasaqSolver solver(opt);
  DefenderSolution sol = solver.solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  const double own = solver.believed_utility(f.ctx(), sol.strategy);
  DefenderSolution uni = UniformSolver().solve(f.ctx());
  DefenderSolution mm = MaximinSolver().solve(f.ctx());
  const double slack = 10.0 / 30.0 + 0.01;  // O(1/K) approximation slack
  EXPECT_GE(own, solver.believed_utility(f.ctx(), uni.strategy) - slack);
  EXPECT_GE(own, solver.believed_utility(f.ctx(), mm.strategy) - slack);
}

TEST(Pasaq, CustomSourceRequiresModel) {
  PasaqOptions opt;
  opt.source = PasaqModelSource::kCustom;
  EXPECT_THROW(PasaqSolver{opt}, InvalidModelError);
  PasaqOptions opt2;
  opt2.segments = 0;
  EXPECT_THROW(PasaqSolver{opt2}, InvalidModelError);
}

// ---- gradient -----------------------------------------------------------

TEST(Gradient, ImprovesOnItsStartingPoints) {
  Fixture f(55, 6, 2.0, 1.2);
  GradientOptions opt;
  opt.num_starts = 4;
  DefenderSolution sol = GradientSolver(opt).solve(f.ctx());
  ASSERT_TRUE(sol.ok());
  const double uniform_w = worst_case_utility(
      f.ug.game, f.bounds, games::uniform_strategy(6, 2.0));
  EXPECT_GE(sol.worst_case_utility, uniform_w - 1e-9);
  EXPECT_TRUE(f.ug.game.is_feasible_strategy(sol.strategy, 1e-6));
}

TEST(Gradient, DeterministicForSeed) {
  Fixture f(56, 5, 2.0, 1.0);
  GradientOptions opt;
  opt.num_starts = 3;
  opt.seed = 999;
  DefenderSolution a = GradientSolver(opt).solve(f.ctx());
  DefenderSolution b = GradientSolver(opt).solve(f.ctx());
  ASSERT_EQ(a.strategy.size(), b.strategy.size());
  for (std::size_t i = 0; i < a.strategy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.strategy[i], b.strategy[i]);
  }
}

TEST(Gradient, FindsEqualizerOnTable1) {
  // On Table I the exact robust optimum is the maximin equalizer
  // (x ~ 0.4545) with W ~ 0.636; gradient ascent must find it.
  auto ug = games::table1_game();
  SuqrIntervalBounds b(SuqrWeightIntervals{}, ug.attacker_intervals,
                       IntervalMode::kPaperCorners);
  GradientOptions opt;
  opt.num_starts = 6;
  DefenderSolution sol = GradientSolver(opt).solve({ug.game, b});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.strategy[0], 10.0 / 22.0, 0.01);
  EXPECT_GT(sol.worst_case_utility, 0.6);
}

TEST(Gradient, RejectsBadOptions) {
  GradientOptions opt;
  opt.num_starts = 0;
  EXPECT_THROW(GradientSolver{opt}, InvalidModelError);
}

}  // namespace
}  // namespace cubisg::core

// Tests for comb sampling (marginal coverage -> implementable patrols).
#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "games/comb_sampling.hpp"
#include "games/strategy_space.hpp"

namespace cubisg::games {
namespace {

TEST(CombSampling, DecompositionReproducesMarginalsExactly) {
  std::vector<double> x{0.46, 0.54};
  auto mix = comb_decomposition(x);
  auto marg = mixture_marginals(2, mix);
  EXPECT_NEAR(marg[0], 0.46, 1e-12);
  EXPECT_NEAR(marg[1], 0.54, 1e-12);
  double total = 0.0;
  for (const auto& a : mix) total += a.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(CombSampling, ResourceBoundHolds) {
  // sum x = 2.3 -> every pure allocation patrols at most ceil(2.3) = 3.
  std::vector<double> x{0.7, 0.6, 0.5, 0.3, 0.2};
  auto mix = comb_decomposition(x);
  for (const auto& a : mix) {
    EXPECT_LE(a.covered.size(), 3u);
  }
  auto marg = mixture_marginals(5, mix);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(marg[i], x[i], 1e-12);
}

TEST(CombSampling, IntegerBudgetUsesExactlyRTargets) {
  // sum x = 2 exactly: every allocation has exactly 2 targets.
  std::vector<double> x{0.5, 0.5, 0.5, 0.5};
  auto mix = comb_decomposition(x);
  for (const auto& a : mix) EXPECT_EQ(a.covered.size(), 2u);
}

TEST(CombSampling, DegenerateCases) {
  // All-zero coverage: a single empty patrol.
  std::vector<double> zero{0.0, 0.0, 0.0};
  auto mix = comb_decomposition(zero);
  ASSERT_EQ(mix.size(), 1u);
  EXPECT_TRUE(mix[0].covered.empty());
  EXPECT_NEAR(mix[0].probability, 1.0, 1e-12);

  // Full coverage: one patrol covering everything.
  std::vector<double> full{1.0, 1.0};
  auto fmix = comb_decomposition(full);
  ASSERT_EQ(fmix.size(), 1u);
  EXPECT_EQ(fmix[0].covered.size(), 2u);
}

TEST(CombSampling, RejectsOutOfRangeCoverage) {
  EXPECT_THROW(comb_decomposition(std::vector<double>{1.5, 0.2}),
               InvalidModelError);
  EXPECT_THROW(comb_decomposition(std::vector<double>{-0.2, 0.2}),
               InvalidModelError);
}

TEST(CombSampling, MixtureIsSmall) {
  // At most T+1 distinct allocations regardless of the marginal.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t t = 2 + static_cast<std::size_t>(rng.uniform_int(0, 18));
    std::vector<double> raw(t);
    for (auto& v : raw) v = rng.uniform(0.0, 1.0);
    const double r = rng.uniform(0.5, static_cast<double>(t) * 0.8);
    auto x = project_to_simplex_box(raw, r);
    auto mix = comb_decomposition(x);
    EXPECT_LE(mix.size(), t + 1);
  }
}

TEST(CombSampling, RandomMarginalsRoundTrip) {
  Rng rng(78);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t t = 1 + static_cast<std::size_t>(rng.uniform_int(0, 11));
    std::vector<double> x(t);
    for (auto& v : x) v = rng.uniform(0.0, 1.0);
    auto mix = comb_decomposition(x);
    auto marg = mixture_marginals(t, mix);
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_NEAR(marg[i], x[i], 1e-10) << "trial " << trial;
    }
  }
}

TEST(CombSampling, MonteCarloMatchesDecomposition) {
  std::vector<double> x{0.3, 0.8, 0.4, 0.5};
  Rng rng(79);
  std::vector<double> freq(4, 0.0);
  const int kDraws = 200000;
  for (int d = 0; d < kDraws; ++d) {
    for (std::size_t i : comb_sample(x, rng)) freq[i] += 1.0;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(freq[i] / kDraws, x[i], 0.01);
  }
}

TEST(CombSampling, SampleConsistentWithDecomposition) {
  // The allocation at offset u must be one of the decomposition's pure
  // strategies.
  std::vector<double> x{0.25, 0.5, 0.75, 0.5};
  auto mix = comb_decomposition(x);
  Rng rng(80);
  for (int d = 0; d < 200; ++d) {
    auto patrol = comb_sample(x, rng.uniform());
    const bool found = std::any_of(
        mix.begin(), mix.end(),
        [&](const PureAllocation& a) { return a.covered == patrol; });
    EXPECT_TRUE(found);
  }
}

TEST(CombSampling, MarginalsRejectOutOfRangeTarget) {
  std::vector<PureAllocation> bad{{{5}, 1.0}};
  EXPECT_THROW(mixture_marginals(3, bad), InvalidModelError);
}

}  // namespace
}  // namespace cubisg::games

#!/usr/bin/env bash
# Journal resume idempotence: kill -9 a journaled batch mid-run, resume,
# and the union of both runs must (a) solve every job exactly once and
# (b) produce digests bitwise-identical to an uninterrupted run — the
# journal digest is canonical solution bytes with run-specific fields
# zeroed, so equality here is bitwise solution equality.
# Usage: journal_resume.sh <cubisg-binary> <workdir>
set -u

CUBISG=$1
WORK=$2/cli_resume_work
rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "FAIL: $*"; exit 1; }

N=12
: > "$WORK/manifest.txt"
for i in $(seq 1 "$N"); do
  "$CUBISG" generate --targets 120 --seed "$((100 + i))" \
    --out "$WORK/job$i.scn" >/dev/null || fail "generate $i"
  echo "$WORK/job$i.scn" >> "$WORK/manifest.txt"
done

# Oracle: one uninterrupted run.
"$CUBISG" batch "$WORK/manifest.txt" --workers 1 --segments 25 \
  --journal "$WORK/oracle.log" > "$WORK/oracle.txt" 2>&1 \
  || fail "oracle run failed"
[ "$(grep -cE '^done [0-9a-f]{16} ok [0-9]+ [0-9]+ [0-9a-f]{8} ' "$WORK/oracle.log")" -eq "$N" ] \
  || fail "oracle journal incomplete"

# Interrupted run: kill -9 once at least two jobs are journaled (kill -9
# is the point — no signal handler, no flush; only fsynced records count).
"$CUBISG" batch "$WORK/manifest.txt" --workers 1 --segments 25 \
  --journal "$WORK/journal.log" > "$WORK/run1.txt" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  if [ "$(grep -cE '^done [0-9a-f]{16} ok [0-9]+ [0-9]+ [0-9a-f]{8} ' "$WORK/journal.log" 2>/dev/null)" -ge 2 ]
  then
    break
  fi
  kill -0 "$PID" 2>/dev/null || fail "batch finished before kill -9"
  sleep 0.05
done
kill -9 "$PID" 2>/dev/null || fail "batch gone before kill -9"
wait "$PID" 2>/dev/null

DONE_BEFORE=$(grep -cE '^done [0-9a-f]{16} ok [0-9]+ [0-9]+ [0-9a-f]{8} ' "$WORK/journal.log")
[ "$DONE_BEFORE" -ge 2 ] || fail "journal lost records after kill -9"
[ "$DONE_BEFORE" -lt "$N" ] || fail "batch finished before kill -9"

# Resume: only the pending jobs may be re-solved.
"$CUBISG" batch "$WORK/manifest.txt" --workers 1 --segments 25 \
  --journal "$WORK/journal.log" --resume 1 > "$WORK/run2.txt" 2>&1
CODE=$?
cat "$WORK/run2.txt"
[ "$CODE" -eq 0 ] || fail "resume run expected exit 0, got $CODE"
grep -q "resume: journal .* has $DONE_BEFORE completed jobs" \
  "$WORK/run2.txt" || fail "resume did not report $DONE_BEFORE skips"
RESOLVED=$(grep -c '^batch [0-9]*: status=' "$WORK/run2.txt")
[ "$RESOLVED" -eq "$((N - DONE_BEFORE))" ] \
  || fail "resume re-solved $RESOLVED jobs, expected $((N - DONE_BEFORE))"

# Bitwise idempotence: per-tag digests equal the uninterrupted oracle's.
# Strict record regex so a torn half-line from the kill can never match.
REC='^done [0-9a-f]{16} ok [0-9]+ [0-9]+ [0-9a-f]{8} '
grep -E "$REC" "$WORK/oracle.log" | awk '{print $7, $2}' | sort \
  > "$WORK/oracle.digests"
grep -E "$REC" "$WORK/journal.log" | awk '{print $7, $2}' | sort -u \
  > "$WORK/resumed.digests"
diff "$WORK/oracle.digests" "$WORK/resumed.digests" \
  || fail "resumed digests differ from the uninterrupted run"

echo "PASS: journal_resume"

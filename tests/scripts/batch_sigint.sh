#!/usr/bin/env bash
# SIGINT mid-batch must flush the journal, print the partial summary
# ("batch interrupted: C completed, F failed, R remaining") and exit 2.
# Usage: batch_sigint.sh <cubisg-binary> <workdir>
set -u

CUBISG=$1
WORK=$2/cli_sigint_work
rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "FAIL: $*"; exit 1; }

# Enough medium jobs that the batch runs for seconds on one worker.
N=16
: > "$WORK/manifest.txt"
for i in $(seq 1 "$N"); do
  "$CUBISG" generate --targets 150 --seed "$i" \
    --out "$WORK/job$i.scn" >/dev/null || fail "generate $i"
  echo "$WORK/job$i.scn" >> "$WORK/manifest.txt"
done

"$CUBISG" batch "$WORK/manifest.txt" --workers 1 --segments 30 \
  --journal "$WORK/journal.log" > "$WORK/out.txt" 2>&1 &
PID=$!

# Interrupt once the batch is demonstrably mid-flight (>= 2 results out).
for _ in $(seq 1 200); do
  if [ "$(grep -c '^batch [0-9]*:' "$WORK/out.txt" 2>/dev/null)" -ge 2 ]; then
    break
  fi
  kill -0 "$PID" 2>/dev/null || fail "batch finished before SIGINT (too fast)"
  sleep 0.05
done
kill -INT "$PID" 2>/dev/null || fail "batch gone before SIGINT"
wait "$PID"
CODE=$?

cat "$WORK/out.txt"
[ "$CODE" -eq 2 ] || fail "expected exit 2 after SIGINT, got $CODE"
grep -q "^batch interrupted: " "$WORK/out.txt" \
  || fail "partial summary line missing"
grep -q "rerun with --resume" "$WORK/out.txt" \
  || fail "resume hint missing from partial summary"
grep -qE "^done [0-9a-f]{16} ok [0-9]+ [0-9]+ [0-9a-f]{8} " "$WORK/journal.log" \
  || fail "journal holds no completed record after SIGINT"

# The journal must make the interrupted work resumable to completion.
"$CUBISG" batch "$WORK/manifest.txt" --workers 2 --segments 30 \
  --journal "$WORK/journal.log" --resume 1 > "$WORK/resume.txt" 2>&1
CODE=$?
cat "$WORK/resume.txt"
[ "$CODE" -eq 0 ] || fail "resume run expected exit 0, got $CODE"
grep -q "batch done: $N files, $N solved ok, 0 failed, 0 skipped" \
  "$WORK/resume.txt" || fail "resume run did not finish every job"

echo "PASS: batch_sigint"

// Unit and property tests for the LP model builder and simplex solver.
#include <cmath>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "brute_force.hpp"

namespace cubisg::lp {
namespace {

using cubisg::testing::brute_force_lp;

TEST(LpModel, BuildAndQuery) {
  Model m;
  const int x = m.add_col("x", 0.0, 10.0, 1.0);
  const int y = m.add_col("y", -kInf, kInf, -2.0);
  const int r = m.add_row("r0", Sense::kLe, 5.0);
  m.set_coeff(r, x, 1.0);
  m.set_coeff(r, y, 3.0);
  EXPECT_EQ(m.num_cols(), 2);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_EQ(m.col_name(x), "x");
  EXPECT_DOUBLE_EQ(m.row_rhs(r), 5.0);
  EXPECT_DOUBLE_EQ(m.objective_value({2.0, 3.0}), 2.0 - 6.0);
  EXPECT_DOUBLE_EQ(m.row_activity(r, {2.0, 3.0}), 11.0);
}

TEST(LpModel, RejectsBadInput) {
  Model m;
  EXPECT_THROW(m.add_col("bad", 1.0, 0.0, 0.0), InvalidModelError);
  EXPECT_THROW(m.add_col("nan", std::nan(""), 1.0, 0.0), InvalidModelError);
  const int x = m.add_col("x", 0.0, 1.0, 1.0);
  EXPECT_THROW(m.add_row("r", Sense::kEq, kInf), InvalidModelError);
  const int r = m.add_row("r", Sense::kEq, 1.0);
  EXPECT_THROW(m.set_coeff(r, 5, 1.0), std::out_of_range);
  EXPECT_THROW(m.set_coeff(r, x, std::nan("")), InvalidModelError);
}

TEST(LpModel, SetCoeffOverwrites) {
  Model m;
  const int x = m.add_col("x", 0.0, 1.0, 0.0);
  const int r = m.add_row("r", Sense::kLe, 1.0);
  m.set_coeff(r, x, 2.0);
  m.set_coeff(r, x, 3.0);
  ASSERT_EQ(m.row_entries(r).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row_entries(r)[0].value, 3.0);
}

TEST(Simplex, TextbookMaximize) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with value 36.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, kInf, 3.0);
  const int y = m.add_col("y", 0.0, kInf, 5.0);
  int r0 = m.add_row("r0", Sense::kLe, 4.0);
  m.set_coeff(r0, x, 1.0);
  int r1 = m.add_row("r1", Sense::kLe, 12.0);
  m.set_coeff(r1, y, 2.0);
  int r2 = m.add_row("r2", Sense::kLe, 18.0);
  m.set_coeff(r2, x, 3.0);
  m.set_coeff(r2, y, 2.0);

  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 6.0, 1e-8);
  // Shadow prices: r1 -> 3/2, r2 -> 1, r0 slack -> 0.
  EXPECT_NEAR(s.duals[r0], 0.0, 1e-8);
  EXPECT_NEAR(s.duals[r1], 1.5, 1e-8);
  EXPECT_NEAR(s.duals[r2], 1.0, 1e-8);
}

TEST(Simplex, EqualityAndGe) {
  // min x + y st x + y = 2, x - y >= -1, 0 <= x,y <= 2.
  Model m;
  const int x = m.add_col("x", 0.0, 2.0, 1.0);
  const int y = m.add_col("y", 0.0, 2.0, 1.0);
  int r0 = m.add_row("eq", Sense::kEq, 2.0);
  m.set_coeff(r0, x, 1.0);
  m.set_coeff(r0, y, 1.0);
  int r1 = m.add_row("ge", Sense::kGe, -1.0);
  m.set_coeff(r1, x, 1.0);
  m.set_coeff(r1, y, -1.0);

  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_NEAR(s.x[x] + s.x[y], 2.0, 1e-8);
  EXPECT_GE(s.x[x] - s.x[y], -1.0 - 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_col("x", 0.0, 1.0, 1.0);
  int r0 = m.add_row("hi", Sense::kGe, 2.0);
  m.set_coeff(r0, x, 1.0);  // x >= 2 but x <= 1
  LpSolution s = solve_lp(m);
  EXPECT_EQ(s.status, SolverStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualities) {
  Model m;
  const int x = m.add_col("x", -kInf, kInf, 0.0);
  int r0 = m.add_row("a", Sense::kEq, 1.0);
  m.set_coeff(r0, x, 1.0);
  int r1 = m.add_row("b", Sense::kEq, 2.0);
  m.set_coeff(r1, x, 1.0);
  LpSolution s = solve_lp(m);
  EXPECT_EQ(s.status, SolverStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, kInf, 1.0);
  const int y = m.add_col("y", 0.0, kInf, 0.0);
  int r0 = m.add_row("r", Sense::kGe, 0.0);
  m.set_coeff(r0, x, 1.0);
  m.set_coeff(r0, y, 1.0);
  LpSolution s = solve_lp(m);
  EXPECT_EQ(s.status, SolverStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min y st y >= x - 3, y >= -x + 1, x free, y free.
  // Optimum at x=2, y=-1.
  Model m;
  const int x = m.add_col("x", -kInf, kInf, 0.0);
  const int y = m.add_col("y", -kInf, kInf, 1.0);
  int r0 = m.add_row("a", Sense::kGe, -3.0);  // y - x >= -3
  m.set_coeff(r0, y, 1.0);
  m.set_coeff(r0, x, -1.0);
  int r1 = m.add_row("b", Sense::kGe, 1.0);  // y + x >= 1
  m.set_coeff(r1, y, 1.0);
  m.set_coeff(r1, x, 1.0);
  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -1.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

TEST(Simplex, BoundFlipOnly) {
  // max x + 2y with 0<=x<=1, 0<=y<=1 and a vacuous row.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 1.0, 1.0);
  const int y = m.add_col("y", 0.0, 1.0, 2.0);
  int r0 = m.add_row("cap", Sense::kLe, 10.0);
  m.set_coeff(r0, x, 1.0);
  m.set_coeff(r0, y, 1.0);
  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
  EXPECT_NEAR(s.x[x], 1.0, 1e-9);
  EXPECT_NEAR(s.x[y], 1.0, 1e-9);
}

TEST(Simplex, FixedVariables) {
  Model m;
  const int x = m.add_col("x", 2.0, 2.0, 1.0);  // fixed at 2
  const int y = m.add_col("y", 0.0, 5.0, 1.0);
  int r0 = m.add_row("r", Sense::kGe, 3.0);
  m.set_coeff(r0, x, 1.0);
  m.set_coeff(r0, y, 1.0);
  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 1.0, 1e-8);
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
}

TEST(Simplex, DegenerateDoesNotCycle) {
  // Classic degenerate instance (Beale-like); must terminate optimally.
  Model m;
  m.set_objective_sense(Objective::kMinimize);
  const int x1 = m.add_col("x1", 0.0, kInf, -0.75);
  const int x2 = m.add_col("x2", 0.0, kInf, 150.0);
  const int x3 = m.add_col("x3", 0.0, kInf, -0.02);
  const int x4 = m.add_col("x4", 0.0, kInf, 6.0);
  int r0 = m.add_row("r0", Sense::kLe, 0.0);
  m.set_coeff(r0, x1, 0.25);
  m.set_coeff(r0, x2, -60.0);
  m.set_coeff(r0, x3, -0.04);
  m.set_coeff(r0, x4, 9.0);
  int r1 = m.add_row("r1", Sense::kLe, 0.0);
  m.set_coeff(r1, x1, 0.5);
  m.set_coeff(r1, x2, -90.0);
  m.set_coeff(r1, x3, -0.02);
  m.set_coeff(r1, x4, 3.0);
  int r2 = m.add_row("r2", Sense::kLe, 1.0);
  m.set_coeff(r2, x3, 1.0);
  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal()) << to_string(s.status);
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with -5 <= x <= -1, -3 <= y <= 8, x + y >= -6.
  Model m;
  const int x = m.add_col("x", -5.0, -1.0, 1.0);
  const int y = m.add_col("y", -3.0, 8.0, 1.0);
  int r0 = m.add_row("r", Sense::kGe, -6.0);
  m.set_coeff(r0, x, 1.0);
  m.set_coeff(r0, y, 1.0);
  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -6.0, 1e-8);
}

TEST(Simplex, ReducedCostsSignConvention) {
  // max 2x st x <= 1 (bound), no rows binding.
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int x = m.add_col("x", 0.0, 1.0, 2.0);
  int r0 = m.add_row("loose", Sense::kLe, 100.0);
  m.set_coeff(r0, x, 1.0);
  LpSolution s = solve_lp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  // x at its upper bound in a max problem: reduced cost (user sense) > 0.
  EXPECT_GT(s.reduced_costs[x], 1e-9);
}

TEST(Simplex, WarmStartReproducesOptimumWithFewerIterations) {
  // Re-solving from the previous optimal basis must skip phase 1 entirely.
  Rng rng(71);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  const int n = 12;
  for (int j = 0; j < n; ++j) {
    m.add_col("x" + std::to_string(j), 0.0, 1.0, rng.uniform(0.0, 2.0));
  }
  for (int r = 0; r < 6; ++r) {
    int row = m.add_row("r" + std::to_string(r), Sense::kLe,
                        rng.uniform(1.0, 3.0));
    for (int j = 0; j < n; ++j) m.set_coeff(row, j, rng.uniform(0.0, 1.0));
  }
  LpSolution cold = solve_lp(m);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.positions.empty());

  SimplexOptions warm_opt;
  warm_opt.warm_positions = &cold.positions;
  LpSolution warm = solve_lp(m, warm_opt);
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Simplex, WarmStartSurvivesBoundTightening) {
  // Branch-and-bound usage pattern: tighten one bound, warm-start from the
  // parent basis; result must equal a cold solve of the child.
  Rng rng(72);
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  for (int j = 0; j < 8; ++j) {
    m.add_col("x" + std::to_string(j), 0.0, 1.0, rng.uniform(0.5, 2.0));
  }
  int row = m.add_row("cap", Sense::kLe, 3.0);
  for (int j = 0; j < 8; ++j) m.set_coeff(row, j, rng.uniform(0.3, 1.0));
  LpSolution parent = solve_lp(m);
  ASSERT_TRUE(parent.optimal());

  m.set_col_bounds(2, 0.0, 0.0);  // "branch down" on column 2
  LpSolution cold = solve_lp(m);
  SimplexOptions warm_opt;
  warm_opt.warm_positions = &parent.positions;
  LpSolution warm = solve_lp(m, warm_opt);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

TEST(Simplex, RefactorIntervalDoesNotChangeResults) {
  // Eta-file length is a performance knob only: interval 1 (refactorize
  // every pivot, the numerically most conservative setting) must agree
  // with the default on random instances.
  Rng rng(73);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? Objective::kMinimize
                                              : Objective::kMaximize);
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(-2.0, 0.0);
      m.add_col("x" + std::to_string(j), lo, lo + rng.uniform(0.5, 3.0),
                rng.uniform(-2.0, 2.0));
    }
    for (int r = 0; r < n / 2 + 1; ++r) {
      int row = m.add_row("r" + std::to_string(r), Sense::kLe,
                          rng.uniform(0.0, 4.0));
      for (int j = 0; j < n; ++j) {
        m.set_coeff(row, j, rng.uniform(-1.0, 2.0));
      }
    }
    SimplexOptions every_pivot;
    every_pivot.refactor_interval = 1;
    LpSolution a = solve_lp(m, every_pivot);
    LpSolution b = solve_lp(m);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.optimal()) {
      EXPECT_NEAR(a.objective, b.objective, 1e-7) << "trial " << trial;
    }
  }
}

TEST(Simplex, MalformedWarmHintFallsBackToColdStart) {
  Model m;
  m.set_objective_sense(Objective::kMaximize);
  m.add_col("x", 0.0, 2.0, 1.0);
  int r = m.add_row("cap", Sense::kLe, 1.5);
  m.set_coeff(r, 0, 1.0);
  std::vector<VarPosition> bogus{VarPosition::kBasic};  // wrong size
  SimplexOptions opt;
  opt.warm_positions = &bogus;
  LpSolution s = solve_lp(m, opt);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.5, 1e-9);
  // All-basic hint of the right size is inconsistent (too many basics).
  std::vector<VarPosition> toomany{VarPosition::kBasic, VarPosition::kBasic};
  opt.warm_positions = &toomany;
  LpSolution s2 = solve_lp(m, opt);
  ASSERT_TRUE(s2.optimal());
  EXPECT_NEAR(s2.objective, 1.5, 1e-9);
}

// ---- randomized cross-check against brute-force vertex enumeration ------

struct RandomLpCase {
  std::uint64_t seed;
};

class SimplexRandomTest : public ::testing::TestWithParam<RandomLpCase> {};

TEST_P(SimplexRandomTest, MatchesBruteForce) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    const int rows = static_cast<int>(rng.uniform_int(0, 4));
    Model m;
    m.set_objective_sense(rng.uniform() < 0.5 ? Objective::kMinimize
                                              : Objective::kMaximize);
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(-4.0, 0.0);
      const double hi = lo + rng.uniform(0.0, 6.0);
      m.add_col("x" + std::to_string(j), lo, hi, rng.uniform(-3.0, 3.0));
    }
    for (int r = 0; r < rows; ++r) {
      const double pick = rng.uniform();
      const Sense sense = pick < 0.4   ? Sense::kLe
                          : pick < 0.8 ? Sense::kGe
                                       : Sense::kEq;
      const int row = m.add_row("r" + std::to_string(r), sense,
                                rng.uniform(-5.0, 5.0));
      for (int j = 0; j < n; ++j) {
        if (rng.uniform() < 0.75) {
          m.set_coeff(row, j, rng.uniform(-2.0, 2.0));
        }
      }
    }

    LpSolution s = solve_lp(m);
    std::optional<double> ref = cubisg::testing::brute_force_lp(m);
    if (!ref) {
      EXPECT_EQ(s.status, SolverStatus::kInfeasible)
          << "trial " << trial << ": brute force found no feasible vertex "
          << "but simplex returned " << to_string(s.status);
      continue;
    }
    ASSERT_TRUE(s.optimal())
        << "trial " << trial << ": " << to_string(s.status)
        << " (brute force optimum " << *ref << ")";
    EXPECT_NEAR(s.objective, *ref, 1e-6) << "trial " << trial;
    EXPECT_LE(m.max_violation(s.x), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SimplexRandomTest,
    ::testing::Values(RandomLpCase{1}, RandomLpCase{2}, RandomLpCase{3},
                      RandomLpCase{4}, RandomLpCase{5}, RandomLpCase{6},
                      RandomLpCase{7}, RandomLpCase{8}),
    [](const ::testing::TestParamInfo<RandomLpCase>& pinfo) {
      return "seed" + std::to_string(pinfo.param.seed);
    });

}  // namespace
}  // namespace cubisg::lp
